//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use:
//! `proptest!` with an optional `#![proptest_config(...)]` header,
//! range and `any::<T>()` strategies, `proptest::collection::vec`,
//! `Strategy::prop_map`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Each test runs its strategies against a deterministic RNG seeded
//! from the test name and case index, so failures are reproducible
//! run-to-run. No shrinking: a failing case reports the case number
//! and the assertion message. That loses proptest's minimal
//! counter-examples but keeps the property coverage itself.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub type TestRng = StdRng;

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of arbitrary values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::Rng;
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::Rng;
        // Finite, sign-symmetric, moderate magnitude — matches how the
        // workspace uses `any::<f32>()` (as generic numeric input).
        (rng.gen::<f32>() - 0.5) * 2e6
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::Rng;
        (rng.gen::<f64>() - 0.5) * 2e12
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<A> {
    _marker: std::marker::PhantomData<A>,
}

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// `any::<T>()` — the whole-domain strategy for `T`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Size specification for [`vec`]: a fixed length or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::prop::*` alias used by some call sites
/// (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// Deterministic per-test seed derived from the test name (FNV-1a).
pub fn seed_for(name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h ^ ((case as u64) << 32) ^ case as u64)
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}`", l, r
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?} != {:?}`", l, r
            ));
        }
    }};
}

/// The `proptest!` test-block macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            #[test]
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng = $crate::seed_for(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut rng);
                    )*
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(msg) = outcome {
                        ::core::panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), case, cfg.cases, msg
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold(x in 3usize..10, y in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_and_map_work(
            v in collection::vec(0u32..100, 5usize),
            w in collection::vec(any::<u64>(), 0usize..4).prop_map(|v| v.len()),
        ) {
            prop_assert_eq!(v.len(), 5);
            prop_assert!(w < 4);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in any::<u32>()) {
            prop_assert_eq!(x, x);
        }
    }
}
