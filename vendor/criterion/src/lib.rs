//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Provides the macro and method surface the workspace benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, `black_box`)
//! with a lightweight measurement loop: each benchmark is warmed up
//! once, then timed over enough iterations to fill a short window, and
//! the mean time per iteration is printed. No statistics, plots, or
//! baselines — just honest wall-clock numbers so `cargo bench` runs
//! and reports something useful offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for one parameterized benchmark case.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_mean_ns: f64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            last_mean_ns: 0.0,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up.
        black_box(routine());
        // Measure: run the routine `samples` times (clamped by a time
        // budget so slow benches don't stall the suite).
        let budget = Duration::from_millis(400);
        let start = Instant::now();
        let mut iters = 0u64;
        for _ in 0..self.samples {
            black_box(routine());
            iters += 1;
            if start.elapsed() > budget {
                break;
            }
        }
        self.last_mean_ns = start.elapsed().as_nanos() as f64 / iters.max(1) as f64;
    }
}

fn report(name: &str, mean_ns: f64) {
    let (value, unit) = if mean_ns >= 1e9 {
        (mean_ns / 1e9, "s")
    } else if mean_ns >= 1e6 {
        (mean_ns / 1e6, "ms")
    } else if mean_ns >= 1e3 {
        (mean_ns / 1e3, "us")
    } else {
        (mean_ns, "ns")
    };
    println!("bench: {name:<60} {value:>10.3} {unit}/iter");
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name, b.last_mean_ns);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn final_summary(&mut self) {}
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), b.last_mean_ns);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.last_mean_ns);
        self
    }

    pub fn finish(self) {}
}

/// Declares a group function that runs each target against one
/// `Criterion` driver.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that invokes each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_something() {
        let mut c = Criterion::default();
        c.sample_size(3).bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("case", 4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }
}
