//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s
//! no-poisoning API (`lock()`/`read()`/`write()` return guards
//! directly, not `Result`s). A poisoned std lock is recovered by
//! taking the inner guard — matching parking_lot, whose locks do not
//! poison on panic.

use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || {
            for _ in 0..100 {
                *m2.lock() += 1;
            }
        });
        for _ in 0..100 {
            *m.lock() += 1;
        }
        h.join().unwrap();
        assert_eq!(*m.lock(), 200);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5i32);
        assert_eq!(*l.read(), 5);
        *l.write() = 9;
        assert_eq!(l.into_inner(), 9);
    }
}
