//! Offline stand-in for the `rand` crate (0.8-compatible surface).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` API it actually
//! uses: a seedable `StdRng` (xoshiro256++ seeded via splitmix64),
//! the `Rng` sampling methods (`gen`, `gen_range`, `gen_bool`) and
//! `seq::SliceRandom::shuffle`/`choose`. Determinism for a given seed
//! is guaranteed across runs and platforms, which is all the
//! reproduction's generators and tests rely on.

/// Low-level source of random `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling conveniences layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the "standard" distribution of `T`
    /// (uniform in `[0, 1)` for floats, uniform over all values for
    /// integers, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;

    /// Deterministic fallback: the shim has no OS entropy source, so
    /// "entropy" seeding uses a fixed constant. No workspace code path
    /// relies on nondeterministic seeding.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9E37_79B9_7F4A_7C15)
    }
}

/// Standard-distribution sampling for a concrete type.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform sampling from a range expression.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                // Closed unit interval [0, 1] so `hi` is reachable,
                // matching rand's inclusive-range contract.
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, seeded via splitmix64 — deterministic,
    /// fast, and statistically strong enough for workload generation
    /// and tests.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling and random choice.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&w));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
