//! Offline stand-in for the `crossbeam` crate: MPMC channels.
//!
//! The cluster runtime needs crossbeam's one behavioural departure
//! from `std::sync::mpsc`: **receivers are cloneable**, so several
//! worker threads can service one steal-request queue. This shim
//! implements a small MPMC channel over `Mutex<VecDeque>` +
//! `Condvar` with the crossbeam method surface the workspace uses
//! (`send`, `recv`, `try_recv`, `recv_timeout`, `len`, `is_empty`)
//! and disconnect semantics matching crossbeam: a channel is
//! disconnected when all peers on the other side have dropped.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
    }

    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Channel buffering at most `cap` messages; `send` blocks when full.
    ///
    /// Unlike real crossbeam, `cap == 0` (rendezvous channel) is not
    /// supported — this queue-based shim would deadlock both sides —
    /// so it panics loudly instead.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "bounded(0) rendezvous channels are not supported by this shim");
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                // Wake receivers so they observe the disconnect.
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.inner.capacity {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.inner.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.not_empty.wait(st).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .inner
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
                if res.timed_out() && st.queue.is_empty() {
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn mpmc_receiver_clones_share_queue() {
            let (tx, rx) = unbounded::<u32>();
            let rx2 = rx.clone();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            let mut got = Vec::new();
            for _ in 0..5 {
                got.push(rx.recv().unwrap());
                got.push(rx2.recv().unwrap());
            }
            got.sort_unstable();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = bounded::<u8>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(7));
        }

        #[test]
        fn disconnect_is_observed() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded::<usize>();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            h.join().unwrap();
            assert_eq!(sum, 4950);
        }
    }
}
