//! The replication trade-off tour (Section 3.3): walk the whole
//! PARTIAL-k spectrum on one dataset and watch space, index time, and
//! query time move against each other — the trade-off Figures 14/15
//! quantify and the reason `k` is a user-facing knob.
//!
//! ```text
//! cargo run --release --example replication_tradeoff
//! ```

use odyssey::cluster::{units, ClusterConfig, OdysseyCluster, Replication, SchedulerKind};
use odyssey::workloads::generator::noisy_walk;
use odyssey::workloads::queries::{QueryWorkload, WorkloadKind};

fn main() {
    let n_nodes = 8;
    let data = noisy_walk(6_000, 128, 0x77AD);
    let queries = QueryWorkload::generate(
        &data,
        24,
        WorkloadKind::Mixed {
            hard_fraction: 0.3,
            noise: 0.05,
        },
        0x7E5,
    );
    println!(
        "{} series, {n_nodes} nodes, {} queries — sweeping PARTIAL-k\n",
        data.num_series(),
        queries.len()
    );
    println!(
        "{:>14}  {:>6}  {:>12}  {:>12}  {:>12}  {:>8}",
        "strategy", "degree", "index MB", "index (s)", "queries (s)", "steals"
    );
    // 8 nodes support 1 + log2(8) = 4 replication degrees.
    for k in [8usize, 4, 2, 1] {
        let rep = match k {
            1 => Replication::Full,
            8 => Replication::EquallySplit,
            k => Replication::Partial(k),
        };
        let cfg = ClusterConfig::new(n_nodes)
            .with_replication(rep)
            .with_scheduler(SchedulerKind::PredictDn)
            .with_work_stealing(true)
            .with_leaf_capacity(128);
        let tpn = cfg.threads_per_node;
        let cluster = OdysseyCluster::build(&data, cfg);
        let report = cluster.answer_batch(&queries.queries);
        println!(
            "{:>14}  {:>6}  {:>12.2}  {:>12.4}  {:>12.4}  {:>8}",
            rep.label(),
            cluster.topology().replication_degree(),
            cluster.build_report().total_index_bytes() as f64 / 1048576.0,
            units::units_to_seconds(cluster.build_report().max_index_units(), tpn),
            report.makespan_seconds(tpn),
            report.steals_successful,
        );
    }
    println!("\nReading the table: replication degree buys query speed (stealing only");
    println!("works inside replication groups) at the price of index space and");
    println!("construction time. PARTIAL-k lets a deployment pick its point.");
}
