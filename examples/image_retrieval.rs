//! Cross-modal retrieval: image-descriptor-like embeddings (the paper's
//! Sift / Yan-TtI workloads) served by a memory-constrained cluster.
//!
//! Embedding collections are heavily *clustered* — naive contiguous
//! partitioning concentrates whole clusters on single nodes, so one node
//! does all the low-pruning work for any query near that cluster. This
//! example compares EQUALLY-SPLIT with DENSITY-AWARE partitioning under
//! partial replication, and answers 10-NN queries (the k-NN
//! classification task the paper's introduction motivates).
//!
//! ```text
//! cargo run --release --example image_retrieval
//! ```

use odyssey::cluster::{units, ClusterConfig, OdysseyCluster, Replication, SchedulerKind};
use odyssey::partition::{DensityAwareConfig, PartitioningScheme};
use odyssey::workloads::generator::cluster_mixture;
use odyssey::workloads::queries::{QueryWorkload, WorkloadKind};

fn main() {
    // Sift-like descriptors: 128-dimensional, 32 dense clusters.
    let descriptors = cluster_mixture(8_000, 128, 32, 0.25, 0x51F7);
    println!(
        "descriptor collection: {} x {}",
        descriptors.num_series(),
        descriptors.series_len()
    );
    let queries = QueryWorkload::generate(
        &descriptors,
        16,
        WorkloadKind::Mixed {
            hard_fraction: 0.2,
            noise: 0.1,
        },
        0xA11CE,
    );

    // The cluster cannot hold the full collection on every node (that is
    // the memory-limitation regime of Figures 12/14), so we use
    // PARTIAL-2: two replication groups, each holding half the data.
    for (label, scheme) in [
        ("EQUALLY-SPLIT", PartitioningScheme::EquallySplit),
        (
            "DENSITY-AWARE",
            PartitioningScheme::DensityAware(DensityAwareConfig {
                segments: 16,
                lambda: 64,
                balance_tolerance: 0.05,
                n_threads: 2,
            }),
        ),
    ] {
        let cfg = ClusterConfig::new(4)
            .with_replication(Replication::Partial(2))
            .with_partitioning(scheme)
            .with_scheduler(SchedulerKind::PredictDn)
            .with_leaf_capacity(128);
        let tpn = cfg.threads_per_node;
        let cluster = OdysseyCluster::build(&descriptors, cfg);
        println!(
            "\n=== {label} partitioning (PARTIAL-2, index {:.2} MB total) ===",
            cluster.build_report().total_index_bytes() as f64 / 1048576.0
        );

        // 10-NN retrieval.
        let report = cluster.answer_batch_knn(&queries.queries, 10);
        println!(
            "10-NN batch: {:.4} simulated s (max node)",
            units::units_to_seconds(report.makespan_units(), tpn)
        );
        let loads: Vec<String> = report
            .per_node_units
            .iter()
            .map(|&u| format!("{:.3}", units::units_to_seconds(u, tpn)))
            .collect();
        println!("per-node load (s): [{}]", loads.join(", "));
        let top = &report.answers[0].neighbors;
        println!(
            "query 0 top-3: {:?}",
            top.iter()
                .take(3)
                .map(|&(d, id)| (id, (d.sqrt() * 1000.0).round() / 1000.0))
                .collect::<Vec<_>>()
        );
    }
    println!("\nDENSITY-AWARE spreads each dense cluster across nodes, so the");
    println!("low-pruning work for any query is shared instead of dumped on one node.");
}
