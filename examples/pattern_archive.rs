//! Pattern archiving: subsequence search + index persistence.
//!
//! A monitoring pipeline (the paper's introduction motivates exactly
//! this: seismology, astrophysics, engineering telemetry) keeps long
//! recordings and repeatedly asks "where has this waveform occurred
//! before?". This example:
//!
//! 1. builds a [`SubsequenceIndex`] over multi-hour recordings,
//! 2. finds the best (and top-k non-trivial) occurrences of a pattern,
//! 3. persists the underlying whole-matching index to disk and reloads
//!    it — the build cost is paid once per archive, not per question.
//!
//! ```text
//! cargo run --release --example pattern_archive
//! ```

use odyssey::core::persist;
use odyssey::core::subsequence::SubsequenceIndex;
use odyssey::workloads::generator::random_walk;

fn main() {
    // Three long "recordings" (random walks standing in for telemetry).
    let recordings: Vec<Vec<f32>> = (0..3)
        .map(|i| random_walk(1, 6_000 + i * 1000, 0xA5C + i as u64).series(0).to_vec())
        .collect();
    let window = 128;

    // A pattern we know occurs: a slice of recording 1, plus small noise.
    let mut pattern = recordings[1][2345..2345 + window].to_vec();
    for (i, v) in pattern.iter_mut().enumerate() {
        *v += 0.01 * ((i as f32) * 0.7).sin();
    }

    let t0 = std::time::Instant::now();
    let archive = SubsequenceIndex::build(&recordings, window, 1, 2);
    println!(
        "archive: {} windows of {} points from {} recordings, indexed in {:?}",
        archive.num_windows(),
        window,
        recordings.len(),
        t0.elapsed()
    );

    // Where has this waveform occurred?
    let (ans, at) = archive.best_match(&pattern, 2);
    println!(
        "best match: recording {} offset {} (z-normalized distance {:.4})",
        at.sequence, at.offset, ans.distance
    );
    assert_eq!((at.sequence, at.offset), (1, 2345));

    // Top 3 non-overlapping occurrences (exclusion = half a window).
    let matches = archive.top_matches(&pattern, 3, window / 2, 2);
    println!("top non-trivial matches:");
    for (d_sq, r) in &matches {
        println!(
            "  recording {} offset {:>5} dist {:.4}",
            r.sequence,
            r.offset,
            d_sq.sqrt()
        );
    }

    // Persist the underlying index; a later session reloads it instantly.
    let path = std::env::temp_dir().join("pattern_archive.idx");
    persist::save_index_file(archive.index(), &path).expect("save");
    let size_mb = std::fs::metadata(&path).expect("metadata").len() as f64 / 1048576.0;
    let t1 = std::time::Instant::now();
    let reloaded = persist::load_index_file(&path).expect("load");
    println!(
        "persisted {:.1} MB, reloaded {} windows in {:?} (no rebuild)",
        size_mb,
        reloaded.num_series(),
        t1.elapsed()
    );
    std::fs::remove_file(&path).ok();
}
