//! Seismic monitoring: the paper's motivating scenario — a large archive
//! of seismic instrument recordings, and an analysis task (e.g. matching
//! newly recorded events against the archive) that issues a *batch* of
//! exact similarity queries of wildly varying difficulty.
//!
//! This example runs the full Odyssey pipeline on a simulated 8-node
//! cluster: density-variant data, FULL replication, prediction-based
//! dynamic scheduling, BSF sharing, and work-stealing — and contrasts it
//! with naive static scheduling on the same batch.
//!
//! ```text
//! cargo run --release --example seismic_monitoring
//! ```

use odyssey::cluster::{units, ClusterConfig, OdysseyCluster, Replication, SchedulerKind};
use odyssey::workloads::generator::noisy_walk;
use odyssey::workloads::queries::{QueryWorkload, WorkloadKind};

fn main() {
    // Seismic-like archive: random walks with heteroscedastic bursts, so
    // some queries prune well and others barely prune at all.
    let archive = noisy_walk(8_000, 128, 0x5E15);
    println!(
        "archive: {} recordings x {} samples",
        archive.num_series(),
        archive.series_len()
    );

    // Newly observed events to match: a difficulty mix.
    let events = QueryWorkload::generate(
        &archive,
        24,
        WorkloadKind::Mixed {
            hard_fraction: 0.25,
            noise: 0.05,
        },
        0xE7E17,
    );

    for (label, scheduler, stealing) in [
        ("STATIC, no stealing", SchedulerKind::Static, false),
        ("PREDICT-DN + WORK-STEAL", SchedulerKind::PredictDn, true),
    ] {
        let cfg = ClusterConfig::new(8)
            .with_replication(Replication::Full)
            .with_scheduler(scheduler)
            .with_work_stealing(stealing)
            .with_leaf_capacity(128);
        let tpn = cfg.threads_per_node;
        let cluster = OdysseyCluster::build(&archive, cfg);
        let report = cluster.answer_batch(&events.queries);

        println!("\n=== {label} ===");
        println!(
            "makespan: {:.4} simulated s (max over nodes); total work {:.4} s",
            report.makespan_seconds(tpn),
            units::units_to_seconds(report.total_units(), tpn),
        );
        let loads: Vec<String> = report
            .per_node_units
            .iter()
            .map(|&u| format!("{:.3}", units::units_to_seconds(u, tpn)))
            .collect();
        println!("per-node load (s): [{}]", loads.join(", "));
        println!(
            "steals: {}/{} successful; BSF broadcasts: {}",
            report.steals_successful, report.steals_attempted, report.bsf_broadcasts
        );
        // A couple of matches, for flavour.
        for qi in 0..3 {
            println!(
                "event {qi}: best match id={:?} dist={:.4}",
                report.answers[qi].series_id, report.answers[qi].distance
            );
        }
    }
    println!("\nThe prediction-based scheduler plus stealing flattens the per-node");
    println!("loads: no node sits idle while another grinds through a hard event.");
}
