//! Quickstart: build an index over a data-series collection and answer
//! exact 1-NN, k-NN, and DTW queries on a single node — then run the
//! same workload as one batch on a persistent `BatchEngine`.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use odyssey::core::index::{Index, IndexConfig};
use odyssey::core::search::dtw_search::dtw_search;
use odyssey::core::search::engine::{BatchEngine, BatchQuery, QueryKind};
use odyssey::core::search::exact::{exact_search, SearchParams};
use odyssey::core::search::knn::knn_search;
use odyssey::workloads::generator::random_walk;
use odyssey::workloads::queries::{QueryWorkload, WorkloadKind};
use std::sync::Arc;

fn main() {
    // 10k random-walk series of length 128 (like the paper's Random).
    let data = random_walk(10_000, 128, 42);
    println!(
        "collection: {} series x {} points ({:.1} MB raw)",
        data.num_series(),
        data.series_len(),
        data.size_bytes() as f64 / 1048576.0
    );

    // Build the iSAX index: 16 segments, capacity-128 leaves, 2 threads.
    let cfg = IndexConfig::new(128).with_segments(16).with_leaf_capacity(128);
    let index = Index::build(data.clone(), cfg, 2);
    let t = index.build_times();
    println!(
        "index: {} root subtrees, {} leaves, built in {:?} (buffers {:?} + tree {:?})",
        index.forest().len(),
        index.leaf_count(),
        t.index_time(),
        t.buffer_time,
        t.tree_time
    );

    // A query batch: perturbed copies of indexed series plus random ones.
    let workload = QueryWorkload::generate(
        &data,
        5,
        WorkloadKind::Mixed {
            hard_fraction: 0.4,
            noise: 0.05,
        },
        7,
    );

    let params = SearchParams::new(2);
    for qi in 0..workload.len() {
        let q = workload.query(qi);
        // Exact 1-NN under Euclidean distance.
        let out = exact_search(&index, q, &params);
        println!(
            "query {qi}: 1-NN id={:?} dist={:.4} (initial BSF {:.4}, {} real dists, {} queues)",
            out.answer.series_id,
            out.answer.distance,
            out.stats.initial_bsf,
            out.stats.real_distance_computations,
            out.stats.pq_count
        );
    }

    // k-NN: the 5 nearest series to the first query.
    let (knn, _) = knn_search(&index, workload.query(0), 5, &params);
    let ids: Vec<u32> = knn.neighbors.iter().map(|&(_, id)| id).collect();
    println!("query 0: 5-NN ids = {ids:?}");

    // DTW with a 5% warping window.
    let (dtw, _) = dtw_search(&index, workload.query(0), 128 * 5 / 100, &params);
    println!(
        "query 0: DTW 1-NN id={:?} dist={:.4} (<= Euclidean {:.4})",
        dtw.series_id,
        dtw.distance,
        exact_search(&index, workload.query(0), &params).answer.distance
    );

    // The same workload as one batch on a persistent engine: the worker
    // pool and scratch arenas are provisioned once, not per query.
    let engine = BatchEngine::new(Arc::new(index), 2);
    let batch: Vec<BatchQuery> = (0..workload.len())
        .map(|qi| BatchQuery::new(workload.query(qi), QueryKind::Exact))
        .collect();
    let order: Vec<usize> = (0..batch.len()).collect();
    let outcome = engine.run_batch(&batch, &order, &params);
    println!(
        "batch engine: {} queries in {:?} on {} threads",
        outcome.items.len(),
        outcome.wall,
        engine.n_threads()
    );
}
