//! Inter-query concurrency equivalence and lane-packing invariants.
//!
//! A batch executed by [`BatchEngine::run_batch_concurrent`] — several
//! queries at once on disjoint worker groups — must return answers
//! bit-identical to the sequential [`BatchEngine::run_batch`] pool, for
//! every pool size and every group width: the lanes change *where* a
//! query runs, never *what* is computed. The admission planner's output
//! must always be a true double partition (of the pool's workers within
//! each round, and of the batch's queries across the plan) — checked
//! here property-style over arbitrary estimate vectors.

#![recursion_limit = "1024"]

use odyssey::cluster::{ClusterConfig, OdysseyCluster, Replication, SchedulerKind};
use odyssey::core::search::bsf::{ResultSet, SharedBsf};
use odyssey::core::index::{Index, IndexConfig};
use odyssey::core::search::engine::{
    BatchAnswer, BatchEngine, BatchQuery, QueryKind, StealRegistry,
};
use odyssey::core::search::exact::SearchParams;
use odyssey::core::search::multiq::ConcurrentPlan;
use odyssey::sched::admission::{plan_lanes, AdmissionConfig};
use odyssey::workloads::generator::random_walk;
use odyssey::workloads::queries::{QueryWorkload, WorkloadKind};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

fn setup() -> (Arc<Index>, QueryWorkload, QueryWorkload) {
    let data = random_walk(1500, 64, 0xC0FFEE);
    let index = Arc::new(Index::build(
        data.clone(),
        IndexConfig::new(64).with_segments(8).with_leaf_capacity(24),
        2,
    ));
    let easy = QueryWorkload::generate(&data, 4, WorkloadKind::Easy { noise: 0.02 }, 21);
    let hard = QueryWorkload::generate(&data, 4, WorkloadKind::Hard, 22);
    (index, easy, hard)
}

/// A mixed easy/hard/k-NN/DTW batch, the same shape `run_batch` is
/// tested with.
fn mixed_batch<'a>(easy: &'a QueryWorkload, hard: &'a QueryWorkload) -> Vec<BatchQuery<'a>> {
    let mut batch = Vec::new();
    for qi in 0..easy.len() {
        batch.push(BatchQuery::new(easy.query(qi), QueryKind::Exact));
        batch.push(BatchQuery::new(hard.query(qi), QueryKind::Exact));
    }
    batch.push(BatchQuery::new(hard.query(0), QueryKind::Knn(5)));
    batch.push(BatchQuery::new(easy.query(1), QueryKind::Knn(3)));
    batch.push(BatchQuery::new(easy.query(0), QueryKind::Dtw(3)));
    batch.push(BatchQuery::new(hard.query(1), QueryKind::Dtw(5)));
    batch
}

fn assert_bit_identical(
    seq: &odyssey::core::search::engine::BatchOutcome,
    conc: &odyssey::core::search::engine::BatchOutcome,
    context: &str,
) {
    assert_eq!(seq.items.len(), conc.items.len());
    for (qi, (s, c)) in seq.items.iter().zip(&conc.items).enumerate() {
        match (&s.answer, &c.answer) {
            (BatchAnswer::Nn(want), BatchAnswer::Nn(got)) => {
                assert_eq!(
                    got.distance.to_bits(),
                    want.distance.to_bits(),
                    "{context} item {qi}: 1-NN distance"
                );
            }
            (BatchAnswer::Knn(want), BatchAnswer::Knn(got)) => {
                assert_eq!(got.neighbors.len(), want.neighbors.len());
                for (rank, (g, w)) in got.neighbors.iter().zip(&want.neighbors).enumerate() {
                    assert_eq!(
                        g.0.to_bits(),
                        w.0.to_bits(),
                        "{context} item {qi}: k-NN rank {rank}"
                    );
                }
            }
            (want, got) => panic!("{context} item {qi}: kind mismatch {want:?} vs {got:?}"),
        }
    }
}

#[test]
fn concurrent_mixed_batches_are_bit_identical_across_widths() {
    let (index, easy, hard) = setup();
    let batch = mixed_batch(&easy, &hard);
    let order: Vec<usize> = (0..batch.len()).collect();
    for threads in [1usize, 2, 4, 8] {
        let engine = BatchEngine::new(Arc::clone(&index), threads);
        let params = SearchParams::new(threads).with_th(32);
        let seq = engine.run_batch(&batch, &order, &params);
        for width in 1..=threads {
            let plan = ConcurrentPlan::uniform(batch.len(), threads, width);
            let conc = engine.run_batch_concurrent(&batch, &plan, &params);
            assert_bit_identical(&seq, &conc, &format!("threads={threads} width={width}"));
        }
    }
}

#[test]
fn admission_planned_batches_are_bit_identical() {
    // The prediction-driven plan (hard tier on the full pool, easy tier
    // on narrow lanes) must agree with the sequential pool too.
    let (index, easy, hard) = setup();
    let batch = mixed_batch(&easy, &hard);
    let order: Vec<usize> = (0..batch.len()).collect();
    // Use each query's approximate-search distance as its estimate,
    // like the CLI and cluster runtime do.
    let estimates: Vec<f64> = batch
        .iter()
        .map(|q| index.approx_search(q.data).distance)
        .collect();
    for threads in [2usize, 4, 8] {
        let engine = BatchEngine::new(Arc::clone(&index), threads);
        let params = SearchParams::new(threads).with_th(32);
        let seq = engine.run_batch(&batch, &order, &params);
        for easy_width in [1usize, 2, 3] {
            let cfg = AdmissionConfig::default().with_easy_width(easy_width);
            let plan = plan_lanes(&estimates, threads, &cfg);
            plan.validate(threads, batch.len());
            let conc = engine.run_batch_concurrent(&batch, &plan, &params);
            assert_bit_identical(
                &seq,
                &conc,
                &format!("threads={threads} easy_width={easy_width}"),
            );
        }
    }
}

#[test]
fn per_query_params_ride_through_concurrent_lanes() {
    let (index, easy, hard) = setup();
    let params = SearchParams::new(4);
    // Give every query its own TH, as the sigmoid model would.
    let batch: Vec<BatchQuery> = mixed_batch(&easy, &hard)
        .into_iter()
        .enumerate()
        .map(|(qi, q)| q.with_params(params.with_th(1 + qi * 7)))
        .collect();
    let order: Vec<usize> = (0..batch.len()).collect();
    let engine = BatchEngine::new(Arc::clone(&index), 4);
    let seq = engine.run_batch(&batch, &order, &params);
    let conc = engine.run_batch_concurrent(
        &batch,
        &ConcurrentPlan::uniform(batch.len(), 4, 2),
        &params,
    );
    assert_bit_identical(&seq, &conc, "per-query params");
}

#[test]
fn concurrent_engine_reuse_is_stable_across_batches() {
    // Lane scratch must not leak state between rounds or batches:
    // running the same concurrent batch twice on one engine, and
    // interleaving with a sequential run, stays bit-identical.
    let (index, easy, hard) = setup();
    let batch = mixed_batch(&easy, &hard);
    let order: Vec<usize> = (0..batch.len()).collect();
    let engine = BatchEngine::new(Arc::clone(&index), 4);
    let params = SearchParams::new(4).with_th(16);
    let plan = ConcurrentPlan::uniform(batch.len(), 4, 1);
    let first = engine.run_batch_concurrent(&batch, &plan, &params);
    let seq = engine.run_batch(&batch, &order, &params);
    let second = engine.run_batch_concurrent(&batch, &plan, &params);
    assert_bit_identical(&first, &second, "concurrent reuse");
    assert_bit_identical(&seq, &second, "sequential interleave");
}

#[test]
fn readmission_off_stays_bit_identical() {
    // Intra-round re-admission moves queries between lanes but must
    // never change an answer: plans built with the knob off and on
    // agree with each other and with the sequential pool.
    let (index, easy, hard) = setup();
    let batch = mixed_batch(&easy, &hard);
    let order: Vec<usize> = (0..batch.len()).collect();
    let estimates: Vec<f64> = batch
        .iter()
        .map(|q| index.approx_search(q.data).distance)
        .collect();
    let engine = BatchEngine::new(Arc::clone(&index), 4);
    let params = SearchParams::new(4).with_th(32);
    let seq = engine.run_batch(&batch, &order, &params);
    for readmission in [false, true] {
        let cfg = AdmissionConfig::default()
            .with_easy_width(1)
            .with_readmission(readmission);
        let plan = plan_lanes(&estimates, 4, &cfg);
        for round in &plan.rounds {
            assert_eq!(round.readmission, readmission);
        }
        let conc = engine.run_batch_concurrent(&batch, &plan, &params);
        assert_bit_identical(&seq, &conc, &format!("readmission={readmission}"));
    }
}

/// The headline composition of this refactor: inter-query lanes and
/// inter-node work-stealing running **together** on a replicated
/// cluster, answers bit-identical to the all-mechanisms-off sequential
/// pool path, at every pool size.
#[test]
fn cluster_lanes_with_stealing_match_sequential_pool() {
    let data = random_walk(1400, 64, 0xBEEF);
    let w = QueryWorkload::generate(
        &data,
        12,
        WorkloadKind::Mixed {
            hard_fraction: 0.4,
            noise: 0.04,
        },
        17,
    );
    let base = OdysseyCluster::build(
        &data,
        ClusterConfig::new(4)
            .with_replication(Replication::Partial(2))
            .with_scheduler(SchedulerKind::PredictDn)
            .with_work_stealing(true)
            .with_inter_query_lanes(true)
            .with_leaf_capacity(64),
    );
    for threads in [1usize, 2, 4, 8] {
        let laned = base
            .reconfigured(|c| c.with_threads_per_node(threads))
            .answer_batch(&w.queries);
        let sequential = base
            .reconfigured(|c| {
                c.with_threads_per_node(threads)
                    .with_work_stealing(false)
                    .with_inter_query_lanes(false)
            })
            .answer_batch(&w.queries);
        for qi in 0..w.len() {
            let q = w.query(qi);
            let mut want = f64::INFINITY;
            for i in 0..data.num_series() {
                want = want.min(odyssey::core::distance::euclidean_sq(q, data.series(i)));
            }
            assert!(
                (laned.answers[qi].distance_sq - want).abs() < 1e-9,
                "threads={threads} query {qi}: lanes+stealing vs brute force"
            );
            assert_eq!(
                laned.answers[qi].distance.to_bits(),
                sequential.answers[qi].distance.to_bits(),
                "threads={threads} query {qi}: lanes+stealing vs sequential pool"
            );
        }
    }
}

/// Pins the registry's dead-node contract (the failover path's
/// dependency): when a node is declared `Down`, its grants drop — via
/// the engine's unwind on a worker panic, or trivially when death
/// lands between queries — and from that point the registry must (a)
/// recycle the published views, (b) never serve the dead query's
/// batches again, and (c) answer further steal probes with `None`
/// rather than blocking.
#[test]
fn registry_down_node_recycles_views_and_never_double_serves() {
    let registry = Arc::new(StealRegistry::default());
    let bsf = Arc::new(SharedBsf::new(7.0, None));
    let grant = registry.register(0, 2, Arc::clone(&bsf) as Arc<dyn ResultSet + Send + Sync>);
    grant.view().test_init(6);
    grant.view().test_publish((0..6).collect());
    // A thief takes a slice while the query is live.
    let first = registry.serve_steal(2).expect("live victim");
    assert_eq!(first.query_id, 0);
    let mut seen: HashSet<usize> = first.batch_ids.into_iter().collect();
    // The node dies: its grant drops exactly like the engine's unwind
    // path drops it (InflightQuery::drop deregisters + recycles).
    drop(grant);
    assert_eq!(registry.in_flight(), 0, "death deregisters the query");
    // No probe after death may produce the dead query's work.
    for _ in 0..4 {
        assert!(
            registry.serve_steal(4).is_none(),
            "dead node's batches must not be served"
        );
    }
    // Re-registration after recycling (the replica re-executing the
    // query) starts a fresh view: batches served before the death do
    // not poison the new registration.
    let regrant =
        registry.register(0, 2, Arc::clone(&bsf) as Arc<dyn ResultSet + Send + Sync>);
    regrant.view().test_init(6);
    regrant.view().test_publish((0..6).collect());
    let again = registry.serve_steal(6).expect("fresh registration serves");
    assert_eq!(again.query_id, 0);
    assert!(!again.batch_ids.is_empty());
    // Within one registration nothing is double-served; across the
    // re-execution the same global batch ids may legitimately reappear.
    seen.clear();
    for b in again.batch_ids {
        assert!(seen.insert(b), "double-serve within one registration");
    }
}

fn flat_sorted_queries(plan: &ConcurrentPlan) -> Vec<usize> {
    let mut qs: Vec<usize> = plan
        .rounds
        .iter()
        .flat_map(|r| &r.lanes)
        .flat_map(|l| l.queries.iter().copied())
        .collect();
    qs.sort_unstable();
    qs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Lane packing is a double partition: in every round the lane
    // widths sum to the pool exactly, and across the plan every query
    // appears exactly once — for arbitrary estimates and knobs.
    #[test]
    fn admission_plans_partition_workers_and_queries(
        estimates in proptest::collection::vec(0.0f64..1000.0, 0..40),
        pool in 1usize..12,
        easy_width in 1usize..5,
        hard_ratio in 0.5f64..8.0,
        max_lanes in 1usize..6,
    ) {
        let cfg = AdmissionConfig::default()
            .with_easy_width(easy_width)
            .with_hard_ratio(hard_ratio)
            .with_max_lanes(max_lanes);
        let plan = plan_lanes(&estimates, pool, &cfg);
        // Workers: each round's widths partition the pool.
        for round in &plan.rounds {
            let total: usize = round.lanes.iter().map(|l| l.width).sum();
            prop_assert_eq!(total, pool);
            for lane in &round.lanes {
                prop_assert!(lane.width >= 1);
                prop_assert!(!lane.queries.is_empty(), "no empty lanes");
            }
        }
        // Queries: exact partition of the batch.
        prop_assert_eq!(
            flat_sorted_queries(&plan),
            (0..estimates.len()).collect::<Vec<_>>()
        );
        // And the engine-side validator agrees.
        plan.validate(pool, estimates.len());
    }

    // The uniform helper obeys the same double-partition contract.
    #[test]
    fn uniform_plans_partition_workers_and_queries(
        n_queries in 0usize..40,
        pool in 1usize..12,
        width in 1usize..12,
    ) {
        let plan = ConcurrentPlan::uniform(n_queries, pool, width);
        plan.validate(pool, n_queries);
        for round in &plan.rounds {
            let total: usize = round.lanes.iter().map(|l| l.width).sum();
            prop_assert_eq!(total, pool);
        }
        prop_assert_eq!(
            flat_sorted_queries(&plan),
            (0..n_queries).collect::<Vec<_>>()
        );
    }

    // The engine-resident steal service never hands out the same
    // RS-batch of a query twice, never serves a query outside its
    // processing phase, and never serves one past completion
    // (deregistration) — for arbitrary interleavings of publishes,
    // queue claims, steals, and completions.
    #[test]
    fn steal_registry_never_double_serves(
        nsbs in proptest::collection::vec(1usize..8, 1..5),
        widths in proptest::collection::vec(1usize..5, 1..5),
        ops in proptest::collection::vec(0u32..1_000_000, 0..60),
    ) {
        let registry = Arc::new(StealRegistry::default());
        let nq = nsbs.len();
        let shapes: Vec<(usize, usize)> = (0..nq)
            .map(|q| (nsbs[q], widths[q % widths.len()]))
            .collect();
        let mut grants: Vec<Option<_>> = (0..nq)
            .map(|qid| {
                Some(registry.register(
                    qid,
                    shapes[qid].1,
                    Arc::new(SharedBsf::new(qid as f64, None))
                        as Arc<dyn ResultSet + Send + Sync>,
                ))
            })
            .collect();
        let mut published = vec![false; nq];
        let mut finished = vec![false; nq];
        let mut served: Vec<HashSet<usize>> = vec![HashSet::new(); nq];
        for &op in &ops {
            let kind = (op % 4) as u8;
            let q = (op as usize / 4) % nq;
            let nsend = 1 + (op as usize / 64) % 6;
            match kind {
                // Enter the processing phase.
                0 => {
                    if let Some(g) = &grants[q] {
                        if !published[q] {
                            let nsb = shapes[q].0;
                            g.view().test_init(nsb);
                            g.view().test_publish((0..nsb).collect());
                            published[q] = true;
                        }
                    }
                }
                // A worker claims one queue.
                1 => {
                    if let Some(g) = &grants[q] {
                        if published[q] {
                            g.view().test_claim();
                        }
                    }
                }
                // A thief asks the registry.
                2 => {
                    if let Some(w) = registry.serve_steal(nsend) {
                        prop_assert!(w.query_id < nq, "served id is live");
                        prop_assert!(
                            grants[w.query_id].is_some() && !finished[w.query_id],
                            "served query {} past completion",
                            w.query_id
                        );
                        prop_assert!(published[w.query_id], "only processing-phase victims");
                        prop_assert!(!w.batch_ids.is_empty());
                        prop_assert!(w.batch_ids.len() <= nsend);
                        prop_assert_eq!(w.bsf_sq, w.query_id as f64);
                        for b in w.batch_ids {
                            prop_assert!(b < shapes[w.query_id].0, "batch id in range");
                            prop_assert!(
                                served[w.query_id].insert(b),
                                "RS-batch {} of query {} served twice",
                                b,
                                w.query_id
                            );
                        }
                    }
                }
                // The query completes and deregisters.
                _ => {
                    if let Some(g) = grants[q].take() {
                        g.view().test_finish();
                        finished[q] = true;
                        drop(g);
                    }
                }
            }
        }
        // Drain: whatever is still live and published can be stolen at
        // most once per remaining batch, then the registry runs dry.
        while let Some(w) = registry.serve_steal(2) {
            prop_assert!(!finished[w.query_id]);
            for b in w.batch_ids {
                prop_assert!(served[w.query_id].insert(b));
            }
        }
        drop(grants);
        prop_assert_eq!(registry.in_flight(), 0);
        prop_assert!(registry.serve_steal(1).is_none());
    }
}
