//! Inter-query concurrency equivalence and lane-packing invariants.
//!
//! A batch executed by [`BatchEngine::run_batch_concurrent`] — several
//! queries at once on disjoint worker groups — must return answers
//! bit-identical to the sequential [`BatchEngine::run_batch`] pool, for
//! every pool size and every group width: the lanes change *where* a
//! query runs, never *what* is computed. The admission planner's output
//! must always be a true double partition (of the pool's workers within
//! each round, and of the batch's queries across the plan) — checked
//! here property-style over arbitrary estimate vectors.

#![recursion_limit = "1024"]

use odyssey::core::index::{Index, IndexConfig};
use odyssey::core::search::engine::{BatchAnswer, BatchEngine, BatchQuery, QueryKind};
use odyssey::core::search::exact::SearchParams;
use odyssey::core::search::multiq::ConcurrentPlan;
use odyssey::sched::admission::{plan_lanes, AdmissionConfig};
use odyssey::workloads::generator::random_walk;
use odyssey::workloads::queries::{QueryWorkload, WorkloadKind};
use proptest::prelude::*;
use std::sync::Arc;

fn setup() -> (Arc<Index>, QueryWorkload, QueryWorkload) {
    let data = random_walk(1500, 64, 0xC0FFEE);
    let index = Arc::new(Index::build(
        data.clone(),
        IndexConfig::new(64).with_segments(8).with_leaf_capacity(24),
        2,
    ));
    let easy = QueryWorkload::generate(&data, 4, WorkloadKind::Easy { noise: 0.02 }, 21);
    let hard = QueryWorkload::generate(&data, 4, WorkloadKind::Hard, 22);
    (index, easy, hard)
}

/// A mixed easy/hard/k-NN/DTW batch, the same shape `run_batch` is
/// tested with.
fn mixed_batch<'a>(easy: &'a QueryWorkload, hard: &'a QueryWorkload) -> Vec<BatchQuery<'a>> {
    let mut batch = Vec::new();
    for qi in 0..easy.len() {
        batch.push(BatchQuery::new(easy.query(qi), QueryKind::Exact));
        batch.push(BatchQuery::new(hard.query(qi), QueryKind::Exact));
    }
    batch.push(BatchQuery::new(hard.query(0), QueryKind::Knn(5)));
    batch.push(BatchQuery::new(easy.query(1), QueryKind::Knn(3)));
    batch.push(BatchQuery::new(easy.query(0), QueryKind::Dtw(3)));
    batch.push(BatchQuery::new(hard.query(1), QueryKind::Dtw(5)));
    batch
}

fn assert_bit_identical(
    seq: &odyssey::core::search::engine::BatchOutcome,
    conc: &odyssey::core::search::engine::BatchOutcome,
    context: &str,
) {
    assert_eq!(seq.items.len(), conc.items.len());
    for (qi, (s, c)) in seq.items.iter().zip(&conc.items).enumerate() {
        match (&s.answer, &c.answer) {
            (BatchAnswer::Nn(want), BatchAnswer::Nn(got)) => {
                assert_eq!(
                    got.distance.to_bits(),
                    want.distance.to_bits(),
                    "{context} item {qi}: 1-NN distance"
                );
            }
            (BatchAnswer::Knn(want), BatchAnswer::Knn(got)) => {
                assert_eq!(got.neighbors.len(), want.neighbors.len());
                for (rank, (g, w)) in got.neighbors.iter().zip(&want.neighbors).enumerate() {
                    assert_eq!(
                        g.0.to_bits(),
                        w.0.to_bits(),
                        "{context} item {qi}: k-NN rank {rank}"
                    );
                }
            }
            (want, got) => panic!("{context} item {qi}: kind mismatch {want:?} vs {got:?}"),
        }
    }
}

#[test]
fn concurrent_mixed_batches_are_bit_identical_across_widths() {
    let (index, easy, hard) = setup();
    let batch = mixed_batch(&easy, &hard);
    let order: Vec<usize> = (0..batch.len()).collect();
    for threads in [1usize, 2, 4, 8] {
        let engine = BatchEngine::new(Arc::clone(&index), threads);
        let params = SearchParams::new(threads).with_th(32);
        let seq = engine.run_batch(&batch, &order, &params);
        for width in 1..=threads {
            let plan = ConcurrentPlan::uniform(batch.len(), threads, width);
            let conc = engine.run_batch_concurrent(&batch, &plan, &params);
            assert_bit_identical(&seq, &conc, &format!("threads={threads} width={width}"));
        }
    }
}

#[test]
fn admission_planned_batches_are_bit_identical() {
    // The prediction-driven plan (hard tier on the full pool, easy tier
    // on narrow lanes) must agree with the sequential pool too.
    let (index, easy, hard) = setup();
    let batch = mixed_batch(&easy, &hard);
    let order: Vec<usize> = (0..batch.len()).collect();
    // Use each query's approximate-search distance as its estimate,
    // like the CLI and cluster runtime do.
    let estimates: Vec<f64> = batch
        .iter()
        .map(|q| index.approx_search(q.data).distance)
        .collect();
    for threads in [2usize, 4, 8] {
        let engine = BatchEngine::new(Arc::clone(&index), threads);
        let params = SearchParams::new(threads).with_th(32);
        let seq = engine.run_batch(&batch, &order, &params);
        for easy_width in [1usize, 2, 3] {
            let cfg = AdmissionConfig::default().with_easy_width(easy_width);
            let plan = plan_lanes(&estimates, threads, &cfg);
            plan.validate(threads, batch.len());
            let conc = engine.run_batch_concurrent(&batch, &plan, &params);
            assert_bit_identical(
                &seq,
                &conc,
                &format!("threads={threads} easy_width={easy_width}"),
            );
        }
    }
}

#[test]
fn per_query_params_ride_through_concurrent_lanes() {
    let (index, easy, hard) = setup();
    let params = SearchParams::new(4);
    // Give every query its own TH, as the sigmoid model would.
    let batch: Vec<BatchQuery> = mixed_batch(&easy, &hard)
        .into_iter()
        .enumerate()
        .map(|(qi, q)| q.with_params(params.with_th(1 + qi * 7)))
        .collect();
    let order: Vec<usize> = (0..batch.len()).collect();
    let engine = BatchEngine::new(Arc::clone(&index), 4);
    let seq = engine.run_batch(&batch, &order, &params);
    let conc = engine.run_batch_concurrent(
        &batch,
        &ConcurrentPlan::uniform(batch.len(), 4, 2),
        &params,
    );
    assert_bit_identical(&seq, &conc, "per-query params");
}

#[test]
fn concurrent_engine_reuse_is_stable_across_batches() {
    // Lane scratch must not leak state between rounds or batches:
    // running the same concurrent batch twice on one engine, and
    // interleaving with a sequential run, stays bit-identical.
    let (index, easy, hard) = setup();
    let batch = mixed_batch(&easy, &hard);
    let order: Vec<usize> = (0..batch.len()).collect();
    let engine = BatchEngine::new(Arc::clone(&index), 4);
    let params = SearchParams::new(4).with_th(16);
    let plan = ConcurrentPlan::uniform(batch.len(), 4, 1);
    let first = engine.run_batch_concurrent(&batch, &plan, &params);
    let seq = engine.run_batch(&batch, &order, &params);
    let second = engine.run_batch_concurrent(&batch, &plan, &params);
    assert_bit_identical(&first, &second, "concurrent reuse");
    assert_bit_identical(&seq, &second, "sequential interleave");
}

fn flat_sorted_queries(plan: &ConcurrentPlan) -> Vec<usize> {
    let mut qs: Vec<usize> = plan
        .rounds
        .iter()
        .flat_map(|r| &r.lanes)
        .flat_map(|l| l.queries.iter().copied())
        .collect();
    qs.sort_unstable();
    qs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Lane packing is a double partition: in every round the lane
    // widths sum to the pool exactly, and across the plan every query
    // appears exactly once — for arbitrary estimates and knobs.
    #[test]
    fn admission_plans_partition_workers_and_queries(
        estimates in proptest::collection::vec(0.0f64..1000.0, 0..40),
        pool in 1usize..12,
        easy_width in 1usize..5,
        hard_ratio in 0.5f64..8.0,
        max_lanes in 1usize..6,
    ) {
        let cfg = AdmissionConfig::default()
            .with_easy_width(easy_width)
            .with_hard_ratio(hard_ratio)
            .with_max_lanes(max_lanes);
        let plan = plan_lanes(&estimates, pool, &cfg);
        // Workers: each round's widths partition the pool.
        for round in &plan.rounds {
            let total: usize = round.lanes.iter().map(|l| l.width).sum();
            prop_assert_eq!(total, pool);
            for lane in &round.lanes {
                prop_assert!(lane.width >= 1);
                prop_assert!(!lane.queries.is_empty(), "no empty lanes");
            }
        }
        // Queries: exact partition of the batch.
        prop_assert_eq!(
            flat_sorted_queries(&plan),
            (0..estimates.len()).collect::<Vec<_>>()
        );
        // And the engine-side validator agrees.
        plan.validate(pool, estimates.len());
    }

    // The uniform helper obeys the same double-partition contract.
    #[test]
    fn uniform_plans_partition_workers_and_queries(
        n_queries in 0usize..40,
        pool in 1usize..12,
        width in 1usize..12,
    ) {
        let plan = ConcurrentPlan::uniform(n_queries, pool, width);
        plan.validate(pool, n_queries);
        for round in &plan.rounds {
            let total: usize = round.lanes.iter().map(|l| l.width).sum();
            prop_assert_eq!(total, pool);
        }
        prop_assert_eq!(
            flat_sorted_queries(&plan),
            (0..n_queries).collect::<Vec<_>>()
        );
    }
}
