//! End-to-end pipeline tests: the pieces a user composes — predictor
//! training, threshold model, scheduling, cluster answering — work
//! together across crate boundaries.

use odyssey::cluster::{units, ClusterConfig, OdysseyCluster, Replication, SchedulerKind};
use odyssey::core::index::{Index, IndexConfig};
use odyssey::core::search::exact::{exact_search, SearchParams};
use odyssey::sched::{QueryCostPredictor, ThresholdModel};
use odyssey::workloads::generator::noisy_walk;
use odyssey::workloads::queries::{QueryWorkload, WorkloadKind};
use std::sync::Arc;

#[test]
fn trained_predictor_feeds_the_scheduler() {
    let data = noisy_walk(2_000, 64, 0xBEEF);
    let index = Index::build(
        data.clone(),
        IndexConfig::new(64).with_segments(8).with_leaf_capacity(64),
        2,
    );
    // Training pass: measure per-query work on a training workload.
    let train = QueryWorkload::generate(
        &data,
        24,
        WorkloadKind::Mixed {
            hard_fraction: 0.5,
            noise: 0.05,
        },
        1,
    );
    let params = SearchParams::new(2);
    let mut bsfs = Vec::new();
    let mut costs = Vec::new();
    for qi in 0..train.len() {
        let out = exact_search(&index, train.query(qi), &params);
        bsfs.push(out.stats.initial_bsf);
        costs.push(units::search_units(&out.stats, 64, 8) as f64);
    }
    let predictor = QueryCostPredictor::train(&bsfs, &costs);
    assert!(
        predictor.regression().correlation() > 0.2,
        "BSF/work correlation should be positive: {}",
        predictor.regression().correlation()
    );

    // Deployment pass: the trained model drives PREDICT-DN scheduling.
    let test = QueryWorkload::generate(
        &data,
        8,
        WorkloadKind::Mixed {
            hard_fraction: 0.5,
            noise: 0.05,
        },
        2,
    );
    let cfg = ClusterConfig::new(4)
        .with_replication(Replication::Full)
        .with_scheduler(SchedulerKind::PredictDn)
        .with_cost_model(Arc::new(predictor))
        .with_leaf_capacity(64);
    let cluster = OdysseyCluster::build(&data, cfg);
    let report = cluster.answer_batch(&test.queries);
    for qi in 0..test.len() {
        let want = index.brute_force(test.query(qi));
        assert!((report.answers[qi].distance - want.distance).abs() < 1e-9);
    }
}

#[test]
fn threshold_model_keeps_search_exact() {
    let data = noisy_walk(1_500, 64, 0xCAFE);
    let index = Index::build(
        data.clone(),
        IndexConfig::new(64).with_segments(8).with_leaf_capacity(64),
        2,
    );
    // Collect (BSF, median queue size) under unbounded queues.
    let train = QueryWorkload::generate(
        &data,
        16,
        WorkloadKind::Mixed {
            hard_fraction: 0.5,
            noise: 0.05,
        },
        3,
    );
    let unbounded = SearchParams::new(2).with_th(usize::MAX - 1);
    let mut bsfs = Vec::new();
    let mut medians = Vec::new();
    for qi in 0..train.len() {
        let out = exact_search(&index, train.query(qi), &unbounded);
        bsfs.push(out.stats.initial_bsf);
        medians.push(out.stats.pq_size_median.max(1) as f64);
    }
    let model = ThresholdModel::train(&bsfs, &medians, 16.0);
    // The predicted threshold never breaks exactness.
    let test = QueryWorkload::generate(&data, 6, WorkloadKind::Hard, 4);
    for qi in 0..test.len() {
        let q = test.query(qi);
        let th = model.predict_th(index.approx_search(q).distance);
        let params = SearchParams::new(2).with_th(th);
        let got = exact_search(&index, q, &params);
        let want = index.brute_force(q);
        assert!(
            (got.answer.distance - want.distance).abs() < 1e-9,
            "query {qi} with predicted TH {th}"
        );
    }
}

#[test]
fn report_accounting_is_consistent() {
    let data = noisy_walk(1_200, 64, 0xF00D);
    let w = QueryWorkload::generate(
        &data,
        10,
        WorkloadKind::Mixed {
            hard_fraction: 0.3,
            noise: 0.05,
        },
        5,
    );
    let cfg = ClusterConfig::new(4)
        .with_replication(Replication::Partial(2))
        .with_leaf_capacity(64);
    let cluster = OdysseyCluster::build(&data, cfg);
    let report = cluster.answer_batch(&w.queries);
    // Every query answered by each group: total own-query executions =
    // n_queries * n_groups.
    let total_answered: usize = report.per_node_queries.iter().sum();
    assert_eq!(total_answered, w.len() * cluster.topology().n_groups());
    // Makespan <= total, >= total / n_nodes.
    let total = report.total_units();
    let makespan = report.makespan_units();
    assert!(makespan <= total);
    assert!(makespan * 4 >= total, "makespan can't beat perfect balance");
    // Per-query units sum to per-node units sum.
    let per_q: u64 = report.per_query_units.iter().sum();
    assert_eq!(per_q, total);
    // Initial BSFs recorded for predicting schedulers.
    assert!(report
        .per_query_initial_bsf
        .iter()
        .all(|b| b.is_finite() && *b >= 0.0));
}
