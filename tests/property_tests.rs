//! Property-based tests (proptest) over the core invariants that make
//! exact search exact:
//!
//! * `mindist(paa(Q), isax(S)) <= ED(Q, S)` at every cardinality;
//! * `LB_Keogh(Q, S) <= DTW(Q, S)` and the envelope-hull iSAX bound
//!   below it;
//! * the parallel engine equals brute force for arbitrary data and
//!   arbitrary engine parameters;
//! * partitioning schemes produce true partitions;
//! * Gray-code bijectivity and the one-bit-step law;
//! * scheduler assignments are complete and the greedy bound holds;
//! * the blocked 4-accumulator early-abandon kernels agree with their
//!   scalar references.
#![recursion_limit = "512"]

use odyssey::core::distance::{
    dtw_banded, euclidean_sq, euclidean_sq_early_abandon, keogh_envelope, lb_keogh_sq,
};
use odyssey::core::index::{Index, IndexConfig};
use odyssey::core::paa::paa;
use odyssey::core::sax::{mindist_paa_isax_sq, mindist_paa_sax_sq, sax_word_into, IsaxWord};
use odyssey::core::search::dtw_search::DtwKernel;
use odyssey::core::search::exact::{exact_search, SearchParams};
use odyssey::core::search::kernel::{EdKernel, QueryKernel};
use odyssey::core::series::{znormalized, DatasetBuffer};
use odyssey::partition::{gray, validate_partition, PartitioningScheme};
use proptest::prelude::*;

/// An arbitrary z-normalized series of the given length.
fn series_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-5.0f32..5.0, len).prop_map(|v| znormalized(&v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mindist_is_a_lower_bound_at_every_cardinality(
        q in series_strategy(64),
        s in series_strategy(64),
        segs in 1usize..=16,
    ) {
        let qp = paa(&q, segs);
        let sp = paa(&s, segs);
        let mut sax = vec![0u8; segs];
        sax_word_into(&sp, &mut sax);
        let ed = euclidean_sq(&q, &s);
        for bits in 1..=8u8 {
            let w = IsaxWord::from_sax(&sax, bits);
            let md = mindist_paa_isax_sq(&qp, &w, 64);
            prop_assert!(md <= ed + 1e-6, "bits={bits}: {md} > {ed}");
        }
        prop_assert!(mindist_paa_sax_sq(&qp, &sax, 64) <= ed + 1e-6);
    }

    #[test]
    fn lb_keogh_bounds_dtw_and_isax_bounds_lb_keogh(
        q in series_strategy(48),
        s in series_strategy(48),
        window in 0usize..12,
    ) {
        let dtw = dtw_banded(&q, &s, window, f64::INFINITY).expect("unbounded");
        let env = keogh_envelope(&q, window);
        let lbk = lb_keogh_sq(&env, &s, f64::INFINITY).expect("unbounded");
        prop_assert!(lbk <= dtw + 1e-6, "LB_Keogh {lbk} > DTW {dtw}");
        // Envelope-hull iSAX bound (what the tree prunes with) is below
        // the raw LB_Keogh.
        let kernel = DtwKernel::new(&q, window, 8);
        let sp = paa(&s, 8);
        let mut sax = vec![0u8; 8];
        sax_word_into(&sp, &mut sax);
        prop_assert!(kernel.series_lb_sq(&sax) <= dtw + 1e-6);
    }

    #[test]
    fn dtw_never_exceeds_euclidean(
        a in series_strategy(32),
        b in series_strategy(32),
        window in 0usize..8,
    ) {
        let dtw = dtw_banded(&a, &b, window, f64::INFINITY).expect("unbounded");
        prop_assert!(dtw <= euclidean_sq(&a, &b) + 1e-6);
    }

    #[test]
    fn table_kernel_bit_identical_to_reference_mindist(
        q in series_strategy(64),
        sax in proptest::collection::vec(any::<u8>(), 8),
    ) {
        // The per-query lookup-table kernel must reproduce the reference
        // mindist implementations *bit for bit* — for arbitrary symbol
        // words, not just words of real series.
        let segs = sax.len();
        let kernel = EdKernel::new(&q, segs);
        let qp = paa(&q, segs);
        let want_series = mindist_paa_sax_sq(&qp, &sax, 64);
        prop_assert_eq!(kernel.series_lb_sq(&sax).to_bits(), want_series.to_bits());
        for bits in 1..=8u8 {
            let word = IsaxWord::from_sax(&sax, bits);
            let want_node = mindist_paa_isax_sq(&qp, &word, 64);
            prop_assert_eq!(kernel.node_lb_sq(&word).to_bits(), want_node.to_bits());
        }
        // The batched block pass must agree with the scalar path.
        let mut out = [0.0f64];
        kernel.lb_block_sq(&sax, segs, &mut out);
        prop_assert_eq!(out[0].to_bits(), want_series.to_bits());
    }

    #[test]
    fn gray_code_laws(v in 0u64..1_000_000) {
        prop_assert_eq!(gray::from_gray(gray::to_gray(v)), v);
        let step = gray::to_gray(v) ^ gray::to_gray(v + 1);
        prop_assert_eq!(step.count_ones(), 1);
    }

    #[test]
    fn partitions_are_valid(
        n in 1usize..400,
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        let es = PartitioningScheme::EquallySplit;
        let rs = PartitioningScheme::RandomShuffle { seed };
        let data = DatasetBuffer::from_vec(vec![0.5f32; n * 8], 8);
        prop_assert!(validate_partition(&es.apply(&data, k), n).is_ok());
        prop_assert!(validate_partition(&rs.apply(&data, k), n).is_ok());
    }
}

/// Scalar per-element early-abandoning Euclidean reference.
fn scalar_ed_abandon(a: &[f32], b: &[f32], thr: f64) -> Option<f64> {
    let mut sum = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        let d = (x - y) as f64;
        sum += d * d;
        if sum > thr {
            return None;
        }
    }
    Some(sum)
}

/// Scalar per-element early-abandoning LB_Keogh reference.
fn scalar_lb_keogh(
    env: &odyssey::core::distance::LbKeoghEnvelope,
    c: &[f32],
    thr: f64,
) -> Option<f64> {
    let mut sum = 0.0f64;
    for (i, &v) in c.iter().enumerate() {
        let d = if v > env.upper[i] {
            (v - env.upper[i]) as f64
        } else if v < env.lower[i] {
            (env.lower[i] - v) as f64
        } else {
            0.0
        };
        sum += d * d;
        if sum > thr {
            return None;
        }
    }
    Some(sum)
}

/// Max generated length of the kernel-property series; each case draws
/// full-length vectors plus a cut point, exercising every tail length
/// around the 32-element abandon blocks.
const KERNEL_PROP_LEN: usize = 200;

/// A max-length series for the kernel properties; tests slice it to the
/// drawn length.
fn kernel_series() -> proptest::collection::VecStrategy<std::ops::Range<f32>> {
    proptest::collection::vec(-5.0f32..5.0, KERNEL_PROP_LEN)
}

proptest! {
    // Blocked-kernel equivalence properties (the 4-accumulator
    // early-abandoning kernels vs their scalar references).
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_ed_early_abandon_matches_scalar(
        raw_a in kernel_series(),
        raw_b in kernel_series(),
        len in 1usize..=KERNEL_PROP_LEN,
        factor in 0.05f64..3.0,
    ) {
        let (a, b) = (&raw_a[..len], &raw_b[..len]);
        let full = euclidean_sq(a, b);
        let thr = full * factor;
        // Skip the exact boundary, where summation order alone decides
        // the Some/None outcome.
        if (full - thr).abs() <= 1e-6 * (1.0 + full) {
            return Ok(());
        }
        match (euclidean_sq_early_abandon(a, b, thr), scalar_ed_abandon(a, b, thr)) {
            (None, None) => {}
            (Some(x), Some(y)) => prop_assert!(
                (x - y).abs() <= 1e-9 * (1.0 + y),
                "blocked {} vs scalar {}", x, y
            ),
            (got, want) => prop_assert!(false, "blocked {:?} vs scalar {:?}", got, want),
        }
        // Unbounded: the blocked kernel equals the plain kernel.
        let unbounded = euclidean_sq_early_abandon(a, b, f64::INFINITY).unwrap();
        prop_assert!((unbounded - full).abs() <= 1e-9 * (1.0 + full));
    }

    #[test]
    fn blocked_lb_keogh_matches_scalar(
        raw_q in kernel_series(),
        raw_c in kernel_series(),
        len in 1usize..=KERNEL_PROP_LEN,
        window in 0usize..12,
        factor in 0.05f64..3.0,
    ) {
        let (q, c) = (&raw_q[..len], &raw_c[..len]);
        let env = keogh_envelope(q, window);
        let full = scalar_lb_keogh(&env, c, f64::INFINITY).unwrap();
        let thr = full * factor;
        if (full - thr).abs() <= 1e-6 * (1.0 + full) {
            return Ok(());
        }
        match (lb_keogh_sq(&env, c, thr), scalar_lb_keogh(&env, c, thr)) {
            (None, None) => {}
            (Some(x), Some(y)) => prop_assert!(
                (x - y).abs() <= 1e-9 * (1.0 + y),
                "blocked {} vs scalar {}", x, y
            ),
            (got, want) => prop_assert!(false, "blocked {:?} vs scalar {:?}", got, want),
        }
    }
}

proptest! {
    // The engine-vs-brute-force property runs fewer cases: each case
    // builds an index.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn persist_roundtrip_for_arbitrary_collections(
        seed in any::<u64>(),
        n in 20usize..200,
        segs in 2usize..12,
        cap in 4usize..40,
    ) {
        let data = odyssey::workloads::generator::noisy_walk(n, 48, seed);
        let index = Index::build(
            data,
            IndexConfig::new(48).with_segments(segs).with_leaf_capacity(cap),
            1,
        );
        let mut bytes = Vec::new();
        odyssey::core::persist::save_index(&index, &mut bytes).expect("save");
        let loaded = odyssey::core::persist::load_index(&mut bytes.as_slice())
            .expect("load");
        prop_assert_eq!(loaded.num_series(), n);
        prop_assert_eq!(loaded.forest().len(), index.forest().len());
        let qb = odyssey::workloads::generator::random_walk(1, 48, seed ^ 0x5);
        let q = qb.series(0);
        let a = exact_search(&index, q, &SearchParams::new(1));
        let b = exact_search(&loaded, q, &SearchParams::new(1));
        prop_assert_eq!(a.answer.distance, b.answer.distance);
    }

    #[test]
    fn epsilon_guarantee_for_arbitrary_inputs(
        seed in any::<u64>(),
        eps in 0.0f64..3.0,
    ) {
        let data = odyssey::workloads::generator::random_walk(300, 32, seed);
        let index = Index::build(
            data.clone(),
            IndexConfig::new(32).with_segments(8).with_leaf_capacity(16),
            1,
        );
        let qb = odyssey::workloads::generator::random_walk(1, 32, seed ^ 0xE);
        let q = qb.series(0);
        let exact = index.brute_force(q);
        let (got, _) = odyssey::core::search::epsilon::epsilon_search(
            &index, q, eps, &SearchParams::new(1),
        );
        prop_assert!(got.distance <= (1.0 + eps) * exact.distance + 1e-9);
        prop_assert!(got.distance >= exact.distance - 1e-9);
    }

    #[test]
    fn engine_equals_brute_force_for_arbitrary_parameters(
        seed in any::<u64>(),
        n_threads in 1usize..4,
        nsb in 1usize..10,
        th in 1usize..64,
        leaf_cap in 4usize..64,
    ) {
        let data = odyssey::workloads::generator::random_walk(400, 32, seed);
        let index = Index::build(
            data.clone(),
            IndexConfig::new(32).with_segments(8).with_leaf_capacity(leaf_cap),
            2,
        );
        let q = odyssey::workloads::generator::random_walk(1, 32, seed ^ 0xFFFF);
        let q = q.series(0);
        let want = index.brute_force(q);
        let params = SearchParams::new(n_threads).with_nsb(nsb).with_th(th);
        let got = exact_search(&index, q, &params);
        prop_assert!((got.answer.distance - want.distance).abs() < 1e-9);
    }

    #[test]
    fn soundness_chain_holds_under_leaf_contiguous_layout(
        seed in any::<u64>(),
        segs in 2usize..12,
        cap in 4usize..32,
    ) {
        // For every leaf and every scan position inside it:
        // node_lb(leaf word) <= series_lb(scan sax) <= true distance —
        // the chain that makes pruning over the permuted layout exact.
        // Also pins the layout's position/id coherence.
        let data = odyssey::workloads::generator::noisy_walk(250, 48, seed);
        let index = Index::build(
            data,
            IndexConfig::new(48).with_segments(segs).with_leaf_capacity(cap),
            2,
        );
        let qb = odyssey::workloads::generator::random_walk(1, 48, seed ^ 0x99);
        let q = qb.series(0);
        let kernel = EdKernel::new(q, segs);
        let layout = index.layout();
        for st in index.forest() {
            let mut ok = Ok(());
            st.node.for_each_leaf(&mut |leaf| {
                if ok.is_err() {
                    return;
                }
                let node_lb = kernel.node_lb_sq(&leaf.word);
                for p in leaf.slice.range() {
                    let id = layout.original_id(p);
                    if layout.sax(p) != index.sax_by_id(id) {
                        ok = Err("scan sax diverges from summaries");
                        return;
                    }
                    if layout.series(p) != index.series_by_id(id) {
                        ok = Err("scan data diverges from id lookup");
                        return;
                    }
                    let series_lb = kernel.series_lb_sq(layout.sax(p));
                    let real = euclidean_sq(q, layout.series(p));
                    if node_lb > series_lb + 1e-9 {
                        ok = Err("node_lb exceeds series_lb");
                        return;
                    }
                    if series_lb > real + 1e-6 {
                        ok = Err("series_lb exceeds the true distance");
                        return;
                    }
                }
            });
            prop_assert!(ok.is_ok(), "{}", ok.unwrap_err());
        }
        // Sanity: the leaf view above saw a real partition of the data.
        let covered: usize = index
            .forest()
            .iter()
            .map(|st| st.node.series_count())
            .sum();
        prop_assert_eq!(covered, index.num_series());
    }

    #[test]
    fn knn_contains_the_1nn_answer(
        seed in any::<u64>(),
        k in 1usize..8,
    ) {
        let data = odyssey::workloads::generator::random_walk(300, 32, seed);
        let index = Index::build(
            data.clone(),
            IndexConfig::new(32).with_segments(8).with_leaf_capacity(16),
            1,
        );
        let qbuf = odyssey::workloads::generator::random_walk(1, 32, seed ^ 0xABCD);
        let q = qbuf.series(0);
        let one = exact_search(&index, q, &SearchParams::new(1)).answer;
        let (knn, _) = odyssey::core::search::knn::knn_search(
            &index, q, k, &SearchParams::new(2),
        );
        prop_assert!((knn.neighbors[0].0 - one.distance_sq).abs() < 1e-9);
        // Sorted ascending.
        for w in knn.neighbors.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
    }
}
