//! Batch-engine equivalence: a mixed batch of easy/hard/k-NN/DTW
//! queries executed through **one** persistent [`BatchEngine`] must
//! return answers bit-identical to the per-query entry points
//! (`exact_search` / `knn_search` / `dtw_search`), across thread
//! counts — the engine changes *how* execution resources are
//! provisioned, never *what* is computed.

use odyssey::core::index::{Index, IndexConfig};
use odyssey::core::search::engine::{BatchAnswer, BatchEngine, BatchQuery, QueryKind};
use odyssey::core::search::exact::{exact_search, SearchParams};
use odyssey::core::search::knn::knn_search;
use odyssey::core::search::dtw_search::dtw_search;
use odyssey::workloads::generator::random_walk;
use odyssey::workloads::queries::{QueryWorkload, WorkloadKind};
use std::sync::Arc;

fn setup() -> (Arc<Index>, QueryWorkload, QueryWorkload) {
    let data = random_walk(1500, 64, 0xBEEF);
    let index = Arc::new(Index::build(
        data.clone(),
        IndexConfig::new(64).with_segments(8).with_leaf_capacity(24),
        2,
    ));
    let easy = QueryWorkload::generate(&data, 3, WorkloadKind::Easy { noise: 0.02 }, 11);
    let hard = QueryWorkload::generate(&data, 3, WorkloadKind::Hard, 12);
    (index, easy, hard)
}

#[test]
fn mixed_batch_is_bit_identical_to_per_query_paths() {
    let (index, easy, hard) = setup();
    let window = 3usize;
    let k = 5usize;

    // Interleave easy/hard exact queries with k-NN and DTW items.
    let mut batch: Vec<BatchQuery> = Vec::new();
    for qi in 0..easy.len() {
        batch.push(BatchQuery::new(easy.query(qi), QueryKind::Exact));
        batch.push(BatchQuery::new(hard.query(qi), QueryKind::Exact));
    }
    batch.push(BatchQuery::new(hard.query(0), QueryKind::Knn(k)));
    batch.push(BatchQuery::new(easy.query(0), QueryKind::Dtw(window)));
    // A deliberately scrambled (reverse) dispatch order: results must
    // still come back in input positions.
    let order: Vec<usize> = (0..batch.len()).rev().collect();

    for threads in [1usize, 2, 4] {
        let params = SearchParams::new(threads).with_th(32);
        let engine = BatchEngine::new(Arc::clone(&index), threads);
        let out = engine.run_batch(&batch, &order, &params);
        assert_eq!(out.items.len(), batch.len());
        for (qi, item) in out.items.iter().enumerate() {
            let q = batch[qi].data;
            match (batch[qi].kind, &item.answer) {
                (QueryKind::Exact, BatchAnswer::Nn(got)) => {
                    let want = exact_search(&index, q, &params).answer;
                    assert_eq!(
                        got.distance.to_bits(),
                        want.distance.to_bits(),
                        "threads={threads} item={qi}: exact"
                    );
                }
                (QueryKind::Knn(kk), BatchAnswer::Knn(got)) => {
                    let (want, _) = knn_search(&index, q, kk, &params);
                    assert_eq!(got.neighbors.len(), want.neighbors.len());
                    for (g, w) in got.neighbors.iter().zip(&want.neighbors) {
                        assert_eq!(
                            g.0.to_bits(),
                            w.0.to_bits(),
                            "threads={threads} item={qi}: knn distance"
                        );
                    }
                }
                (QueryKind::Dtw(ww), BatchAnswer::Nn(got)) => {
                    let (want, _) = dtw_search(&index, q, ww, &params);
                    assert_eq!(
                        got.distance.to_bits(),
                        want.distance.to_bits(),
                        "threads={threads} item={qi}: dtw"
                    );
                }
                (kind, ans) => panic!("item {qi}: kind {kind:?} produced {ans:?}"),
            }
        }
    }
}

#[test]
fn engine_reuse_across_consecutive_batches_is_stable() {
    // Scratch arenas (heaps, stacks, lower-bound buffers) persist across
    // batches; two identical runs through the same engine must agree
    // bit-for-bit with each other and with a fresh engine.
    let (index, easy, hard) = setup();
    let batch: Vec<BatchQuery> = (0..easy.len())
        .flat_map(|qi| {
            [
                BatchQuery::new(easy.query(qi), QueryKind::Exact),
                BatchQuery::new(hard.query(qi), QueryKind::Exact),
            ]
        })
        .collect();
    let order: Vec<usize> = (0..batch.len()).collect();
    let params = SearchParams::new(2).with_th(16);

    let engine = BatchEngine::new(Arc::clone(&index), 2);
    let first = engine.run_batch(&batch, &order, &params);
    let second = engine.run_batch(&batch, &order, &params);
    let fresh = BatchEngine::new(Arc::clone(&index), 2).run_batch(&batch, &order, &params);
    for qi in 0..batch.len() {
        let a = first.items[qi].answer.nn().distance.to_bits();
        let b = second.items[qi].answer.nn().distance.to_bits();
        let c = fresh.items[qi].answer.nn().distance.to_bits();
        assert_eq!(a, b, "item {qi}: reused engine diverged");
        assert_eq!(a, c, "item {qi}: fresh engine diverged");
    }
}
