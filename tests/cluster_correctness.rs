//! Cross-crate integration tests: every distributed configuration must
//! return exactly the brute-force answer — the paper's systems are all
//! *exact* search systems, so correctness is binary.

use odyssey::baselines::{dmessi_config, dmessi_sw_bsf_config, DpiSaxCluster};
use odyssey::cluster::{ClusterConfig, OdysseyCluster, Replication, SchedulerKind};
use odyssey::core::search::answer::Answer;
use odyssey::core::series::DatasetBuffer;
use odyssey::partition::{DensityAwareConfig, PartitioningScheme};
use odyssey::workloads::generator::{cluster_mixture, noisy_walk, random_walk};
use odyssey::workloads::queries::{QueryWorkload, WorkloadKind};

fn brute_force(data: &DatasetBuffer, q: &[f32]) -> Answer {
    let mut best = Answer::none();
    for i in 0..data.num_series() {
        let d = odyssey::core::distance::euclidean_sq(q, data.series(i));
        if d < best.distance_sq {
            best = Answer::from_sq(d, Some(i as u32));
        }
    }
    best
}

fn assert_batch_exact(data: &DatasetBuffer, queries: &QueryWorkload, cfg: ClusterConfig) {
    let label = format!("{cfg:?}");
    let cluster = OdysseyCluster::build(data, cfg);
    let report = cluster.answer_batch(&queries.queries);
    for qi in 0..queries.len() {
        let want = brute_force(data, queries.query(qi));
        let got = report.answers[qi];
        assert!(
            (got.distance - want.distance).abs() < 1e-9,
            "{label} query {qi}: got {} want {}",
            got.distance,
            want.distance
        );
        // The reported id must realize the reported distance.
        let id = got.series_id.expect("answer carries an id") as usize;
        let check = odyssey::core::distance::euclidean_sq(queries.query(qi), data.series(id));
        assert!((check - got.distance_sq).abs() < 1e-9, "{label} id mismatch");
    }
}

#[test]
fn full_matrix_replication_times_scheduler() {
    let data = noisy_walk(1_500, 64, 101);
    let queries = QueryWorkload::generate(
        &data,
        8,
        WorkloadKind::Mixed {
            hard_fraction: 0.4,
            noise: 0.05,
        },
        5,
    );
    for rep in [
        Replication::Full,
        Replication::Partial(2),
        Replication::EquallySplit,
    ] {
        for sched in SchedulerKind::all() {
            assert_batch_exact(
                &data,
                &queries,
                ClusterConfig::new(4)
                    .with_replication(rep)
                    .with_scheduler(sched)
                    .with_leaf_capacity(64),
            );
        }
    }
}

#[test]
fn stealing_and_sharing_matrix() {
    let data = random_walk(1_500, 64, 55);
    let queries = QueryWorkload::generate(
        &data,
        8,
        WorkloadKind::Mixed {
            hard_fraction: 0.5,
            noise: 0.05,
        },
        9,
    );
    for ws in [false, true] {
        for bsf in [false, true] {
            assert_batch_exact(
                &data,
                &queries,
                ClusterConfig::new(8)
                    .with_replication(Replication::Partial(2))
                    .with_work_stealing(ws)
                    .with_bsf_sharing(bsf)
                    .with_leaf_capacity(64),
            );
        }
    }
}

#[test]
fn density_aware_partitioning_is_exact() {
    let data = cluster_mixture(1_200, 64, 8, 0.1, 77);
    let queries = QueryWorkload::generate(&data, 6, WorkloadKind::Hard, 3);
    assert_batch_exact(
        &data,
        &queries,
        ClusterConfig::new(4)
            .with_replication(Replication::EquallySplit)
            .with_partitioning(PartitioningScheme::DensityAware(DensityAwareConfig {
                segments: 8,
                lambda: 16,
                balance_tolerance: 0.05,
                n_threads: 2,
            }))
            .with_leaf_capacity(64),
    );
}

#[test]
fn baselines_agree_with_odyssey() {
    let data = noisy_walk(1_200, 64, 31);
    let queries = QueryWorkload::generate(
        &data,
        6,
        WorkloadKind::Mixed {
            hard_fraction: 0.5,
            noise: 0.05,
        },
        13,
    );
    let odyssey = OdysseyCluster::build(
        &data,
        ClusterConfig::new(4).with_leaf_capacity(64),
    )
    .answer_batch(&queries.queries);
    let dmessi = OdysseyCluster::build(&data, dmessi_config(4).with_leaf_capacity(64))
        .answer_batch(&queries.queries);
    let dmessi_bsf =
        OdysseyCluster::build(&data, dmessi_sw_bsf_config(4).with_leaf_capacity(64))
            .answer_batch(&queries.queries);
    let dpisax = DpiSaxCluster::build(&data, 4, 7).answer_batch(&queries.queries);
    for qi in 0..queries.len() {
        let d0 = odyssey.answers[qi].distance;
        for (name, r) in [
            ("dmessi", &dmessi),
            ("dmessi-sw-bsf", &dmessi_bsf),
            ("dpisax", &dpisax),
        ] {
            assert!(
                (r.answers[qi].distance - d0).abs() < 1e-9,
                "{name} disagrees on query {qi}"
            );
        }
    }
}

#[test]
fn knn_cluster_matches_brute_force_top_k() {
    let data = random_walk(900, 64, 71);
    let queries = QueryWorkload::generate(&data, 4, WorkloadKind::Hard, 2);
    let k = 7;
    let cluster = OdysseyCluster::build(
        &data,
        ClusterConfig::new(4)
            .with_replication(Replication::Partial(2))
            .with_leaf_capacity(64),
    );
    let report = cluster.answer_batch_knn(&queries.queries, k);
    for qi in 0..queries.len() {
        let mut all: Vec<f64> = (0..data.num_series())
            .map(|i| odyssey::core::distance::euclidean_sq(queries.query(qi), data.series(i)))
            .collect();
        all.sort_by(f64::total_cmp);
        assert_eq!(report.answers[qi].neighbors.len(), k);
        for (j, &want) in all.iter().take(k).enumerate() {
            assert!(
                (report.answers[qi].neighbors[j].0 - want).abs() < 1e-9,
                "query {qi} rank {j}"
            );
        }
        // Neighbor list is sorted and ids are distinct.
        let mut ids: Vec<u32> = report.answers[qi].neighbors.iter().map(|n| n.1).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), k);
    }
}

#[test]
fn dtw_cluster_matches_brute_force() {
    let data = random_walk(500, 64, 91);
    let queries = QueryWorkload::generate(&data, 3, WorkloadKind::Hard, 6);
    let window = 3;
    let cluster = OdysseyCluster::build(
        &data,
        ClusterConfig::new(4)
            .with_replication(Replication::Full)
            .with_leaf_capacity(64),
    );
    let report = cluster.answer_batch_dtw(&queries.queries, window);
    for qi in 0..queries.len() {
        let mut best = f64::INFINITY;
        for i in 0..data.num_series() {
            if let Some(d) =
                odyssey::core::distance::dtw_banded(queries.query(qi), data.series(i), window, best)
            {
                best = best.min(d);
            }
        }
        assert!(
            (report.answers[qi].distance_sq - best).abs() < 1e-9,
            "query {qi}"
        );
    }
}

#[test]
fn single_node_cluster_degenerates_gracefully() {
    // A 1-node "cluster" is just the single-node index; everything works.
    let data = random_walk(600, 64, 15);
    let queries = QueryWorkload::generate(&data, 4, WorkloadKind::Hard, 1);
    for rep in [Replication::Full, Replication::EquallySplit] {
        assert_batch_exact(
            &data,
            &queries,
            ClusterConfig::new(1)
                .with_replication(rep)
                .with_leaf_capacity(64),
        );
    }
}
