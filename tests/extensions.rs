//! Integration tests for the features beyond the paper's evaluation
//! (its stated future work): ε-approximate search, subsequence search,
//! index persistence, streaming arrival, and approximate batches.

use odyssey::cluster::{ClusterConfig, OdysseyCluster, Replication};
use odyssey::core::index::{Index, IndexConfig};
use odyssey::core::persist;
use odyssey::core::search::epsilon::epsilon_search;
use odyssey::core::search::exact::SearchParams;
use odyssey::core::subsequence::SubsequenceIndex;
use odyssey::workloads::generator::{noisy_walk, random_walk};
use odyssey::workloads::io as wio;
use odyssey::workloads::queries::{QueryWorkload, WorkloadKind};

#[test]
fn epsilon_search_guarantee_on_realistic_workload() {
    let data = noisy_walk(1_500, 64, 0xE91);
    let index = Index::build(
        data.clone(),
        IndexConfig::new(64).with_segments(8).with_leaf_capacity(64),
        2,
    );
    let w = QueryWorkload::generate(
        &data,
        10,
        WorkloadKind::Mixed {
            hard_fraction: 0.5,
            noise: 0.1,
        },
        0xE92,
    );
    for qi in 0..w.len() {
        let exact = index.brute_force(w.query(qi));
        for eps in [0.1, 0.5] {
            let (got, _) = epsilon_search(&index, w.query(qi), eps, &SearchParams::new(2));
            assert!(got.distance <= (1.0 + eps) * exact.distance + 1e-9);
            assert!(got.distance >= exact.distance - 1e-9);
        }
    }
}

#[test]
fn persisted_index_answers_like_the_original_through_files() {
    let data = random_walk(700, 96, 0xAB);
    let index = Index::build(
        data.clone(),
        IndexConfig::new(96).with_segments(12).with_leaf_capacity(48),
        2,
    );
    let path = std::env::temp_dir().join(format!(
        "odyssey_integration_{}.idx",
        std::process::id()
    ));
    persist::save_index_file(&index, &path).expect("save");
    let loaded = persist::load_index_file(&path).expect("load");
    let w = QueryWorkload::generate(&data, 5, WorkloadKind::Hard, 0xCD);
    for qi in 0..w.len() {
        let a = index.exact_search(w.query(qi), 2);
        let b = loaded.exact_search(w.query(qi), 2);
        assert_eq!(a.distance, b.distance);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn persisted_layout_supports_stolen_batch_runs() {
    // The leaf-contiguous layout must survive persistence *including*
    // the work-stealing contract: an owner run with pre-stolen batches
    // plus a thief run on the loaded copy — two "nodes" of a
    // replication group, one built fresh, one loaded from disk — must
    // compose to the exact answer. This only works if the loaded index
    // has a bit-identical scan permutation and forest.
    use odyssey::core::search::bsf::SharedBsf;
    use odyssey::core::search::exact::{run_search, StealView};
    use odyssey::core::search::kernel::EdKernel;

    let data = random_walk(1_400, 64, 0xBEEF);
    let index = Index::build(
        data.clone(),
        IndexConfig::new(64).with_segments(8).with_leaf_capacity(24),
        2,
    );
    let mut bytes = Vec::new();
    persist::save_index(&index, &mut bytes).expect("save");
    let loaded = persist::load_index(&mut bytes.as_slice()).expect("load");
    assert_eq!(
        index.layout().scan_to_id(),
        loaded.layout().scan_to_id(),
        "replication determinism: loaded scan permutation is identical"
    );

    let w = QueryWorkload::generate(&data, 4, WorkloadKind::Hard, 0xFEED);
    for qi in 0..w.len() {
        let q = w.query(qi);
        let want = index.brute_force(q);
        // Plain answers agree between fresh and loaded copies.
        let a = index.exact_search(q, 2);
        let b = loaded.exact_search(q, 2);
        assert_eq!(a.distance, b.distance, "query {qi}");
        assert_eq!(a.series_id, b.series_id, "query {qi}");

        // Owner (fresh index) runs with two batches pre-stolen; the
        // thief completes them on the *loaded* index.
        let kernel = EdKernel::new(q, index.config().segments);
        let params = SearchParams::new(2).with_nsb(6);
        let approx = index.approx_search(q);
        let bsf = SharedBsf::new(approx.distance_sq, approx.series_id);
        let view = StealView::new();
        view.test_init(6);
        let stolen = view.try_steal(2);
        assert_eq!(stolen.len(), 0, "nothing stealable before processing");
        // Mark batches 4 and 5 stolen up front via the published state.
        view.test_publish(vec![0, 1, 2, 3, 4, 5]);
        let stolen = view.try_steal(2);
        assert_eq!(stolen, vec![5, 4]);
        run_search(&index, &kernel, &params, &bsf, None, &view, &|_, _| {});
        run_search(
            &loaded,
            &kernel,
            &params,
            &bsf,
            Some(&stolen),
            &StealView::new(),
            &|_, _| {},
        );
        assert!(
            (bsf.answer().distance - want.distance).abs() < 1e-9,
            "query {qi}: stolen-batch composition across persistence"
        );
    }
}

#[test]
fn dataset_file_roundtrip_feeds_a_cluster() {
    let data = random_walk(600, 64, 0x10);
    let path = std::env::temp_dir().join(format!(
        "odyssey_integration_{}.bin",
        std::process::id()
    ));
    wio::write_bin(&data, &path).expect("write");
    let back = wio::read_bin(&path, 64).expect("read");
    let w = QueryWorkload::generate(&back, 4, WorkloadKind::Hard, 0x11);
    let cluster = OdysseyCluster::build(
        &back,
        ClusterConfig::new(2)
            .with_replication(Replication::EquallySplit)
            .with_leaf_capacity(64),
    );
    let report = cluster.answer_batch(&w.queries);
    for qi in 0..w.len() {
        let mut best = f64::INFINITY;
        for i in 0..data.num_series() {
            best = best.min(odyssey::core::distance::euclidean_sq(
                w.query(qi),
                data.series(i),
            ));
        }
        assert!((report.answers[qi].distance_sq - best).abs() < 1e-9);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn subsequence_search_over_generated_archives() {
    // Two "long recordings"; a known pattern planted in the second.
    let rec1: Vec<f32> = random_walk(1, 1500, 0x77).series(0).to_vec();
    let mut rec2: Vec<f32> = random_walk(1, 1200, 0x78).series(0).to_vec();
    let pattern: Vec<f32> = random_walk(1, 96, 0x79).series(0).to_vec();
    rec2[300..396].copy_from_slice(&pattern);
    let idx = SubsequenceIndex::build(&[rec1, rec2], 96, 1, 2);
    let (ans, at) = idx.best_match(&pattern, 2);
    assert_eq!(at.sequence, 1);
    assert_eq!(at.offset, 300);
    assert!(ans.distance < 1e-3);
}

#[test]
fn streaming_and_batch_agree() {
    let data = noisy_walk(900, 64, 0x21);
    let w = QueryWorkload::generate(
        &data,
        9,
        WorkloadKind::Mixed {
            hard_fraction: 0.3,
            noise: 0.05,
        },
        0x22,
    );
    let cluster = OdysseyCluster::build(
        &data,
        ClusterConfig::new(4).with_replication(Replication::Full),
    );
    let batch = cluster.answer_batch(&w.queries);
    let stream = cluster.answer_batch_stream(&w.queries, 2);
    for qi in 0..w.len() {
        assert!(
            (batch.answers[qi].distance - stream.answers[qi].distance).abs() < 1e-9,
            "query {qi}"
        );
    }
}

#[test]
fn straggler_with_stealing_beats_straggler_without() {
    let data = noisy_walk(4_000, 64, 0x31);
    let w = QueryWorkload::generate(
        &data,
        16,
        WorkloadKind::Mixed {
            hard_fraction: 0.4,
            noise: 0.1,
        },
        0x32,
    );
    let base = OdysseyCluster::build(
        &data,
        ClusterConfig::new(4)
            .with_replication(Replication::Full)
            .with_scheduler(odyssey::cluster::SchedulerKind::Dynamic)
            .with_node_speed(0, 0.25)
            .with_leaf_capacity(64),
    );
    let no_steal = base.reconfigured(|c| c.with_work_stealing(false));
    // Stealing must not make the makespan dramatically worse; on most
    // runs it improves it. The measurement depends on real thread
    // interleavings, so allow a few attempts before declaring failure —
    // exactness is asserted on every attempt, only the timing bound
    // retries.
    let mut last = (0, 0);
    let ok = (0..3).any(|_| {
        let without = no_steal.answer_batch(&w.queries);
        let with = base.answer_batch(&w.queries);
        for qi in 0..w.len() {
            assert!((with.answers[qi].distance - without.answers[qi].distance).abs() < 1e-9);
        }
        last = (with.makespan_units(), without.makespan_units());
        last.0 <= last.1 * 3 / 2
    });
    assert!(
        ok,
        "stealing makespan {} repeatedly exceeded 1.5x the no-stealing makespan {}",
        last.0, last.1
    );
}
