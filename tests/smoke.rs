//! Fast smoke test: the minimal single-node and two-node paths a user
//! hits first, pinned to the correctness invariant at the heart of the
//! paper — Odyssey is an *exact* search system, so every answer must
//! equal the brute-force scan's.

use odyssey::cluster::{ClusterConfig, OdysseyCluster};
use odyssey::core::distance::euclidean_sq;
use odyssey::core::index::{Index, IndexConfig};
use odyssey::core::search::exact::{exact_search, SearchParams};
use odyssey::core::series::DatasetBuffer;
use odyssey::workloads::generator::random_walk;

fn brute_force_sq(data: &DatasetBuffer, q: &[f32]) -> (f64, usize) {
    (0..data.num_series())
        .map(|i| (euclidean_sq(q, data.series(i)), i))
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .expect("non-empty dataset")
}

#[test]
fn single_node_exact_search_matches_brute_force() {
    let data = random_walk(600, 32, 0x51);
    let queries = random_walk(4, 32, 0x52);
    let index = Index::build(
        data.clone(),
        IndexConfig::new(32).with_segments(8).with_leaf_capacity(32),
        2,
    );
    for qi in 0..queries.num_series() {
        let q = queries.series(qi);
        let (want_sq, _) = brute_force_sq(&data, q);
        let got = exact_search(&index, q, &SearchParams::new(2));
        assert!(
            (got.answer.distance_sq - want_sq).abs() < 1e-9,
            "query {qi}: engine {} != brute force {}",
            got.answer.distance_sq,
            want_sq
        );
        // The reported id must realize the reported distance.
        let id = got.answer.series_id.expect("answer carries an id") as usize;
        let realized = euclidean_sq(q, data.series(id));
        assert!((realized - got.answer.distance_sq).abs() < 1e-9, "query {qi}: id mismatch");
    }
}

#[test]
fn two_node_cluster_batch_matches_brute_force() {
    let data = random_walk(600, 32, 0x53);
    let queries = random_walk(4, 32, 0x54);
    let cluster = OdysseyCluster::build(&data, ClusterConfig::new(2).with_threads_per_node(1));
    let report = cluster.answer_batch(&queries);
    assert_eq!(report.answers.len(), queries.num_series());
    for qi in 0..queries.num_series() {
        let (want_sq, _) = brute_force_sq(&data, queries.series(qi));
        let got = report.answers[qi];
        assert!(
            (got.distance_sq - want_sq).abs() < 1e-9,
            "query {qi}: cluster {} != brute force {}",
            got.distance_sq,
            want_sq
        );
    }
}
