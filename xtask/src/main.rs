//! `xtask` — repo automation for the Odyssey reproduction.
//!
//! ```text
//! cargo run -p xtask -- lint        # unsafe-boundary + thread-discipline lint
//! cargo run -p xtask -- scalar      # core tests with SIMD force-disabled
//! cargo run -p xtask -- miri        # Miri tier (nightly + miri component)
//! cargo run -p xtask -- tsan       # ThreadSanitizer tier (nightly, linux x86_64)
//! ```
//!
//! `lint` is pure Rust over the source tree and runs anywhere. `miri`
//! and `tsan` orchestrate cargo invocations of the nightly toolchain
//! and fail with an actionable message when the toolchain or component
//! is not available (the offline dev container has no network route to
//! install them; CI does).

#![forbid(unsafe_code)]

mod lint;

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = workspace_root();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&root),
        Some("scalar") => cmd_scalar(&root),
        Some("miri") => cmd_miri(&root),
        Some("tsan") => cmd_tsan(&root),
        Some("help") | None => {
            eprintln!("usage: cargo run -p xtask -- <lint|scalar|miri|tsan>");
            ExitCode::FAILURE
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}` (expected lint, scalar, miri, or tsan)");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR/..` when run via cargo, the
/// current directory otherwise.
fn workspace_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => PathBuf::from(dir).parent().map(Path::to_path_buf).unwrap_or_default(),
        None => PathBuf::from("."),
    }
}

fn cmd_lint(root: &Path) -> ExitCode {
    match lint::run(root) {
        Ok(violations) if violations.is_empty() => {
            eprintln!("xtask lint: ok");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: io error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The forced-scalar tier: the whole `odyssey-core` test suite (kernel
/// property tests, exact/batch/lane search bit-identity, SIMD↔scalar
/// equivalence) with `ODYSSEY_SIMD=scalar`, so the scalar fallback path
/// is exercised end to end even on AVX2 hosts. A scalar-only CPU takes
/// this path implicitly; this tier makes it a first-class CI leg.
fn cmd_scalar(root: &Path) -> ExitCode {
    let ok = run_status(
        Command::new("cargo")
            .current_dir(root)
            .env("ODYSSEY_SIMD", "scalar")
            .args(["test", "-q", "-p", "odyssey-core"]),
    );
    if ok {
        eprintln!("xtask scalar: ok");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs `cmd`, inheriting stdio; true on zero exit.
fn run_status(cmd: &mut Command) -> bool {
    eprintln!("xtask: running {cmd:?}");
    matches!(cmd.status(), Ok(s) if s.success())
}

/// Whether `cargo +nightly <probe...>` exits zero (quietly).
fn nightly_has(probe: &[&str]) -> bool {
    Command::new("cargo")
        .arg("+nightly")
        .args(probe)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

/// The Miri tier: interpret the `miri-safe` test subset of
/// `odyssey-core` under Miri, which checks the load-bearing unsafe
/// (job lifetime erasure, allocation recycling, striped raw-pointer
/// writes) for UB the type system cannot see.
fn cmd_miri(root: &Path) -> ExitCode {
    if !nightly_has(&["miri", "--version"]) {
        eprintln!(
            "xtask miri: `cargo +nightly miri` is unavailable.\n\
             Install with: rustup toolchain install nightly && \
             rustup +nightly component add miri\n\
             (The offline dev container cannot; this tier runs in CI.)"
        );
        return ExitCode::FAILURE;
    }
    // The feature-gated integration subset, then the recycling unit
    // tests (crate-private internals, so they live in the lib).
    let ok = run_status(
        Command::new("cargo")
            .current_dir(root)
            .args([
                "+nightly",
                "miri",
                "test",
                "-p",
                "odyssey-core",
                "--features",
                "miri-safe",
                "--test",
                "miri_safe",
            ]),
    ) && run_status(
        Command::new("cargo")
            .current_dir(root)
            .args([
                "+nightly",
                "miri",
                "test",
                "-p",
                "odyssey-core",
                "--lib",
                "scratch::",
            ]),
    );
    if ok {
        eprintln!("xtask miri: ok");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The ThreadSanitizer tier: run the lanes + work-stealing bit-identity
/// tests with `-Zsanitizer=thread` so every happens-before edge of the
/// pool, lane, and steal protocols is checked dynamically.
///
/// The std library is *not* rebuilt (`-Zbuild-std` needs network /
/// rust-src); instead synchronization goes through the in-crate
/// [`PhaseBarrier`](odyssey_core::sync::PhaseBarrier) and generic std
/// primitives, which monomorphize into instrumented code — the ABI
/// mismatch override below is what makes the mixed build link.
fn cmd_tsan(root: &Path) -> ExitCode {
    if !cfg!(all(target_os = "linux", target_arch = "x86_64")) {
        eprintln!("xtask tsan: ThreadSanitizer tier requires linux x86_64");
        return ExitCode::FAILURE;
    }
    if !nightly_has(&["--version"]) {
        eprintln!(
            "xtask tsan: the nightly toolchain is unavailable.\n\
             Install with: rustup toolchain install nightly\n\
             (The offline dev container may lack it; this tier runs in CI.)"
        );
        return ExitCode::FAILURE;
    }
    let rustflags = "-Zsanitizer=thread -Cunsafe-allow-abi-mismatch=sanitizer";
    // std itself is uninstrumented, so its internal thread-join edges
    // are invisible to TSan; tsan-suppressions.txt mutes exactly those
    // (and nothing in odyssey_* frames).
    let suppressions = root.join("tsan-suppressions.txt");
    let tsan_options = format!(
        "halt_on_error=1 suppressions={}",
        suppressions.display()
    );
    let ok = run_status(
        Command::new("cargo")
            .current_dir(root)
            .env("RUSTFLAGS", rustflags)
            .env("TSAN_OPTIONS", &tsan_options)
            .args([
                "+nightly",
                "test",
                "-p",
                "odyssey-core",
                "--target",
                "x86_64-unknown-linux-gnu",
                "--test",
                "tsan_lanes",
            ]),
    );
    if ok {
        eprintln!("xtask tsan: ok");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
