//! The repo-specific unsafe-boundary lint (`cargo run -p xtask -- lint`).
//!
//! A deliberately simple line-based scanner — no syn, no proc-macro
//! machinery — that enforces the workspace's concurrency-safety policy:
//!
//! 1. **`SAFETY:` comments.** Every `unsafe` block, impl, or fn must be
//!    immediately preceded (allowing only comment and attribute lines in
//!    between) by a `// SAFETY:` comment — or, for documented unsafe
//!    fns, a rustdoc `# Safety` section — justifying it.
//! 2. **Unsafe module whitelist.** `unsafe` may appear only in the
//!    files that own the engine's load-bearing raw-pointer patterns
//!    (striped summary writes, forest slot writes, job lifetime erasure,
//!    allocation recycling) and the SIMD kernel boundary
//!    (`distance/simd`).
//! 3. **Transmute whitelist.** `transmute` may appear only in
//!    `search/engine.rs` (the single `erase_job` lifetime erasure).
//! 4. **Thread discipline.** No direct `thread::spawn` outside the
//!    worker-pool runtime (scoped spawns are fine — they cannot leak a
//!    thread past its borrow), and no `std::sync::Barrier` anywhere:
//!    phase synchronization must go through the poisonable, sanitizer-
//!    visible `odyssey_core::sync::PhaseBarrier`.
//! 5. **Lint attributes.** Crates that need no unsafe carry
//!    `#![forbid(unsafe_code)]`; the crate that hosts unsafe carries
//!    `#![deny(unsafe_op_in_unsafe_fn)]` and
//!    `#![deny(missing_debug_implementations)]`.
//! 6. **Fault-clock discipline.** In the fault-injection module
//!    (`crates/cluster/src/faults.rs`) every `thread::sleep` must be
//!    marked with a `// FAULT-CLOCK:` comment: injected delays are part
//!    of the deterministic fault plan, and the marker keeps ad-hoc
//!    timing sleeps from creeping into the fault machinery. (Raw
//!    `thread::spawn` there is already banned by rule 4 — fault
//!    injection rides the runtime's scoped node threads, it never owns
//!    threads.)
//! 7. **`target_feature` guard naming.** Every `#[target_feature(...)]`
//!    function must be preceded by a safety comment that *names* its
//!    runtime-detection guard (`avx2_available` /
//!    `is_x86_feature_detected!`): the attribute makes the function
//!    sound only behind that check, and the name keeps the guard
//!    greppable from the kernel.
//! 8. **Lock-free sync discipline.** In `crates/service/` and the
//!    scheduler's online feedback store (`crates/sched/src/feedback.rs`
//!    — appended to from query hot paths, so it must never block) the
//!    only `std::sync::` items allowed are `atomic`, `Arc`, `OnceLock`,
//!    and `Weak`: locks and channels must come from the workspace's
//!    reviewed primitives (the `parking_lot` shim, the core crate's
//!    poisonable barriers), not ad-hoc `std::sync` blocking types that
//!    sit outside the sanitizer tiers' coverage story.
//!
//! Comments and string literals are stripped before token matching, so
//! prose about `unsafe` never trips the lint, and the lint can check its
//! own source.

use std::fmt;
use std::path::{Path, PathBuf};

/// Files (workspace-relative, `/`-separated) allowed to contain
/// `unsafe`. Extending this list is a reviewed decision: add the file
/// here *and* document the new invariant at the unsafe site.
const UNSAFE_WHITELIST: &[&str] = &[
    "crates/core/src/buffers.rs",
    "crates/core/src/distance/simd/avx.rs",
    "crates/core/src/distance/simd/mod.rs",
    "crates/core/src/search/engine.rs",
    "crates/core/src/search/scratch.rs",
    "crates/core/src/tree.rs",
];

/// Files allowed to contain `transmute` (only `erase_job`).
const TRANSMUTE_WHITELIST: &[&str] = &["crates/core/src/search/engine.rs"];

/// Files allowed to call `thread::spawn` directly (the resident worker
/// pool). Everything else must use scoped threads.
const SPAWN_WHITELIST: &[&str] = &["crates/core/src/search/engine.rs"];

/// Crate roots that must carry `#![forbid(unsafe_code)]`.
const FORBID_UNSAFE_ROOTS: &[&str] = &[
    "crates/baselines/src/lib.rs",
    "crates/bench/src/lib.rs",
    "crates/cli/src/main.rs",
    "crates/partition/src/lib.rs",
    "crates/sched/src/lib.rs",
    "crates/service/src/lib.rs",
    "crates/workloads/src/lib.rs",
    "xtask/src/main.rs",
];

/// Path prefixes whose files may only use the lock-free subset of
/// `std::sync` (rule 8); blocking primitives come from the reviewed
/// shims instead. A trailing `/` scopes a whole directory; a full file
/// path scopes one file.
const SERVICE_SYNC_PATHS: &[&str] = &["crates/service/", "crates/sched/src/feedback.rs"];

/// The `std::sync::` continuations rule 8 permits.
const SERVICE_SYNC_ALLOWED: &[&str] = &["atomic", "Arc", "OnceLock", "Weak"];

/// Crate roots that host unsafe and must carry the hardening denies.
const UNSAFE_HOST_ROOTS: &[&str] = &["crates/core/src/lib.rs"];

/// Files whose `thread::sleep` calls must carry a `// FAULT-CLOCK:`
/// marker (the deterministic fault-injection clock).
const FAULT_CLOCK_FILES: &[&str] = &["crates/cluster/src/faults.rs"];

/// One lint finding.
#[derive(Debug)]
pub struct Violation {
    pub file: PathBuf,
    /// 1-based line, or 0 for file-level findings.
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Strips string literals, char literals, and comments from one line,
/// replacing their contents with spaces so byte offsets are preserved.
/// `in_block_comment` carries `/* ... */` state across lines.
fn strip_line(line: &str, in_block_comment: &mut bool) -> String {
    let bytes = line.as_bytes();
    let mut out = vec![b' '; bytes.len()];
    let mut i = 0;
    while i < bytes.len() {
        if *in_block_comment {
            if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                *in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => break, // line comment
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                *in_block_comment = true;
                i += 2;
            }
            b'"' => {
                // String literal: skip to the unescaped closing quote.
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            b'\'' => {
                // Char literal ('x', '\n') vs lifetime ('a, 'static).
                let is_char = matches!(
                    (bytes.get(i + 1), bytes.get(i + 2)),
                    (Some(b'\\'), _) | (Some(_), Some(b'\''))
                );
                if is_char {
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                } else {
                    i += 1; // lifetime: skip the quote, keep the name
                }
            }
            b => {
                out[i] = b;
                i += 1;
            }
        }
    }
    String::from_utf8(out).expect("ascii-preserving strip")
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether `needle` occurs in `code` as a standalone token: its first
/// and last characters must not extend an adjacent identifier. Path
/// separators (`::`) inside the needle are matched literally.
fn has_token(code: &str, needle: &str) -> bool {
    token_at(code, needle).is_some()
}

/// Byte offset of the first standalone occurrence of `needle`.
fn token_at(code: &str, needle: &str) -> Option<usize> {
    let cb = code.as_bytes();
    let nb = needle.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle).map(|p| p + from) {
        let before_ok = pos == 0 || !is_word_byte(cb[pos - 1]);
        let end = pos + nb.len();
        let after_ok = end >= cb.len() || !is_word_byte(cb[end]);
        if before_ok && after_ok {
            return Some(pos);
        }
        from = pos + 1;
    }
    None
}

/// Whether the stripped line contains an `unsafe` *code construct*
/// (block, fn, impl, extern, or trait) as opposed to e.g. the word in
/// an attribute like `unsafe_code`.
fn unsafe_construct(code: &str) -> bool {
    let Some(pos) = token_at(code, "unsafe") else {
        return false;
    };
    let rest = code[pos + "unsafe".len()..].trim_start();
    rest.starts_with('{')
        || rest.starts_with("fn ")
        || rest.starts_with("impl ")
        || rest.starts_with("impl<")
        || rest.starts_with("extern ")
        || rest.starts_with("extern\"")
        || rest.starts_with("trait ")
        || rest.is_empty() // `unsafe` at end of line; `{` on the next
}

/// Whether a preceding comment run carries `marker` for the construct
/// on line `idx`: walking upward, only comment and attribute lines may
/// intervene, and one of them must contain the marker. A same-line
/// trailing comment counts too.
fn has_marker_comment(raw_lines: &[&str], idx: usize, marker: &str) -> bool {
    if raw_lines[idx].contains(marker) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = raw_lines[i].trim_start();
        if t.starts_with("//") {
            if t.contains(marker) {
                return true;
            }
        } else if t.starts_with("#[") || t.starts_with("#![") {
            // attributes may sit between the comment and the construct
        } else {
            return false;
        }
    }
    false
}

/// Whether a preceding comment run justifies the unsafe construct on
/// line `idx`: a `// SAFETY:` comment, or the rustdoc `# Safety`
/// section convention used on documented unsafe fns.
fn has_safety_comment(raw_lines: &[&str], idx: usize) -> bool {
    has_marker_comment(raw_lines, idx, "SAFETY:") || has_marker_comment(raw_lines, idx, "# Safety")
}

/// Lints one source file; `rel` is its workspace-relative path with
/// `/` separators.
pub fn lint_source(rel: &str, content: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let raw_lines: Vec<&str> = content.lines().collect();
    let mut in_block_comment = false;
    let stripped: Vec<String> = raw_lines
        .iter()
        .map(|l| strip_line(l, &mut in_block_comment))
        .collect();
    let file = PathBuf::from(rel);
    let push = |out: &mut Vec<Violation>, line: usize, rule: &'static str, message: String| {
        out.push(Violation {
            file: file.clone(),
            line,
            rule,
            message,
        });
    };

    for (i, code) in stripped.iter().enumerate() {
        let line = i + 1;
        if unsafe_construct(code) {
            if !UNSAFE_WHITELIST.contains(&rel) {
                push(
                    &mut out,
                    line,
                    "unsafe-whitelist",
                    format!(
                        "`unsafe` outside the whitelisted modules ({}); \
                         move the code there or extend the reviewed whitelist in xtask",
                        UNSAFE_WHITELIST.join(", ")
                    ),
                );
            }
            if !has_safety_comment(&raw_lines, i) {
                push(
                    &mut out,
                    line,
                    "safety-comment",
                    "`unsafe` without an immediately preceding `// SAFETY:` comment".to_string(),
                );
            }
        }
        if has_token(code, "target_feature")
            && !(has_marker_comment(&raw_lines, i, "avx2_available")
                || has_marker_comment(&raw_lines, i, "is_x86_feature_detected"))
        {
            push(
                &mut out,
                line,
                "target-feature-guard",
                "`#[target_feature]` fn without a preceding safety comment naming \
                 its runtime-detection guard (`avx2_available` / \
                 `is_x86_feature_detected!`)"
                    .to_string(),
            );
        }
        if has_token(code, "transmute") && !TRANSMUTE_WHITELIST.contains(&rel) {
            push(
                &mut out,
                line,
                "transmute",
                "`transmute` is only permitted in search/engine.rs (`erase_job`)".to_string(),
            );
        }
        if code.contains("thread::spawn") && !SPAWN_WHITELIST.contains(&rel) {
            push(
                &mut out,
                line,
                "thread-spawn",
                "direct `thread::spawn` outside the worker-pool runtime; \
                 use `std::thread::scope` (or go through the BatchEngine)"
                    .to_string(),
            );
        }
        if FAULT_CLOCK_FILES.contains(&rel)
            && code.contains("thread::sleep")
            && !has_marker_comment(&raw_lines, i, "FAULT-CLOCK:")
        {
            push(
                &mut out,
                line,
                "fault-clock",
                "`thread::sleep` in the fault-injection module without a \
                 `// FAULT-CLOCK:` marker; injected delays must be part of \
                 the deterministic fault plan"
                    .to_string(),
            );
        }
        if SERVICE_SYNC_PATHS.iter().any(|p| rel.starts_with(p)) {
            let mut from = 0;
            while let Some(pos) = code[from..].find("std::sync::").map(|p| p + from) {
                let rest = &code[pos + "std::sync::".len()..];
                if !SERVICE_SYNC_ALLOWED.iter().any(|a| rest.starts_with(a)) {
                    push(
                        &mut out,
                        line,
                        "service-sync",
                        format!(
                            "`std::sync::` in this lock-free path may only reach {}; \
                             blocking primitives must come from the reviewed shims \
                             (parking_lot, odyssey_core::sync)",
                            SERVICE_SYNC_ALLOWED.join(", ")
                        ),
                    );
                }
                from = pos + 1;
            }
        }
        if has_token(code, "Barrier") && !code.contains("PhaseBarrier") {
            push(
                &mut out,
                line,
                "std-barrier",
                "`std::sync::Barrier` deadlocks on panic and is invisible to \
                 ThreadSanitizer; use `odyssey_core::sync::PhaseBarrier`"
                    .to_string(),
            );
        }
    }

    if FORBID_UNSAFE_ROOTS.contains(&rel) && !content.contains("#![forbid(unsafe_code)]") {
        push(
            &mut out,
            0,
            "lint-attrs",
            "crate root must carry `#![forbid(unsafe_code)]`".to_string(),
        );
    }
    if UNSAFE_HOST_ROOTS.contains(&rel) {
        for attr in [
            "#![deny(unsafe_op_in_unsafe_fn)]",
            "#![deny(missing_debug_implementations)]",
        ] {
            if !content.contains(attr) {
                push(
                    &mut out,
                    0,
                    "lint-attrs",
                    format!("unsafe-hosting crate root must carry `{attr}`"),
                );
            }
        }
    }
    out
}

/// Recursively collects the `.rs` files the lint covers: everything
/// under `crates/`, `src/`, `tests/`, and `xtask/`, skipping `target/`
/// and the offline dependency shims under `vendor/`.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "xtask"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && name != "vendor" {
                walk(&path, files)?;
            }
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Runs the lint over the workspace rooted at `root`. Returns all
/// violations (empty = pass).
pub fn run(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut all = Vec::new();
    for path in collect_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let content = std::fs::read_to_string(&path)?;
        all.extend(lint_source(&rel, &content));
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(rel: &str, src: &str) -> Vec<&'static str> {
        lint_source(rel, src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn commented_unsafe_in_whitelisted_module_passes() {
        let src = "fn f() {\n    // SAFETY: justified.\n    unsafe { g(); }\n}\n";
        assert!(rules("crates/core/src/tree.rs", src).is_empty());
    }

    #[test]
    fn missing_safety_comment_is_flagged() {
        let src = "fn f() {\n    unsafe { g(); }\n}\n";
        assert_eq!(
            rules("crates/core/src/tree.rs", src),
            vec!["safety-comment"]
        );
    }

    #[test]
    fn safety_comment_survives_interleaved_attributes() {
        let src = "// SAFETY: fine.\n#[allow(clippy::x)]\nunsafe impl Send for T {}\n";
        assert!(rules("crates/core/src/buffers.rs", src).is_empty());
    }

    #[test]
    fn unsafe_outside_whitelist_is_flagged() {
        let src = "// SAFETY: irrelevant.\nfn f() { unsafe { g(); } }\n";
        assert_eq!(
            rules("crates/sched/src/scheduler.rs", src),
            vec!["unsafe-whitelist"]
        );
    }

    #[test]
    fn prose_and_strings_about_unsafe_do_not_trip() {
        let src = "// unsafe { in a comment }\nfn f() { let _ = \"unsafe { }\"; }\n/* unsafe impl Y {} */\n";
        assert!(rules("crates/sched/src/scheduler.rs", src).is_empty());
    }

    #[test]
    fn attribute_words_do_not_count_as_unsafe() {
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\n#![forbid(unsafe_code)]\n";
        assert!(rules("crates/sched/src/scheduler.rs", src).is_empty());
    }

    #[test]
    fn transmute_outside_engine_is_flagged() {
        let src = "fn f() { let _ = std::mem::transmute::<u8, i8>(0); }\n";
        assert_eq!(rules("crates/core/src/tree.rs", src), vec!["transmute"]);
        assert!(!rules("crates/core/src/search/engine.rs", src).contains(&"transmute"));
    }

    #[test]
    fn direct_spawn_is_flagged_but_scoped_spawn_passes() {
        assert_eq!(
            rules("crates/cluster/src/runtime.rs", "std::thread::spawn(|| {});\n"),
            vec!["thread-spawn"]
        );
        assert!(rules(
            "crates/cluster/src/runtime.rs",
            "std::thread::scope(|s| { s.spawn(|| {}); });\n"
        )
        .is_empty());
    }

    #[test]
    fn std_barrier_is_flagged_and_phase_barrier_passes() {
        assert_eq!(
            rules("crates/cluster/src/runtime.rs", "use std::sync::Barrier;\n"),
            vec!["std-barrier"]
        );
        assert!(rules(
            "crates/cluster/src/runtime.rs",
            "use odyssey_core::sync::PhaseBarrier;\n"
        )
        .is_empty());
    }

    #[test]
    fn missing_forbid_attr_on_clean_crate_root_is_flagged() {
        assert_eq!(rules("crates/sched/src/lib.rs", "pub mod x;\n"), vec!["lint-attrs"]);
        assert!(rules("crates/sched/src/lib.rs", "#![forbid(unsafe_code)]\npub mod x;\n").is_empty());
    }

    #[test]
    fn unsafe_host_root_requires_both_denies() {
        let v = rules("crates/core/src/lib.rs", "pub mod x;\n");
        assert_eq!(v, vec!["lint-attrs", "lint-attrs"]);
    }

    #[test]
    fn unmarked_fault_sleep_is_flagged_only_in_faults_module() {
        let src = "fn f() { std::thread::sleep(d); }\n";
        assert_eq!(rules("crates/cluster/src/faults.rs", src), vec!["fault-clock"]);
        // The runtime's idle waits are not fault clocks; not in scope.
        assert!(rules("crates/cluster/src/runtime.rs", src).is_empty());
    }

    #[test]
    fn marked_fault_sleep_passes() {
        let marked = "// FAULT-CLOCK: plan delay.\nstd::thread::sleep(d);\n";
        assert!(rules("crates/cluster/src/faults.rs", marked).is_empty());
        let trailing = "std::thread::sleep(d); // FAULT-CLOCK: plan delay\n";
        assert!(rules("crates/cluster/src/faults.rs", trailing).is_empty());
    }

    #[test]
    fn spawn_in_faults_module_is_flagged_by_thread_discipline() {
        assert_eq!(
            rules("crates/cluster/src/faults.rs", "std::thread::spawn(|| {});\n"),
            vec!["thread-spawn"]
        );
    }

    #[test]
    fn simd_modules_accept_commented_unsafe() {
        let src = "// SAFETY: gated by avx2_available.\nunsafe { k(); }\n";
        assert!(rules("crates/core/src/distance/simd/mod.rs", src).is_empty());
        assert!(rules("crates/core/src/distance/simd/avx.rs", src).is_empty());
        // The whitelist did not widen beyond the simd boundary.
        assert_eq!(
            rules("crates/core/src/distance/ed.rs", src),
            vec!["unsafe-whitelist"]
        );
    }

    #[test]
    fn rustdoc_safety_section_satisfies_the_safety_rule() {
        let src = "/// # Safety\n/// Callers uphold X.\npub unsafe fn k() {}\n";
        assert!(rules("crates/core/src/distance/simd/avx.rs", src).is_empty());
    }

    #[test]
    fn target_feature_without_named_guard_is_flagged() {
        let src = "/// # Safety\n/// The CPU must support AVX2.\n#[target_feature(enable = \"avx2\")]\npub unsafe fn k() {}\n";
        assert_eq!(
            rules("crates/core/src/distance/simd/avx.rs", src),
            vec!["target-feature-guard"]
        );
    }

    #[test]
    fn target_feature_naming_its_guard_passes() {
        let doc = "/// # Safety\n/// Gated by [`super::avx2_available`].\n#[target_feature(enable = \"avx2\")]\npub unsafe fn k() {}\n";
        assert!(rules("crates/core/src/distance/simd/avx.rs", doc).is_empty());
        let line = "// SAFETY: callers check is_x86_feature_detected!(\"avx2\").\n#[target_feature(enable = \"avx2\")]\nunsafe fn k() {}\n";
        assert!(rules("crates/core/src/distance/simd/avx.rs", line).is_empty());
    }

    #[test]
    fn prose_about_target_feature_does_not_trip() {
        let src = "// #[target_feature] kernels live in simd/avx.rs\nfn f() {}\n";
        assert!(rules("crates/core/src/distance/mod.rs", src).is_empty());
    }

    #[test]
    fn service_sync_allows_only_the_lock_free_subset() {
        for ok in [
            "use std::sync::atomic::{AtomicU64, Ordering};\n",
            "use std::sync::Arc;\n",
            "static S: std::sync::OnceLock<u8> = std::sync::OnceLock::new();\n",
            "use std::sync::Weak;\n",
            "use parking_lot::Mutex;\n",
        ] {
            assert!(rules("crates/service/src/histogram.rs", ok).is_empty(), "{ok}");
        }
        for bad in [
            "use std::sync::Mutex;\n",
            "use std::sync::Condvar;\n",
            "use std::sync::mpsc::channel;\n",
            "let (tx, rx) = std::sync::mpsc::channel();\n",
        ] {
            assert_eq!(
                rules("crates/service/src/histogram.rs", bad),
                vec!["service-sync"],
                "{bad}"
            );
        }
    }

    #[test]
    fn feedback_store_is_held_to_the_lock_free_subset() {
        // The online feedback store is appended to from query hot
        // paths; rule 8 covers it exactly like the service crate.
        let atomics = "use std::sync::atomic::{AtomicU64, Ordering};\nuse std::sync::Arc;\n";
        assert!(rules("crates/sched/src/feedback.rs", atomics).is_empty());
        for bad in [
            "use std::sync::Mutex;\n",
            "use std::sync::RwLock;\n",
            "let (tx, rx) = std::sync::mpsc::channel();\n",
        ] {
            assert_eq!(
                rules("crates/sched/src/feedback.rs", bad),
                vec!["service-sync"],
                "{bad}"
            );
        }
        // Only the feedback store — the rest of the sched crate may
        // still use blocking std::sync types.
        assert!(rules("crates/sched/src/admission.rs", "use std::sync::Mutex;\n").is_empty());
    }

    #[test]
    fn service_sync_rule_is_scoped_to_the_service_crate() {
        let src = "use std::sync::Mutex;\n";
        assert!(rules("crates/cluster/src/runtime.rs", src).is_empty());
        assert!(rules("crates/core/src/sync.rs", src).is_empty());
        // Prose and strings never trip it.
        let prose = "// std::sync::Mutex is banned here\nlet s = \"std::sync::Mutex\";\n";
        assert!(rules("crates/service/src/histogram.rs", prose).is_empty());
        // The service crate root is also held to `#![forbid(unsafe_code)]`.
        assert_eq!(rules("crates/service/src/lib.rs", "pub mod x;\n"), vec!["lint-attrs"]);
    }

    #[test]
    fn lifetimes_do_not_derail_the_stripper() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { let c = 'x'; todo!() }\n";
        assert!(rules("crates/sched/src/linreg.rs", src).is_empty());
    }
}
