//! # odyssey-bench
//!
//! Harnesses that regenerate every table and figure of the paper's
//! evaluation (Section 5). Each figure has a binary printing the same
//! rows/series the paper plots:
//!
//! ```text
//! cargo run --release -p odyssey-bench --bin table1
//! cargo run --release -p odyssey-bench --bin fig04_regression
//! cargo run --release -p odyssey-bench --bin fig06_threshold
//! cargo run --release -p odyssey-bench --bin fig10_scheduling
//! cargo run --release -p odyssey-bench --bin fig11_query_scalability
//! cargo run --release -p odyssey-bench --bin fig12_dataset_scalability
//! cargo run --release -p odyssey-bench --bin fig13_throughput
//! cargo run --release -p odyssey-bench --bin fig14_index_size
//! cargo run --release -p odyssey-bench --bin fig15_replication
//! cargo run --release -p odyssey-bench --bin fig16_replication_real
//! cargo run --release -p odyssey-bench --bin fig17_index_and_competitors
//! cargo run --release -p odyssey-bench --bin fig18_knn
//! cargo run --release -p odyssey-bench --bin fig19_dtw
//! ```
//!
//! Set `ODYSSEY_BENCH_SCALE` (default `1`) to multiply dataset and query
//! sizes. Reported times are **simulated seconds**: per-node work units
//! (see `odyssey_cluster::units`) scaled by a constant and the per-node
//! thread count — the max-over-nodes analogue of the paper's
//! measurements. Absolute values are not comparable to the paper's
//! cluster; shapes (who wins, scaling slopes, crossovers) are.
//!
//! Criterion micro-benchmarks (`cargo bench -p odyssey-bench`) cover the
//! kernels plus three ablations of DESIGN.md §5: RS-batch counts, the
//! queue-size threshold, and traversal helping.

#![forbid(unsafe_code)]


use odyssey_cluster::{BatchReport, ClusterConfig};
use odyssey_core::series::DatasetBuffer;
use odyssey_workloads::generator;
use odyssey_workloads::queries::{QueryWorkload, WorkloadKind};

/// Scale multiplier from `ODYSSEY_BENCH_SCALE`.
pub fn scale() -> usize {
    std::env::var("ODYSSEY_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

/// Default series length for the harnesses (kept moderate so every
/// figure regenerates in minutes on one machine).
pub const SERIES_LEN: usize = 128;

/// Base collection size before scaling.
pub const BASE_SERIES: usize = 6_000;

/// The seismic-like dataset at harness scale.
pub fn seismic_like(mult: usize) -> DatasetBuffer {
    generator::noisy_walk(BASE_SERIES * scale() * mult, SERIES_LEN, 0x5E15)
}

/// The random-walk dataset at harness scale.
pub fn random_like(mult: usize) -> DatasetBuffer {
    generator::random_walk(BASE_SERIES * scale() * mult, SERIES_LEN, 0x7A2D)
}

/// A clustered (embedding-like) dataset at harness scale.
pub fn clustered_like(mult: usize, n_clusters: usize, spread: f32, seed: u64) -> DatasetBuffer {
    generator::cluster_mixture(
        BASE_SERIES * scale() * mult,
        SERIES_LEN,
        n_clusters,
        spread,
        seed,
    )
}

/// The standard mixed-difficulty batch used by the scheduling and
/// replication harnesses.
pub fn mixed_queries(data: &DatasetBuffer, n: usize, seed: u64) -> QueryWorkload {
    QueryWorkload::generate(
        data,
        n,
        WorkloadKind::Mixed {
            hard_fraction: 0.3,
            noise: 0.05,
        },
        seed,
    )
}

/// A locality-preserving graded-difficulty batch (every query's true
/// neighborhood lives in one chunk; noise — and hence work — grows along
/// the batch). The replication and BSF-sharing figures use this: the
/// paper's corresponding results depend on real-data locality.
pub fn graded_queries(data: &DatasetBuffer, n: usize, seed: u64) -> QueryWorkload {
    QueryWorkload::generate(data, n, WorkloadKind::Graded { max_noise: 0.8 }, seed)
}

/// Runs one cluster configuration over a batch, returning the report.
pub fn run_config(data: &DatasetBuffer, queries: &DatasetBuffer, cfg: ClusterConfig) -> BatchReport {
    let cluster = odyssey_cluster::OdysseyCluster::build(data, cfg);
    cluster.answer_batch(queries)
}

/// The scheduler variants compared in Figure 10, in the paper's legend
/// order: `(label, policy, work_stealing)`.
pub fn scheduler_variants() -> Vec<(&'static str, odyssey_cluster::SchedulerKind, bool)> {
    use odyssey_cluster::SchedulerKind as S;
    vec![
        ("static", S::Static, false),
        ("dynamic", S::Dynamic, false),
        ("predict-st-unsorted", S::PredictStUnsorted, false),
        ("predict-st", S::PredictSt, false),
        ("predict-dn", S::PredictDn, false),
        ("work-steal", S::Dynamic, true),
        ("work-steal-predict", S::PredictDn, true),
    ]
}

/// The replication strategies valid for `n_nodes`, in the paper's order
/// (EQUALLY-SPLIT, PARTIAL-4, PARTIAL-2, FULL), deduplicated when they
/// coincide (e.g. 1 node).
pub fn replication_options(n_nodes: usize) -> Vec<odyssey_cluster::Replication> {
    use odyssey_cluster::Replication as R;
    let mut out = Vec::new();
    let mut groups_seen = Vec::new();
    for r in [R::EquallySplit, R::Partial(4), R::Partial(2), R::Full] {
        let k = r.n_groups(n_nodes);
        if k >= 1 && k <= n_nodes && n_nodes.is_multiple_of(k) && !groups_seen.contains(&k) {
            groups_seen.push(k);
            out.push(r);
        }
    }
    out
}

/// Formats a simulated-seconds value, switching to ms/µs for small
/// magnitudes so scaled-down runs stay readable.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else if s > 0.0 {
        format!("{:.1}us", s * 1e6)
    } else {
        "0".into()
    }
}

/// Prints a header row followed by a separator, padded to `widths`.
pub fn print_table_header(cols: &[&str], widths: &[usize]) {
    let row: Vec<String> = cols
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", row.join("  "));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
}

/// Prints one table row padded to `widths`.
pub fn print_table_row(cells: &[String], widths: &[usize]) {
    let row: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", row.join("  "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_one() {
        // (Cannot mutate the environment safely in tests; just check the
        // parse path with the default.)
        assert!(scale() >= 1);
    }

    #[test]
    fn generators_produce_requested_sizes() {
        let d = generator::random_walk(100, SERIES_LEN, 1);
        assert_eq!(d.num_series(), 100);
        let q = mixed_queries(&d, 7, 3);
        assert_eq!(q.len(), 7);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(123.4), "123");
        assert_eq!(fmt_secs(1.234), "1.23");
        assert_eq!(fmt_secs(0.1234), "123.40ms");
    }
}
