//! Failover benchmark: emits `BENCH_failover.json` measuring recovery
//! latency and answer coverage when a node is killed mid-batch, across
//! the paper's replication settings at four nodes (FULL, PARTIAL-2,
//! PARTIAL-N / equally-split).
//!
//! For each (replication, kill-time) scenario the harness runs the same
//! batch twice — fault-free baseline, then with a deterministic
//! [`FaultPlan`] killing one node after N query executions — and
//! records:
//!
//! - **recovery latency** in simulated seconds: how much longer the
//!   faulted batch ran (max-over-nodes work units) than its baseline,
//!   i.e. the price of re-routing the dead node's unfinished queries to
//!   a surviving replica;
//! - **coverage**: the fraction of queries answered `Complete`, and the
//!   worst-case fraction of the collection still covered by a
//!   `Partial` answer (1.0 unless the victim's whole group died);
//! - **exactness**: every `Complete` answer must be bit-identical to
//!   the fault-free run, and every `Partial` answer must never beat the
//!   true nearest neighbor (degraded answers are honest). Whenever the
//!   victim's group keeps a survivor the batch must stay fully covered
//!   with **zero** mismatches — asserted at exit, so CI fails loudly.
//!
//! Scheduling is [`SchedulerKind::Static`] so each node's assigned
//! query count — and therefore whether a "kill after N" fault fires —
//! is deterministic rather than a dynamic-claim race.
//!
//! ```text
//! cargo run --release -p odyssey-bench --bin failover [out.json]
//! ```
//!
//! `ODYSSEY_BENCH_SCALE` multiplies the dataset and query counts as in
//! every other harness.

use odyssey_cluster::{
    units, ClusterConfig, Coverage, FaultPlan, OdysseyCluster, Replication, SchedulerKind,
};
use odyssey_core::distance::euclidean_sq;
use odyssey_workloads::generator::random_walk;
use odyssey_workloads::queries::{QueryWorkload, WorkloadKind};

const NODES: usize = 4;
const THREADS_PER_NODE: usize = 2;

/// One (replication, kill-time) measurement, already formatted as JSON.
struct Scenario {
    json: String,
    mismatches: usize,
}

#[allow(clippy::too_many_arguments)]
fn run_scenario(
    label: &str,
    data: &odyssey_core::series::DatasetBuffer,
    queries: &odyssey_workloads::queries::QueryWorkload,
    truth_sq: &[f64],
    replication: Replication,
    victim: usize,
    after: usize,
) -> Scenario {
    let clean = OdysseyCluster::build(
        data,
        ClusterConfig::new(NODES)
            .with_replication(replication)
            .with_scheduler(SchedulerKind::Static)
            .with_threads_per_node(THREADS_PER_NODE)
            .with_leaf_capacity(64),
    );
    let faulted = clean.reconfigured(|c| c.with_fault_plan(FaultPlan::new().kill(victim, after)));

    let baseline = clean.answer_batch(&queries.queries);
    let report = faulted.answer_batch(&queries.queries);

    let recovery_s = units::recovery_seconds(
        report.makespan_units(),
        baseline.makespan_units(),
        THREADS_PER_NODE,
    );
    let nq = report.answers.len();
    let complete = report.coverage.iter().filter(|c| c.is_complete()).count();

    // Worst-case fraction of the collection a Partial answer still
    // covers (in series, over this cluster's own chunking).
    let n_series = data.num_series();
    let mut min_covered = 1.0f64;
    for cov in &report.coverage {
        if let Coverage::Partial { missing_groups } = cov {
            let lost: usize = missing_groups
                .iter()
                .map(|&g| faulted.chunk_ids(g).len())
                .sum();
            min_covered = min_covered.min((n_series - lost) as f64 / n_series as f64);
        }
    }

    // Exactness: Complete answers bit-identical to the baseline;
    // Partial answers never better than the true nearest neighbor.
    let mut mismatches = 0usize;
    for (qi, got) in report.answers.iter().enumerate() {
        match &report.coverage[qi] {
            Coverage::Complete => {
                if got.distance.to_bits() != baseline.answers[qi].distance.to_bits() {
                    mismatches += 1;
                }
            }
            Coverage::Partial { .. } => {
                if got.distance_sq < truth_sq[qi] - 1e-9 {
                    mismatches += 1;
                }
            }
        }
    }

    let json = format!(
        "    {{\"scenario\": \"{label}\", \"kill_node\": {victim}, \"kill_after\": {after}, \
         \"dead_nodes\": {:?}, \"reroutes\": {}, \"final_epoch\": {}, \
         \"baseline_makespan_units\": {}, \"faulted_makespan_units\": {}, \
         \"recovery_seconds\": {recovery_s:.6}, \
         \"complete_queries\": {complete}, \"n_queries\": {nq}, \
         \"min_covered_fraction\": {min_covered:.4}, \"mismatches\": {mismatches}}}",
        report.dead_nodes,
        report.reroutes,
        report.final_epoch,
        baseline.makespan_units(),
        report.makespan_units(),
    );
    Scenario { json, mismatches }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_failover.json".to_string());
    let scale = odyssey_bench::scale();
    let n_series = 2_000 * scale;
    let series_len = 64;
    let n_queries = 16 * scale;
    let data = random_walk(n_series, series_len, 0x701);
    let queries = QueryWorkload::generate(
        &data,
        n_queries,
        WorkloadKind::Mixed { hard_fraction: 0.5, noise: 0.05 },
        0x702,
    );

    // Ground truth for the degraded-answer honesty check: a Partial
    // answer searches a subset of chunks, so it can never beat the full
    // collection's nearest neighbor.
    let truth_sq: Vec<f64> = (0..n_queries)
        .map(|qi| {
            let q = queries.query(qi);
            (0..n_series)
                .map(|i| euclidean_sq(q, data.series(i)))
                .fold(f64::INFINITY, f64::min)
        })
        .collect();

    // Kill times: immediately, mid-workload, and past the victim's
    // static assignment (the fault never fires — phantom-death guard).
    let kill_times = [0usize, n_queries / (2 * NODES), 10 * n_queries];
    let topologies: &[(&str, Replication)] = &[
        ("FULL", Replication::Full),
        ("PARTIAL-2", Replication::Partial(2)),
        ("PARTIAL-N", Replication::EquallySplit),
    ];

    let mut scenarios = Vec::new();
    let mut survivor_mismatches = 0usize;
    for &(label, replication) in topologies {
        let has_survivor = !matches!(replication, Replication::EquallySplit);
        for &after in &kill_times {
            let s = run_scenario(label, &data, &queries, &truth_sq, replication, 1, after);
            if has_survivor {
                survivor_mismatches += s.mismatches;
            }
            scenarios.push((s, has_survivor));
        }
    }

    let total_mismatches: usize = scenarios.iter().map(|(s, _)| s.mismatches).sum();
    let body: Vec<String> = scenarios.iter().map(|(s, _)| s.json.clone()).collect();
    let json = format!(
        "{{\n  \"bench\": \"failover\",\n  \"n_series\": {n_series},\n  \
         \"series_len\": {series_len},\n  \"n_queries\": {n_queries},\n  \
         \"nodes\": {NODES},\n  \"threads_per_node\": {THREADS_PER_NODE},\n  \
         \"scheduler\": \"static\",\n  \"scenarios\": [\n{}\n  ],\n  \
         \"mismatches\": {total_mismatches}\n}}\n",
        body.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_failover.json");
    print!("{json}");
    assert_eq!(
        survivor_mismatches, 0,
        "a kill with a surviving replica changed or degraded answers"
    );
    assert_eq!(
        total_mismatches, 0,
        "a degraded (Partial) answer beat the true nearest neighbor"
    );
}
