//! Figure 14: total index size per replication strategy (8 nodes), for
//! every dataset.
//!
//! Paper shape: index size is small relative to the raw data and grows
//! proportionally with the replication degree (FULL = N × EQUALLY-SPLIT).

use odyssey_bench::{print_table_header, print_table_row, replication_options};
use odyssey_cluster::{ClusterConfig, OdysseyCluster};
use odyssey_workloads::dataset_registry;

fn main() {
    let n_nodes = 8;
    let scale = odyssey_bench::scale();
    println!("Figure 14: total index size in MB ({n_nodes} nodes)\n");
    let reps = replication_options(n_nodes);
    let mut widths = vec![10usize];
    widths.extend(reps.iter().map(|_| 14usize));
    let mut header = vec!["dataset".to_string()];
    header.extend(reps.iter().map(|r| r.label()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table_header(&header_refs, &widths);
    for spec in dataset_registry() {
        // Scale the registry defaults down so all six datasets build fast.
        let n = (spec.repro_series / 4).max(2000) * scale;
        let data = spec.generate_scaled(n, 0xF1914);
        let mut cells = vec![spec.name.to_string()];
        for rep in &reps {
            let cfg = ClusterConfig::new(n_nodes)
                .with_replication(*rep)
                .with_leaf_capacity(128);
            let cluster = OdysseyCluster::build(&data, cfg);
            let mb = cluster.build_report().total_index_bytes() as f64 / (1024.0 * 1024.0);
            cells.push(format!("{mb:.2}"));
        }
        let raw_mb = data.size_bytes() as f64 / (1024.0 * 1024.0);
        cells.push(format!("(raw {raw_mb:.1} MB)"));
        let mut w = widths.clone();
        w.push(16);
        print_table_row(&cells, &w);
    }
    println!("\npaper shape: index size << data size; FULL = replication-degree x");
    println!("EQUALLY-SPLIT (space is the price of replication).");
}
