//! Figure 11: query answering scalability as the number of queries
//! increases (Random, WORK-STEAL).
//!
//! The paper's claim: executing `j·Q` queries on `j` nodes takes the same
//! time as `Q` queries on 1 node — rows of the table should be roughly
//! constant along the diagonal.

use odyssey_bench::{fmt_secs, mixed_queries, print_table_header, print_table_row, random_like};
use odyssey_cluster::{ClusterConfig, OdysseyCluster, Replication, SchedulerKind};

fn run_panel(title: &str, replication: Replication, node_counts: &[usize]) {
    let data = random_like(1);
    let base_q = 25 * odyssey_bench::scale();
    let query_counts: Vec<usize> = [1usize, 2, 4, 8].iter().map(|m| m * base_q).collect();
    println!("{title}\n");
    let mut widths = vec![10usize];
    widths.extend(query_counts.iter().map(|_| 10usize));
    let mut header = vec!["".to_string()];
    header.extend(query_counts.iter().map(|q| format!("{q} qrs")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table_header(&header_refs, &widths);
    for &n in node_counts {
        let mut cells = vec![format!("{n} nodes")];
        for &nq in &query_counts {
            let queries = mixed_queries(&data, nq, 0xF1911);
            let cfg = ClusterConfig::new(n)
                .with_replication(replication)
                .with_scheduler(SchedulerKind::Dynamic)
                .with_work_stealing(true)
                .with_leaf_capacity(128);
            let tpn = cfg.threads_per_node;
            let cluster = OdysseyCluster::build(&data, cfg);
            let report = cluster.answer_batch(&queries.queries);
            cells.push(fmt_secs(report.makespan_seconds(tpn)));
        }
        print_table_row(&cells, &widths);
    }
    println!();
}

fn main() {
    println!("Figure 11: query answering scalability (random, WORK-STEAL)\n");
    run_panel("(a) FULL replication", Replication::Full, &[1, 2, 4, 8]);
    run_panel("(b) PARTIAL-2 replication", Replication::Partial(2), &[2, 4, 8]);
    println!("paper shape: time for j*Q queries on j nodes ~= time for Q queries on 1");
    println!("node (near-perfect scaling along the diagonal).");
}
