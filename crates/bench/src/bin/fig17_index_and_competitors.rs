//! Figure 17: index scalability (a–c) and the comparison against the
//! competitors with Odyssey's partitioning schemes (d).
//!
//! (a) index time vs dataset size (Deep-like, EQUALLY-SPLIT, 16 nodes);
//! (b) index time vs node count (Deep-like, EQUALLY-SPLIT);
//! (c) dataset size and node count growing together (Random);
//! (d) WORK-STEAL-PREDICT vs DMESSI, DMESSI-SW-BSF, DPiSAX, plus
//!     Odyssey's EQUALLY-SPLIT / DENSITY-AWARE / FULL partitioning.

use odyssey_baselines::{dmessi_config, dmessi_sw_bsf_config, DpiSaxCluster};
use odyssey_bench::{
    clustered_like, fmt_secs, graded_queries, print_table_header, print_table_row, seismic_like,
};
use odyssey_cluster::{units, ClusterConfig, OdysseyCluster, Replication, SchedulerKind};
use odyssey_partition::{DensityAwareConfig, PartitioningScheme};

fn index_row(cluster: &OdysseyCluster, tpn: usize) -> (f64, f64) {
    let r = cluster.build_report();
    (
        units::units_to_seconds(r.max_buffer_units(), tpn),
        units::units_to_seconds(r.max_tree_units(), tpn),
    )
}

fn main() {
    let scale = odyssey_bench::scale();

    // --- (a) index time vs dataset size, 16 nodes ----------------------
    println!("Figure 17a: index time vs dataset size (deep-like, EQUALLY-SPLIT, 16 nodes)\n");
    let widths = [10usize, 12, 12, 12];
    print_table_header(&["size", "buffers (s)", "tree (s)", "total (s)"], &widths);
    for m in [1usize, 2, 3, 4] {
        let data = clustered_like(m, 64, 0.2, 0xDEE9);
        let cfg = ClusterConfig::new(16)
            .with_replication(Replication::EquallySplit)
            .with_leaf_capacity(128);
        let tpn = cfg.threads_per_node;
        let cluster = OdysseyCluster::build(&data, cfg);
        let (b, t) = index_row(&cluster, tpn);
        print_table_row(
            &[
                format!("x{m}"),
                fmt_secs(b),
                fmt_secs(t),
                fmt_secs(b + t),
            ],
            &widths,
        );
    }
    println!("\npaper shape: linear growth with dataset size.\n");

    // --- (b) index time vs node count -----------------------------------
    println!("Figure 17b: index time vs node count (deep-like, EQUALLY-SPLIT)\n");
    print_table_header(&["nodes", "buffers (s)", "tree (s)", "total (s)"], &widths);
    let data_b = clustered_like(4, 64, 0.2, 0xDEE9);
    for n in [2usize, 4, 8, 16] {
        let cfg = ClusterConfig::new(n)
            .with_replication(Replication::EquallySplit)
            .with_leaf_capacity(128);
        let tpn = cfg.threads_per_node;
        let cluster = OdysseyCluster::build(&data_b, cfg);
        let (b, t) = index_row(&cluster, tpn);
        print_table_row(
            &[n.to_string(), fmt_secs(b), fmt_secs(t), fmt_secs(b + t)],
            &widths,
        );
    }
    println!("\npaper shape: ~2x speedup per node doubling (optimal speedup).\n");

    // --- (c) size and nodes growing together ----------------------------
    println!("Figure 17c: size and node count growing linearly together (random)\n");
    print_table_header(&["config", "buffers (s)", "tree (s)", "total (s)"], &widths);
    for (m, n) in [(1usize, 1usize), (2, 2), (4, 4)] {
        let data = odyssey_bench::random_like(m);
        let cfg = ClusterConfig::new(n)
            .with_replication(Replication::EquallySplit)
            .with_leaf_capacity(128);
        let tpn = cfg.threads_per_node;
        let cluster = OdysseyCluster::build(&data, cfg);
        let (b, t) = index_row(&cluster, tpn);
        print_table_row(
            &[
                format!("x{m}/{n}nd"),
                fmt_secs(b),
                fmt_secs(t),
                fmt_secs(b + t),
            ],
            &widths,
        );
    }
    println!("\npaper shape: near-constant rows (perfect data scalability).\n");

    // --- (d) competitors + partitioning schemes -------------------------
    let data = seismic_like(1);
    let n_queries = 24 * scale;
    let queries = graded_queries(&data, n_queries, 0xF1917);
    println!("Figure 17d: WORK-STEAL-PREDICT vs competitors (seismic-like, {n_queries} queries)\n");
    let node_counts = [2usize, 4, 8];
    let mut widths = vec![34usize];
    widths.extend(node_counts.iter().map(|_| 11usize));
    let mut header = vec!["system".to_string()];
    header.extend(node_counts.iter().map(|n| format!("{n} nodes")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table_header(&header_refs, &widths);

    let odyssey = |rep: Replication, part: PartitioningScheme| {
        move |n: usize| {
            ClusterConfig::new(n)
                .with_replication(rep)
                .with_partitioning(part)
                .with_scheduler(SchedulerKind::PredictDn)
                .with_work_stealing(true)
                .with_leaf_capacity(128)
        }
    };
    let da = PartitioningScheme::DensityAware(DensityAwareConfig {
        segments: 16,
        lambda: 64,
        balance_tolerance: 0.05,
        n_threads: 2,
    });
    type CfgFn = Box<dyn Fn(usize) -> ClusterConfig>;
    let systems: Vec<(&str, CfgFn)> = vec![
        ("DMESSI", Box::new(|n| dmessi_config(n).with_leaf_capacity(128))),
        (
            "DMESSI-SW-BSF",
            Box::new(|n| dmessi_sw_bsf_config(n).with_leaf_capacity(128)),
        ),
        (
            "work-steal-predict (equally-split)",
            Box::new(odyssey(
                Replication::EquallySplit,
                PartitioningScheme::EquallySplit,
            )),
        ),
        (
            "work-steal-predict (density-aware)",
            Box::new(odyssey(Replication::EquallySplit, da)),
        ),
        (
            "work-steal-predict (full-replication)",
            Box::new(odyssey(Replication::Full, PartitioningScheme::EquallySplit)),
        ),
    ];
    for (label, mk) in &systems {
        let mut cells = vec![label.to_string()];
        for &n in &node_counts {
            let cfg = mk(n);
            let tpn = cfg.threads_per_node;
            let cluster = OdysseyCluster::build(&data, cfg);
            let report = cluster.answer_batch(&queries.queries);
            cells.push(fmt_secs(report.makespan_seconds(tpn)));
        }
        print_table_row(&cells, &widths);
    }
    // DPiSAX has its own partitioner, so it builds through its own path.
    let mut cells = vec!["DPiSAX".to_string()];
    for &n in &node_counts {
        let cluster = DpiSaxCluster::build(&data, n, 0xD715);
        let report = cluster.answer_batch(&queries.queries);
        cells.push(fmt_secs(report.makespan_seconds(2)));
    }
    print_table_row(&cells, &widths);
    println!("\npaper shape: DMESSI worst (up to 6.6x slower than Odyssey FULL);");
    println!("DMESSI-SW-BSF and DPiSAX in between (~3.7-3.8x); density-aware beats");
    println!("equally-split; Odyssey FULL best.");
}
