//! Batch-engine throughput smoke benchmark: emits `BENCH_batch.json`
//! comparing the persistent [`BatchEngine`] worker pool against the
//! per-query `std::thread::scope` path on the same easy-query workload
//! (where per-query thread/scratch setup dominates).
//!
//! Runs as a CI smoke step next to `hotpath`: queries/sec plus p50/p99
//! latency for both execution modes, and a brute-force exactness check
//! (zero mismatches is part of the contract).
//!
//! ```text
//! cargo run --release -p odyssey-bench --bin batch_throughput [out.json]
//! ```
//!
//! `ODYSSEY_BENCH_SCALE` multiplies the dataset and query counts as in
//! every other harness.

use odyssey_core::index::{Index, IndexConfig};
use odyssey_core::search::engine::{BatchEngine, BatchQuery, QueryKind};
use odyssey_core::search::exact::{exact_search, SearchParams};
use odyssey_workloads::generator::random_walk;
use odyssey_workloads::queries::{QueryWorkload, WorkloadKind};
use std::sync::Arc;

/// Threads per query execution (both modes). Easy queries do not
/// profit from intra-query parallelism, which is exactly the regime
/// where per-query thread provisioning is pure overhead.
const THREADS: usize = 8;

fn percentile_us(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

struct ModeReport {
    median_us: f64,
    p99_us: f64,
    qps: f64,
}

fn report(mut latencies_us: Vec<f64>, total_s: f64) -> ModeReport {
    latencies_us.sort_by(f64::total_cmp);
    ModeReport {
        median_us: percentile_us(&latencies_us, 0.5),
        p99_us: percentile_us(&latencies_us, 0.99),
        qps: latencies_us.len() as f64 / total_s,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_batch.json".to_string());
    let scale = odyssey_bench::scale();
    let n_series = 8_000 * scale;
    let series_len = 128;
    let n_queries = 64 * scale;
    let data = random_walk(n_series, series_len, 0x501);
    let index = Arc::new(Index::build(
        data.clone(),
        IndexConfig::new(series_len)
            .with_segments(16)
            .with_leaf_capacity(128),
        2,
    ));
    // The easy-query mix: near-duplicates of indexed series, whose
    // searches finish quickly — setup overhead dominates.
    let workload = QueryWorkload::generate(&data, n_queries, WorkloadKind::Easy { noise: 0.005 }, 0x502);
    let params = SearchParams::new(THREADS);
    let engine = BatchEngine::new(Arc::clone(&index), THREADS);

    // Warm-up both paths (page in the layout, spin up the pool).
    for qi in 0..n_queries.min(4) {
        let _ = exact_search(&index, workload.query(qi), &params);
        let _ = engine.exact(workload.query(qi), &params);
    }

    // --- Per-query-scope baseline (the pre-engine execution path) ------
    let mut scope_lat = Vec::with_capacity(n_queries);
    let mut scope_answers = Vec::with_capacity(n_queries);
    let t0 = std::time::Instant::now();
    for qi in 0..n_queries {
        let q = workload.query(qi);
        let t = std::time::Instant::now();
        let out = exact_search(&index, q, &params);
        scope_lat.push(t.elapsed().as_secs_f64() * 1e6);
        scope_answers.push(out.answer);
    }
    let scope_total = t0.elapsed().as_secs_f64();

    // --- Persistent pool, one query at a time ---------------------------
    let mut pool_lat = Vec::with_capacity(n_queries);
    let mut pool_answers = Vec::with_capacity(n_queries);
    let t0 = std::time::Instant::now();
    for qi in 0..n_queries {
        let q = workload.query(qi);
        let t = std::time::Instant::now();
        let out = engine.exact(q, &params);
        pool_lat.push(t.elapsed().as_secs_f64() * 1e6);
        pool_answers.push(out.answer);
    }
    let pool_total = t0.elapsed().as_secs_f64();

    // --- Whole-batch entry point (what schedulers feed) -----------------
    let batch: Vec<BatchQuery> = (0..n_queries)
        .map(|qi| BatchQuery::new(workload.query(qi), QueryKind::Exact))
        .collect();
    let order: Vec<usize> = (0..n_queries).collect();
    let batch_out = engine.run_batch(&batch, &order, &params);
    let batch_qps = n_queries as f64 / batch_out.wall.as_secs_f64();

    // Exactness: both modes against brute force, and against each other.
    let mut mismatches = 0usize;
    for qi in 0..n_queries {
        let want = index.brute_force(workload.query(qi));
        for got in [
            &scope_answers[qi],
            &pool_answers[qi],
            batch_out.items[qi].answer.nn(),
        ] {
            if (got.distance - want.distance).abs() > 1e-9 {
                mismatches += 1;
            }
        }
    }

    let scope = report(scope_lat, scope_total);
    let pool = report(pool_lat, pool_total);
    let json = format!(
        "{{\n  \"bench\": \"batch_throughput\",\n  \"n_series\": {n_series},\n  \
         \"series_len\": {series_len},\n  \"n_queries\": {n_queries},\n  \
         \"threads\": {THREADS},\n  \
         \"scope_median_us\": {:.1},\n  \"scope_p99_us\": {:.1},\n  \
         \"scope_qps\": {:.1},\n  \
         \"pool_median_us\": {:.1},\n  \"pool_p99_us\": {:.1},\n  \
         \"pool_qps\": {:.1},\n  \"batch_qps\": {:.1},\n  \
         \"speedup_median\": {:.3},\n  \"speedup_throughput\": {:.3},\n  \
         \"brute_force_mismatches\": {mismatches}\n}}\n",
        scope.median_us,
        scope.p99_us,
        scope.qps,
        pool.median_us,
        pool.p99_us,
        pool.qps,
        batch_qps,
        scope.median_us / pool.median_us,
        pool.qps / scope.qps,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_batch.json");
    print!("{json}");
    assert_eq!(mismatches, 0, "engine diverged from brute force");
}
