//! Query-answering time breakdown (the observation of Section 3.2:
//! "the biggest part of the time for query answering goes to priority
//! queues' processing" — which is why Odyssey steals at the
//! queue-processing phase).

use odyssey_bench::{mixed_queries, print_table_header, print_table_row, seismic_like};
use odyssey_core::index::{Index, IndexConfig};
use odyssey_core::search::exact::{exact_search, SearchParams};

fn main() {
    let data = seismic_like(1);
    let n_queries = 32 * odyssey_bench::scale();
    let queries = mixed_queries(&data, n_queries, 0xB4EA);
    let index = Index::build(
        data.clone(),
        IndexConfig::new(data.series_len())
            .with_segments(16)
            .with_leaf_capacity(128),
        2,
    );
    let params = SearchParams::new(2);
    let mut traversal = std::time::Duration::ZERO;
    let mut processing = std::time::Duration::ZERO;
    let mut rows: Vec<(f64, f64, f64)> = Vec::new();
    for qi in 0..n_queries {
        let out = exact_search(&index, queries.query(qi), &params);
        traversal += out.stats.traversal_time;
        processing += out.stats.processing_time;
        rows.push((
            out.stats.initial_bsf,
            out.stats.traversal_time.as_secs_f64() * 1e3,
            out.stats.processing_time.as_secs_f64() * 1e3,
        ));
    }
    println!("Query answering time breakdown (seismic-like, {n_queries} queries)\n");
    let widths = [12usize, 15, 15, 8];
    print_table_header(
        &["initial BSF", "traversal (ms)", "queues (ms)", "queues%"],
        &widths,
    );
    rows.sort_by(|a, b| a.0.total_cmp(&b.0));
    for r in rows.iter().step_by((rows.len() / 10).max(1)) {
        let pct = 100.0 * r.2 / (r.1 + r.2).max(1e-12);
        print_table_row(
            &[
                format!("{:.3}", r.0),
                format!("{:.3}", r.1),
                format!("{:.3}", r.2),
                format!("{pct:.0}%"),
            ],
            &widths,
        );
    }
    let total = traversal + processing;
    println!(
        "\noverall: traversal {:.1}% | queue processing {:.1}%",
        100.0 * traversal.as_secs_f64() / total.as_secs_f64(),
        100.0 * processing.as_secs_f64() / total.as_secs_f64()
    );
    println!("paper observation: queue processing dominates, especially on hard");
    println!("queries — hence Odyssey steals priority queues, not tree work.");
}
