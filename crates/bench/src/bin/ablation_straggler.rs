//! Ablation: heterogeneous node speeds (failure-mode injection).
//!
//! One node of an 8-node FULL-replication cluster runs at a fraction of
//! the others' speed. Without load balancing the straggler pins the
//! makespan; Odyssey's work-stealing lets the healthy nodes drain its
//! queues. Not a paper figure — an ablation of the DESIGN.md §5 load-
//! balancing claims under conditions the paper's homogeneous cluster
//! never hits.

use odyssey_bench::{fmt_secs, print_table_header, print_table_row, seismic_like};
use odyssey_cluster::{ClusterConfig, OdysseyCluster, Replication, SchedulerKind};
use odyssey_workloads::queries::{QueryWorkload, WorkloadKind};

fn main() {
    let data = seismic_like(4);
    let n_queries = 24 * odyssey_bench::scale();
    let queries = QueryWorkload::generate(
        &data,
        n_queries,
        WorkloadKind::Mixed {
            hard_fraction: 0.25,
            noise: 0.05,
        },
        0x57A6,
    );
    println!(
        "Ablation: one straggler node (8 nodes, FULL, {n_queries} queries; node 0 slowed)\n"
    );
    let widths = [12usize, 16, 16, 9];
    print_table_header(
        &["slowdown", "no stealing", "with stealing", "steals"],
        &widths,
    );
    for slowdown in [1.0f64, 2.0, 4.0] {
        let mut cells = vec![format!("{slowdown:.0}x")];
        let mut steals = 0;
        for ws in [false, true] {
            let cfg = ClusterConfig::new(8)
                .with_replication(Replication::Full)
                .with_scheduler(SchedulerKind::Dynamic)
                .with_work_stealing(ws)
                .with_node_speed(0, 1.0 / slowdown)
                .with_leaf_capacity(128);
            let tpn = cfg.threads_per_node;
            let cluster = OdysseyCluster::build(&data, cfg);
            let report = cluster.answer_batch(&queries.queries);
            cells.push(fmt_secs(report.makespan_seconds(tpn)));
            steals = report.steals_successful;
        }
        cells.push(steals.to_string());
        print_table_row(&cells, &widths);
    }
    println!("\nexpected shape: without stealing the makespan grows with the slowdown");
    println!("(the straggler pins it); with stealing healthy nodes absorb the excess.");
}
