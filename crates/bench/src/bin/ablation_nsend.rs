//! Ablation: the number of RS-batches handed over per steal (`Nsend`).
//!
//! Section 3.2.2: "Experiments show that fixing Nsend to 4 was the best
//! choice". Too small and thieves make too many round trips; too large
//! and the victim gives away work it would have finished anyway.

use odyssey_bench::{fmt_secs, print_table_header, print_table_row, seismic_like};
use odyssey_cluster::{ClusterConfig, OdysseyCluster, Replication, SchedulerKind};
use odyssey_workloads::queries::{QueryWorkload, WorkloadKind};

fn main() {
    let data = seismic_like(8);
    let n_queries = 24 * odyssey_bench::scale();
    // A tail-heavy batch: the scenario stealing exists for.
    let queries = QueryWorkload::generate(
        &data,
        n_queries,
        WorkloadKind::Ramp {
            hard_fraction: 0.15,
            noise: 0.05,
        },
        0xAB1A,
    );
    println!("Ablation: steal batch count Nsend (seismic-like, {n_queries} ramp queries, 8 nodes, FULL, DYNAMIC)\n");
    let widths = [8usize, 13, 10, 12];
    print_table_header(&["Nsend", "makespan", "steals", "steal fails"], &widths);
    for nsend in [1usize, 2, 4, 8, 16] {
        let cfg = ClusterConfig::new(8)
            .with_replication(Replication::Full)
            .with_scheduler(SchedulerKind::Dynamic)
            .with_work_stealing(true)
            .with_steal_nsend(nsend)
            .with_leaf_capacity(128);
        let tpn = cfg.threads_per_node;
        let cluster = OdysseyCluster::build(&data, cfg);
        let report = cluster.answer_batch(&queries.queries);
        print_table_row(
            &[
                nsend.to_string(),
                fmt_secs(report.makespan_seconds(tpn)),
                report.steals_successful.to_string(),
                (report.steals_attempted - report.steals_successful).to_string(),
            ],
            &widths,
        );
    }
    println!("\npaper finding: Nsend = 4 is the sweet spot.");
}
