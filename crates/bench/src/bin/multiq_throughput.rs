//! Inter-query concurrency smoke benchmark: emits `BENCH_multiq.json`
//! comparing [`BatchEngine::run_batch_concurrent`] (admission-planned
//! worker-group lanes) against the sequential [`BatchEngine::run_batch`]
//! pool on the same easy-heavy workload — the regime where one query
//! across all workers wastes the pool (intra-query speedup is
//! saturated) and disjoint lanes lift throughput.
//!
//! Runs as a CI smoke step next to `batch_throughput`: whole-batch
//! queries/sec for both execution modes plus a brute-force exactness
//! check (zero mismatches is part of the contract, and the concurrent
//! answers must be bit-identical to the sequential ones).
//!
//! A second, **cluster** scenario exercises the engine-resident steal
//! service: a skewed two-node replication group (one node at half
//! speed) with inter-node work-stealing on, comparing stealing-only
//! against stealing **plus** inter-query lanes — the composition the
//! per-query "active slot" protocol used to forbid. Lanes must not cost
//! throughput under stealing, and answers must stay bit-identical to
//! the stealing-off sequential pool path.
//!
//! ```text
//! cargo run --release -p odyssey-bench --bin multiq_throughput [out.json]
//! ```
//!
//! `ODYSSEY_BENCH_SCALE` multiplies the dataset and query counts as in
//! every other harness.

use odyssey_cluster::{ClusterConfig, OdysseyCluster, Replication, SchedulerKind};
use odyssey_core::index::{Index, IndexConfig};
use odyssey_core::search::engine::{BatchEngine, BatchQuery, QueryKind};
use odyssey_core::search::exact::SearchParams;
use odyssey_sched::admission::{plan_lanes, AdmissionConfig};
use odyssey_sched::{mape, CostModel, OnlineCostModel, SpeedupCurve};
use odyssey_workloads::generator::random_walk;
use odyssey_workloads::queries::{QueryWorkload, WorkloadKind};
use std::sync::Arc;

/// Pool threads. Easy queries cannot use eight workers each — which is
/// exactly what lets eight single-worker lanes answer eight of them at
/// once.
const THREADS: usize = 8;

/// Best-of-N batch timings (the batch is the unit of interest here, and
/// CI hosts are noisy).
const REPS: usize = 5;

fn time_batches(mut run: impl FnMut() -> std::time::Duration) -> f64 {
    (0..REPS).map(|_| run().as_secs_f64()).fold(f64::INFINITY, f64::min)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_multiq.json".to_string());
    let scale = odyssey_bench::scale();
    let n_series = 4_000 * scale;
    let series_len = 64;
    let n_queries = 64 * scale;
    let data = random_walk(n_series, series_len, 0x601);
    let index = Arc::new(Index::build(
        data.clone(),
        IndexConfig::new(series_len)
            .with_segments(16)
            .with_leaf_capacity(64),
        2,
    ));
    // Easy-heavy workload: near-duplicates whose searches saturate at
    // one or two workers (tighter noise than `batch_throughput`, the
    // regime inter-query lanes exist for).
    let workload =
        QueryWorkload::generate(&data, n_queries, WorkloadKind::Easy { noise: 0.001 }, 0x602);
    let params = SearchParams::new(THREADS);
    let engine = BatchEngine::new(Arc::clone(&index), THREADS);

    let batch: Vec<BatchQuery> = (0..n_queries)
        .map(|qi| BatchQuery::new(workload.query(qi), QueryKind::Exact))
        .collect();
    let order: Vec<usize> = (0..n_queries).collect();
    // Admission-planned lanes from the same estimates the schedulers
    // use (the approximate-search distance).
    let estimates: Vec<f64> = (0..n_queries)
        .map(|qi| index.approx_search(workload.query(qi)).distance)
        .collect();
    // Easy queries saturate at a single worker, so the bench admits
    // them at width 1: eight queries in flight, zero intra-query
    // synchronization per lane.
    let admission = AdmissionConfig::default().with_easy_width(1);
    let plan = plan_lanes(&estimates, THREADS, &admission);
    let n_lanes: usize = plan.rounds.iter().map(|r| r.lanes.len()).max().unwrap_or(0);

    // Measured speedup-vs-width samples (the makespan solver's input):
    // seeded probes at widths {1, 2, 4, 8}, plus the Figure 8 curve
    // fitted from them.
    let curve_samples = engine.calibrate();
    let curve = SpeedupCurve::from_times(curve_samples);
    let curve_json = curve_samples
        .iter()
        .map(|&(w, s)| {
            format!(
                "{{\"width\": {w}, \"seconds\": {s:.6}, \"speedup\": {:.3}}}",
                curve.speedup(w)
            )
        })
        .collect::<Vec<_>>()
        .join(", ");

    // Warm up both paths (page in the layout, spin up the pool).
    let _ = engine.run_batch(&batch, &order, &params);
    let _ = engine.run_batch_concurrent(&batch, &plan, &params);

    let sequential_s = time_batches(|| engine.run_batch(&batch, &order, &params).wall);
    let concurrent_s =
        time_batches(|| engine.run_batch_concurrent(&batch, &plan, &params).wall);
    let sequential_qps = n_queries as f64 / sequential_s;
    let concurrent_qps = n_queries as f64 / concurrent_s;

    // Exactness: the concurrent outcome against brute force AND
    // bit-identical to the sequential pool.
    let seq_out = engine.run_batch(&batch, &order, &params);
    let conc_out = engine.run_batch_concurrent(&batch, &plan, &params);
    // One brute-force pass serves both exactness checks (engine + the
    // cluster scenario below).
    let truth: Vec<_> = (0..n_queries)
        .map(|qi| index.brute_force(workload.query(qi)))
        .collect();
    let mut mismatches = 0usize;
    for (qi, want) in truth.iter().enumerate() {
        let seq = seq_out.items[qi].answer.nn();
        let conc = conc_out.items[qi].answer.nn();
        if (conc.distance - want.distance).abs() > 1e-9 {
            mismatches += 1;
        }
        if conc.distance.to_bits() != seq.distance.to_bits() {
            mismatches += 1;
        }
    }

    // --- Skewed-node cluster scenario: stealing × lanes ---------------
    // Two nodes of one FULL-replication group share the batch; node 1
    // runs at half speed, so the straggler forces stealing. The steal
    // service lives in the engine's registry, so lanes keep serving
    // thieves mid-round — compare stealing-only vs stealing+lanes.
    let cluster_queries = &workload.queries;
    let steal_only = OdysseyCluster::build(
        &data,
        ClusterConfig::new(2)
            .with_replication(Replication::Full)
            .with_scheduler(SchedulerKind::PredictDn)
            .with_threads_per_node(4)
            .with_work_stealing(true)
            .with_node_speed(1, 0.5)
            .with_leaf_capacity(64)
            .with_inter_query_lanes(false),
    );
    let steal_lanes = steal_only.reconfigured(|c| c.with_inter_query_lanes(true));
    let sequential_cluster = steal_only.reconfigured(|c| c.with_work_stealing(false));
    // Warm up (page in both configurations once).
    let _ = steal_only.answer_batch(cluster_queries);
    let _ = steal_lanes.answer_batch(cluster_queries);
    let steal_only_s = time_batches(|| steal_only.answer_batch(cluster_queries).wall);
    let steal_lanes_s = time_batches(|| steal_lanes.answer_batch(cluster_queries).wall);
    let steal_only_qps = n_queries as f64 / steal_only_s;
    let steal_lanes_qps = n_queries as f64 / steal_lanes_s;

    // Exactness across the composition: stealing+lanes bit-identical to
    // the stealing-off sequential pool path and correct vs brute force.
    let composed = steal_lanes.answer_batch(cluster_queries);
    let sequential = sequential_cluster.answer_batch(cluster_queries);

    // Online-refit quality: score the refitted predictor against the
    // identity estimate (the pre-refit default) on the very samples the
    // runs above recorded. The refit must not be worse than no model.
    let feedback = steal_lanes.feedback();
    let fb_samples = feedback.store().snapshot();
    let identity = OnlineCostModel::new(1, 1);
    let mape_identity = mape(&identity as &dyn CostModel, &fb_samples).unwrap_or(0.0);
    let mape_refit = mape(&**feedback as &dyn CostModel, &fb_samples).unwrap_or(0.0);
    let mut cluster_mismatches = 0usize;
    for (qi, want) in truth.iter().enumerate() {
        if (composed.answers[qi].distance - want.distance).abs() > 1e-9 {
            cluster_mismatches += 1;
        }
        if composed.answers[qi].distance.to_bits() != sequential.answers[qi].distance.to_bits() {
            cluster_mismatches += 1;
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"multiq_throughput\",\n  \"n_series\": {n_series},\n  \
         \"series_len\": {series_len},\n  \"n_queries\": {n_queries},\n  \
         \"threads\": {THREADS},\n  \"easy_width\": {},\n  \"lanes\": {n_lanes},\n  \
         \"rounds\": {},\n  \
         \"sequential_qps\": {sequential_qps:.1},\n  \"concurrent_qps\": {concurrent_qps:.1},\n  \
         \"speedup_throughput\": {:.3},\n  \"mismatches\": {mismatches},\n  \
         \"cluster_skewed_steal_qps\": {steal_only_qps:.1},\n  \
         \"cluster_skewed_steal_lanes_qps\": {steal_lanes_qps:.1},\n  \
         \"cluster_steal_lanes_speedup\": {:.3},\n  \
         \"cluster_steals_attempted\": {},\n  \"cluster_steals_successful\": {},\n  \
         \"cluster_mismatches\": {cluster_mismatches},\n  \
         \"speedup_curve\": [{curve_json}],\n  \
         \"predictor_samples\": {},\n  \"predictor_refits\": {},\n  \
         \"predictor_mape_identity\": {mape_identity:.4},\n  \
         \"predictor_mape_refit\": {mape_refit:.4}\n}}\n",
        admission.easy_width,
        plan.rounds.len(),
        concurrent_qps / sequential_qps,
        steal_lanes_qps / steal_only_qps,
        composed.steals_attempted,
        composed.steals_successful,
        feedback.samples(),
        feedback.refits(),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_multiq.json");
    print!("{json}");
    assert_eq!(mismatches, 0, "concurrent engine diverged");
    assert_eq!(
        cluster_mismatches, 0,
        "stealing+lanes cluster diverged from the sequential pool path"
    );
}
