//! Figure 19: DTW similarity search with 5% warping window (Random) for
//! every replication strategy.
//!
//! Paper shape: DTW is costlier than Euclidean, but node count and
//! replication degree improve performance exactly as before.

use odyssey_bench::{
    fmt_secs, graded_queries, print_table_header, print_table_row, random_like,
    replication_options, SERIES_LEN,
};
use odyssey_cluster::{ClusterConfig, OdysseyCluster, SchedulerKind};

fn main() {
    let data = random_like(1);
    let window = (SERIES_LEN * 5) / 100; // 5% warping
    let n_queries = 12 * odyssey_bench::scale();
    let queries = graded_queries(&data, n_queries, 0xF1919);
    println!(
        "Figure 19: DTW query answering, 5% warping = {window} points (random, {n_queries} queries)\n"
    );
    let node_counts = [1usize, 2, 4, 8];
    let reps = replication_options(8);
    let mut widths = vec![14usize];
    widths.extend(node_counts.iter().map(|_| 11usize));
    let mut header = vec!["strategy".to_string()];
    header.extend(node_counts.iter().map(|n| format!("{n} nodes")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table_header(&header_refs, &widths);
    for rep in &reps {
        let mut cells = vec![rep.label()];
        for &n in &node_counts {
            let kk = rep.n_groups(n);
            if kk > n || n % kk != 0 {
                cells.push("-".into());
                continue;
            }
            let cfg = ClusterConfig::new(n)
                .with_replication(*rep)
                .with_scheduler(SchedulerKind::PredictDn)
                .with_work_stealing(true)
                .with_leaf_capacity(128);
            let tpn = cfg.threads_per_node;
            let cluster = OdysseyCluster::build(&data, cfg);
            let report = cluster.answer_batch_dtw(&queries.queries, window);
            cells.push(fmt_secs(report.makespan_seconds(tpn)));
        }
        print_table_row(&cells, &widths);
    }
    println!("\npaper shape: higher times than Euclidean; more nodes / replication");
    println!("help the same way as before.");
}
