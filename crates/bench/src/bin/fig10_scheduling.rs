//! Figure 10: Odyssey's scheduling algorithms on Seismic.
//!
//! (a) FULL replication, 1–8 nodes; (b) PARTIAL-2, 2–8 nodes. The batch
//! is a *ramp* (progressively harder, hard queries at the end — the
//! paper's adversarial case for static and plain-dynamic scheduling,
//! Section 3.1). The paper finds PREDICT-DN the best pure scheduler (up
//! to 150% better than STATIC) and WORK-STEAL-PREDICT up to ~2x better
//! again at large node counts.

use odyssey_bench::{
    fmt_secs, print_table_header, print_table_row, scheduler_variants, seismic_like,
};
use odyssey_cluster::{ClusterConfig, OdysseyCluster, Replication};
use odyssey_workloads::queries::{QueryWorkload, WorkloadKind};

fn run_panel(title: &str, replication: Replication, node_counts: &[usize]) {
    let data = seismic_like(8);
    let n_queries = 24 * odyssey_bench::scale();
    let queries = QueryWorkload::generate(
        &data,
        n_queries,
        WorkloadKind::Ramp {
            hard_fraction: 0.15,
            noise: 0.05,
        },
        0xF1910,
    );
    println!("{title} ({n_queries} queries)\n");
    let mut widths = vec![20usize];
    widths.extend(node_counts.iter().map(|_| 10usize));
    let mut header = vec!["scheduler"];
    let labels: Vec<String> = node_counts.iter().map(|n| format!("{n} nodes")).collect();
    header.extend(labels.iter().map(|s| s.as_str()));
    print_table_header(&header, &widths);
    // One index build per node count; schedulers sweep via reconfigure.
    let mut rows: Vec<Vec<String>> = scheduler_variants()
        .iter()
        .map(|(label, _, _)| vec![label.to_string()])
        .collect();
    for &n in node_counts {
        let base = OdysseyCluster::build(
            &data,
            ClusterConfig::new(n)
                .with_replication(replication)
                .with_leaf_capacity(128),
        );
        for (row, (_, kind, ws)) in rows.iter_mut().zip(scheduler_variants()) {
            let cluster =
                base.reconfigured(|c| c.with_scheduler(kind).with_work_stealing(ws));
            let tpn = cluster.config().threads_per_node;
            let report = cluster.answer_batch(&queries.queries);
            row.push(fmt_secs(report.makespan_seconds(tpn)));
        }
    }
    for row in rows {
        print_table_row(&row, &widths);
    }
    println!();
}

fn main() {
    println!("Figure 10: Odyssey's scheduling algorithms (seismic-like)\n");
    run_panel("(a) FULL replication", Replication::Full, &[1, 2, 4, 8]);
    run_panel("(b) PARTIAL-2 replication", Replication::Partial(2), &[2, 4, 8]);
    println!("paper shape: predict-dn beats static (up to 150%); work-steal-predict");
    println!("beats predict-dn at larger node counts (up to ~2x, FULL).");
}
