//! Table 1: details of datasets used in experiments — paper scale and
//! this reproduction's stand-in scale.

use odyssey_bench::{print_table_header, print_table_row};
use odyssey_workloads::dataset_registry;

fn main() {
    println!("Table 1: Details of datasets used in experiments");
    println!("(paper scale vs. this reproduction's synthetic stand-ins)\n");
    let widths = [9, 12, 8, 10, 22, 14];
    print_table_header(
        &[
            "Dataset",
            "# series",
            "Length",
            "Size (GB)",
            "Description",
            "Repro #series",
        ],
        &widths,
    );
    for d in dataset_registry() {
        print_table_row(
            &[
                d.name.to_string(),
                d.paper_series.to_string(),
                d.paper_len.to_string(),
                d.paper_size_gb.to_string(),
                d.description.to_string(),
                d.repro_series.to_string(),
            ],
            &widths,
        );
    }
    println!("\nStand-in families: Seismic=noisy random walk; Astro/Deep/Sift/Yan-TtI=");
    println!("cluster mixtures (density skew); Random=plain random walk. See DESIGN.md §2.");
}
