//! Online-service load sweep: emits `BENCH_service.json` measuring
//! per-class tail latency (p50/p90/p99) under an **open-loop** arrival
//! stream at three offered-load points — comfortably under capacity,
//! near saturation, and past it. The past-saturation point must show
//! the bounded admission queue shedding load (`rejected > 0`): an
//! open-loop client does not slow down when the service falls behind,
//! so without backpressure the queue would grow without bound.
//!
//! Capacity is probed first by timing the same mixed ED / DTW / k-NN
//! query pool through the closed batch path (`run_batch`), which also
//! produces the reference answers: every answer the service completes
//! must be **bit-identical** to the batch path's — asserted at exit,
//! so CI fails loudly on any divergence.
//!
//! Arrival schedules are deterministic: exponential inter-arrival gaps
//! from a fixed-seed xorshift, one seed per load point. (Wall-clock
//! latencies still vary run to run — the schedule, not the timings, is
//! what the seed pins.)
//!
//! ```text
//! cargo run --release -p odyssey-bench --bin service_load [out.json]
//! ```
//!
//! `ODYSSEY_BENCH_SCALE` multiplies the dataset size as in every other
//! harness.

use odyssey_core::index::{Index, IndexConfig};
use odyssey_core::search::engine::{BatchAnswer, BatchEngine, BatchQuery, QueryKind};
use odyssey_core::search::exact::SearchParams;
use odyssey_service::{LatencyClass, QueryService, ServiceConfig, ServiceQuery};
use odyssey_workloads::generator::random_walk;
use odyssey_workloads::queries::{QueryWorkload, WorkloadKind};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SERIES_LEN: usize = 64;
const POOL_THREADS: usize = 4;
const QUEUE_CAPACITY: usize = 16;
const POOL_QUERIES: usize = 48;
const ARRIVALS_PER_POINT: usize = 144;

fn kind_of(qi: usize) -> QueryKind {
    match qi % 3 {
        0 => QueryKind::Exact,
        1 => QueryKind::Dtw(4),
        _ => QueryKind::Knn(3),
    }
}

/// Exponential inter-arrival gaps at `rate` qps from a seeded xorshift.
fn arrival_schedule(n: usize, rate: f64, seed: u64) -> Vec<Duration> {
    let mut x = seed | 1;
    let mut at = Duration::ZERO;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let u = (x >> 11) as f64 / (1u64 << 53) as f64;
            at += Duration::from_secs_f64(-(1.0 - u).ln() / rate);
            at
        })
        .collect()
}

fn same_bits(a: &BatchAnswer, b: &BatchAnswer) -> bool {
    match (a, b) {
        (BatchAnswer::Nn(s), BatchAnswer::Nn(r)) => {
            s.distance.to_bits() == r.distance.to_bits() && s.series_id == r.series_id
        }
        (BatchAnswer::Knn(s), BatchAnswer::Knn(r)) => s.neighbors == r.neighbors,
        _ => false,
    }
}

struct Point {
    json: String,
    rejected: u64,
    mismatches: usize,
}

fn run_point(
    label: &str,
    index: &Arc<Index>,
    workload: &QueryWorkload,
    reference: &[BatchAnswer],
    offered_qps: f64,
    seed: u64,
) -> Point {
    let schedule = arrival_schedule(ARRIVALS_PER_POINT, offered_qps, seed);
    let service = QueryService::new(
        ServiceConfig::default()
            .with_pool_threads(POOL_THREADS)
            .with_queue_capacity(QUEUE_CAPACITY),
    );
    let (admitted_refs, report) = service.serve_index(index, |client| {
        let start = Instant::now();
        let mut admitted: Vec<(u64, usize)> = Vec::with_capacity(schedule.len());
        for (i, &due) in schedule.iter().enumerate() {
            if let Some(gap) = due.checked_sub(start.elapsed()) {
                std::thread::sleep(gap);
            }
            let qi = i % POOL_QUERIES;
            let q = ServiceQuery {
                data: workload.query(qi).to_vec(),
                kind: kind_of(qi),
                class: if i % 2 == 0 {
                    LatencyClass::Interactive
                } else {
                    LatencyClass::Batch
                },
                deadline: None,
            };
            // Open loop: rejected arrivals are shed, not retried — the
            // report counts them.
            if let Ok(qid) = client.submit(q) {
                admitted.push((qid, qi));
            }
        }
        // Exactness audit on everything that made it through admission.
        admitted
            .into_iter()
            .map(|(qid, qi)| (client.wait(qid), qi))
            .collect::<Vec<_>>()
    });
    let mismatches = admitted_refs
        .iter()
        .filter(|(a, qi)| !same_bits(&a.answer, &reference[*qi]))
        .count();
    let completed_qps = report.completed as f64 / report.wall.as_secs_f64();
    let (i, b) = (&report.interactive, &report.batch);
    let json = format!(
        "    {{\"point\": \"{label}\", \"offered_qps\": {offered_qps:.1}, \
         \"completed_qps\": {completed_qps:.1}, \
         \"offered\": {}, \"admitted\": {}, \"rejected\": {}, \
         \"completed\": {}, \"degraded\": {}, \"max_in_flight\": {}, \
         \"mismatches\": {mismatches}, \
         \"interactive\": {{\"count\": {}, \"p50_us\": {}, \"p90_us\": {}, \
         \"p99_us\": {}, \"mean_us\": {:.1}, \"max_us\": {}}}, \
         \"batch\": {{\"count\": {}, \"p50_us\": {}, \"p90_us\": {}, \
         \"p99_us\": {}, \"mean_us\": {:.1}, \"max_us\": {}}}}}",
        ARRIVALS_PER_POINT,
        report.admitted,
        report.rejected,
        report.completed,
        report.degraded,
        report.max_in_flight,
        i.count,
        i.p50_us,
        i.p90_us,
        i.p99_us,
        i.mean_us,
        i.max_us,
        b.count,
        b.p50_us,
        b.p90_us,
        b.p99_us,
        b.mean_us,
        b.max_us,
    );
    Point {
        json,
        rejected: report.rejected,
        mismatches,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_service.json".to_string());
    let scale = odyssey_bench::scale();
    let n_series = 3_000 * scale;
    let data = random_walk(n_series, SERIES_LEN, 0x901);
    let index = Arc::new(Index::build(
        data.clone(),
        IndexConfig::new(SERIES_LEN)
            .with_segments(8)
            .with_leaf_capacity(64),
        POOL_THREADS,
    ));
    let workload = QueryWorkload::generate(
        &data,
        POOL_QUERIES,
        WorkloadKind::Mixed { hard_fraction: 0.4, noise: 0.05 },
        0x902,
    );

    // Capacity probe doubles as the reference run: the batch path's
    // wall gives the sustainable rate, its answers the ground truth.
    let queries: Vec<BatchQuery> = (0..POOL_QUERIES)
        .map(|qi| BatchQuery::new(workload.query(qi), kind_of(qi)))
        .collect();
    let order: Vec<usize> = (0..POOL_QUERIES).collect();
    let params = SearchParams::new(POOL_THREADS);
    let t0 = Instant::now();
    let batch = BatchEngine::new(Arc::clone(&index), POOL_THREADS).run_batch(
        &queries,
        &order,
        &params,
    );
    let probe_wall = t0.elapsed();
    let reference: Vec<BatchAnswer> = batch.items.iter().map(|it| it.answer.clone()).collect();
    let capacity_qps = POOL_QUERIES as f64 / probe_wall.as_secs_f64().max(1e-9);

    let points = [
        ("light", 0.5 * capacity_qps, 0x911u64),
        ("near-saturation", 0.9 * capacity_qps, 0x912),
        ("overload", 2.0 * capacity_qps, 0x913),
    ];
    let results: Vec<(&str, Point)> = points
        .iter()
        .map(|&(label, qps, seed)| {
            (label, run_point(label, &index, &workload, &reference, qps, seed))
        })
        .collect();

    let total_mismatches: usize = results.iter().map(|(_, p)| p.mismatches).sum();
    let overload_rejected = results
        .iter()
        .find(|(l, _)| *l == "overload")
        .map(|(_, p)| p.rejected)
        .unwrap_or(0);
    let body: Vec<String> = results.iter().map(|(_, p)| p.json.clone()).collect();
    let json = format!(
        "{{\n  \"bench\": \"service_load\",\n  \"n_series\": {n_series},\n  \
         \"series_len\": {SERIES_LEN},\n  \"pool_threads\": {POOL_THREADS},\n  \
         \"queue_capacity\": {QUEUE_CAPACITY},\n  \"pool_queries\": {POOL_QUERIES},\n  \
         \"arrivals_per_point\": {ARRIVALS_PER_POINT},\n  \
         \"capacity_probe_qps\": {capacity_qps:.1},\n  \"points\": [\n{}\n  ],\n  \
         \"mismatches\": {total_mismatches}\n}}\n",
        body.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_service.json");
    print!("{json}");
    assert_eq!(
        total_mismatches, 0,
        "a streamed answer diverged from the batch path"
    );
    assert!(
        overload_rejected > 0,
        "2x-capacity open-loop offered load must hit the bounded queue"
    );
}
