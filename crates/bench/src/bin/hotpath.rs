//! Hot-path smoke benchmark: emits `BENCH_hotpath.json` with the median
//! exact-search latency and the per-query lower-bound / real-distance
//! work counters.
//!
//! Runs as a CI smoke step to seed the performance trajectory of the
//! query hot path (per-query mindist tables + leaf-contiguous layout +
//! batched pruning): the JSON is small, diffable, and cheap enough to
//! regenerate on every change.
//!
//! ```text
//! cargo run --release -p odyssey-bench --bin hotpath [out.json]
//! ```
//!
//! `ODYSSEY_BENCH_SCALE` multiplies the dataset and query counts as in
//! every other harness.

use odyssey_bench::mixed_queries;
use odyssey_core::distance::euclidean_sq_early_abandon;
use odyssey_core::index::{Index, IndexConfig};
use odyssey_core::search::exact::{exact_search, SearchParams};
use odyssey_core::search::kernel::{EdKernel, QueryKernel};
use odyssey_workloads::generator::random_walk;

fn median_us(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Per-candidate cost of the series lower bound (the batched SoA sweep)
/// and the real distance (early-abandoning ED, unbounded threshold so
/// every element is visited), measured directly on the built layout —
/// the numbers the ROADMAP's "per-candidate LB under 5 ns" target is
/// stated in.
fn kernel_costs_ns(index: &Index, query: &[f32]) -> (f64, f64) {
    let kernel = EdKernel::new(query, index.config().segments);
    let layout = index.layout();
    let n = layout.num_series();
    let mut lb_out = vec![0.0f64; n];
    let reps = 20usize;
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        kernel.lb_block_at(layout, 0..n, &mut lb_out);
        std::hint::black_box(&lb_out);
    }
    let lb_series_ns = t0.elapsed().as_secs_f64() * 1e9 / (reps * n) as f64;
    let reps = 10usize;
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        for p in 0..n {
            std::hint::black_box(euclidean_sq_early_abandon(
                query,
                layout.series(p),
                f64::INFINITY,
            ));
        }
    }
    let real_dist_ns = t0.elapsed().as_secs_f64() * 1e9 / (reps * n) as f64;
    (lb_series_ns, real_dist_ns)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let scale = odyssey_bench::scale();
    let n_series = 8_000 * scale;
    let series_len = 128;
    let n_queries = 24 * scale;
    let data = random_walk(n_series, series_len, 0x407);
    let index = Index::build(
        data.clone(),
        IndexConfig::new(series_len)
            .with_segments(16)
            .with_leaf_capacity(128),
        2,
    );
    let queries = mixed_queries(&data, n_queries, 0x408);
    let params = SearchParams::new(2);

    // Warm-up pass (touches the layout and fills caches), then the
    // measured pass.
    for qi in 0..n_queries.min(4) {
        let _ = exact_search(&index, queries.query(qi), &params);
    }
    let mut latencies_us = Vec::with_capacity(n_queries);
    let mut lb_series = 0u64;
    let mut real_dist = 0u64;
    let mut lb_node = 0u64;
    let mut mismatches = 0usize;
    for qi in 0..n_queries {
        let q = queries.query(qi);
        let t0 = std::time::Instant::now();
        let out = exact_search(&index, q, &params);
        latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
        lb_series += out.stats.lb_series_computations;
        real_dist += out.stats.real_distance_computations;
        lb_node += out.stats.lb_node_computations;
        // Exactness is part of the smoke contract.
        let want = index.brute_force(q);
        if (out.answer.distance - want.distance).abs() > 1e-9 {
            mismatches += 1;
        }
    }
    let nq = n_queries as f64;
    let (lb_series_ns, real_dist_ns) = kernel_costs_ns(&index, queries.query(0));
    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"n_series\": {n_series},\n  \
         \"series_len\": {series_len},\n  \"n_queries\": {n_queries},\n  \
         \"simd_dispatch\": \"{}\",\n  \
         \"median_exact_search_us\": {:.1},\n  \
         \"mean_lb_node_per_query\": {:.1},\n  \
         \"mean_lb_series_per_query\": {:.1},\n  \
         \"mean_real_dist_per_query\": {:.1},\n  \
         \"lb_series_ns\": {lb_series_ns:.2},\n  \
         \"real_dist_ns\": {real_dist_ns:.2},\n  \
         \"brute_force_mismatches\": {mismatches}\n}}\n",
        odyssey_core::distance::simd::dispatch_name(),
        median_us(latencies_us),
        lb_node as f64 / nq,
        lb_series as f64 / nq,
        real_dist as f64 / nq,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_hotpath.json");
    print!("{json}");
    assert_eq!(mismatches, 0, "exact search diverged from brute force");
}
