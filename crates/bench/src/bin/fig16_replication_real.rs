//! Figure 16: replication strategies on the remaining real datasets
//! (Astro, Deep, Sift, Yan-TtI stand-ins), 100 queries,
//! WORK-STEAL-PREDICT.
//!
//! Paper shape: same trends as Seismic (Figure 15a) — higher replication
//! degrees answer queries faster on every dataset.

use odyssey_bench::{fmt_secs, graded_queries, print_table_header, print_table_row};
use odyssey_cluster::{ClusterConfig, OdysseyCluster, Replication, SchedulerKind};
use odyssey_workloads::dataset_registry;

fn main() {
    let scale = odyssey_bench::scale();
    let n_queries = 16 * scale;
    println!("Figure 16: replication strategies on real datasets ({n_queries} queries)\n");
    let node_counts = [2usize, 4, 8];
    let reps = [
        Replication::EquallySplit,
        Replication::Partial(4),
        Replication::Partial(2),
    ];
    for spec in dataset_registry() {
        if spec.name == "Seismic" || spec.name == "Random" {
            continue; // Figure 15 covers Seismic; Random is synthetic.
        }
        let n = (spec.repro_series / 8).max(2000) * scale;
        let data = spec.generate_scaled(n, 0xF1916);
        let queries = graded_queries(&data, n_queries, 0x16 ^ n as u64);
        println!("({}) {} — {n} series of length {}\n", spec.name, spec.description, data.series_len());
        let mut widths = vec![14usize];
        widths.extend(node_counts.iter().map(|_| 11usize));
        let mut header = vec!["strategy".to_string()];
        header.extend(node_counts.iter().map(|n| format!("{n} nodes")));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        print_table_header(&header_refs, &widths);
        for rep in &reps {
            let mut cells = vec![rep.label()];
            for &nn in &node_counts {
                let k = rep.n_groups(nn);
                if k > nn || nn % k != 0 {
                    cells.push("-".into());
                    continue;
                }
                let cfg = ClusterConfig::new(nn)
                    .with_replication(*rep)
                    .with_scheduler(SchedulerKind::PredictDn)
                    .with_work_stealing(true)
                    .with_leaf_capacity(128);
                let tpn = cfg.threads_per_node;
                let cluster = OdysseyCluster::build(&data, cfg);
                let report = cluster.answer_batch(&queries.queries);
                cells.push(fmt_secs(report.makespan_seconds(tpn)));
            }
            print_table_row(&cells, &widths);
        }
        println!();
    }
    println!("paper shape: on every dataset, more replication and more nodes mean");
    println!("faster query answering (same trends as Seismic).");
}
