//! Figure 15: Odyssey's replication strategies on Seismic with
//! WORK-STEAL-PREDICT.
//!
//! (a, b) query-answering time for 100 and 800 queries (scaled here);
//! (c, d) *total* time including index construction.
//!
//! Paper shape: more replication → faster query answering (a, b), but
//! slower index construction; with few queries EQUALLY-SPLIT wins on
//! total time, with many queries FULL's construction cost is amortized
//! and the ordering flips (c vs d) — the paper's central trade-off.

use odyssey_bench::{
    fmt_secs, graded_queries, print_table_header, print_table_row, replication_options,
    seismic_like,
};
use odyssey_cluster::{units, ClusterConfig, OdysseyCluster, SchedulerKind};

fn run_panel(n_queries: usize, node_counts: &[usize], total_time: bool) {
    let data = seismic_like(1);
    let queries = graded_queries(&data, n_queries, 0xF1915);
    let reps = replication_options(8);
    let mut widths = vec![14usize];
    widths.extend(node_counts.iter().map(|_| 11usize));
    let mut header = vec!["strategy".to_string()];
    header.extend(node_counts.iter().map(|n| format!("{n} nodes")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table_header(&header_refs, &widths);
    for rep in &reps {
        let mut cells = vec![rep.label()];
        for &n in node_counts {
            let k = rep.n_groups(n);
            if k > n || n % k != 0 {
                cells.push("-".into());
                continue;
            }
            let cfg = ClusterConfig::new(n)
                .with_replication(*rep)
                .with_scheduler(SchedulerKind::PredictDn)
                .with_work_stealing(true)
                .with_leaf_capacity(128);
            let tpn = cfg.threads_per_node;
            let cluster = OdysseyCluster::build(&data, cfg);
            let report = cluster.answer_batch(&queries.queries);
            let mut secs = report.makespan_seconds(tpn);
            if total_time {
                secs += units::units_to_seconds(cluster.build_report().max_index_units(), tpn);
            }
            cells.push(fmt_secs(secs));
        }
        print_table_row(&cells, &widths);
    }
    println!();
}

fn main() {
    let scale = odyssey_bench::scale();
    let small = 16 * scale;
    let large = 128 * scale;
    println!("Figure 15: replication strategies, WORK-STEAL-PREDICT (seismic-like)\n");
    println!("(a) query answering time, {small} queries\n");
    run_panel(small, &[1, 2, 4, 8], false);
    println!("(b) query answering time, {large} queries\n");
    run_panel(large, &[1, 2, 4, 8], false);
    println!("(c) total time (index + queries), {small} queries\n");
    run_panel(small, &[1, 2, 4, 8], true);
    println!("(d) total time (index + queries), {large} queries\n");
    run_panel(large, &[1, 2, 4, 8], true);
    println!("paper shape: (a,b) more replication = faster queries; (c) with few");
    println!("queries the extra index-build cost makes FULL lose on total time;");
    println!("(d) with many queries the build cost amortizes and FULL wins overall.");
}
