//! Figure 12: query time for a fixed batch as the dataset size grows
//! (8 nodes), for every replication strategy.
//!
//! Paper shape: time grows gracefully with dataset size; more replication
//! is consistently faster (FULL < PARTIAL-2 < PARTIAL-4 < EQUALLY-SPLIT),
//! with the larger settings hitting per-node memory limits the paper
//! marks "Memory Limitation" — inapplicable at reproduction scale.

use odyssey_bench::{
    fmt_secs, graded_queries, print_table_header, print_table_row, replication_options,
};
use odyssey_cluster::{ClusterConfig, OdysseyCluster, SchedulerKind};
use odyssey_core::series::DatasetBuffer;
use odyssey_workloads::generator;

fn run_panel(title: &str, gen: impl Fn(usize) -> DatasetBuffer, mults: &[usize]) {
    let n_nodes = 8;
    let n_queries = 16 * odyssey_bench::scale();
    println!("{title} ({n_nodes} nodes, {n_queries} queries)\n");
    let reps = replication_options(n_nodes);
    let mut widths = vec![14usize];
    widths.extend(mults.iter().map(|_| 11usize));
    let mut header = vec!["strategy".to_string()];
    header.extend(mults.iter().map(|m| format!("size x{m}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table_header(&header_refs, &widths);
    for rep in &reps {
        let mut cells = vec![rep.label()];
        for &m in mults {
            let data = gen(m);
            let queries = graded_queries(&data, n_queries, 0xF1912);
            let cfg = ClusterConfig::new(n_nodes)
                .with_replication(*rep)
                .with_scheduler(SchedulerKind::PredictDn)
                .with_work_stealing(true)
                .with_leaf_capacity(128);
            let tpn = cfg.threads_per_node;
            let cluster = OdysseyCluster::build(&data, cfg);
            let report = cluster.answer_batch(&queries.queries);
            cells.push(fmt_secs(report.makespan_seconds(tpn)));
        }
        print_table_row(&cells, &widths);
    }
    println!();
}

fn main() {
    println!("Figure 12: query time vs dataset size (8 nodes)\n");
    let scale = odyssey_bench::scale();
    let base = odyssey_bench::BASE_SERIES * scale;
    run_panel(
        "(a) Random",
        |m| generator::random_walk(base * m, odyssey_bench::SERIES_LEN, 0x7A2D),
        &[1, 2, 4],
    );
    run_panel(
        "(b) Yan-TtI-like",
        |m| generator::cluster_mixture(base * m, 200, 16, 0.5, 0xAA77),
        &[1, 2, 4],
    );
    println!("paper shape: graceful growth with size; higher replication degree is");
    println!("consistently faster at query answering.");
}
