//! Figure 6: configuring the single-node query-answering algorithm.
//!
//! (a) Sigmoid fit between a query's initial BSF and the median size of
//!     the priority queues produced while answering it.
//! (b) Performance under different threshold *division factors*: the
//!     per-query TH is the sigmoid's median estimate divided by the
//!     factor; the paper picks 16 for Seismic.

use odyssey_bench::{fmt_secs, mixed_queries, print_table_header, print_table_row, seismic_like};
use odyssey_cluster::units;
use odyssey_core::index::{Index, IndexConfig};
use odyssey_core::search::exact::{exact_search, SearchParams};
use odyssey_sched::ThresholdModel;

fn main() {
    let data = seismic_like(1);
    let n_queries = 48 * odyssey_bench::scale();
    let queries = mixed_queries(&data, n_queries, 0xF1906);
    let cfg = IndexConfig::new(data.series_len())
        .with_segments(16)
        .with_leaf_capacity(128);
    let index = Index::build(data.clone(), cfg, 2);

    // --- (a): natural queue sizes under an effectively unbounded TH ----
    let unbounded = SearchParams::new(2).with_th(usize::MAX - 1);
    let mut bsfs = Vec::new();
    let mut medians = Vec::new();
    for qi in 0..n_queries {
        let out = exact_search(&index, queries.query(qi), &unbounded);
        bsfs.push(out.stats.initial_bsf);
        medians.push(out.stats.pq_size_median as f64);
    }
    let model = ThresholdModel::train(&bsfs, &medians, 16.0);
    println!("Figure 6a: sigmoid fit, initial BSF -> median priority-queue size\n");
    let widths = [12, 14, 14];
    print_table_header(&["initial BSF", "median PQ", "sigmoid fit"], &widths);
    let mut pts: Vec<(f64, f64)> = bsfs.iter().copied().zip(medians.iter().copied()).collect();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0));
    for p in pts.iter().step_by((pts.len() / 12).max(1)) {
        print_table_row(
            &[
                format!("{:.3}", p.0),
                format!("{:.0}", p.1),
                format!("{:.0}", model.sigmoid.eval(p.0)),
            ],
            &widths,
        );
    }
    println!(
        "\nsigmoid: m={:.1} M={:.1} b={:.2} c={:.3} d={:.2} (sse={:.1})",
        model.sigmoid.m,
        model.sigmoid.big_m,
        model.sigmoid.b,
        model.sigmoid.c,
        model.sigmoid.d,
        model.sigmoid.sse
    );

    // --- (b): sweep the division factor --------------------------------
    println!("\nFigure 6b: performance vs threshold division factor\n");
    let widths = [8, 16];
    print_table_header(&["factor", "avg query (s)"], &widths);
    for factor in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
        let model = ThresholdModel::new(model.sigmoid, factor);
        let mut total = 0.0f64;
        for qi in 0..n_queries {
            let th = model.predict_th(index.approx_search(queries.query(qi)).distance);
            let params = SearchParams::new(2).with_th(th);
            let out = exact_search(&index, queries.query(qi), &params);
            total += units::units_to_seconds(
                units::search_units(&out.stats, data.series_len(), 16),
                2,
            );
        }
        print_table_row(
            &[format!("{factor:.0}"), fmt_secs(total / n_queries as f64)],
            &widths,
        );
    }
    println!("\npaper shape: a shallow optimum at an intermediate factor (16 for Seismic)");
}
