//! Figure 13: query throughput on Random with FULL replication.
//!
//! Paper shape: throughput grows near-linearly with the node count and
//! is insensitive to the batch size.

use odyssey_bench::{mixed_queries, print_table_header, print_table_row, random_like};
use odyssey_cluster::{ClusterConfig, OdysseyCluster, SchedulerKind};

fn main() {
    let data = random_like(1);
    let base_q = 25 * odyssey_bench::scale();
    let query_counts: Vec<usize> = [1usize, 2, 4, 8].iter().map(|m| m * base_q).collect();
    let node_counts = [1usize, 2, 4, 8];
    println!("Figure 13: query throughput (random, FULL replication, WORK-STEAL)\n");
    let mut widths = vec![10usize];
    widths.extend(node_counts.iter().map(|_| 12usize));
    let mut header = vec!["".to_string()];
    header.extend(node_counts.iter().map(|n| format!("{n} nodes")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table_header(&header_refs, &widths);
    for &nq in &query_counts {
        let queries = mixed_queries(&data, nq, 0xF1913);
        let mut cells = vec![format!("{nq} qrs")];
        for &n in &node_counts {
            let cfg = ClusterConfig::new(n)
                .with_scheduler(SchedulerKind::Dynamic)
                .with_work_stealing(true)
                .with_leaf_capacity(128);
            let tpn = cfg.threads_per_node;
            let cluster = OdysseyCluster::build(&data, cfg);
            let report = cluster.answer_batch(&queries.queries);
            cells.push(format!("{:.1}", report.throughput(tpn)));
        }
        print_table_row(&cells, &widths);
    }
    println!("\n(values are queries per simulated second)");
    println!("paper shape: near-linear throughput growth with node count.");
}
