//! Figure 18: 10-NN query answering (Random, 100 GB in the paper) for
//! every replication strategy.
//!
//! Paper shape: k-NN times are higher than 1-NN, but more nodes and more
//! replication improve performance exactly as in the 1-NN experiments.

use odyssey_bench::{
    fmt_secs, graded_queries, print_table_header, print_table_row, random_like,
    replication_options,
};
use odyssey_cluster::{units, ClusterConfig, OdysseyCluster, SchedulerKind};

fn main() {
    let data = random_like(1);
    let k = 10;
    let n_queries = 16 * odyssey_bench::scale();
    let queries = graded_queries(&data, n_queries, 0xF1918);
    println!("Figure 18: {k}-NN query answering (random, {n_queries} queries)\n");
    let node_counts = [1usize, 2, 4, 8];
    let reps = replication_options(8);
    let mut widths = vec![14usize];
    widths.extend(node_counts.iter().map(|_| 11usize));
    let mut header = vec!["strategy".to_string()];
    header.extend(node_counts.iter().map(|n| format!("{n} nodes")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table_header(&header_refs, &widths);
    for rep in &reps {
        let mut cells = vec![rep.label()];
        for &n in &node_counts {
            let kk = rep.n_groups(n);
            if kk > n || n % kk != 0 {
                cells.push("-".into());
                continue;
            }
            let cfg = ClusterConfig::new(n)
                .with_replication(*rep)
                .with_scheduler(SchedulerKind::PredictDn)
                .with_leaf_capacity(128);
            let tpn = cfg.threads_per_node;
            let cluster = OdysseyCluster::build(&data, cfg);
            let report = cluster.answer_batch_knn(&queries.queries, k);
            cells.push(fmt_secs(units::units_to_seconds(
                report.makespan_units(),
                tpn,
            )));
        }
        print_table_row(&cells, &widths);
    }
    println!("\npaper shape: higher than 1-NN times; more nodes / replication help");
    println!("the same way as in the 1-NN experiments.");
}
