//! Figure 4: linear regression between a query's initial BSF and its
//! execution time (Seismic).
//!
//! The paper's observation: queries with a high initial BSF tend to have
//! high execution times, well enough for a linear model to drive
//! scheduling. This harness runs a mixed-difficulty batch on the
//! seismic-like dataset, records per-query (initial BSF, work), fits the
//! regression, and reports the correlation — the paper's plot shows a
//! clearly positive slope with moderate spread.

use odyssey_bench::{fmt_secs, mixed_queries, print_table_header, print_table_row, seismic_like};
use odyssey_cluster::units;
use odyssey_core::index::{Index, IndexConfig};
use odyssey_core::search::exact::{exact_search, SearchParams};
use odyssey_sched::LinearRegression;

fn main() {
    let data = seismic_like(1);
    let n_queries = 64 * odyssey_bench::scale();
    let queries = mixed_queries(&data, n_queries, 0xF1904);
    let cfg = IndexConfig::new(data.series_len())
        .with_segments(16)
        .with_leaf_capacity(128);
    let index = Index::build(data.clone(), cfg, 2);
    let params = SearchParams::new(2);

    let mut xs = Vec::with_capacity(n_queries);
    let mut ys = Vec::with_capacity(n_queries);
    for qi in 0..n_queries {
        let out = exact_search(&index, queries.query(qi), &params);
        let secs = units::units_to_seconds(
            units::search_units(&out.stats, data.series_len(), 16),
            params.n_threads,
        );
        xs.push(out.stats.initial_bsf);
        ys.push(secs);
    }
    let reg = LinearRegression::fit(&xs, &ys);

    println!("Figure 4: initial BSF vs execution time (seismic-like, {n_queries} queries)\n");
    let widths = [12, 14];
    print_table_header(&["initial BSF", "exec time (s)"], &widths);
    // Print a subsample of points, sorted by BSF, like the scatter plot.
    let mut pts: Vec<(f64, f64)> = xs.iter().copied().zip(ys.iter().copied()).collect();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0));
    let step = (pts.len() / 16).max(1);
    for p in pts.iter().step_by(step) {
        print_table_row(&[format!("{:.3}", p.0), fmt_secs(p.1)], &widths);
    }
    println!(
        "\nfit: time = {:.4e} * BSF + {:.4e}   R² = {:.3}   corr = {:.3}",
        reg.slope,
        reg.intercept,
        reg.r2,
        reg.correlation()
    );
    println!("paper shape: clearly positive correlation (regression usable for scheduling)");
    assert!(
        reg.correlation() > 0.3,
        "expected a positive BSF/time correlation"
    );
}
