//! Micro-benchmarks of the distance kernels: the hot path of query
//! answering (plain vs early-abandoning ED, DTW, LB_Keogh).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use odyssey_core::distance::{
    dtw_banded, euclidean_sq, euclidean_sq_early_abandon, keogh_envelope, lb_keogh_sq,
};
use odyssey_workloads::generator::random_walk;

fn bench_distances(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance");
    for &len in &[96usize, 256] {
        let data = random_walk(2, len, 42);
        let a = data.series(0).to_vec();
        let b = data.series(1).to_vec();
        group.bench_with_input(BenchmarkId::new("euclidean_sq", len), &len, |bch, _| {
            bch.iter(|| euclidean_sq(black_box(&a), black_box(&b)))
        });
        let full = euclidean_sq(&a, &b);
        group.bench_with_input(
            BenchmarkId::new("euclidean_early_abandon_hit", len),
            &len,
            |bch, _| {
                // Threshold below the distance: abandons early.
                bch.iter(|| euclidean_sq_early_abandon(black_box(&a), black_box(&b), full * 0.1))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("euclidean_early_abandon_miss", len),
            &len,
            |bch, _| {
                // Threshold above the distance: full scan plus checks.
                bch.iter(|| euclidean_sq_early_abandon(black_box(&a), black_box(&b), full * 2.0))
            },
        );
        let window = len / 20;
        group.bench_with_input(BenchmarkId::new("dtw_banded_5pct", len), &len, |bch, _| {
            bch.iter(|| dtw_banded(black_box(&a), black_box(&b), window, f64::INFINITY))
        });
        let env = keogh_envelope(&a, window);
        group.bench_with_input(BenchmarkId::new("lb_keogh", len), &len, |bch, _| {
            bch.iter(|| lb_keogh_sq(black_box(&env), black_box(&b), f64::INFINITY))
        });
        group.bench_with_input(BenchmarkId::new("keogh_envelope", len), &len, |bch, _| {
            bch.iter(|| keogh_envelope(black_box(&a), window))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distances);
criterion_main!(benches);
