//! Index-construction benchmarks: the buffer and tree phases of
//! Figure 17, at micro scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use odyssey_core::buffers::{SummarizationBuffers, Summaries};
use odyssey_core::index::{Index, IndexConfig};
use odyssey_core::tree::build_forest;
use odyssey_workloads::generator::random_walk;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for &n in &[2_000usize, 8_000] {
        let data = random_walk(n, 128, 3);
        group.bench_with_input(BenchmarkId::new("summaries", n), &n, |b, _| {
            b.iter(|| Summaries::compute(&data, 16, 2))
        });
        let summaries = Summaries::compute(&data, 16, 2);
        group.bench_with_input(BenchmarkId::new("buffers", n), &n, |b, _| {
            b.iter(|| SummarizationBuffers::build(&summaries))
        });
        let buffers = SummarizationBuffers::build(&summaries);
        group.bench_with_input(BenchmarkId::new("forest", n), &n, |b, _| {
            b.iter(|| build_forest(&buffers, &summaries, 128, 2))
        });
        group.bench_with_input(BenchmarkId::new("full_build", n), &n, |b, _| {
            let cfg = IndexConfig::new(128).with_segments(16).with_leaf_capacity(128);
            b.iter(|| Index::build(data.clone(), cfg, 2))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
