//! Single-node exact-search benchmarks: easy vs hard queries, 1-NN vs
//! k-NN vs DTW — the per-node cost Figure 4's predictor models.

use criterion::{criterion_group, criterion_main, Criterion};
use odyssey_core::index::{Index, IndexConfig};
use odyssey_core::search::dtw_search::dtw_search;
use odyssey_core::search::exact::{exact_search, SearchParams};
use odyssey_core::search::knn::knn_search;
use odyssey_workloads::generator::random_walk;
use odyssey_workloads::queries::{QueryWorkload, WorkloadKind};

fn bench_search(c: &mut Criterion) {
    let data = random_walk(8_000, 128, 11);
    let index = Index::build(
        data.clone(),
        IndexConfig::new(128).with_segments(16).with_leaf_capacity(128),
        2,
    );
    let easy = QueryWorkload::generate(&data, 1, WorkloadKind::Easy { noise: 0.02 }, 5);
    let hard = QueryWorkload::generate(&data, 1, WorkloadKind::Hard, 5);
    let params = SearchParams::new(2);

    let mut group = c.benchmark_group("single_node_search");
    group.sample_size(20);
    group.bench_function("exact_easy", |b| {
        b.iter(|| exact_search(&index, easy.query(0), &params))
    });
    group.bench_function("exact_hard", |b| {
        b.iter(|| exact_search(&index, hard.query(0), &params))
    });
    group.bench_function("knn10_hard", |b| {
        b.iter(|| knn_search(&index, hard.query(0), 10, &params))
    });
    group.bench_function("dtw_5pct_easy", |b| {
        b.iter(|| dtw_search(&index, easy.query(0), 6, &params))
    });
    group.bench_function("approx_only", |b| {
        b.iter(|| index.approx_search(hard.query(0)))
    });
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
