//! Micro-benchmarks of the summarization pipeline: PAA, SAX symbols,
//! and the mindist lower bounds.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use odyssey_core::paa::paa;
use odyssey_core::sax::{
    mindist_paa_isax_sq, mindist_paa_sax_sq, sax_word_into, IsaxWord, MindistTable,
};
use odyssey_workloads::generator::random_walk;

fn bench_isax(c: &mut Criterion) {
    let len = 256usize;
    let segs = 16usize;
    let data = random_walk(2, len, 7);
    let s = data.series(0);
    let q = data.series(1);
    let qpaa = paa(q, segs);
    let spaa = paa(s, segs);
    let mut sax = vec![0u8; segs];
    sax_word_into(&spaa, &mut sax);
    let word = IsaxWord::from_sax(&sax, 4);

    let mut group = c.benchmark_group("isax");
    group.bench_function("paa_256_16", |b| {
        b.iter(|| paa(black_box(s), black_box(segs)))
    });
    group.bench_function("sax_word_16", |b| {
        let mut out = vec![0u8; segs];
        b.iter(|| sax_word_into(black_box(&spaa), &mut out))
    });
    group.bench_function("mindist_paa_isax", |b| {
        b.iter(|| mindist_paa_isax_sq(black_box(&qpaa), black_box(&word), len))
    });
    group.bench_function("mindist_paa_sax", |b| {
        b.iter(|| mindist_paa_sax_sq(black_box(&qpaa), black_box(&sax), len))
    });
    // The per-query lookup table the kernels actually use on the hot
    // path: same bounds, bit-identical, but w lookups + adds instead of
    // breakpoint and segment-bound arithmetic per candidate.
    let table = MindistTable::from_paa(&qpaa, len);
    group.bench_function("table_build", |b| {
        b.iter(|| MindistTable::from_paa(black_box(&qpaa), black_box(len)))
    });
    group.bench_function("table_series_lb", |b| {
        b.iter(|| black_box(&table).series_lb_sq(black_box(&sax)))
    });
    group.bench_function("table_word_lb", |b| {
        b.iter(|| black_box(&table).word_lb_sq(black_box(&word)))
    });
    // A leaf-sized contiguous SAX block (128 candidates), as drained by
    // the batched pruning pass.
    let n_block = 128usize;
    let block_data = random_walk(n_block, len, 11);
    let mut block = Vec::with_capacity(n_block * segs);
    for i in 0..n_block {
        let mut w = vec![0u8; segs];
        sax_word_into(&paa(block_data.series(i), segs), &mut w);
        block.extend_from_slice(&w);
    }
    let mut out = vec![0.0f64; n_block];
    group.bench_function("table_block_lb_128", |b| {
        b.iter(|| black_box(&table).block_lb_sq(black_box(&block), &mut out))
    });
    group.finish();
}

criterion_group!(benches, bench_isax);
criterion_main!(benches);
