//! End-to-end cluster benchmarks at tiny scale: full batch answering
//! under the main replication/scheduling configurations, plus the
//! baselines — a fast wall-clock sanity check that complements the
//! work-unit figure harnesses.

use criterion::{criterion_group, criterion_main, Criterion};
use odyssey_baselines::dmessi_config;
use odyssey_cluster::{ClusterConfig, OdysseyCluster, Replication, SchedulerKind};
use odyssey_workloads::generator::random_walk;
use odyssey_workloads::queries::{QueryWorkload, WorkloadKind};

fn bench_cluster(c: &mut Criterion) {
    let data = random_walk(3_000, 128, 21);
    let queries = QueryWorkload::generate(
        &data,
        6,
        WorkloadKind::Mixed {
            hard_fraction: 0.3,
            noise: 0.05,
        },
        3,
    );
    let mut group = c.benchmark_group("cluster_end_to_end");
    group.sample_size(10);
    let variants: Vec<(&str, ClusterConfig)> = vec![
        (
            "odyssey_full_ws",
            ClusterConfig::new(4)
                .with_replication(Replication::Full)
                .with_scheduler(SchedulerKind::PredictDn)
                .with_leaf_capacity(128),
        ),
        (
            "odyssey_partial2",
            ClusterConfig::new(4)
                .with_replication(Replication::Partial(2))
                .with_leaf_capacity(128),
        ),
        (
            "odyssey_equally_split",
            ClusterConfig::new(4)
                .with_replication(Replication::EquallySplit)
                .with_leaf_capacity(128),
        ),
        ("dmessi", dmessi_config(4).with_leaf_capacity(128)),
    ];
    for (label, cfg) in variants {
        let cluster = OdysseyCluster::build(&data, cfg);
        group.bench_function(format!("answer_batch/{label}"), |b| {
            b.iter(|| cluster.answer_batch(&queries.queries))
        });
    }
    group.bench_function("build/partial2", |b| {
        b.iter(|| {
            OdysseyCluster::build(
                &data,
                ClusterConfig::new(4)
                    .with_replication(Replication::Partial(2))
                    .with_leaf_capacity(128),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
