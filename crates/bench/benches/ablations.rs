//! Ablations of the design choices DESIGN.md §5 calls out:
//!
//! * `nsb_*` — RS-batch count (the paper: best when Nsb = #threads);
//! * `th_*` — bounded vs unbounded priority queues;
//! * `help_*` — traversal-phase helping on/off.

use criterion::{criterion_group, criterion_main, Criterion};
use odyssey_core::index::{Index, IndexConfig};
use odyssey_core::search::exact::{exact_search, SearchParams};
use odyssey_workloads::generator::noisy_walk;
use odyssey_workloads::queries::{QueryWorkload, WorkloadKind};

fn bench_ablations(c: &mut Criterion) {
    let data = noisy_walk(8_000, 128, 13);
    let index = Index::build(
        data.clone(),
        IndexConfig::new(128).with_segments(16).with_leaf_capacity(128),
        2,
    );
    let w = QueryWorkload::generate(&data, 1, WorkloadKind::Hard, 9);
    let q = w.query(0);

    let mut group = c.benchmark_group("ablations");
    group.sample_size(15);
    // RS-batch count sweep.
    for nsb in [1usize, 2, 8, 32] {
        group.bench_function(format!("nsb_{nsb}"), |b| {
            let params = SearchParams::new(2).with_nsb(nsb);
            b.iter(|| exact_search(&index, q, &params))
        });
    }
    // Queue-threshold sweep (bounded vs unbounded).
    for (label, th) in [("16", 16usize), ("256", 256), ("unbounded", usize::MAX - 1)] {
        group.bench_function(format!("th_{label}"), |b| {
            let params = SearchParams::new(2).with_th(th);
            b.iter(|| exact_search(&index, q, &params))
        });
    }
    // Helping on/off.
    for (label, help) in [("on", 2usize), ("off", 0)] {
        group.bench_function(format!("help_{label}"), |b| {
            let params = SearchParams::new(2).with_help_th(help);
            b.iter(|| exact_search(&index, q, &params))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
