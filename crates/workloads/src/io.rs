//! Dataset file I/O in the data-series community's exchange format:
//! raw little-endian `f32` values, row-major, no header (the format the
//! paper's published datasets — Seismic, Astro, Deep, Sift, Yan-TtI —
//! ship in). The series length is supplied out of band, exactly as with
//! the original tools.
//!
//! With these loaders the reproduction runs on the paper's real datasets
//! when they are available; the synthetic generators remain the default.

use odyssey_core::series::{znormalize, DatasetBuffer};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Writes a collection as raw little-endian `f32`, row-major.
pub fn write_bin(data: &DatasetBuffer, path: &Path) -> io::Result<()> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    for &v in data.raw() {
        out.write_all(&v.to_le_bytes())?;
    }
    out.flush()
}

/// Reads a raw `f32` collection with the given series length.
///
/// # Errors
/// Fails on I/O errors or when the file size is not a whole number of
/// series.
pub fn read_bin(path: &Path, series_len: usize) -> io::Result<DatasetBuffer> {
    read_bin_limited(path, series_len, usize::MAX)
}

/// [`read_bin`] capped at `max_series` (for sampling huge files).
pub fn read_bin_limited(
    path: &Path,
    series_len: usize,
    max_series: usize,
) -> io::Result<DatasetBuffer> {
    if series_len == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "series length must be positive",
        ));
    }
    let meta = std::fs::metadata(path)?;
    let bytes_per_series = series_len as u64 * 4;
    if meta.len() % bytes_per_series != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "file size {} is not a multiple of {} bytes per series",
                meta.len(),
                bytes_per_series
            ),
        ));
    }
    let available = (meta.len() / bytes_per_series) as usize;
    let n = available.min(max_series);
    if n == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty dataset"));
    }
    let mut inp = BufReader::new(std::fs::File::open(path)?);
    let mut data = vec![0.0f32; n * series_len];
    let mut buf = [0u8; 4];
    for v in data.iter_mut() {
        inp.read_exact(&mut buf)?;
        *v = f32::from_le_bytes(buf);
    }
    Ok(DatasetBuffer::from_vec(data, series_len))
}

/// Reads a raw `f32` collection and z-normalizes every series (the
/// similarity-search convention; the paper's pipelines assume
/// z-normalized data).
pub fn read_bin_znormalized(path: &Path, series_len: usize) -> io::Result<DatasetBuffer> {
    let buf = read_bin(path, series_len)?;
    let mut data = buf.raw().to_vec();
    for s in data.chunks_mut(series_len) {
        znormalize(s);
    }
    Ok(DatasetBuffer::from_vec(data, series_len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::random_walk;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("odyssey_io_{}_{name}.bin", std::process::id()))
    }

    #[test]
    fn roundtrip() {
        let data = random_walk(37, 24, 5);
        let path = tmp("roundtrip");
        write_bin(&data, &path).expect("write");
        let back = read_bin(&path, 24).expect("read");
        assert_eq!(back.num_series(), 37);
        assert_eq!(back.raw(), data.raw());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn limited_read() {
        let data = random_walk(20, 16, 9);
        let path = tmp("limited");
        write_bin(&data, &path).expect("write");
        let back = read_bin_limited(&path, 16, 5).expect("read");
        assert_eq!(back.num_series(), 5);
        assert_eq!(back.series(0), data.series(0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_misaligned_files() {
        let data = random_walk(3, 10, 1);
        let path = tmp("misaligned");
        write_bin(&data, &path).expect("write");
        assert!(read_bin(&path, 7).is_err(), "30 floats % 7 != 0");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn znormalized_read() {
        // Write un-normalized data; read back normalized.
        let raw = DatasetBuffer::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], 4);
        let path = tmp("znorm");
        write_bin(&raw, &path).expect("write");
        let back = read_bin_znormalized(&path, 4).expect("read");
        for i in 0..2 {
            let s = back.series(i);
            let mean: f32 = s.iter().sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-6);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_length_rejected() {
        assert!(read_bin(Path::new("/nonexistent"), 0).is_err());
    }
}
