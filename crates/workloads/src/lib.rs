//! # odyssey-workloads
//!
//! Synthetic datasets and query workloads standing in for the paper's
//! evaluation data (Table 1).
//!
//! The paper's real datasets (Seismic, Astro, Deep, Sift, Yan-TtI) are
//! 100 GB–800 GB collections that cannot ship with a reproduction. The
//! generators here produce scaled-down collections with the two dataset
//! properties the paper's results hinge on:
//!
//! * **query-difficulty variance** (drives the scheduling and
//!   work-stealing results, Figures 4, 10): [`generator::noisy_walk`]
//!   mixes smooth and bursty random walks, so initial BSFs — and hence
//!   execution times — vary widely across queries;
//! * **density skew** (drives the DENSITY-AWARE results, Figure 17d):
//!   [`generator::cluster_mixture`] draws series from a mixture of dense
//!   clusters, so naive contiguous partitioning concentrates similar
//!   series on single nodes.
//!
//! [`registry`] catalogues the stand-ins with their paper counterparts.

#![forbid(unsafe_code)]


pub mod generator;
pub mod io;
pub mod queries;
pub mod registry;

pub use generator::{cluster_mixture, noisy_walk, random_walk};
pub use queries::{QueryWorkload, WorkloadKind};
pub use registry::{dataset_registry, DatasetSpec};
