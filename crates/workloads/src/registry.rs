//! Dataset registry: the Table 1 stand-ins.
//!
//! Each entry names a paper dataset, its original scale, and the scaled
//! synthetic generator this reproduction substitutes (see DESIGN.md §2
//! for the substitution rationale).

use crate::generator;
use odyssey_core::series::DatasetBuffer;

/// How a stand-in dataset is generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Family {
    /// Plain random walks (the paper's own synthetic *Random*).
    RandomWalk,
    /// Random walks with heteroscedastic noise bursts (seismic-like).
    NoisyWalk,
    /// Mixture of dense clusters (embedding-like), with
    /// `(n_clusters, spread)`.
    ClusterMixture(usize, f32),
}

/// A dataset stand-in: paper identity plus reproduction parameters.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Stand-in name (matches the paper's dataset name).
    pub name: &'static str,
    /// The paper's collection size (for the Table 1 report).
    pub paper_series: &'static str,
    /// The paper's series length.
    pub paper_len: usize,
    /// The paper's on-disk size.
    pub paper_size_gb: &'static str,
    /// The paper's description.
    pub description: &'static str,
    /// Scaled-down default series count for this reproduction.
    pub repro_series: usize,
    /// Series length used here (matches the paper's).
    pub repro_len: usize,
    /// Generator family.
    pub family: Family,
}

impl DatasetSpec {
    /// Generates the stand-in at its default scale.
    pub fn generate(&self, seed: u64) -> DatasetBuffer {
        self.generate_scaled(self.repro_series, seed)
    }

    /// Generates the stand-in with an explicit series count (for the
    /// dataset-size sweeps of Figures 12 and 17).
    pub fn generate_scaled(&self, n_series: usize, seed: u64) -> DatasetBuffer {
        match self.family {
            Family::RandomWalk => generator::random_walk(n_series, self.repro_len, seed),
            Family::NoisyWalk => generator::noisy_walk(n_series, self.repro_len, seed),
            Family::ClusterMixture(k, spread) => {
                generator::cluster_mixture(n_series, self.repro_len, k, spread, seed)
            }
        }
    }
}

/// The Table 1 stand-ins. Lengths match the paper; series counts are
/// scaled to single-machine scale (absolute numbers are not reproduction
/// targets — shapes are).
pub fn dataset_registry() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "Seismic",
            paper_series: "100M",
            paper_len: 256,
            paper_size_gb: "100",
            description: "seismic records",
            repro_series: 20_000,
            repro_len: 256,
            family: Family::NoisyWalk,
        },
        DatasetSpec {
            name: "Astro",
            paper_series: "270M",
            paper_len: 256,
            paper_size_gb: "265",
            description: "astronomical data",
            repro_series: 20_000,
            repro_len: 256,
            family: Family::ClusterMixture(32, 0.4),
        },
        DatasetSpec {
            name: "Deep",
            paper_series: "1B",
            paper_len: 96,
            paper_size_gb: "358",
            description: "deep embeddings",
            repro_series: 50_000,
            repro_len: 96,
            family: Family::ClusterMixture(64, 0.2),
        },
        DatasetSpec {
            name: "Sift",
            paper_series: "1B",
            paper_len: 128,
            paper_size_gb: "477",
            description: "image descriptors",
            repro_series: 40_000,
            repro_len: 128,
            family: Family::ClusterMixture(48, 0.3),
        },
        DatasetSpec {
            name: "Yan-TtI",
            paper_series: "1B",
            paper_len: 200,
            paper_size_gb: "800",
            description: "image and text",
            repro_series: 25_000,
            repro_len: 200,
            family: Family::ClusterMixture(16, 0.5),
        },
        DatasetSpec {
            name: "Random",
            paper_series: "100M-1600M",
            paper_len: 256,
            paper_size_gb: "100-1600",
            description: "random walks",
            repro_series: 20_000,
            repro_len: 256,
            family: Family::RandomWalk,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table1() {
        let reg = dataset_registry();
        assert_eq!(reg.len(), 6);
        let names: Vec<&str> = reg.iter().map(|d| d.name).collect();
        assert_eq!(
            names,
            vec!["Seismic", "Astro", "Deep", "Sift", "Yan-TtI", "Random"]
        );
        // Paper lengths.
        let lens: Vec<usize> = reg.iter().map(|d| d.paper_len).collect();
        assert_eq!(lens, vec![256, 256, 96, 128, 200, 256]);
        // Repro lengths match paper lengths.
        assert!(reg.iter().all(|d| d.repro_len == d.paper_len));
    }

    #[test]
    fn specs_generate_at_requested_scale() {
        let reg = dataset_registry();
        let d = reg[0].generate_scaled(100, 42);
        assert_eq!(d.num_series(), 100);
        assert_eq!(d.series_len(), 256);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = &dataset_registry()[2];
        let a = spec.generate_scaled(50, 1);
        let b = spec.generate_scaled(50, 1);
        assert_eq!(a.raw(), b.raw());
    }
}
