//! Dataset generators. All are seeded and deterministic.

use odyssey_core::series::{znormalize, DatasetBuffer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random-walk series (the paper's *Random* dataset): cumulative sums of
/// Gaussian(0, 1) steps, z-normalized. Models stock-market-like data.
pub fn random_walk(n_series: usize, series_len: usize, seed: u64) -> DatasetBuffer {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n_series * series_len);
    let mut s = Vec::with_capacity(series_len);
    for _ in 0..n_series {
        s.clear();
        let mut acc = 0.0f32;
        for _ in 0..series_len {
            acc += gaussian(&mut rng);
            s.push(acc);
        }
        znormalize(&mut s);
        data.extend_from_slice(&s);
    }
    DatasetBuffer::from_vec(data, series_len)
}

/// Seismic-like series: random walks with heteroscedastic *noise bursts*
/// (random segments with 10× step variance, like seismic events on a
/// quiet background). Queries against such a collection span a wide
/// difficulty range — the property behind Figures 4 and 10.
pub fn noisy_walk(n_series: usize, series_len: usize, seed: u64) -> DatasetBuffer {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n_series * series_len);
    let mut s = Vec::with_capacity(series_len);
    for _ in 0..n_series {
        s.clear();
        let mut acc = 0.0f32;
        // 0–3 bursts per series.
        let n_bursts = rng.gen_range(0..4);
        let bursts: Vec<(usize, usize)> = (0..n_bursts)
            .map(|_| {
                let start = rng.gen_range(0..series_len);
                let len = rng.gen_range(series_len / 16..=series_len / 4);
                (start, (start + len).min(series_len))
            })
            .collect();
        for i in 0..series_len {
            let sigma = if bursts.iter().any(|&(a, b)| i >= a && i < b) {
                10.0
            } else {
                1.0
            };
            acc += sigma * gaussian(&mut rng);
            s.push(acc);
        }
        znormalize(&mut s);
        data.extend_from_slice(&s);
    }
    DatasetBuffer::from_vec(data, series_len)
}

/// Cluster-mixture series (deep-embedding-like): each series is a random
/// cluster centroid plus small Gaussian jitter. `spread` controls the
/// jitter (relative to the centroid scale); small spreads create the
/// density skew that DENSITY-AWARE partitioning targets.
pub fn cluster_mixture(
    n_series: usize,
    series_len: usize,
    n_clusters: usize,
    spread: f32,
    seed: u64,
) -> DatasetBuffer {
    assert!(n_clusters >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let centroids: Vec<Vec<f32>> = (0..n_clusters)
        .map(|_| {
            let mut acc = 0.0f32;
            (0..series_len)
                .map(|_| {
                    acc += gaussian(&mut rng);
                    acc
                })
                .collect()
        })
        .collect();
    let mut data = Vec::with_capacity(n_series * series_len);
    let mut s = Vec::with_capacity(series_len);
    for _ in 0..n_series {
        let c = &centroids[rng.gen_range(0..n_clusters)];
        s.clear();
        s.extend(c.iter().map(|&v| v + spread * gaussian(&mut rng)));
        znormalize(&mut s);
        data.extend_from_slice(&s);
    }
    DatasetBuffer::from_vec(data, series_len)
}

/// Box-Muller standard normal sample.
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = random_walk(50, 64, 1);
        let b = random_walk(50, 64, 1);
        assert_eq!(a.raw(), b.raw());
        let c = noisy_walk(50, 64, 2);
        let d = noisy_walk(50, 64, 2);
        assert_eq!(c.raw(), d.raw());
        let e = cluster_mixture(50, 64, 4, 0.05, 3);
        let f = cluster_mixture(50, 64, 4, 0.05, 3);
        assert_eq!(e.raw(), f.raw());
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_walk(10, 32, 1);
        let b = random_walk(10, 32, 2);
        assert_ne!(a.raw(), b.raw());
    }

    #[test]
    fn series_are_znormalized() {
        for buf in [
            random_walk(20, 100, 7),
            noisy_walk(20, 100, 7),
            cluster_mixture(20, 100, 3, 0.1, 7),
        ] {
            for i in 0..buf.num_series() {
                let s = buf.series(i);
                let mean: f64 = s.iter().map(|&v| v as f64).sum::<f64>() / s.len() as f64;
                let var: f64 = s
                    .iter()
                    .map(|&v| (v as f64 - mean).powi(2))
                    .sum::<f64>()
                    / s.len() as f64;
                assert!(mean.abs() < 1e-4, "series {i} mean {mean}");
                assert!((var - 1.0).abs() < 1e-3, "series {i} var {var}");
            }
        }
    }

    #[test]
    fn cluster_mixture_members_are_close_to_centroids() {
        // Series from the same cluster are much closer to each other than
        // to other clusters' members.
        let buf = cluster_mixture(40, 64, 2, 0.02, 9);
        // Identify cluster membership by nearest-of-first-two heuristic:
        // compute pairwise distance distribution — must be bimodal, so the
        // minimum inter-series distance is far below the maximum.
        let mut dmin = f64::INFINITY;
        let mut dmax: f64 = 0.0;
        for i in 0..buf.num_series() {
            for j in (i + 1)..buf.num_series() {
                let d = odyssey_core::distance::euclidean_sq(buf.series(i), buf.series(j));
                dmin = dmin.min(d);
                dmax = dmax.max(d);
            }
        }
        assert!(dmax > 20.0 * dmin.max(1e-9), "dmin={dmin} dmax={dmax}");
    }

    #[test]
    fn dims_are_respected() {
        let b = random_walk(7, 96, 5);
        assert_eq!(b.num_series(), 7);
        assert_eq!(b.series_len(), 96);
    }
}
