//! Query workloads.
//!
//! Following the data-series benchmarking literature the paper cites, a
//! query batch mixes **easy** queries (perturbed copies of indexed
//! series — the approximate search finds a tight initial BSF and pruning
//! is strong) and **hard** queries (independent random series — the
//! initial BSF is loose and most leaves must be verified). The mix ratio
//! controls the difficulty variance that the scheduling experiments need.

use odyssey_core::series::{znormalize, DatasetBuffer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The difficulty profile of a generated batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// All queries perturb indexed series with the given relative noise.
    Easy {
        /// Noise amplitude relative to unit variance (e.g. `0.05`).
        noise: f32,
    },
    /// All queries are independent random walks.
    Hard,
    /// A fraction of hard queries, the rest easy.
    Mixed {
        /// Fraction of hard queries in `[0, 1]`.
        hard_fraction: f32,
        /// Noise for the easy queries.
        noise: f32,
    },
    /// Like [`WorkloadKind::Mixed`], but ordered easy-first with all the
    /// hard queries at the end — the paper's adversarial case for static
    /// and plain-dynamic scheduling ("a query batch includes a single
    /// difficult query at the end", Section 3.1).
    Ramp {
        /// Fraction of hard queries in `[0, 1]`.
        hard_fraction: f32,
        /// Noise for the easy queries.
        noise: f32,
    },
    /// Every query perturbs an indexed series, with per-query noise
    /// graded linearly from `0.02` up to `max_noise`. All queries retain
    /// *locality* (their neighborhood lives in one chunk — the property
    /// the replication/BSF-sharing experiments depend on) while spanning
    /// a wide difficulty range.
    Graded {
        /// Largest relative noise in the batch.
        max_noise: f32,
    },
}

/// A generated query batch.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    /// The queries, one per row.
    pub queries: DatasetBuffer,
    /// `true` for queries generated as hard.
    pub is_hard: Vec<bool>,
}

impl QueryWorkload {
    /// Generates `n_queries` queries of the same length as `dataset`.
    pub fn generate(
        dataset: &DatasetBuffer,
        n_queries: usize,
        kind: WorkloadKind,
        seed: u64,
    ) -> Self {
        let len = dataset.series_len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n_queries * len);
        let mut is_hard = Vec::with_capacity(n_queries);
        for i in 0..n_queries {
            let hard = match kind {
                WorkloadKind::Easy { .. } => false,
                WorkloadKind::Hard => true,
                WorkloadKind::Mixed { hard_fraction, .. } => {
                    rng.gen::<f32>() < hard_fraction
                }
                WorkloadKind::Ramp { hard_fraction, .. } => {
                    // The last ceil(fraction * n) queries are hard.
                    let hard_count =
                        ((hard_fraction as f64) * n_queries as f64).ceil() as usize;
                    i + hard_count >= n_queries
                }
                WorkloadKind::Graded { .. } => false,
            };
            let mut q: Vec<f32> = if hard {
                // White Gaussian noise: after z-normalization its PAA is
                // near zero on every segment, so iSAX lower bounds are
                // loose and pruning collapses — the classic hard query
                // for summarization-based indexes (cf. the paper's
                // remark that "pruning is not very effective, especially
                // for some hard datasets").
                (0..len).map(|_| gaussian(&mut rng)).collect()
            } else {
                let noise = match kind {
                    WorkloadKind::Easy { noise } => noise,
                    WorkloadKind::Mixed { noise, .. } => noise,
                    WorkloadKind::Ramp { noise, .. } => noise,
                    WorkloadKind::Graded { max_noise } => {
                        let t = i as f32 / (n_queries.max(2) - 1) as f32;
                        0.02 + t * (max_noise - 0.02)
                    }
                    WorkloadKind::Hard => unreachable!(),
                };
                let base = dataset.series(rng.gen_range(0..dataset.num_series()));
                base.iter().map(|&v| v + noise * gaussian(&mut rng)).collect()
            };
            znormalize(&mut q);
            data.extend_from_slice(&q);
            is_hard.push(hard);
        }
        QueryWorkload {
            queries: DatasetBuffer::from_vec(data, len),
            is_hard,
        }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.num_series()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Query `i` as a slice.
    pub fn query(&self, i: usize) -> &[f32] {
        self.queries.series(i)
    }
}

fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::random_walk;

    #[test]
    fn easy_queries_are_near_dataset_series() {
        let data = random_walk(200, 64, 4);
        let w = QueryWorkload::generate(&data, 20, WorkloadKind::Easy { noise: 0.01 }, 5);
        assert_eq!(w.len(), 20);
        for qi in 0..w.len() {
            let q = w.query(qi);
            let best = (0..data.num_series())
                .map(|i| odyssey_core::distance::euclidean_sq(q, data.series(i)))
                .fold(f64::INFINITY, f64::min);
            assert!(best < 1.0, "easy query {qi} too far: {best}");
        }
    }

    #[test]
    fn hard_queries_are_far_from_dataset() {
        let data = random_walk(200, 64, 4);
        let w = QueryWorkload::generate(&data, 10, WorkloadKind::Hard, 6);
        assert!(w.is_hard.iter().all(|&h| h));
        let mut far = 0;
        for qi in 0..w.len() {
            let q = w.query(qi);
            let best = (0..data.num_series())
                .map(|i| odyssey_core::distance::euclidean_sq(q, data.series(i)))
                .fold(f64::INFINITY, f64::min);
            if best > 1.0 {
                far += 1;
            }
        }
        assert!(far >= 8, "most hard queries should be far: {far}/10");
    }

    #[test]
    fn mixed_fraction_roughly_respected() {
        let data = random_walk(100, 64, 4);
        let w = QueryWorkload::generate(
            &data,
            200,
            WorkloadKind::Mixed {
                hard_fraction: 0.25,
                noise: 0.05,
            },
            7,
        );
        let hard = w.is_hard.iter().filter(|&&h| h).count();
        assert!((25..=75).contains(&hard), "hard count {hard} out of range");
    }

    #[test]
    fn deterministic() {
        let data = random_walk(50, 32, 1);
        let a = QueryWorkload::generate(&data, 10, WorkloadKind::Hard, 3);
        let b = QueryWorkload::generate(&data, 10, WorkloadKind::Hard, 3);
        assert_eq!(a.queries.raw(), b.queries.raw());
    }

    #[test]
    fn graded_difficulty_increases_along_the_batch() {
        let data = random_walk(200, 64, 4);
        let w = QueryWorkload::generate(&data, 16, WorkloadKind::Graded { max_noise: 1.5 }, 6);
        assert!(w.is_hard.iter().all(|&h| !h));
        // Nearest-neighbor distance grows (noisier queries are farther).
        let nn = |q: &[f32]| {
            (0..data.num_series())
                .map(|i| odyssey_core::distance::euclidean_sq(q, data.series(i)))
                .fold(f64::INFINITY, f64::min)
        };
        let first = nn(w.query(0));
        let last = nn(w.query(15));
        assert!(last > first * 4.0, "first={first} last={last}");
    }

    #[test]
    fn ramp_puts_hard_queries_at_the_end() {
        let data = random_walk(100, 64, 4);
        let w = QueryWorkload::generate(
            &data,
            20,
            WorkloadKind::Ramp {
                hard_fraction: 0.25,
                noise: 0.05,
            },
            8,
        );
        assert_eq!(w.is_hard.iter().filter(|&&h| h).count(), 5);
        assert!(w.is_hard[..15].iter().all(|&h| !h), "easy prefix");
        assert!(w.is_hard[15..].iter().all(|&h| h), "hard suffix");
    }
}
