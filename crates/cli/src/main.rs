//! `odyssey` — the command-line interface.
//!
//! ```text
//! odyssey generate --kind seismic --series 10000 --len 128 --seed 1 --out data.bin
//! odyssey index build --data data.bin --len 128 --out data.idx
//! odyssey index info  --index data.idx
//! odyssey query --index data.idx --queries q.bin [--k 5] [--dtw-window 6] [--threads 2]
//! odyssey cluster --data data.bin --len 128 --queries q.bin --nodes 8 \
//!                 --replication partial-2 --scheduler predict-dn [--no-stealing]
//! ```
//!
//! Datasets are raw little-endian `f32`, row-major (the data-series
//! community's exchange format); indexes use the `odyssey-core` persisted
//! format.

#![forbid(unsafe_code)]


mod args;
mod commands;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(raw) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            std::process::exit(1);
        }
    }
}
