//! Command implementations.

use crate::args::Args;
use odyssey_cluster::{ClusterConfig, OdysseyCluster, Replication, SchedulerKind};
use odyssey_core::index::{Index, IndexConfig};
use odyssey_core::persist;
use odyssey_core::search::engine::{BatchAnswer, BatchEngine, BatchQuery, QueryKind};
use odyssey_core::search::exact::SearchParams;
use odyssey_sched::{AdmissionController, ThresholdModel};
use odyssey_workloads::generator;
use odyssey_workloads::io as wio;
use std::path::Path;
use std::sync::Arc;

/// Top-level usage text.
pub const USAGE: &str = "usage:
  odyssey generate --kind random|seismic|clustered --series N --len L \\
                   [--seed S] [--clusters K] [--spread F] --out FILE
  odyssey index build --data FILE --len L [--segments W] [--leaf-capacity C] \\
                      [--threads T] --out FILE
  odyssey index info --index FILE
  odyssey query --index FILE --queries FILE [--k K] [--dtw-window W] [--threads T]
  odyssey serve --index FILE --queries FILE [--rate QPS] [--seed S] [--threads T] \\
                [--lane-width W] [--capacity C] [--interactive-every K] \\
                [--deadline-ms D] [--k K] [--dtw-window W]
  odyssey cluster --data FILE --len L --queries FILE [--nodes N] \\
                  [--replication full|equally-split|partial-K] \\
                  [--scheduler static|dynamic|predict-st|predict-st-unsorted|predict-dn] \\
                  [--threads-per-node T] [--no-stealing] [--no-bsf-sharing]";

/// Dispatches a raw argument vector to a command.
pub fn dispatch(raw: Vec<String>) -> Result<(), String> {
    let args = Args::parse(raw)?;
    match args.positional() {
        [c, ..] if c == "generate" => cmd_generate(&args),
        [c, s, ..] if c == "index" && s == "build" => cmd_index_build(&args),
        [c, s, ..] if c == "index" && s == "info" => cmd_index_info(&args),
        [c, ..] if c == "query" => cmd_query(&args),
        [c, ..] if c == "serve" => cmd_serve(&args),
        [c, ..] if c == "cluster" => cmd_cluster(&args),
        [] => Err("no command given".into()),
        other => Err(format!("unknown command '{}'", other.join(" "))),
    }
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let kind = args.require("kind")?;
    let n: usize = args.require_parsed("series")?;
    let len: usize = args.require_parsed("len")?;
    let seed: u64 = args.get_or("seed", 42)?;
    let out = args.require("out")?;
    let data = match kind {
        "random" => generator::random_walk(n, len, seed),
        "seismic" => generator::noisy_walk(n, len, seed),
        "clustered" => {
            let k: usize = args.get_or("clusters", 32)?;
            let spread: f32 = args.get_or("spread", 0.3)?;
            generator::cluster_mixture(n, len, k, spread, seed)
        }
        other => return Err(format!("unknown --kind '{other}'")),
    };
    wio::write_bin(&data, Path::new(out)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} series x {} ({:.1} MB) to {out}",
        n,
        len,
        data.size_bytes() as f64 / 1048576.0
    );
    Ok(())
}

fn cmd_index_build(args: &Args) -> Result<(), String> {
    let data_path = args.require("data")?;
    let len: usize = args.require_parsed("len")?;
    let out = args.require("out")?;
    let segments: usize = args.get_or("segments", 16.min(len))?;
    let leaf_capacity: usize = args.get_or("leaf-capacity", 2000)?;
    let threads: usize = args.get_or("threads", 2)?;
    let data = wio::read_bin(Path::new(data_path), len).map_err(|e| e.to_string())?;
    let cfg = IndexConfig::new(len)
        .with_segments(segments)
        .with_leaf_capacity(leaf_capacity);
    let index = Index::build(data, cfg, threads);
    let t = index.build_times();
    persist::save_index_file(&index, Path::new(out)).map_err(|e| e.to_string())?;
    println!(
        "indexed {} series: {} subtrees, {} leaves, {:?} (buffers {:?} + tree {:?}) -> {out}",
        index.num_series(),
        index.forest().len(),
        index.leaf_count(),
        t.index_time(),
        t.buffer_time,
        t.tree_time
    );
    Ok(())
}

fn cmd_index_info(args: &Args) -> Result<(), String> {
    let path = args.require("index")?;
    let index = persist::load_index_file(Path::new(path)).map_err(|e| e.to_string())?;
    let cfg = index.config();
    println!("index: {path}");
    println!("  series:        {}", index.num_series());
    println!("  series length: {}", cfg.series_len);
    println!("  segments:      {}", cfg.segments);
    println!("  leaf capacity: {}", cfg.leaf_capacity);
    println!("  root subtrees: {}", index.forest().len());
    println!("  leaves:        {}", index.leaf_count());
    println!(
        "  overhead:      {:.2} MB (+ {:.2} MB raw data)",
        index.size_bytes() as f64 / 1048576.0,
        index.layout().data().size_bytes() as f64 / 1048576.0
    );
    Ok(())
}

/// How many exact pilot queries the `query` command spends training the
/// sigmoid `TH` model (Figure 6) before answering the batch. The
/// sigmoid fit needs at least four points; smaller files skip training.
const TH_PILOT: usize = 8;

/// Answers the whole query file as **one concurrent batch** on a
/// persistent [`BatchEngine`]: the worker pool and scratch arenas are
/// set up once, per-query cost estimates (the PREDICT-* feature) drive
/// the admission plan — predicted-hard queries take the full pool in
/// descending-estimate order (PREDICT-DN), predicted-easy queries run
/// simultaneously on narrow worker groups — and, when the file is large
/// enough, a pilot run trains the sigmoid threshold model so every
/// query gets its own predicted `TH`.
fn cmd_query(args: &Args) -> Result<(), String> {
    let index = persist::load_index_file(Path::new(args.require("index")?))
        .map_err(|e| e.to_string())?;
    let len = index.config().series_len;
    let queries =
        wio::read_bin(Path::new(args.require("queries")?), len).map_err(|e| e.to_string())?;
    let threads: usize = args.get_or("threads", 2)?;
    let k: usize = args.get_or("k", 1)?;
    let dtw_window: usize = args.get_or("dtw-window", 0)?;
    let params = SearchParams::new(threads);
    let kind = if dtw_window > 0 {
        QueryKind::Dtw(dtw_window)
    } else if k > 1 {
        QueryKind::Knn(k)
    } else {
        QueryKind::Exact
    };
    // Per-query cost estimates: the initial BSF of the approximate
    // search (monotone in execution time, Figure 4).
    let estimates: Vec<f64> = (0..queries.num_series())
        .map(|qi| index.approx_search(queries.series(qi)).distance)
        .collect();
    let nq = queries.num_series();
    let engine = BatchEngine::new(Arc::new(index), threads);

    // Pilot phase: run a few exact searches spread across the estimate
    // range and fit BSF -> median queue size, the paper's TH predictor.
    let controller = if nq >= 4 && kind == QueryKind::Exact {
        let mut by_est: Vec<usize> = (0..nq).collect();
        by_est.sort_by(|&a, &b| estimates[a].total_cmp(&estimates[b]).then(a.cmp(&b)));
        let n_pilot = TH_PILOT.min(nq);
        let mut bsfs = Vec::with_capacity(n_pilot);
        let mut medians = Vec::with_capacity(n_pilot);
        for i in 0..n_pilot {
            let qi = by_est[i * (nq - 1) / (n_pilot - 1).max(1)];
            let out = engine.exact(queries.series(qi), &params);
            bsfs.push(out.stats.initial_bsf);
            medians.push(out.stats.pq_size_median as f64);
        }
        let model = ThresholdModel::train(&bsfs, &medians, 16.0);
        println!("trained per-query TH model on {n_pilot} pilot queries");
        AdmissionController::default().with_threshold_model(model)
    } else {
        AdmissionController::default()
    };

    let ths = controller.predict_ths(&estimates);
    let batch: Vec<BatchQuery> = (0..nq)
        .map(|qi| {
            let q = BatchQuery::new(queries.series(qi), kind);
            match &ths {
                Some(ths) => q.with_params(params.with_th(ths[qi])),
                None => q,
            }
        })
        .collect();
    let plan = controller.plan(&estimates, threads);
    let lanes: Vec<String> = plan
        .rounds
        .iter()
        .map(|r| {
            let widths: Vec<String> =
                r.lanes.iter().map(|l| format!("{}w", l.width)).collect();
            widths.join("+")
        })
        .collect();
    let outcome = engine.run_batch_concurrent(&batch, &plan, &params);
    for (qi, item) in outcome.items.iter().enumerate() {
        match &item.answer {
            BatchAnswer::Nn(ans) if dtw_window > 0 => println!(
                "query {qi}: DTW 1-NN id={:?} dist={:.6} ({} dtw computations)",
                ans.series_id, ans.distance, item.stats.real_distance_computations
            ),
            BatchAnswer::Nn(ans) => println!(
                "query {qi}: 1-NN id={:?} dist={:.6} (initial BSF {:.4}, {} real dists)",
                ans.series_id,
                ans.distance,
                item.stats.initial_bsf,
                item.stats.real_distance_computations
            ),
            BatchAnswer::Knn(knn) => {
                let hits: Vec<String> = knn
                    .neighbors
                    .iter()
                    .map(|&(d, id)| format!("{id}:{:.4}", d.sqrt()))
                    .collect();
                println!("query {qi}: {k}-NN [{}]", hits.join(", "));
            }
        }
    }
    println!(
        "batch: {} queries in {:?} on a {}-thread engine ({} round(s): {})",
        outcome.items.len(),
        outcome.wall,
        engine.n_threads(),
        plan.rounds.len(),
        if lanes.is_empty() {
            "empty".to_string()
        } else {
            lanes.join(" then ")
        }
    );
    Ok(())
}

/// Stands up an online [`QueryService`](odyssey_service::QueryService)
/// on a built index and replays the query file as an **open-loop**
/// arrival stream: inter-arrival gaps are drawn from a seeded
/// exponential distribution at the requested rate, so the schedule is
/// fixed by `--seed` and `--rate` alone — arrivals do not wait for
/// completions, which is what exposes queueing delay and backpressure.
/// Every `--interactive-every`-th query is submitted interactive (with
/// `--deadline-ms`, when given); the rest ride the batch class.
fn cmd_serve(args: &Args) -> Result<(), String> {
    use odyssey_service::{QueryService, ServiceConfig, ServiceQuery};

    let index = persist::load_index_file(Path::new(args.require("index")?))
        .map_err(|e| e.to_string())?;
    let len = index.config().series_len;
    let queries =
        wio::read_bin(Path::new(args.require("queries")?), len).map_err(|e| e.to_string())?;
    let rate: f64 = args.get_or("rate", 200.0)?;
    if rate <= 0.0 || rate.is_nan() {
        return Err("--rate must be positive".into());
    }
    let seed: u64 = args.get_or("seed", 42)?;
    let threads: usize = args.get_or("threads", 2)?;
    let lane_width: usize = args.get_or("lane-width", 1)?;
    let capacity: usize = args.get_or("capacity", 64)?;
    let interactive_every: usize = args.get_or("interactive-every", 2)?;
    let deadline_ms: u64 = args.get_or("deadline-ms", 0)?;
    let k: usize = args.get_or("k", 1)?;
    let dtw_window: usize = args.get_or("dtw-window", 0)?;
    let kind = if dtw_window > 0 {
        QueryKind::Dtw(dtw_window)
    } else if k > 1 {
        QueryKind::Knn(k)
    } else {
        QueryKind::Exact
    };

    // The deterministic arrival schedule: exponential gaps from a
    // seeded xorshift, fixed before the service starts.
    let nq = queries.num_series();
    let mut x = seed | 1;
    let mut at = std::time::Duration::ZERO;
    let arrivals: Vec<std::time::Duration> = (0..nq)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let u = (x >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
            at += std::time::Duration::from_secs_f64(-(1.0 - u).ln() / rate);
            at
        })
        .collect();

    let mut config = ServiceConfig::default()
        .with_pool_threads(threads)
        .with_lane_width(lane_width)
        .with_queue_capacity(capacity);
    if deadline_ms > 0 {
        config = config.with_interactive_deadline(std::time::Duration::from_millis(deadline_ms));
    }
    let service = QueryService::new(config);
    let index = Arc::new(index);
    let (submitted, report) = service.serve_index(&index, |client| {
        let start = std::time::Instant::now();
        let mut submitted = 0u64;
        for (qi, &due) in arrivals.iter().enumerate() {
            if let Some(gap) = due.checked_sub(start.elapsed()) {
                std::thread::sleep(gap);
            }
            let q = ServiceQuery {
                data: queries.series(qi).to_vec(),
                kind,
                class: if interactive_every > 0 && qi % interactive_every == 0 {
                    odyssey_service::LatencyClass::Interactive
                } else {
                    odyssey_service::LatencyClass::Batch
                },
                deadline: None,
            };
            // Open loop: a Busy rejection is recorded (in the report)
            // and the arrival is lost, as an overloaded front-end
            // would shed it.
            if client.submit(q).is_ok() {
                submitted += 1;
            }
        }
        submitted
    });
    println!(
        "served {submitted}/{} arrivals at ~{rate:.0} qps (seed {seed}): \
         {} completed, {} rejected (backpressure), {} degraded, wall {:?}",
        nq, report.completed, report.rejected, report.degraded, report.wall
    );
    for (name, h) in [("interactive", &report.interactive), ("batch", &report.batch)] {
        println!(
            "  {name:<11} n={:<5} p50={}us p90={}us p99={}us max={}us",
            h.count, h.p50_us, h.p90_us, h.p99_us, h.max_us
        );
    }
    println!(
        "  peak in-flight {} of capacity {capacity}",
        report.max_in_flight
    );
    Ok(())
}

/// Parses `full`, `equally-split`, or `partial-K`.
pub fn parse_replication(s: &str) -> Result<Replication, String> {
    match s {
        "full" => Ok(Replication::Full),
        "equally-split" => Ok(Replication::EquallySplit),
        other => match other.strip_prefix("partial-") {
            Some(k) => k
                .parse()
                .map(Replication::Partial)
                .map_err(|_| format!("invalid replication '{other}'")),
            None => Err(format!("invalid replication '{other}'")),
        },
    }
}

/// Parses a scheduler name (the paper's labels).
pub fn parse_scheduler(s: &str) -> Result<SchedulerKind, String> {
    SchedulerKind::all()
        .into_iter()
        .find(|k| k.label() == s)
        .ok_or_else(|| format!("invalid scheduler '{s}'"))
}

fn cmd_cluster(args: &Args) -> Result<(), String> {
    let len: usize = args.require_parsed("len")?;
    let data = wio::read_bin(Path::new(args.require("data")?), len).map_err(|e| e.to_string())?;
    let queries =
        wio::read_bin(Path::new(args.require("queries")?), len).map_err(|e| e.to_string())?;
    let n_nodes: usize = args.get_or("nodes", 4)?;
    if n_nodes == 0 {
        return Err("--nodes must be at least 1".into());
    }
    let replication = parse_replication(args.get("replication").unwrap_or("full"))?;
    let scheduler = parse_scheduler(args.get("scheduler").unwrap_or("predict-dn"))?;
    let tpn: usize = args.get_or("threads-per-node", 2)?;
    if tpn == 0 {
        return Err("--threads-per-node must be at least 1".into());
    }
    let cfg = ClusterConfig::new(n_nodes)
        .with_replication(replication)
        .with_scheduler(scheduler)
        .with_threads_per_node(tpn)
        .with_work_stealing(!args.has_flag("no-stealing"))
        .with_bsf_sharing(!args.has_flag("no-bsf-sharing"));
    println!("building {cfg:?} over {} series...", data.num_series());
    let cluster = OdysseyCluster::build(&data, cfg);
    let report = cluster.answer_batch(&queries);
    println!(
        "answered {} queries: makespan {:.6} simulated s (wall {:?})",
        report.answers.len(),
        report.makespan_seconds(tpn),
        report.wall
    );
    println!(
        "steals {}/{}, bsf broadcasts {}",
        report.steals_successful, report.steals_attempted, report.bsf_broadcasts
    );
    for (qi, a) in report.answers.iter().enumerate() {
        println!("query {qi}: id={:?} dist={:.6}", a.series_id, a.distance);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("odyssey_cli_{}_{name}", std::process::id()))
    }

    fn run(cmd: &str) -> Result<(), String> {
        dispatch(cmd.split_whitespace().map(String::from).collect())
    }

    #[test]
    fn replication_parsing() {
        assert_eq!(parse_replication("full").unwrap(), Replication::Full);
        assert_eq!(
            parse_replication("equally-split").unwrap(),
            Replication::EquallySplit
        );
        assert_eq!(
            parse_replication("partial-4").unwrap(),
            Replication::Partial(4)
        );
        assert!(parse_replication("partial-x").is_err());
        assert!(parse_replication("nope").is_err());
    }

    #[test]
    fn scheduler_parsing() {
        assert_eq!(
            parse_scheduler("predict-dn").unwrap(),
            SchedulerKind::PredictDn
        );
        assert_eq!(parse_scheduler("static").unwrap(), SchedulerKind::Static);
        assert!(parse_scheduler("bogus").is_err());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run("frobnicate --x 1").is_err());
        assert!(run("").is_err());
    }

    #[test]
    fn end_to_end_generate_index_query() {
        let data = tmp("data.bin");
        let qfile = tmp("q.bin");
        let idx = tmp("data.idx");
        run(&format!(
            "generate --kind seismic --series 400 --len 64 --seed 3 --out {}",
            data.display()
        ))
        .expect("generate");
        run(&format!(
            "generate --kind random --series 3 --len 64 --seed 9 --out {}",
            qfile.display()
        ))
        .expect("generate queries");
        run(&format!(
            "index build --data {} --len 64 --segments 8 --leaf-capacity 32 --out {}",
            data.display(),
            idx.display()
        ))
        .expect("index build");
        run(&format!("index info --index {}", idx.display())).expect("info");
        run(&format!(
            "query --index {} --queries {}",
            idx.display(),
            qfile.display()
        ))
        .expect("query");
        run(&format!(
            "query --index {} --queries {} --k 3",
            idx.display(),
            qfile.display()
        ))
        .expect("knn query");
        run(&format!(
            "query --index {} --queries {} --dtw-window 3",
            idx.display(),
            qfile.display()
        ))
        .expect("dtw query");
        run(&format!(
            "cluster --data {} --len 64 --queries {} --nodes 2 --replication partial-2",
            data.display(),
            qfile.display()
        ))
        .expect("cluster");
        // A fast open-loop replay: the 3-query stream at a high rate
        // finishes quickly but still exercises the full service path.
        run(&format!(
            "serve --index {} --queries {} --rate 5000 --seed 7 --threads 2 \
             --interactive-every 2 --deadline-ms 200",
            idx.display(),
            qfile.display()
        ))
        .expect("serve");
        for f in [data, qfile, idx] {
            std::fs::remove_file(f).ok();
        }
    }
}
