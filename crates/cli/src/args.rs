//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed arguments: positional words plus `--key value` options.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses a raw argument list. A token starting with `--` consumes
    /// the next token as its value unless that token also starts with
    /// `--` (then it is a bare flag).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, String> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty option name '--'".into());
                }
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        if args.options.insert(key.to_string(), value).is_some() {
                            return Err(format!("duplicate option --{key}"));
                        }
                    }
                    _ => args.flags.push(key.to_string()),
                }
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// The positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// A required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    /// A parsed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid --{key} '{v}'")),
        }
    }

    /// A required parsed option.
    pub fn require_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let v = self.require(key)?;
        v.parse().map_err(|_| format!("invalid --{key} '{v}'"))
    }

    /// Whether a bare flag was given.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).expect("parse")
    }

    #[test]
    fn positional_and_options() {
        let a = parse("index build --data d.bin --len 128 --verbose");
        assert_eq!(a.positional(), &["index", "build"]);
        assert_eq!(a.get("data"), Some("d.bin"));
        assert_eq!(a.get_or::<usize>("len", 0).unwrap(), 128);
        assert!(a.has_flag("verbose"));
        assert!(!a.has_flag("quiet"));
    }

    #[test]
    fn defaults_and_requirements() {
        let a = parse("run --n 5");
        assert_eq!(a.get_or::<usize>("n", 1).unwrap(), 5);
        assert_eq!(a.get_or::<usize>("m", 7).unwrap(), 7);
        assert!(a.require("missing").is_err());
        assert!(a.require_parsed::<usize>("n").unwrap() == 5);
    }

    #[test]
    fn rejects_duplicates_and_bad_values() {
        assert!(Args::parse(["--x".into(), "1".into(), "--x".into(), "2".into()]).is_err());
        let a = parse("--n abc");
        assert!(a.get_or::<usize>("n", 1).is_err());
    }

    #[test]
    fn double_dash_as_flag_before_option() {
        let a = parse("--fast --out file.bin");
        assert!(a.has_flag("fast"));
        assert_eq!(a.get("out"), Some("file.bin"));
    }
}
