//! DENSITY-AWARE data partitioning (Section 3.4.1, Figures 8–9).
//!
//! A good partitioning should *not* put all series similar to some future
//! query on one node — that node would do all the low-pruning work while
//! the rest sit idle. DENSITY-AWARE therefore spreads similar series
//! across chunks:
//!
//! 1. compute iSAX summaries and fill summarization buffers;
//! 2. order buffers by **Gray code**, so adjacent buffers hold similar
//!    series;
//! 3. split the series of the λ largest buffers round-robin across all
//!    chunks (dense regions must not land on one node);
//! 4. assign the remaining buffers round-robin, in Gray order;
//! 5. while the result is imbalanced, split the largest buffer of the
//!    largest chunk.

use crate::gray::gray_rank;
use crate::scheme::Partition;
use odyssey_core::buffers::{SummarizationBuffers, Summaries};
use odyssey_core::series::DatasetBuffer;

/// DENSITY-AWARE parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityAwareConfig {
    /// Number of iSAX segments used for the summarization buffers.
    pub segments: usize,
    /// λ: how many of the largest buffers are split eagerly (the paper
    /// uses 400 and reports stable behaviour from hundreds to thousands).
    pub lambda: usize,
    /// Stop rebalancing once `(max - min) / mean` drops below this.
    pub balance_tolerance: f64,
    /// Threads for the summarization pass.
    pub n_threads: usize,
}

impl Default for DensityAwareConfig {
    fn default() -> Self {
        DensityAwareConfig {
            segments: 16,
            lambda: 400,
            balance_tolerance: 0.05,
            n_threads: 4,
        }
    }
}

/// Internal: a buffer still assigned as a unit to chunk `chunk`.
struct WholeBuffer {
    chunk: usize,
    ids: Vec<u32>,
}

/// Runs DENSITY-AWARE, splitting `data` into `n_chunks` chunks.
pub fn density_aware(
    data: &DatasetBuffer,
    n_chunks: usize,
    cfg: &DensityAwareConfig,
) -> Partition {
    assert!(n_chunks >= 1);
    if n_chunks == 1 {
        return Partition {
            chunks: vec![(0..data.num_series() as u32).collect()],
        };
    }
    let segments = cfg.segments.min(data.series_len());
    // Steps 1–2: summaries -> buffers -> Gray ordering.
    let summaries = Summaries::compute(data, segments, cfg.n_threads);
    let mut buffers = SummarizationBuffers::build(&summaries).buffers;
    buffers.sort_by_key(|b| gray_rank(b.key));

    // Step 3: split the λ largest buffers round-robin.
    let mut order_by_size: Vec<usize> = (0..buffers.len()).collect();
    order_by_size.sort_by(|&a, &b| {
        buffers[b]
            .ids
            .len()
            .cmp(&buffers[a].ids.len())
            .then(a.cmp(&b))
    });
    let split_eagerly: std::collections::HashSet<usize> =
        order_by_size.iter().copied().take(cfg.lambda).collect();

    let mut chunks: Vec<Vec<u32>> = vec![Vec::new(); n_chunks];
    let mut whole: Vec<WholeBuffer> = Vec::new();
    let mut rr = 0usize;
    for (bi, buf) in buffers.iter().enumerate() {
        if split_eagerly.contains(&bi) {
            for &id in &buf.ids {
                chunks[rr % n_chunks].push(id);
                rr += 1;
            }
        } else {
            // Step 4: whole buffers round-robin in Gray order, onto the
            // currently smallest chunk among the round-robin targets.
            whole.push(WholeBuffer {
                chunk: usize::MAX, // assigned below
                ids: buf.ids.clone(),
            });
        }
    }
    // Assign whole buffers in Gray order, round-robin.
    for (i, wb) in whole.iter_mut().enumerate() {
        let c = i % n_chunks;
        wb.chunk = c;
        chunks[c].extend_from_slice(&wb.ids);
    }

    // Step 6: rebalance — split the largest whole buffer of the largest
    // chunk until balanced (or nothing left to split).
    let mut p = Partition { chunks };
    let mut guard = 0;
    while p.imbalance() > cfg.balance_tolerance && guard < buffers.len() + 8 {
        guard += 1;
        let largest_chunk = (0..n_chunks)
            .max_by_key(|&c| p.chunks[c].len())
            .expect("n_chunks >= 1");
        // Find the largest not-yet-split whole buffer on that chunk.
        let Some(wi) = whole
            .iter()
            .enumerate()
            .filter(|(_, w)| w.chunk == largest_chunk && !w.ids.is_empty())
            .max_by_key(|(_, w)| w.ids.len())
            .map(|(i, _)| i)
        else {
            break; // nothing splittable on the biggest chunk
        };
        let wb = &mut whole[wi];
        // Remove its ids from the chunk...
        let members: std::collections::HashSet<u32> = wb.ids.iter().copied().collect();
        p.chunks[largest_chunk].retain(|id| !members.contains(id));
        // ...and redistribute them round-robin, smallest chunks first.
        let mut targets: Vec<usize> = (0..n_chunks).collect();
        targets.sort_by_key(|&c| p.chunks[c].len());
        for (i, &id) in wb.ids.iter().enumerate() {
            p.chunks[targets[i % n_chunks]].push(id);
        }
        wb.ids.clear();
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::validate_partition;
    use odyssey_core::series::znormalize;

    /// A clustered dataset: `n_clusters` dense groups of near-identical
    /// series — the density skew DENSITY-AWARE exists to handle.
    fn clustered_dataset(n: usize, len: usize, n_clusters: usize, seed: u64) -> DatasetBuffer {
        let mut x = seed | 1;
        let mut rand = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 2000) as f32 / 1000.0 - 1.0
        };
        // Cluster centroids: distinct random walks.
        let centroids: Vec<Vec<f32>> = (0..n_clusters)
            .map(|_| {
                let mut acc = 0.0;
                (0..len)
                    .map(|_| {
                        acc += rand();
                        acc
                    })
                    .collect()
            })
            .collect();
        let mut data = Vec::with_capacity(n * len);
        for i in 0..n {
            let c = &centroids[i % n_clusters];
            let mut s: Vec<f32> = c.iter().map(|&v| v + 0.01 * rand()).collect();
            znormalize(&mut s);
            data.extend_from_slice(&s);
        }
        DatasetBuffer::from_vec(data, len)
    }

    fn cfg() -> DensityAwareConfig {
        DensityAwareConfig {
            segments: 8,
            lambda: 4,
            balance_tolerance: 0.05,
            n_threads: 2,
        }
    }

    #[test]
    fn density_aware_is_a_valid_partition() {
        let data = clustered_dataset(600, 64, 5, 11);
        for k in [2usize, 3, 4, 8] {
            let p = density_aware(&data, k, &cfg());
            assert_eq!(p.num_chunks(), k);
            validate_partition(&p, 600).expect("valid partition");
        }
    }

    #[test]
    fn density_aware_balances_sizes() {
        let data = clustered_dataset(800, 64, 3, 23);
        let p = density_aware(&data, 4, &cfg());
        assert!(
            p.imbalance() < 0.25,
            "imbalance {} too high: {:?}",
            p.imbalance(),
            p.chunks.iter().map(|c| c.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn density_aware_spreads_dense_clusters() {
        // Every chunk should receive members of every dense cluster
        // (series i belongs to cluster i % n_clusters).
        let n_clusters = 4;
        let data = clustered_dataset(400, 64, n_clusters, 37);
        let p = density_aware(&data, 4, &cfg());
        for (c, chunk) in p.chunks.iter().enumerate() {
            let mut present = vec![false; n_clusters];
            for &id in chunk {
                present[id as usize % n_clusters] = true;
            }
            assert!(
                present.iter().all(|&b| b),
                "chunk {c} misses some cluster: {present:?}"
            );
        }
    }

    #[test]
    fn single_chunk_is_identity() {
        let data = clustered_dataset(100, 32, 2, 5);
        let p = density_aware(&data, 1, &cfg());
        assert_eq!(p.chunks[0].len(), 100);
        validate_partition(&p, 100).expect("valid");
    }

    #[test]
    fn deterministic() {
        let data = clustered_dataset(300, 64, 3, 77);
        let p1 = density_aware(&data, 4, &cfg());
        let p2 = density_aware(&data, 4, &cfg());
        assert_eq!(p1, p2);
    }
}
