//! Binary-reflected Gray code (Section 3.4.1, Figure 8).
//!
//! DENSITY-AWARE orders the iSAX summarization buffers by the Gray-code
//! *rank* of their root word: neighbors in this order differ in exactly
//! one bit, i.e. they contain *similar* series, so assigning consecutive
//! buffers to different nodes (round-robin) spreads similar series across
//! the system.

/// Converts a binary value to its Gray code.
#[inline]
pub fn to_gray(v: u64) -> u64 {
    v ^ (v >> 1)
}

/// Converts a Gray code back to its binary value.
#[inline]
pub fn from_gray(g: u64) -> u64 {
    let mut v = g;
    let mut shift = 1u32;
    while shift < 64 {
        v ^= v >> shift;
        shift <<= 1;
    }
    v
}

/// The position of binary value `v` in the Gray-code sequence, i.e. the
/// rank at which `to_gray(rank) == v`. Sorting root-word keys by this
/// rank yields the Gray ordering of Figure 8b.
#[inline]
pub fn gray_rank(v: u64) -> u64 {
    from_gray(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for v in 0..4096u64 {
            assert_eq!(from_gray(to_gray(v)), v);
        }
        for v in [u64::MAX, u64::MAX / 3, 1u64 << 63] {
            assert_eq!(from_gray(to_gray(v)), v);
        }
    }

    #[test]
    fn consecutive_codes_differ_in_one_bit() {
        for v in 0..4096u64 {
            let diff = to_gray(v) ^ to_gray(v + 1);
            assert_eq!(diff.count_ones(), 1, "v={v}");
        }
    }

    #[test]
    fn gray_sequence_is_a_permutation() {
        let n = 1u64 << 10;
        let mut seen = vec![false; n as usize];
        for r in 0..n {
            let g = to_gray(r);
            assert!(g < n);
            assert!(!seen[g as usize]);
            seen[g as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn figure8_three_bit_ordering() {
        // Figure 8b: 000, 001, 011, 010, 110, 111, 101, 100.
        let order: Vec<u64> = (0..8).map(to_gray).collect();
        assert_eq!(order, vec![0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100]);
        // Sorting those keys by rank recovers the sequence.
        let mut keys = order.clone();
        keys.sort_by_key(|&k| gray_rank(k));
        assert_eq!(keys, order);
    }
}
