//! Basic partitioning schemes and the partition container.

use odyssey_core::series::DatasetBuffer;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A partition of a collection into chunks: `chunks[c]` lists the series
/// ids (into the original collection) assigned to chunk `c`.
///
/// In the Odyssey topology one chunk is stored by one *replication
/// group*; with `k` groups the dataset splits into `k` mutually disjoint
/// chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Per-chunk series ids.
    pub chunks: Vec<Vec<u32>>,
}

impl Partition {
    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Total series across chunks.
    pub fn total(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }

    /// Materializes chunk `c` as its own buffer.
    pub fn materialize(&self, data: &DatasetBuffer, c: usize) -> DatasetBuffer {
        data.gather(&self.chunks[c])
    }

    /// Per-chunk series counts, in chunk order.
    pub fn chunk_sizes(&self) -> Vec<usize> {
        self.chunks.iter().map(|c| c.len()).collect()
    }

    /// The fraction of the collection still covered when the chunks in
    /// `missing` are unreachable (a cluster's degraded-answer coverage
    /// when those replication groups lost all replicas). Chunk ids not
    /// in this partition are ignored.
    pub fn covered_fraction(&self, missing: &[usize]) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        let lost: usize = missing
            .iter()
            .filter(|&&c| c < self.chunks.len())
            .map(|&c| self.chunks[c].len())
            .sum();
        (total - lost) as f64 / total as f64
    }

    /// Max/min chunk-size imbalance as a fraction of the mean (0 =
    /// perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let sizes: Vec<usize> = self.chunks.iter().map(|c| c.len()).collect();
        let max = *sizes.iter().max().unwrap_or(&0) as f64;
        let min = *sizes.iter().min().unwrap_or(&0) as f64;
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len().max(1) as f64;
        if mean == 0.0 {
            0.0
        } else {
            (max - min) / mean
        }
    }
}

/// The partitioning strategies of Section 3.4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartitioningScheme {
    /// Contiguous equal chunks in dataset order.
    EquallySplit,
    /// Random shuffle (seeded) before equal splitting.
    RandomShuffle {
        /// Shuffle seed (the coordinator broadcasts it so the partition
        /// is reproducible).
        seed: u64,
    },
    /// Gray-code density-aware partitioning (Section 3.4.1).
    DensityAware(crate::density::DensityAwareConfig),
}

impl PartitioningScheme {
    /// Applies the scheme, splitting `data` into `n_chunks` chunks.
    pub fn apply(&self, data: &DatasetBuffer, n_chunks: usize) -> Partition {
        match self {
            PartitioningScheme::EquallySplit => equally_split(data.num_series(), n_chunks),
            PartitioningScheme::RandomShuffle { seed } => {
                random_shuffle(data.num_series(), n_chunks, *seed)
            }
            PartitioningScheme::DensityAware(cfg) => {
                crate::density::density_aware(data, n_chunks, cfg)
            }
        }
    }

    /// Harness label.
    pub fn label(&self) -> &'static str {
        match self {
            PartitioningScheme::EquallySplit => "equally-split",
            PartitioningScheme::RandomShuffle { .. } => "random-shuffle",
            PartitioningScheme::DensityAware(_) => "density-aware",
        }
    }
}

/// EQUALLY-SPLIT: chunk `c` gets the contiguous id range
/// `[c*n/k, (c+1)*n/k)`.
pub fn equally_split(n_series: usize, n_chunks: usize) -> Partition {
    assert!(n_chunks >= 1);
    let chunks = (0..n_chunks)
        .map(|c| {
            let start = c * n_series / n_chunks;
            let end = (c + 1) * n_series / n_chunks;
            (start as u32..end as u32).collect()
        })
        .collect();
    Partition { chunks }
}

/// Random shuffling (RS) followed by equal splitting.
pub fn random_shuffle(n_series: usize, n_chunks: usize, seed: u64) -> Partition {
    assert!(n_chunks >= 1);
    let mut ids: Vec<u32> = (0..n_series as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    let chunks = (0..n_chunks)
        .map(|c| {
            let start = c * n_series / n_chunks;
            let end = (c + 1) * n_series / n_chunks;
            ids[start..end].to_vec()
        })
        .collect();
    Partition { chunks }
}

/// Checks that a partition is a *partition*: every id in `0..n_series`
/// appears in exactly one chunk. Returns an error message otherwise.
pub fn validate_partition(p: &Partition, n_series: usize) -> Result<(), String> {
    let mut seen = vec![false; n_series];
    for (c, chunk) in p.chunks.iter().enumerate() {
        for &id in chunk {
            let id = id as usize;
            if id >= n_series {
                return Err(format!("chunk {c}: id {id} out of range"));
            }
            if seen[id] {
                return Err(format!("id {id} assigned twice"));
            }
            seen[id] = true;
        }
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(format!("id {missing} unassigned"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equally_split_is_valid_and_contiguous() {
        for n in [0usize, 1, 10, 101] {
            for k in [1usize, 2, 4, 7] {
                let p = equally_split(n, k);
                assert_eq!(p.num_chunks(), k);
                validate_partition(&p, n).expect("valid");
                // Chunk sizes differ by at most 1.
                let sizes: Vec<usize> = p.chunks.iter().map(|c| c.len()).collect();
                let max = sizes.iter().max().unwrap();
                let min = sizes.iter().min().unwrap();
                assert!(max - min <= 1, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn random_shuffle_is_valid_and_seeded() {
        let p1 = random_shuffle(500, 4, 9);
        let p2 = random_shuffle(500, 4, 9);
        let p3 = random_shuffle(500, 4, 10);
        validate_partition(&p1, 500).expect("valid");
        assert_eq!(p1, p2, "same seed, same partition");
        assert_ne!(p1, p3, "different seed, different partition");
    }

    #[test]
    fn validate_catches_errors() {
        let dup = Partition {
            chunks: vec![vec![0, 1], vec![1]],
        };
        assert!(validate_partition(&dup, 2).is_err());
        let missing = Partition {
            chunks: vec![vec![0], vec![]],
        };
        assert!(validate_partition(&missing, 2).is_err());
        let oob = Partition {
            chunks: vec![vec![5]],
        };
        assert!(validate_partition(&oob, 2).is_err());
    }

    #[test]
    fn imbalance_metric() {
        let balanced = equally_split(100, 4);
        assert_eq!(balanced.imbalance(), 0.0);
        let skewed = Partition {
            chunks: vec![vec![0u32; 30], Vec::new()],
        };
        assert!(skewed.imbalance() > 1.9);
    }

    #[test]
    fn covered_fraction_counts_lost_chunks() {
        let p = equally_split(100, 4);
        assert_eq!(p.chunk_sizes(), vec![25, 25, 25, 25]);
        assert_eq!(p.covered_fraction(&[]), 1.0);
        assert!((p.covered_fraction(&[1]) - 0.75).abs() < 1e-12);
        assert!((p.covered_fraction(&[0, 3]) - 0.5).abs() < 1e-12);
        assert_eq!(p.covered_fraction(&[0, 1, 2, 3]), 0.0);
        // Out-of-range chunk ids are ignored, and the empty partition
        // counts as fully covered.
        assert!((p.covered_fraction(&[9]) - 1.0).abs() < 1e-12);
        assert_eq!(equally_split(0, 2).covered_fraction(&[0]), 1.0);
    }

    #[test]
    fn materialize_gathers_rows() {
        let data = DatasetBuffer::from_vec((0..12).map(|v| v as f32).collect(), 3);
        let p = equally_split(4, 2);
        let c1 = p.materialize(&data, 1);
        assert_eq!(c1.num_series(), 2);
        assert_eq!(c1.series(0), &[6.0, 7.0, 8.0]);
    }
}
