//! # odyssey-partition
//!
//! Data-partitioning schemes (Section 3.4 of the Odyssey paper): how the
//! coordinator splits the raw collection into per-node chunks before the
//! nodes build their local indexes.
//!
//! * [`scheme::equally_split`] — contiguous equal chunks (EQUALLY-SPLIT).
//! * [`scheme::random_shuffle`] — random rearrangement before splitting
//!   (the paper's optional "RS" preprocessing).
//! * [`density::density_aware`] — the DENSITY-AWARE strategy
//!   (Section 3.4.1): order the iSAX summarization buffers by
//!   [`gray`] code so similar buffers are adjacent, split the λ largest
//!   buffers first, round-robin the rest, and rebalance — spreading
//!   *similar* series across all nodes so no single node ends up with all
//!   the low-pruning work for any query.

#![forbid(unsafe_code)]


pub mod density;
pub mod gray;
pub mod scheme;

pub use density::{density_aware, DensityAwareConfig};
pub use scheme::{equally_split, random_shuffle, validate_partition, Partition, PartitioningScheme};
