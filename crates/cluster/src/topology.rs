//! Replication groups and clusters (Section 3.3, Figure 7).
//!
//! With `N` system nodes and `k` replication groups (`PARTIAL-k`):
//!
//! * the dataset is split into `k` mutually disjoint chunks;
//! * **replication group** `g` = the nodes storing chunk `g` — nodes
//!   `{g, g+k, g+2k, …}` (Figure 7's layout: group 1 = {sn1, sn5});
//! * **cluster** `c` = nodes `{c·k, …, (c+1)·k − 1}`, which collectively
//!   store the whole dataset;
//! * the *replication degree* = number of clusters = `N / k` = size of
//!   each group.
//!
//! `PARTIAL-1` is FULL replication, `PARTIAL-N` is EQUALLY-SPLIT
//! (no replication).

/// Node/group/cluster arithmetic for a `PARTIAL-k` layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    n_nodes: usize,
    n_groups: usize,
}

impl Topology {
    /// Builds a topology with `n_groups` replication groups over
    /// `n_nodes` nodes.
    ///
    /// # Errors
    /// Fails when `n_groups` does not divide `n_nodes` or either is zero.
    pub fn new(n_nodes: usize, n_groups: usize) -> Result<Self, String> {
        if n_nodes == 0 || n_groups == 0 {
            return Err("node and group counts must be positive".into());
        }
        if n_groups > n_nodes {
            return Err(format!(
                "more replication groups ({n_groups}) than nodes ({n_nodes})"
            ));
        }
        if !n_nodes.is_multiple_of(n_groups) {
            return Err(format!(
                "group count {n_groups} must divide node count {n_nodes}"
            ));
        }
        Ok(Topology { n_nodes, n_groups })
    }

    /// Total system nodes.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of replication groups (= number of data chunks).
    #[inline]
    pub fn n_groups(&self) -> usize {
        self.n_groups
    }

    /// Replication degree = number of clusters = group size.
    #[inline]
    pub fn replication_degree(&self) -> usize {
        self.n_nodes / self.n_groups
    }

    /// The replication group of a node.
    #[inline]
    pub fn group_of(&self, node: usize) -> usize {
        debug_assert!(node < self.n_nodes);
        node % self.n_groups
    }

    /// The cluster of a node.
    #[inline]
    pub fn cluster_of(&self, node: usize) -> usize {
        debug_assert!(node < self.n_nodes);
        node / self.n_groups
    }

    /// The nodes of replication group `g`, in id order.
    pub fn nodes_in_group(&self, g: usize) -> Vec<usize> {
        assert!(g < self.n_groups);
        (0..self.replication_degree())
            .map(|c| c * self.n_groups + g)
            .collect()
    }

    /// The nodes of cluster `c`, in id order.
    pub fn nodes_in_cluster(&self, c: usize) -> Vec<usize> {
        assert!(c < self.replication_degree());
        (c * self.n_groups..(c + 1) * self.n_groups).collect()
    }

    /// The group coordinator (the lowest-id node of the group).
    #[inline]
    pub fn group_coordinator(&self, g: usize) -> usize {
        assert!(g < self.n_groups);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_layout() {
        // PARTIAL-4 with 8 nodes: 4 groups, 2 clusters, degree 2.
        let t = Topology::new(8, 4).expect("valid");
        assert_eq!(t.replication_degree(), 2);
        assert_eq!(t.nodes_in_group(0), vec![0, 4], "sn1, sn5");
        assert_eq!(t.nodes_in_group(3), vec![3, 7], "sn4, sn8");
        assert_eq!(t.nodes_in_cluster(0), vec![0, 1, 2, 3]);
        assert_eq!(t.nodes_in_cluster(1), vec![4, 5, 6, 7]);
        assert_eq!(t.group_of(5), 1);
        assert_eq!(t.cluster_of(5), 1);
    }

    #[test]
    fn full_replication_is_one_group() {
        let t = Topology::new(4, 1).expect("valid");
        assert_eq!(t.replication_degree(), 4);
        assert_eq!(t.nodes_in_group(0), vec![0, 1, 2, 3]);
        assert_eq!(t.nodes_in_cluster(2), vec![2]);
    }

    #[test]
    fn equally_split_is_singleton_groups() {
        let t = Topology::new(4, 4).expect("valid");
        assert_eq!(t.replication_degree(), 1);
        for n in 0..4 {
            assert_eq!(t.nodes_in_group(n), vec![n]);
            assert_eq!(t.group_of(n), n);
        }
    }

    #[test]
    fn groups_and_clusters_partition_nodes() {
        let t = Topology::new(12, 3).expect("valid");
        let mut seen = [0u32; 12];
        for g in 0..t.n_groups() {
            for n in t.nodes_in_group(g) {
                seen[n] += 1;
                assert_eq!(t.group_of(n), g);
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
        let mut seen = [0u32; 12];
        for c in 0..t.replication_degree() {
            for n in t.nodes_in_cluster(c) {
                seen[n] += 1;
                assert_eq!(t.cluster_of(n), c);
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn invalid_topologies_rejected() {
        assert!(Topology::new(0, 1).is_err());
        assert!(Topology::new(4, 0).is_err());
        assert!(Topology::new(4, 3).is_err(), "3 does not divide 4");
        assert!(Topology::new(2, 4).is_err(), "more groups than nodes");
    }

    /// Exhaustive round-trip over every (n, k) up to 16: either the
    /// constructor rejects the pair, or `group_of`/`nodes_of_group`
    /// (and the cluster maps) are mutually consistent bijections.
    #[test]
    fn group_round_trips_for_all_shapes_up_to_16() {
        for n in 1..=16usize {
            for k in 1..=16usize {
                let t = match Topology::new(n, k) {
                    Ok(t) => t,
                    Err(_) => {
                        assert!(
                            k > n || !n.is_multiple_of(k),
                            "({n}, {k}) wrongly rejected"
                        );
                        continue;
                    }
                };
                assert!(n.is_multiple_of(k), "({n}, {k}) wrongly accepted");
                assert_eq!(t.replication_degree() * t.n_groups(), n);
                // node → group → members → node round-trips.
                for node in 0..n {
                    let g = t.group_of(node);
                    assert!(g < k);
                    let members = t.nodes_in_group(g);
                    assert!(
                        members.contains(&node),
                        "({n}, {k}): node {node} missing from its group {g}"
                    );
                    let c = t.cluster_of(node);
                    assert!(t.nodes_in_cluster(c).contains(&node));
                }
                // group → members → group round-trips, and groups
                // partition the node set.
                let mut seen = vec![0u32; n];
                for g in 0..k {
                    let members = t.nodes_in_group(g);
                    assert_eq!(members.len(), t.replication_degree());
                    for m in members {
                        assert_eq!(t.group_of(m), g);
                        seen[m] += 1;
                    }
                }
                assert!(
                    seen.iter().all(|&c| c == 1),
                    "({n}, {k}): groups must partition the nodes"
                );
            }
        }
    }
}
