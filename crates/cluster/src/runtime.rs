//! The Odyssey cluster runtime (the five-stage flowchart of Figure 3).
//!
//! 1. The coordinator partitions the collection into one chunk per
//!    replication group ([`OdysseyCluster::build`]).
//! 2. Each node loads its chunk and builds its index — simulated by one
//!    build per *chunk* shared (`Arc`) by the group's nodes, since
//!    replication-group nodes build bit-identical trees anyway; build
//!    time is accounted once per node.
//! 3. Group coordinators estimate query costs and schedule the batch.
//! 4. Nodes answer their queries (per-node Odyssey search) with BSF
//!    sharing and work-stealing.
//! 5. Local answers merge into the final per-query results.

use crate::boards::{AnswerBoard, BoardBsf, BoardKnn, BsfBoard, CoverageBoard, KnnBoard};
use crate::config::{BatchMode, ClusterConfig};
use crate::faults::{self, NodeFaults};
use crate::shard_map::{Coverage, ShardMap};
use crate::stealing::{manager_loop, StealRequest};
use crate::topology::Topology;
use crate::units;
use crossbeam::channel::{bounded, unbounded, Sender};
use odyssey_core::index::{BuildTimes, Index, IndexConfig};
use odyssey_core::search::answer::{Answer, KnnAnswer};
use odyssey_core::search::dtw_search::{approx_dtw, DtwKernel};
use odyssey_core::search::bsf::ResultSet;
use odyssey_core::search::engine::{BatchEngine, InflightQuery, StealRegistry};
use odyssey_core::search::exact::{SearchParams, SearchStats};
use odyssey_core::search::kernel::{EdKernel, QueryKernel};
use odyssey_core::search::knn::seed_from_approx_leaf;
use odyssey_core::search::multiq::LaneCtx;
use odyssey_core::series::DatasetBuffer;
use odyssey_partition::Partition;
use odyssey_sched::admission::{plan_dispatch_widths, plan_dispatch_widths_adaptive};
use odyssey_sched::scheduler::{dynamic_order, greedy_by_estimate, static_split};
use odyssey_sched::{CostModel, OnlineCostModel, OnlineThresholdModel, SchedulerKind, SpeedupCurve};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Index-construction report (the quantities of Figures 14 and 17).
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// Wall-clock build times per chunk (= per replication group).
    pub per_chunk_times: Vec<BuildTimes>,
    /// Deterministic buffer-phase units per chunk.
    pub per_chunk_buffer_units: Vec<u64>,
    /// Deterministic tree-phase units per chunk.
    pub per_chunk_tree_units: Vec<u64>,
    /// Index overhead bytes per chunk.
    pub per_chunk_index_bytes: Vec<usize>,
    /// Per-node index size (each node stores its group's chunk index).
    pub per_node_index_bytes: Vec<usize>,
}

impl BuildReport {
    /// Max-over-nodes buffer units (every node builds its chunk's index,
    /// so the per-node cost is its chunk's cost).
    pub fn max_buffer_units(&self) -> u64 {
        self.per_chunk_buffer_units.iter().copied().max().unwrap_or(0)
    }

    /// Max-over-nodes tree units.
    pub fn max_tree_units(&self) -> u64 {
        self.per_chunk_tree_units.iter().copied().max().unwrap_or(0)
    }

    /// Max-over-nodes total index units.
    pub fn max_index_units(&self) -> u64 {
        self.per_chunk_buffer_units
            .iter()
            .zip(&self.per_chunk_tree_units)
            .map(|(b, t)| b + t)
            .max()
            .unwrap_or(0)
    }

    /// Total index bytes across all nodes (Figure 14's y-axis).
    pub fn total_index_bytes(&self) -> usize {
        self.per_node_index_bytes.iter().sum()
    }

    /// Max-over-chunks wall-clock index time.
    pub fn max_wall_index_time(&self) -> Duration {
        self.per_chunk_times
            .iter()
            .map(|t| t.index_time())
            .max()
            .unwrap_or_default()
    }
}

/// Result of answering a 1-NN (Euclidean or DTW) batch.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Final per-query answers (global minimum across all nodes).
    pub answers: Vec<Answer>,
    /// Wall-clock duration of the whole batch (host-dependent).
    pub wall: Duration,
    /// Work units spent per node (own queries + stolen work).
    pub per_node_units: Vec<u64>,
    /// Work units spent per query (across all nodes).
    pub per_query_units: Vec<u64>,
    /// Queries answered per node (own assignments, not steals).
    pub per_node_queries: Vec<usize>,
    /// Best initial BSF (rooted) observed per query across groups.
    pub per_query_initial_bsf: Vec<f64>,
    /// Steal requests sent by idle nodes.
    pub steals_attempted: u64,
    /// Steal requests that returned at least one RS-batch.
    pub steals_successful: u64,
    /// BSF-channel broadcasts.
    pub bsf_broadcasts: u64,
    /// Per-query answer coverage (the degraded-answer contract):
    /// `Complete` unless some replication group lost all replicas
    /// before contributing its chunk's answer.
    pub coverage: Vec<Coverage>,
    /// Query executions re-routed from a dead node to a surviving
    /// replica of the same group.
    pub reroutes: u64,
    /// Nodes declared `Down` during the batch, in id order.
    pub dead_nodes: Vec<usize>,
    /// The shard-map epoch after the batch (0 = no health transitions).
    pub final_epoch: u64,
}

impl BatchReport {
    /// The makespan in work units: max over nodes of their busy units —
    /// the simulated analogue of the paper's max-over-nodes time.
    pub fn makespan_units(&self) -> u64 {
        self.per_node_units.iter().copied().max().unwrap_or(0)
    }

    /// Makespan converted to simulated seconds.
    pub fn makespan_seconds(&self, threads_per_node: usize) -> f64 {
        units::units_to_seconds(self.makespan_units(), threads_per_node)
    }

    /// Total units across all nodes (the work the system performed).
    pub fn total_units(&self) -> u64 {
        self.per_node_units.iter().sum()
    }

    /// Whether every query's answer covers the whole collection.
    pub fn fully_covered(&self) -> bool {
        self.coverage.iter().all(|c| c.is_complete())
    }

    /// Queries per simulated second.
    pub fn throughput(&self, threads_per_node: usize) -> f64 {
        let secs = self.makespan_seconds(threads_per_node);
        if secs > 0.0 {
            self.answers.len() as f64 / secs
        } else {
            f64::INFINITY
        }
    }
}

/// Result of answering a k-NN batch.
#[derive(Debug, Clone)]
pub struct KnnBatchReport {
    /// Final merged k-NN answers.
    pub answers: Vec<KnnAnswer>,
    /// Wall-clock duration.
    pub wall: Duration,
    /// Work units per node.
    pub per_node_units: Vec<u64>,
    /// Per-query answer coverage (see [`BatchReport::coverage`]).
    pub coverage: Vec<Coverage>,
}

impl KnnBatchReport {
    /// Max-over-nodes work units.
    pub fn makespan_units(&self) -> u64 {
        self.per_node_units.iter().copied().max().unwrap_or(0)
    }
}

/// A built Odyssey cluster, ready to answer query batches.
pub struct OdysseyCluster {
    config: ClusterConfig,
    topology: Topology,
    /// One index per replication group (shared by the group's nodes).
    chunk_index: Vec<Arc<Index>>,
    /// Chunk-local → global series-id map, one per group.
    id_maps: Vec<Arc<[u32]>>,
    build: BuildReport,
    /// Online cost-predictor feedback: every finished (non-stolen)
    /// query execution appends its `(initial BSF, wall time)` pair, and
    /// the linear model refits at deterministic sample counts. When no
    /// trained [`ClusterConfig::cost_model`] is installed, this model
    /// *is* the PREDICT-* cost estimator — identity (raw initial BSF)
    /// until the first refit, then the fitted Figure-4 line.
    feedback: Arc<OnlineCostModel>,
    /// Online sigmoid refit for the per-query `TH` model; present only
    /// when [`ClusterConfig::threshold_model`] is set (seeded from it).
    th_feedback: Option<Arc<OnlineThresholdModel>>,
    /// Speedup-vs-width curve (Figure 8), calibrated once per cluster
    /// by the first node that plans lanes. The simulated nodes share
    /// the host's cores, so one curve serves every node engine.
    curve: Arc<OnceLock<SpeedupCurve>>,
}

impl OdysseyCluster {
    /// Stage 1 + 2 of Figure 3: partition the collection and build the
    /// per-node indexes.
    ///
    /// # Panics
    /// Panics when the replication setting is invalid for the node count.
    pub fn build(data: &DatasetBuffer, config: ClusterConfig) -> Self {
        let n_groups = config.replication.n_groups(config.n_nodes);
        let partition = config.partitioning.apply(data, n_groups);
        Self::build_with_partition(data, config, partition)
    }

    /// [`OdysseyCluster::build`] with an externally computed partition
    /// (used by the DPiSAX baseline, which has its own partitioner).
    pub fn build_with_partition(
        data: &DatasetBuffer,
        config: ClusterConfig,
        partition: Partition,
    ) -> Self {
        let n_groups = config.replication.n_groups(config.n_nodes);
        let topology = Topology::new(config.n_nodes, n_groups)
            .unwrap_or_else(|e| panic!("invalid topology: {e}"));
        assert_eq!(
            partition.num_chunks(),
            n_groups,
            "partition must have one chunk per replication group"
        );
        let mut chunk_index = Vec::with_capacity(n_groups);
        let mut per_chunk_times = Vec::with_capacity(n_groups);
        let mut per_chunk_buffer_units = Vec::with_capacity(n_groups);
        let mut per_chunk_tree_units = Vec::with_capacity(n_groups);
        let mut per_chunk_index_bytes = Vec::with_capacity(n_groups);
        for g in 0..n_groups {
            // Chunk ids are remapped to local ids inside the chunk index;
            // `id_map` restores global ids in answers.
            let chunk = partition.materialize(data, g);
            let icfg = IndexConfig::new(data.series_len())
                .with_segments(config.segments.min(data.series_len()))
                .with_leaf_capacity(config.leaf_capacity);
            let index = Index::build(chunk, icfg, config.threads_per_node);
            per_chunk_times.push(index.build_times());
            per_chunk_buffer_units.push(units::buffer_units(
                index.num_series(),
                data.series_len(),
            ));
            per_chunk_tree_units.push(units::tree_units(&index));
            per_chunk_index_bytes.push(index.size_bytes());
            chunk_index.push(Arc::new(index));
        }
        let per_node_index_bytes = (0..config.n_nodes)
            .map(|n| per_chunk_index_bytes[topology.group_of(n)])
            .collect();
        let build = BuildReport {
            per_chunk_times,
            per_chunk_buffer_units,
            per_chunk_tree_units,
            per_chunk_index_bytes,
            per_node_index_bytes,
        };
        let (feedback, th_feedback) = Self::make_feedback(&config);
        OdysseyCluster {
            config,
            topology,
            chunk_index,
            id_maps: partition.chunks.into_iter().map(Arc::from).collect(),
            build,
            feedback,
            th_feedback,
            curve: Arc::new(OnceLock::new()),
        }
    }

    /// Fresh online-feedback models for a configuration: an identity
    /// cost line (or the trained threshold sigmoid) that only moves
    /// once enough observations accumulate.
    fn make_feedback(
        config: &ClusterConfig,
    ) -> (Arc<OnlineCostModel>, Option<Arc<OnlineThresholdModel>>) {
        let cost = Arc::new(OnlineCostModel::new(
            config.feedback_capacity,
            config.feedback_refit_every,
        ));
        let th = config.threshold_model.map(|m| {
            Arc::new(OnlineThresholdModel::seeded(
                m,
                config.feedback_capacity,
                config.feedback_refit_every,
            ))
        });
        (cost, th)
    }

    /// Returns a cluster sharing this one's indexes (cheap `Arc` clones)
    /// under a modified configuration — for sweeping schedulers,
    /// stealing, or sharing toggles without re-partitioning or
    /// re-indexing.
    ///
    /// # Panics
    /// Panics if the new configuration changes the node count or the
    /// replication-group count (those determine the physical layout).
    pub fn reconfigured(
        &self,
        f: impl FnOnce(ClusterConfig) -> ClusterConfig,
    ) -> OdysseyCluster {
        let config = f(self.config.clone());
        assert_eq!(config.n_nodes, self.config.n_nodes, "node count is fixed");
        assert_eq!(
            config.replication.n_groups(config.n_nodes),
            self.topology.n_groups(),
            "replication-group count is fixed"
        );
        // Fresh feedback state: a reconfigured variant must not inherit
        // samples recorded under the old configuration (sweeps compare
        // variants from identical starting predictors). The calibrated
        // curve is a property of the host and the pool width, so it is
        // shared — unless the pool width changed.
        let (feedback, th_feedback) = Self::make_feedback(&config);
        let curve = if config.threads_per_node == self.config.threads_per_node {
            Arc::clone(&self.curve)
        } else {
            Arc::new(OnceLock::new())
        };
        OdysseyCluster {
            config,
            topology: self.topology,
            chunk_index: self.chunk_index.clone(),
            id_maps: self.id_maps.clone(),
            build: self.build.clone(),
            feedback,
            th_feedback,
            curve,
        }
    }

    /// The online cost-predictor feedback (sample counts, refit counts,
    /// the current line) — the benches report its before/after MAPE.
    pub fn feedback(&self) -> &Arc<OnlineCostModel> {
        &self.feedback
    }

    /// The online threshold-predictor feedback (present iff a trained
    /// sigmoid model was configured to seed it).
    pub(crate) fn th_feedback(&self) -> Option<&Arc<OnlineThresholdModel>> {
        self.th_feedback.as_ref()
    }

    /// The calibrated speedup-vs-width curve, if a lane plan has run.
    pub fn calibrated_curve(&self) -> Option<&SpeedupCurve> {
        self.curve.get()
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Index-construction report.
    pub fn build_report(&self) -> &BuildReport {
        &self.build
    }

    /// The index of replication group `g`.
    pub fn chunk_index(&self, g: usize) -> &Arc<Index> {
        &self.chunk_index[g]
    }

    /// The chunk-local → global series-id map of replication group `g`
    /// — the series a [`Coverage::Partial`] answer misses when `g` is
    /// among its missing groups.
    pub fn chunk_ids(&self, g: usize) -> &Arc<[u32]> {
        &self.id_maps[g]
    }

    /// Translates a chunk-local answer of group `g` to global series ids.
    fn globalize(&self, g: usize, mut a: Answer) -> Answer {
        if let Some(local) = a.series_id {
            a.series_id = Some(self.id_maps[g][local as usize]);
        }
        a
    }

    /// Answers a batch of Euclidean 1-NN queries (stage 3–5 of Figure 3).
    pub fn answer_batch(&self, queries: &DatasetBuffer) -> BatchReport {
        self.answer_batch_mode(queries, BatchMode::Euclidean)
    }

    /// Answers a dynamically arriving stream of Euclidean 1-NN queries.
    ///
    /// The paper notes its techniques "can easily be adjusted to work
    /// with queries that arrive in the system dynamically"; the
    /// consequence is that a dynamic scheduler can only sort *within*
    /// each arrival wave, never across the whole batch. This entry point
    /// models bursty arrival: queries become visible in waves of
    /// `wave_size`; the PREDICT-DN ordering applies per wave. Answers
    /// are identical to [`OdysseyCluster::answer_batch`] (exactness does
    /// not depend on scheduling); load balance degrades gracefully, which
    /// is exactly why the work-stealing mechanism exists.
    pub fn answer_batch_stream(&self, queries: &DatasetBuffer, wave_size: usize) -> BatchReport {
        assert!(wave_size >= 1);
        self.answer_batch_inner(queries, BatchMode::Euclidean, Some(wave_size))
    }

    /// Answers a batch *approximately*: each node returns the best real
    /// distance inside the single most-promising leaf of its index (the
    /// classic ng-approximate answer of the iSAX literature; DPiSAX's
    /// native batch mode). Orders of magnitude cheaper than exact search;
    /// the returned distances upper-bound the exact ones.
    pub fn answer_batch_approximate(&self, queries: &DatasetBuffer) -> BatchReport {
        let t0 = std::time::Instant::now();
        let nq = queries.num_series();
        let n_groups = self.topology.n_groups();
        let answer_board = AnswerBoard::new(nq);
        let per_node_units: Vec<AtomicU64> = (0..self.topology.n_nodes())
            .map(|_| AtomicU64::new(0))
            .collect();
        // One node per group answers (approximate answers are identical
        // across a replication group, so the extra nodes add nothing).
        std::thread::scope(|scope| {
            for g in 0..n_groups {
                let index = Arc::clone(&self.chunk_index[g]);
                let answer_board = &answer_board;
                let per_node_units = &per_node_units;
                let node = self.topology.group_coordinator(g);
                scope.spawn(move || {
                    for qid in 0..nq {
                        let r = index.approx_search(queries.series(qid));
                        let a = Answer {
                            distance: r.distance,
                            distance_sq: r.distance_sq,
                            series_id: r.series_id,
                        };
                        answer_board.merge(qid, self.globalize(g, a));
                        // Approx cost: one root-to-leaf walk plus a leaf
                        // scan — charge the leaf scan.
                        per_node_units[node].fetch_add(
                            (r.leaf_size * queries.series_len()) as u64,
                            Ordering::Relaxed,
                        );
                    }
                });
            }
        });
        BatchReport {
            answers: answer_board.into_answers(),
            wall: t0.elapsed(),
            per_node_units: per_node_units
                .iter()
                .map(|u| u.load(Ordering::Relaxed))
                .collect(),
            per_query_units: vec![0; nq],
            per_node_queries: vec![nq; 1],
            per_query_initial_bsf: Vec::new(),
            steals_attempted: 0,
            steals_successful: 0,
            bsf_broadcasts: 0,
            // The approximate path ignores fault plans (it is the cheap
            // estimation primitive, not the failure-tested exact path).
            coverage: vec![Coverage::Complete; nq],
            reroutes: 0,
            dead_nodes: Vec::new(),
            final_epoch: 0,
        }
    }

    /// Answers a batch of DTW 1-NN queries.
    pub fn answer_batch_dtw(&self, queries: &DatasetBuffer, window: usize) -> BatchReport {
        self.answer_batch_mode(queries, BatchMode::Dtw { window })
    }

    /// Answers a 1-NN batch in the given mode.
    ///
    /// # Panics
    /// Panics when called with [`BatchMode::Knn`]; use
    /// [`OdysseyCluster::answer_batch_knn`].
    pub fn answer_batch_mode(&self, queries: &DatasetBuffer, mode: BatchMode) -> BatchReport {
        self.answer_batch_inner(queries, mode, None)
    }

    fn answer_batch_inner(
        &self,
        queries: &DatasetBuffer,
        mode: BatchMode,
        wave_size: Option<usize>,
    ) -> BatchReport {
        assert!(
            !matches!(mode, BatchMode::Knn { .. }),
            "use answer_batch_knn for k-NN batches"
        );
        let t0 = std::time::Instant::now();
        let nq = queries.num_series();
        let topo = &self.topology;
        let n_nodes = topo.n_nodes();
        let n_groups = topo.n_groups();
        let group_size = topo.replication_degree();

        // --- Stage 3: per-group estimation + scheduling -----------------
        let mut dispatch: Vec<GroupDispatch> = Vec::with_capacity(n_groups);
        // Per-group cost estimates, kept for lane admission (empty for
        // the non-predictive policies, which also get no lanes).
        let mut group_costs: Vec<Vec<f64>> = Vec::with_capacity(n_groups);
        let initial_bsf_board: Vec<AtomicU64> = (0..nq)
            .map(|_| AtomicU64::new(f64::INFINITY.to_bits()))
            .collect();
        for g in 0..n_groups {
            let estimates = if self.config.scheduler.needs_predictions() {
                let index = &self.chunk_index[g];
                (0..nq)
                    .map(|q| {
                        let est_bsf = match mode {
                            BatchMode::Euclidean => index.approx_search(queries.series(q)).distance,
                            BatchMode::Dtw { window } => {
                                let kernel = DtwKernel::new(
                                    queries.series(q),
                                    window,
                                    index.config().segments,
                                );
                                approx_dtw(index, &kernel).0.sqrt()
                            }
                            BatchMode::Knn { .. } => unreachable!(),
                        };
                        initial_bsf_board[q].fetch_min(est_bsf.to_bits(), Ordering::Relaxed);
                        match &self.config.cost_model {
                            Some(m) => m.estimate(est_bsf),
                            // No trained model: the online predictor —
                            // identity until its first refit, then the
                            // line fitted on this cluster's own traffic.
                            None => self.feedback.estimate(est_bsf),
                        }
                    })
                    .collect::<Vec<f64>>()
            } else {
                vec![1.0; nq]
            };
            dispatch.push(GroupDispatch::build_waved(
                self.config.scheduler,
                &estimates,
                group_size,
                wave_size,
            ));
            group_costs.push(if self.config.scheduler.needs_predictions() {
                estimates
            } else {
                Vec::new()
            });
        }

        // --- Stage 4: node execution ------------------------------------
        let bsf_board = BsfBoard::new(nq);
        let answer_board = AnswerBoard::new(nq);
        let done: Vec<AtomicBool> = (0..n_nodes).map(|_| AtomicBool::new(false)).collect();
        let group_done: Vec<AtomicUsize> = (0..n_groups).map(|_| AtomicUsize::new(0)).collect();
        // One steal registry per node, shared between the node's engine
        // (which registers every in-flight pool or lane query) and its
        // work-stealing manager thread (which picks victims from it).
        let registries: Vec<Arc<StealRegistry>> = (0..n_nodes)
            .map(|_| Arc::new(StealRegistry::default()))
            .collect();
        let mut steal_tx: Vec<Sender<StealRequest>> = Vec::with_capacity(n_nodes);
        let mut steal_rx = Vec::with_capacity(n_nodes);
        let mut steal_rx_workers = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let (tx, rx) = unbounded();
            steal_tx.push(tx);
            // crossbeam channels are MPMC: the manager thread and the
            // search workers of the same node share the request stream.
            steal_rx_workers.push(rx.clone());
            steal_rx.push(Some(rx));
        }
        let per_node_units: Vec<AtomicU64> = (0..n_nodes).map(|_| AtomicU64::new(0)).collect();
        let per_query_units: Vec<AtomicU64> = (0..nq).map(|_| AtomicU64::new(0)).collect();
        let per_node_queries: Vec<AtomicUsize> =
            (0..n_nodes).map(|_| AtomicUsize::new(0)).collect();
        let steals_attempted = AtomicU64::new(0);
        let steals_successful = AtomicU64::new(0);
        // `Arc` (not a scoped borrow): the cooperative serving hook is
        // installed into each engine's steal registry, whose hooks are
        // `'static`.
        let steals_served = Arc::new(AtomicU64::new(0));

        let stealing_enabled = self.config.work_stealing && group_size > 1;
        // Inter-query lanes only need per-query predictions: the
        // engine-resident steal registry serves thieves from any
        // in-flight lane query, so stealing no longer disables lanes.
        let use_lanes =
            self.config.inter_query_lanes && self.config.scheduler.needs_predictions();
        let group_costs = &group_costs;

        // --- Failure-aware control plane --------------------------------
        let shard_map = ShardMap::new(*topo, self.config.lease_ticks);
        let coverage_board = CoverageBoard::new(nq, n_groups);
        let fault_plan = self.config.fault_plan.as_deref();
        // Work stranded by dead members, per group; survivors claim it
        // on their pool surface after draining their own dispatch.
        let reroute_queues: Vec<Mutex<RerouteQueue>> = (0..n_groups)
            .map(|_| Mutex::new(RerouteQueue::default()))
            .collect();
        // `drained[n]`: node n will produce no further stranded work —
        // it either died (its hand-off already ran) or finished its own
        // dispatch and is only claiming re-routes from here on.
        let drained: Vec<AtomicBool> = (0..n_nodes).map(|_| AtomicBool::new(false)).collect();
        let reroutes_total = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for node in 0..n_nodes {
                let g = topo.group_of(node);
                let member_idx = topo
                    .nodes_in_group(g)
                    .iter()
                    .position(|&m| m == node)
                    .expect("node belongs to its group");
                let dispatch = &dispatch;
                let bsf_board = &bsf_board;
                let answer_board = &answer_board;
                let done = &done;
                let group_done = &group_done;
                let registries = &registries;
                let steal_tx = &steal_tx;
                let steal_rx_workers = &steal_rx_workers;
                let steals_served = &steals_served;
                let per_node_units = &per_node_units;
                let per_query_units = &per_query_units;
                let per_node_queries = &per_node_queries;
                let steals_attempted = &steals_attempted;
                let steals_successful = &steals_successful;
                let shard_map = &shard_map;
                let coverage_board = &coverage_board;
                let reroute_queues = &reroute_queues;
                let drained = &drained;
                let reroutes_total = &reroutes_total;
                let topo2 = topo;
                let index = Arc::clone(&self.chunk_index[g]);
                // Node worker thread.
                let speed = self.config.node_speed(node);
                scope.spawn(move || {
                    // One persistent engine per node: thread-pool and
                    // scratch setup is paid once for the whole batch,
                    // not once per query (the node's "resident" cores).
                    let engine = BatchEngine::with_registry(
                        Arc::clone(&index),
                        self.config.threads_per_node,
                        Arc::clone(&registries[node]),
                    );
                    let mut nf = NodeFaults::new(fault_plan, node);
                    // One installed service hook covers the pool and
                    // every lane: straggler pacing, the fault clock
                    // (delay pacing + armed worker panics), plus
                    // cooperative steal serving (workers drain pending
                    // requests between queue claims — see
                    // `run_search_with_service` for why the manager
                    // thread alone is not enough on an oversubscribed
                    // host).
                    if stealing_enabled
                        || speed < 1.0
                        || fault_plan.is_some_and(|p| p.affects(node))
                    {
                        let rx = stealing_enabled.then(|| steal_rx_workers[node].clone());
                        let nsend = self.config.steal_nsend;
                        let served = Arc::clone(steals_served);
                        let panic_armed = nf.panic_flag();
                        let fault_delay = nf.delay();
                        engine.steal_registry().install_service(Arc::new(
                            move |reg: &StealRegistry| {
                                // Straggler pacing: stretch the
                                // processing phase so the protocol (and
                                // thieves) see the slow node.
                                if speed < 1.0 {
                                    let extra = (1.0 / speed - 1.0) * 20.0;
                                    std::thread::sleep(Duration::from_micros(extra as u64));
                                }
                                faults::service_tick(&panic_armed, fault_delay);
                                if let Some(rx) = &rx {
                                    while let Ok(req) = rx.try_recv() {
                                        crate::stealing::serve_request(req, reg, nsend, &served);
                                    }
                                }
                            },
                        ));
                    }
                    let account = |qid: usize, stats: &SearchStats| {
                        let u = (units::search_units(
                            stats,
                            queries.series_len(),
                            index.config().segments,
                        ) as f64
                            / speed) as u64;
                        per_node_units[node].fetch_add(u, Ordering::Relaxed);
                        per_query_units[qid].fetch_add(u, Ordering::Relaxed);
                        per_node_queries[node].fetch_add(1, Ordering::Relaxed);
                        // Liveness + coverage book-keeping: a finished
                        // execution renews the node's lease, advances
                        // the logical clock, and marks this query
                        // answered for the node's group.
                        shard_map.tick();
                        shard_map.heartbeat(node);
                        coverage_board.mark(qid, g);
                    };
                    // A dying node's hand-off (the crash notification):
                    // mark `Down` in the shard map, push the torn-down
                    // query and any stranded static assignment to the
                    // group's re-route queue, and retire from the
                    // protocol. Push-then-decrement under one lock keeps
                    // Phase B's exit condition sound: nobody observes an
                    // empty queue while work can still reappear.
                    let hand_off = |claimed: Option<(usize, usize)>, dec_inflight: bool| {
                        shard_map.mark_down(node);
                        let mut rq = reroute_queues[g].lock();
                        if let Some((qid, attempts)) = claimed {
                            if attempts < self.config.max_reroutes {
                                rq.queue.push_back((qid, attempts + 1));
                            }
                        }
                        if self.config.max_reroutes > 0 {
                            for qid in dispatch[g].drain_member(member_idx) {
                                rq.queue.push_back((qid, 1));
                            }
                        }
                        if dec_inflight {
                            rq.inflight -= 1;
                        }
                        drop(rq);
                        drained[node].store(true, Ordering::Release);
                        done[node].store(true, Ordering::Release);
                        group_done[g].fetch_add(1, Ordering::AcqRel);
                    };
                    if nf.has_fatal() {
                        // A fault-bearing node runs the sequential pool
                        // surface so its death has a well-defined point
                        // (lanes would smear one query's death across a
                        // whole concurrent round). Healthy group members
                        // keep their lanes.
                        loop {
                            if nf.kill_due() {
                                hand_off(None, false);
                                return;
                            }
                            let Some(qid) = dispatch[g].next(member_idx) else {
                                break;
                            };
                            let fatal_now = nf.panic_due();
                            let run = std::panic::catch_unwind(
                                std::panic::AssertUnwindSafe(|| {
                                    self.execute_query(
                                        &mut Runner::Pool(&engine),
                                        None,
                                        group_costs[g].get(qid).copied(),
                                        queries.series(qid),
                                        qid,
                                        mode,
                                        g,
                                        bsf_board,
                                        answer_board,
                                    )
                                }),
                            );
                            match run {
                                Ok(stats) => {
                                    account(qid, &stats);
                                    nf.record_execution();
                                    if fatal_now {
                                        // The armed panic crossed no
                                        // service tick; the node still
                                        // dies at this query — after
                                        // completing it, so nothing
                                        // needs re-routing.
                                        hand_off(None, false);
                                        return;
                                    }
                                }
                                Err(_) => {
                                    // The worker panic poisoned the
                                    // lane barrier, unwound through the
                                    // engine (pool reset, grant
                                    // deregistered), and lands here:
                                    // the torn-down query re-routes to
                                    // a surviving replica.
                                    hand_off(Some((qid, 0)), false);
                                    return;
                                }
                            }
                        }
                    } else if use_lanes {
                        // Continuous dispatch: partition the pool once,
                        // then every lane claims queries back-to-back.
                        // Every lane query registers with the steal
                        // registry, so thieves are served mid-claim.
                        //
                        // Once the member's queue runs dry, its *narrow*
                        // lanes moonlight as thieves: stolen RS-batch
                        // subsets execute at lane width while the wide
                        // lanes finish the node's own (predicted-hard)
                        // tail — the node never dedicates the full pool
                        // to stolen work before its own work is done.
                        let members = topo2.nodes_in_group(g);
                        let victim_rr = AtomicUsize::new(node);
                        let lane_steal = |ctx: &mut LaneCtx| -> bool {
                            let candidates: Vec<usize> = members
                                .iter()
                                .copied()
                                .filter(|&m| m != node && !done[m].load(Ordering::Acquire))
                                .collect();
                            if candidates.is_empty() {
                                return false;
                            }
                            let victim = candidates
                                [victim_rr.fetch_add(1, Ordering::Relaxed) % candidates.len()];
                            steals_attempted.fetch_add(1, Ordering::Relaxed);
                            let (rtx, rrx) = bounded(1);
                            if steal_tx[victim]
                                .send(StealRequest {
                                    from: node,
                                    reply: rtx,
                                })
                                .is_err()
                            {
                                return false;
                            }
                            // The victim's manager (or one of its
                            // cooperative workers) always replies while
                            // this node is unfinished — group_done
                            // cannot reach the group size before this
                            // node exits — so the request is never
                            // abandoned: block until the reply lands.
                            let resp = loop {
                                match rrx.recv_timeout(Duration::from_millis(1)) {
                                    Ok(resp) => break resp,
                                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                                        continue
                                    }
                                    Err(_) => return false,
                                }
                            };
                            if resp.batch_ids.is_empty() {
                                // Nothing stealable right now: brief
                                // back-off before bothering someone else.
                                std::thread::sleep(Duration::from_micros(100));
                                return true;
                            }
                            steals_successful.fetch_add(1, Ordering::Relaxed);
                            let qid = resp.query_id.expect("non-empty steal has query");
                            let stats = self.execute_query(
                                &mut Runner::Lane(ctx),
                                Some((&resp.batch_ids, resp.bsf_sq)),
                                None,
                                queries.series(qid),
                                qid,
                                mode,
                                g,
                                bsf_board,
                                answer_board,
                            );
                            let u = (units::search_units(
                                &stats,
                                queries.series_len(),
                                index.config().segments,
                            ) as f64
                                / speed) as u64;
                            per_node_units[node].fetch_add(u, Ordering::Relaxed);
                            per_query_units[qid].fetch_add(u, Ordering::Relaxed);
                            true
                        };
                        self.run_lane_dispatch(
                            &dispatch[g],
                            member_idx,
                            &group_costs[g],
                            &engine,
                            &|ctx, qid| {
                                let stats = self.execute_query(
                                    &mut Runner::Lane(ctx),
                                    None,
                                    group_costs[g].get(qid).copied(),
                                    queries.series(qid),
                                    qid,
                                    mode,
                                    g,
                                    bsf_board,
                                    answer_board,
                                );
                                account(qid, &stats);
                            },
                            stealing_enabled.then_some(
                                &lane_steal as &(dyn Fn(&mut LaneCtx) -> bool + Sync),
                            ),
                        );
                    } else {
                        while let Some(qid) = dispatch[g].next(member_idx) {
                            let stats = self.execute_query(
                                &mut Runner::Pool(&engine),
                                None,
                                group_costs[g].get(qid).copied(),
                                queries.series(qid),
                                qid,
                                mode,
                                g,
                                bsf_board,
                                answer_board,
                            );
                            account(qid, &stats);
                        }
                    }
                    // Phase B (fault plans only): before thieving, a
                    // survivor waits on its group's re-route queue so a
                    // dead member's stranded queries get a full
                    // re-execution on a replica holding the same chunk.
                    // Fault-free batches skip this entirely — their
                    // behavior is byte-for-byte the pre-failover one.
                    if fault_plan.is_some() {
                        drained[node].store(true, Ordering::Release);
                        let members = topo2.nodes_in_group(g);
                        let wait_deadline =
                            std::time::Instant::now() + self.config.query_deadline;
                        enum Step {
                            Claim(usize, usize),
                            Idle,
                            Exit,
                        }
                        loop {
                            if nf.kill_due() {
                                // A kill point past the node's own
                                // workload fires once it goes idle.
                                hand_off(None, false);
                                return;
                            }
                            let step = {
                                let mut rq = reroute_queues[g].lock();
                                match rq.queue.pop_front() {
                                    Some((qid, attempts)) => {
                                        rq.inflight += 1;
                                        Step::Claim(qid, attempts)
                                    }
                                    None if rq.inflight == 0
                                        && members.iter().all(|&m| {
                                            m == node || drained[m].load(Ordering::Acquire)
                                        }) =>
                                    {
                                        Step::Exit
                                    }
                                    None => Step::Idle,
                                }
                            };
                            match step {
                                Step::Exit => break,
                                Step::Idle => {
                                    // Waiting on members still in
                                    // Phase A: keep the lease machinery
                                    // moving and never out-wait the
                                    // per-query deadline.
                                    shard_map.heartbeat(node);
                                    shard_map.expire_leases();
                                    if std::time::Instant::now() > wait_deadline {
                                        break;
                                    }
                                    std::thread::sleep(Duration::from_micros(50));
                                }
                                Step::Claim(qid, attempts) => {
                                    reroutes_total.fetch_add(1, Ordering::Relaxed);
                                    let fatal_now = nf.panic_due();
                                    let run = std::panic::catch_unwind(
                                        std::panic::AssertUnwindSafe(|| {
                                            self.execute_query(
                                                &mut Runner::Pool(&engine),
                                                None,
                                                group_costs[g].get(qid).copied(),
                                                queries.series(qid),
                                                qid,
                                                mode,
                                                g,
                                                bsf_board,
                                                answer_board,
                                            )
                                        }),
                                    );
                                    match run {
                                        Ok(stats) => {
                                            account(qid, &stats);
                                            nf.record_execution();
                                            reroute_queues[g].lock().inflight -= 1;
                                            if fatal_now {
                                                hand_off(None, false);
                                                return;
                                            }
                                        }
                                        Err(_) => {
                                            // Died mid-re-route: put the
                                            // query back (bounded by
                                            // `max_reroutes`) and retire.
                                            hand_off(Some((qid, attempts)), true);
                                            return;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    done[node].store(true, Ordering::Release);
                    group_done[g].fetch_add(1, Ordering::AcqRel);
                    // PerformWorkStealing (Algorithm 4). An outstanding
                    // request is never abandoned while its response could
                    // still arrive: a served (non-empty) response has
                    // already marked its batches stolen on the victim, so
                    // dropping it would lose that work forever.
                    if stealing_enabled {
                        let members = topo2.nodes_in_group(g);
                        let mut rng =
                            StdRng::seed_from_u64(self.config.seed ^ (node as u64) << 32);
                        let mut pending: Option<crossbeam::channel::Receiver<_>> = None;
                        let handle = |resp: crate::stealing::StealResponse| {
                            if resp.batch_ids.is_empty() {
                                return false;
                            }
                            steals_successful.fetch_add(1, Ordering::Relaxed);
                            let qid = resp.query_id.expect("non-empty steal has query");
                            let stats = self.execute_query(
                                &mut Runner::Pool(&engine),
                                Some((&resp.batch_ids, resp.bsf_sq)),
                                None,
                                queries.series(qid),
                                qid,
                                mode,
                                g,
                                bsf_board,
                                answer_board,
                            );
                            let u = (units::search_units(
                                &stats,
                                queries.series_len(),
                                index.config().segments,
                            ) as f64
                                / speed) as u64;
                            per_node_units[node].fetch_add(u, Ordering::Relaxed);
                            per_query_units[qid].fetch_add(u, Ordering::Relaxed);
                            true
                        };
                        loop {
                            let all_done =
                                group_done[g].load(Ordering::Acquire) >= members.len();
                            if let Some(rrx) = &pending {
                                match rrx.recv_timeout(Duration::from_millis(1)) {
                                    Ok(resp) => {
                                        pending = None;
                                        if !handle(resp) {
                                            // Empty reply: brief back-off
                                            // before bothering someone else.
                                            std::thread::sleep(Duration::from_micros(100));
                                        }
                                    }
                                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                                        if all_done {
                                            // All serving has completed
                                            // before group_done reached the
                                            // total; one final poll settles
                                            // the request's fate.
                                            if let Ok(resp) = rrx.try_recv() {
                                                handle(resp);
                                            }
                                            pending = None;
                                        }
                                    }
                                    Err(_) => pending = None,
                                }
                                continue;
                            }
                            if all_done {
                                break;
                            }
                            let candidates: Vec<usize> = members
                                .iter()
                                .copied()
                                .filter(|&m| m != node && !done[m].load(Ordering::Acquire))
                                .collect();
                            if candidates.is_empty() {
                                break;
                            }
                            let victim = candidates[rng.gen_range(0..candidates.len())];
                            steals_attempted.fetch_add(1, Ordering::Relaxed);
                            let (rtx, rrx) = bounded(1);
                            if steal_tx[victim]
                                .send(StealRequest {
                                    from: node,
                                    reply: rtx,
                                })
                                .is_err()
                            {
                                break;
                            }
                            pending = Some(rrx);
                        }
                    }
                });
                // Work-stealing manager thread (Algorithm 3): inspects
                // the node's steal registry, not a per-query slot.
                if stealing_enabled {
                    let rx = steal_rx[node].take().expect("receiver unused");
                    let registry = Arc::clone(&registries[node]);
                    let group_done = &group_done[g];
                    let nsend = self.config.steal_nsend;
                    let served = Arc::clone(steals_served);
                    scope.spawn(move || {
                        manager_loop(&rx, &registry, group_done, group_size, nsend, &served);
                    });
                }
            }
        });

        // --- Stage 5: merge ----------------------------------------------
        BatchReport {
            answers: answer_board.into_answers(),
            wall: t0.elapsed(),
            per_node_units: per_node_units
                .iter()
                .map(|u| u.load(Ordering::Relaxed))
                .collect(),
            per_query_units: per_query_units
                .iter()
                .map(|u| u.load(Ordering::Relaxed))
                .collect(),
            per_node_queries: per_node_queries
                .iter()
                .map(|u| u.load(Ordering::Relaxed))
                .collect(),
            per_query_initial_bsf: initial_bsf_board
                .iter()
                .map(|b| f64::from_bits(b.load(Ordering::Relaxed)))
                .collect(),
            steals_attempted: steals_attempted.into_inner(),
            steals_successful: steals_successful.into_inner(),
            bsf_broadcasts: bsf_board.broadcasts(),
            coverage: coverage_board.into_coverages(),
            reroutes: reroutes_total.into_inner(),
            dead_nodes: (0..n_nodes).filter(|&n| shard_map.is_down(n)).collect(),
            final_epoch: shard_map.epoch(),
        }
    }

    /// Executes one 1-NN query (or one stolen batch subset of it) on
    /// either execution surface — a node's resident pool or one of its
    /// lanes — merging the local answer into the boards. The query is
    /// registered with the node engine's steal registry for its whole
    /// run, so the work-stealing manager (and the workers' cooperative
    /// service hook) can hand out its RS-batches from either surface —
    /// lanes serve thieves mid-round just like the pool does.
    #[allow(clippy::too_many_arguments)]
    fn execute_query(
        &self,
        runner: &mut Runner<'_, '_, '_>,
        stolen: Option<(&[usize], f64)>,
        estimate: Option<f64>,
        query: &[f32],
        qid: usize,
        mode: BatchMode,
        group: usize,
        bsf_board: &BsfBoard,
        answer_board: &AnswerBoard,
    ) -> SearchStats {
        let index = Arc::clone(runner.index());
        let stolen_bsf = stolen.map(|(_, bsf_sq)| bsf_sq);
        let params = SearchParams::new(self.config.threads_per_node)
            .with_th(self.config.pq_threshold)
            .with_nsb(self.config.rs_batches);
        let board_opt = self.config.bsf_sharing.then_some((bsf_board, qid));
        let mut run = |kernel: &dyn QueryKernel, init_sq: f64, init_id: Option<u32>| {
            // Per-query TH (Figure 6): the sigmoid model predicts the
            // queue threshold from this query's initial BSF. The online
            // wrapper starts at the trained parameters and refits from
            // this cluster's own `(BSF, median queue size)` samples.
            let mut params = params;
            if let Some(th) = &self.th_feedback {
                params.th = th.predict_th(init_sq.sqrt());
            }
            let bsf = BoardBsf::new(init_sq, init_id, board_opt);
            let grant = runner.admit(
                qid,
                Arc::clone(&bsf.local) as Arc<dyn ResultSet + Send + Sync>,
                estimate,
            );
            let stats = runner.run_query(
                kernel,
                &params,
                &bsf,
                stolen.map(|(ids, _)| ids),
                &grant,
            );
            drop(grant);
            answer_board.merge(qid, self.globalize(group, bsf.local_answer()));
            // Close the prediction loop (full executions only: a stolen
            // subset's time says nothing about a whole query's cost).
            if stolen.is_none() {
                self.feedback
                    .record(init_sq.sqrt(), stats.elapsed.as_secs_f64());
                if let Some(th) = &self.th_feedback {
                    th.record(init_sq.sqrt(), stats.pq_size_median as f64);
                }
            }
            stats
        };
        match mode {
            BatchMode::Euclidean => {
                let kernel = EdKernel::new(query, index.config().segments);
                let (init_sq, init_id) = match stolen_bsf {
                    Some(bsf_sq) => (bsf_sq, None),
                    None => {
                        let a = index.approx_search_paa(query, kernel.qpaa());
                        (a.distance_sq, a.series_id)
                    }
                };
                run(&kernel, init_sq, init_id)
            }
            BatchMode::Dtw { window } => {
                let kernel = DtwKernel::new(query, window, index.config().segments);
                let (init_sq, init_id) = match stolen_bsf {
                    Some(bsf_sq) => (bsf_sq, None),
                    None => approx_dtw(&index, &kernel),
                };
                run(&kernel, init_sq, init_id)
            }
            BatchMode::Knn { .. } => unreachable!("guarded by answer_batch_mode"),
        }
    }

    /// Drains one group member's dispatch queue with **continuous**
    /// lane claiming: the pool is partitioned once (from the member's
    /// cost-estimate profile) into wide and narrow lanes, and each lane
    /// then claims queries one at a time until the queue is empty — no
    /// barrier between claims, so a lane that finishes an easy query
    /// immediately pulls the next one while a sibling lane is still
    /// mid-search on a hard one. Wide lanes claim from the front of the
    /// dispatch order (hardest-first under PREDICT-DN), narrow lanes
    /// from the back, so the tiers meet in the middle. Shared by the
    /// 1-NN and k-NN batch paths.
    fn run_lane_dispatch(
        &self,
        dispatch: &GroupDispatch,
        member_idx: usize,
        costs: &[f64],
        engine: &BatchEngine,
        per_query: &(dyn Fn(&mut LaneCtx, usize) + Sync),
        lane_steal: Option<&(dyn Fn(&mut LaneCtx) -> bool + Sync)>,
    ) {
        // Makespan-optimal widths (the adaptive default): the first
        // node to get here calibrates the engine's speedup-vs-width
        // curve (short seeded probes; answers are never affected) and
        // every node then solves for the width mix minimizing the
        // predicted makespan of its cost profile. The static
        // median-ratio cutoff remains as the opt-out and the fallback
        // for prediction-free batches.
        let dw = if self.config.adaptive_widths {
            let curve = self
                .curve
                .get_or_init(|| SpeedupCurve::from_times(engine.calibrate()));
            plan_dispatch_widths_adaptive(
                costs,
                engine.n_threads(),
                &self.config.lane_admission,
                curve,
            )
        } else {
            plan_dispatch_widths(costs, engine.n_threads(), &self.config.lane_admission)
        };
        // Own queries currently executing on this node's lanes. Narrow
        // lanes may moonlight as thieves only while this is non-zero:
        // the node then keeps draining its own dispatch on the wide
        // lanes while stolen RS-batch subsets fill the narrow ones —
        // and lane stealing always terminates, because the node's own
        // work finishes regardless of what its thieving lanes do.
        let own_inflight = AtomicUsize::new(0);
        engine.run_dispatch(&dw.widths, &|ctx, lane| loop {
            let claim = if lane < dw.wide_lanes {
                dispatch.next(member_idx)
            } else {
                dispatch.next_back(member_idx)
            };
            match claim {
                Some(qid) => {
                    own_inflight.fetch_add(1, Ordering::AcqRel);
                    per_query(ctx, qid);
                    own_inflight.fetch_sub(1, Ordering::AcqRel);
                }
                None => {
                    let stole = lane >= dw.wide_lanes
                        && own_inflight.load(Ordering::Acquire) > 0
                        && lane_steal.is_some_and(|s| s(ctx));
                    if !stole {
                        break;
                    }
                }
            }
        });
    }

    /// Answers a k-NN batch (Section 4). Uses the same replication,
    /// scheduling and k-th-bound sharing machinery; inter-node
    /// work-stealing is not applied to k-NN batches (local result sets
    /// are merged at the coordinator instead).
    pub fn answer_batch_knn(&self, queries: &DatasetBuffer, k: usize) -> KnnBatchReport {
        let t0 = std::time::Instant::now();
        let nq = queries.num_series();
        let topo = &self.topology;
        let n_nodes = topo.n_nodes();
        let n_groups = topo.n_groups();
        let group_size = topo.replication_degree();

        let mut dispatch: Vec<GroupDispatch> = Vec::with_capacity(n_groups);
        let mut group_costs: Vec<Vec<f64>> = Vec::with_capacity(n_groups);
        for g in 0..n_groups {
            let estimates = if self.config.scheduler.needs_predictions() {
                let index = &self.chunk_index[g];
                (0..nq)
                    .map(|q| {
                        let est_bsf = index.approx_search(queries.series(q)).distance;
                        match &self.config.cost_model {
                            Some(m) => m.estimate(est_bsf),
                            None => self.feedback.estimate(est_bsf),
                        }
                    })
                    .collect::<Vec<f64>>()
            } else {
                vec![1.0; nq]
            };
            dispatch.push(GroupDispatch::build(
                self.config.scheduler,
                &estimates,
                group_size,
            ));
            group_costs.push(if self.config.scheduler.needs_predictions() {
                estimates
            } else {
                Vec::new()
            });
        }

        // The k-NN path has no inter-node stealing, so lanes only need
        // predictions to engage.
        let use_lanes =
            self.config.inter_query_lanes && self.config.scheduler.needs_predictions();
        let group_costs = &group_costs;
        let knn_board = KnnBoard::new(nq, k);
        let per_node_units: Vec<AtomicU64> = (0..n_nodes).map(|_| AtomicU64::new(0)).collect();
        // k-NN fault model: any fatal fault is a clean kill at its
        // trigger point (the worker-panic *path* is exercised by the
        // 1-NN batches; delays need the 1-NN service hook). Coverage
        // and re-routing follow the same group-level contract.
        let fault_plan = self.config.fault_plan.as_deref();
        let coverage_board = CoverageBoard::new(nq, n_groups);
        let reroute_queues: Vec<Mutex<RerouteQueue>> = (0..n_groups)
            .map(|_| Mutex::new(RerouteQueue::default()))
            .collect();
        let drained: Vec<AtomicBool> = (0..n_nodes).map(|_| AtomicBool::new(false)).collect();
        std::thread::scope(|scope| {
            for node in 0..n_nodes {
                let g = topo.group_of(node);
                let member_idx = topo
                    .nodes_in_group(g)
                    .iter()
                    .position(|&m| m == node)
                    .expect("node in group");
                let dispatch = &dispatch;
                let knn_board = &knn_board;
                let per_node_units = &per_node_units;
                let coverage_board = &coverage_board;
                let reroute_queues = &reroute_queues;
                let drained = &drained;
                let topo2 = topo;
                let index = Arc::clone(&self.chunk_index[g]);
                scope.spawn(move || {
                    let engine = BatchEngine::new(
                        Arc::clone(&index),
                        self.config.threads_per_node,
                    );
                    let params = SearchParams::new(self.config.threads_per_node)
                        .with_th(self.config.pq_threshold)
                        .with_nsb(self.config.rs_batches);
                    let fatal_at = fault_plan.and_then(|p| p.fatal_after(node));
                    let mut executed = 0usize;
                    let account = |qid: usize, stats: &SearchStats| {
                        per_node_units[node].fetch_add(
                            units::search_units(
                                stats,
                                queries.series_len(),
                                index.config().segments,
                            ),
                            Ordering::Relaxed,
                        );
                        coverage_board.mark(qid, g);
                    };
                    if use_lanes && fatal_at.is_none() {
                        // k-NN batches have no inter-node stealing, so
                        // lanes never moonlight as thieves here.
                        self.run_lane_dispatch(
                            &dispatch[g],
                            member_idx,
                            &group_costs[g],
                            &engine,
                            &|ctx, qid| {
                                let stats = self.execute_knn_query(
                                    &mut Runner::Lane(ctx),
                                    &index,
                                    queries.series(qid),
                                    qid,
                                    k,
                                    g,
                                    params,
                                    knn_board,
                                );
                                account(qid, &stats);
                            },
                            None,
                        );
                    } else {
                        loop {
                            if fatal_at == Some(executed) {
                                // Dies before its next claim: strand the
                                // static remainder for the survivors.
                                if self.config.max_reroutes > 0 {
                                    let mut rq = reroute_queues[g].lock();
                                    for qid in dispatch[g].drain_member(member_idx) {
                                        rq.queue.push_back((qid, 1));
                                    }
                                }
                                drained[node].store(true, Ordering::Release);
                                return;
                            }
                            let Some(qid) = dispatch[g].next(member_idx) else {
                                break;
                            };
                            let stats = self.execute_knn_query(
                                &mut Runner::Pool(&engine),
                                &index,
                                queries.series(qid),
                                qid,
                                k,
                                g,
                                params,
                                knn_board,
                            );
                            account(qid, &stats);
                            executed += 1;
                        }
                    }
                    // Re-route phase (fault plans only): survivors pick
                    // up a dead member's stranded queries. Kills only
                    // fire between queries here, so a claimed re-route
                    // always completes and `inflight` never strands.
                    if fault_plan.is_some() {
                        drained[node].store(true, Ordering::Release);
                        let members = topo2.nodes_in_group(g);
                        let wait_deadline =
                            std::time::Instant::now() + self.config.query_deadline;
                        loop {
                            if fatal_at == Some(executed) {
                                return; // dies idle; already drained
                            }
                            let claim = {
                                let mut rq = reroute_queues[g].lock();
                                match rq.queue.pop_front() {
                                    Some((qid, _)) => {
                                        rq.inflight += 1;
                                        Some(qid)
                                    }
                                    None if rq.inflight == 0
                                        && members.iter().all(|&m| {
                                            m == node
                                                || drained[m].load(Ordering::Acquire)
                                        }) =>
                                    {
                                        break;
                                    }
                                    None => None,
                                }
                            };
                            match claim {
                                Some(qid) => {
                                    let stats = self.execute_knn_query(
                                        &mut Runner::Pool(&engine),
                                        &index,
                                        queries.series(qid),
                                        qid,
                                        k,
                                        g,
                                        params,
                                        knn_board,
                                    );
                                    account(qid, &stats);
                                    executed += 1;
                                    reroute_queues[g].lock().inflight -= 1;
                                }
                                None => {
                                    if std::time::Instant::now() > wait_deadline {
                                        break;
                                    }
                                    std::thread::sleep(Duration::from_micros(50));
                                }
                            }
                        }
                    }
                });
            }
        });
        KnnBatchReport {
            answers: knn_board.into_answers(),
            wall: t0.elapsed(),
            per_node_units: per_node_units
                .iter()
                .map(|u| u.load(Ordering::Relaxed))
                .collect(),
            coverage: coverage_board.into_coverages(),
        }
    }
}

impl OdysseyCluster {
    /// One k-NN query on either execution surface (the node's full pool
    /// or one of its lanes): seed from the approximate leaf, run the
    /// engine with the k-th-bound board, translate ids, merge.
    #[allow(clippy::too_many_arguments)]
    fn execute_knn_query(
        &self,
        runner: &mut Runner<'_, '_, '_>,
        index: &Index,
        q: &[f32],
        qid: usize,
        k: usize,
        group: usize,
        params: SearchParams,
        knn_board: &KnnBoard,
    ) -> SearchStats {
        let board_opt = self.config.bsf_sharing.then_some((knn_board, qid));
        let set = BoardKnn::new(k, board_opt);
        seed_from_approx_leaf(index, q, &set.local);
        let kernel = EdKernel::new(q, index.config().segments);
        let mut params = params;
        // The k-NN analogue of the initial BSF: the k-th distance
        // after seeding (infinite when the seed leaf held < k).
        let seed_bound = set.local.threshold_sq();
        if let Some(th) = &self.th_feedback {
            if seed_bound.is_finite() {
                params.th = th.predict_th(seed_bound.sqrt());
            }
        }
        let grant = runner.admit(
            qid,
            Arc::clone(&set.local) as Arc<dyn ResultSet + Send + Sync>,
            None,
        );
        let stats = runner.run_query(&kernel, &params, &set, None, &grant);
        drop(grant);
        if seed_bound.is_finite() {
            if let Some(th) = &self.th_feedback {
                th.record(seed_bound.sqrt(), stats.pq_size_median as f64);
            }
        }
        let mut local = set.local.snapshot();
        // Translate chunk-local ids to global ids.
        for n in local.neighbors.iter_mut() {
            n.1 = self.id_maps[group][n.1 as usize];
        }
        knn_board.merge(qid, local);
        stats
    }
}

/// Where a query executes: a node's resident pool, or one lane of it
/// during a concurrent window. The steal machinery lives in the
/// engine's [`StealRegistry`] (registration grants + the installed
/// cooperative service hook), so both surfaces carry the identical —
/// and steal-capable — execution interface; the old per-surface
/// `active`/`service_rx` plumbing is gone.
enum Runner<'a, 'e, 's> {
    Pool(&'a BatchEngine),
    Lane(&'a mut LaneCtx<'e, 's>),
}

impl Runner<'_, '_, '_> {
    /// The engine index this surface searches.
    fn index(&self) -> &Arc<Index> {
        match self {
            Runner::Pool(engine) => engine.index(),
            Runner::Lane(ctx) => ctx.index(),
        }
    }

    /// Registers a query with the node's steal service at this
    /// surface's width (full pool or lane), carrying the scheduler's
    /// cost estimate so the steal manager can weight victims by
    /// predicted remaining work.
    fn admit(
        &self,
        qid: usize,
        results: Arc<dyn ResultSet + Send + Sync>,
        estimate: Option<f64>,
    ) -> InflightQuery {
        match self {
            Runner::Pool(engine) => engine.admit_estimated(qid, results, estimate),
            Runner::Lane(ctx) => ctx.admit_estimated(qid, results, estimate),
        }
    }

    /// Runs one admitted query on this surface.
    fn run_query<R: ResultSet + ?Sized>(
        &mut self,
        kernel: &dyn QueryKernel,
        params: &SearchParams,
        results: &R,
        batch_subset: Option<&[usize]>,
        query: &InflightQuery,
    ) -> SearchStats {
        match self {
            Runner::Pool(engine) => {
                engine.run_query(kernel, params, results, batch_subset, query, &|_, _| {})
            }
            Runner::Lane(ctx) => {
                ctx.run_query(kernel, params, results, batch_subset, query, &|_, _| {})
            }
        }
    }
}

/// Work stranded by dead group members, awaiting a surviving replica.
#[derive(Default)]
struct RerouteQueue {
    /// `(query id, hand-off count)` — a query is dropped once its count
    /// would exceed `ClusterConfig::max_reroutes` (it then surfaces as
    /// missing coverage rather than an unbounded retry loop).
    queue: VecDeque<(usize, usize)>,
    /// Claimed but unfinished re-routes. A claimer that dies re-pushes
    /// the query *before* decrementing this (under the same lock), so
    /// observers never see an empty queue while work can reappear.
    inflight: usize,
}

/// The per-group dispatch structure (stage 3's output).
enum GroupDispatch {
    /// Per-member fixed queues (STATIC / PREDICT-ST*).
    Static(Vec<Mutex<VecDeque<usize>>>),
    /// One shared coordinator queue (DYNAMIC / PREDICT-DN); group members
    /// "request" the next query, modelling the coordinator serving
    /// requests in arrival order.
    Dynamic(Mutex<VecDeque<usize>>),
}

impl GroupDispatch {
    fn build(kind: SchedulerKind, estimates: &[f64], group_size: usize) -> Self {
        Self::build_waved(kind, estimates, group_size, None)
    }

    /// Like [`GroupDispatch::build`], but when `wave_size` is set,
    /// dynamic orderings may only sort *within* consecutive waves of that
    /// size — modelling queries that arrive over time.
    fn build_waved(
        kind: SchedulerKind,
        estimates: &[f64],
        group_size: usize,
        wave_size: Option<usize>,
    ) -> Self {
        if let (Some(w), SchedulerKind::PredictDn) = (wave_size, kind) {
            let mut order = Vec::with_capacity(estimates.len());
            for wave_start in (0..estimates.len()).step_by(w) {
                let wave_end = (wave_start + w).min(estimates.len());
                let sub = dynamic_order(&estimates[wave_start..wave_end], true);
                order.extend(sub.into_iter().map(|i| i + wave_start));
            }
            return GroupDispatch::Dynamic(Mutex::new(order.into_iter().collect()));
        }
        let nq = estimates.len();
        match kind {
            SchedulerKind::Static => {
                let s = static_split(nq, group_size);
                GroupDispatch::Static(
                    s.per_node
                        .into_iter()
                        .map(|qs| Mutex::new(qs.into_iter().collect()))
                        .collect(),
                )
            }
            SchedulerKind::PredictStUnsorted | SchedulerKind::PredictSt => {
                let s = greedy_by_estimate(
                    estimates,
                    group_size,
                    kind == SchedulerKind::PredictSt,
                );
                GroupDispatch::Static(
                    s.per_node
                        .into_iter()
                        .map(|qs| Mutex::new(qs.into_iter().collect()))
                        .collect(),
                )
            }
            SchedulerKind::Dynamic => {
                GroupDispatch::Dynamic(Mutex::new((0..nq).collect()))
            }
            SchedulerKind::PredictDn => GroupDispatch::Dynamic(Mutex::new(
                dynamic_order(estimates, true).into_iter().collect(),
            )),
        }
    }

    /// The next query for group member `member_idx`, or `None` when the
    /// member's work is exhausted.
    fn next(&self, member_idx: usize) -> Option<usize> {
        match self {
            GroupDispatch::Static(queues) => queues[member_idx].lock().pop_front(),
            GroupDispatch::Dynamic(q) => q.lock().pop_front(),
        }
    }

    /// Like [`GroupDispatch::next`], but claims from the *back* of the
    /// member's queue — the easy end of a descending-cost order. Narrow
    /// dispatch lanes use this so the tiers meet in the middle.
    fn next_back(&self, member_idx: usize) -> Option<usize> {
        match self {
            GroupDispatch::Static(queues) => queues[member_idx].lock().pop_back(),
            GroupDispatch::Dynamic(q) => q.lock().pop_back(),
        }
    }

    /// Removes and returns member `member_idx`'s remaining fixed
    /// assignment (a dying node stranding its static queue). The
    /// dynamic queue is shared — surviving members keep pulling from it
    /// — so nothing is stranded there.
    fn drain_member(&self, member_idx: usize) -> Vec<usize> {
        match self {
            GroupDispatch::Static(queues) => {
                queues[member_idx].lock().drain(..).collect()
            }
            GroupDispatch::Dynamic(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Replication;
    use crate::faults::FaultPlan;
    use odyssey_workloads::generator::random_walk;
    use odyssey_workloads::queries::{QueryWorkload, WorkloadKind};

    fn brute_force(data: &DatasetBuffer, q: &[f32]) -> Answer {
        let mut best = Answer::none();
        for i in 0..data.num_series() {
            let d = odyssey_core::distance::euclidean_sq(q, data.series(i));
            if d < best.distance_sq {
                best = Answer::from_sq(d, Some(i as u32));
            }
        }
        best
    }

    fn check_batch(cfg: ClusterConfig, n_series: usize, n_queries: usize) {
        let data = random_walk(n_series, 64, 11);
        let w = QueryWorkload::generate(
            &data,
            n_queries,
            WorkloadKind::Mixed {
                hard_fraction: 0.5,
                noise: 0.05,
            },
            23,
        );
        let tpn = cfg.threads_per_node;
        let cluster = OdysseyCluster::build(&data, cfg);
        let report = cluster.answer_batch(&w.queries);
        assert_eq!(report.answers.len(), n_queries);
        for qi in 0..n_queries {
            let want = brute_force(&data, w.query(qi));
            let got = report.answers[qi];
            assert!(
                (got.distance - want.distance).abs() < 1e-9,
                "query {qi}: got {} want {}",
                got.distance,
                want.distance
            );
        }
        assert!(report.makespan_units() > 0);
        assert!(report.makespan_seconds(tpn) > 0.0);
    }

    #[test]
    fn full_replication_exact_answers() {
        check_batch(
            ClusterConfig::new(4).with_replication(Replication::Full),
            1200,
            12,
        );
    }

    #[test]
    fn equally_split_exact_answers() {
        check_batch(
            ClusterConfig::new(4).with_replication(Replication::EquallySplit),
            1200,
            12,
        );
    }

    #[test]
    fn partial_2_exact_answers() {
        check_batch(
            ClusterConfig::new(4).with_replication(Replication::Partial(2)),
            1200,
            12,
        );
    }

    #[test]
    fn all_schedulers_exact_answers() {
        for kind in SchedulerKind::all() {
            check_batch(
                ClusterConfig::new(4)
                    .with_replication(Replication::Full)
                    .with_scheduler(kind),
                800,
                8,
            );
        }
    }

    #[test]
    fn stealing_and_sharing_toggles_preserve_exactness() {
        for (ws, bsf) in [(false, false), (true, false), (false, true), (true, true)] {
            check_batch(
                ClusterConfig::new(4)
                    .with_replication(Replication::Partial(2))
                    .with_work_stealing(ws)
                    .with_bsf_sharing(bsf),
                900,
                10,
            );
        }
    }

    #[test]
    fn knn_batch_matches_brute_force() {
        let data = random_walk(800, 64, 31);
        let w = QueryWorkload::generate(&data, 5, WorkloadKind::Hard, 7);
        let cluster = OdysseyCluster::build(
            &data,
            ClusterConfig::new(4).with_replication(Replication::Partial(2)),
        );
        let k = 5;
        let report = cluster.answer_batch_knn(&w.queries, k);
        for qi in 0..w.len() {
            let q = w.query(qi);
            let mut all: Vec<(f64, u32)> = (0..data.num_series())
                .map(|i| {
                    (
                        odyssey_core::distance::euclidean_sq(q, data.series(i)),
                        i as u32,
                    )
                })
                .collect();
            all.sort_by(|a, b| a.0.total_cmp(&b.0));
            for (j, got) in report.answers[qi].neighbors.iter().enumerate() {
                assert!(
                    (got.0 - all[j].0).abs() < 1e-9,
                    "query {qi} neighbor {j}: {} vs {}",
                    got.0,
                    all[j].0
                );
            }
        }
    }

    #[test]
    fn dtw_batch_matches_brute_force() {
        let data = random_walk(400, 64, 41);
        let w = QueryWorkload::generate(&data, 4, WorkloadKind::Hard, 9);
        let window = 3;
        let cluster = OdysseyCluster::build(
            &data,
            ClusterConfig::new(2).with_replication(Replication::EquallySplit),
        );
        let report = cluster.answer_batch_dtw(&w.queries, window);
        for qi in 0..w.len() {
            let q = w.query(qi);
            let mut best = f64::INFINITY;
            for i in 0..data.num_series() {
                if let Some(d) = odyssey_core::distance::dtw_banded(
                    q,
                    data.series(i),
                    window,
                    best,
                ) {
                    best = best.min(d);
                }
            }
            assert!(
                (report.answers[qi].distance_sq - best).abs() < 1e-9,
                "query {qi}: {} vs {best}",
                report.answers[qi].distance_sq
            );
        }
    }

    #[test]
    fn build_report_is_consistent() {
        let data = random_walk(600, 64, 5);
        let cluster = OdysseyCluster::build(
            &data,
            ClusterConfig::new(4).with_replication(Replication::Partial(2)),
        );
        let r = cluster.build_report();
        assert_eq!(r.per_chunk_times.len(), 2);
        assert_eq!(r.per_node_index_bytes.len(), 4);
        assert!(r.total_index_bytes() > 0);
        assert!(r.max_index_units() >= r.max_buffer_units());
        // FULL stores more total index bytes than EQUALLY-SPLIT.
        let full = OdysseyCluster::build(
            &data,
            ClusterConfig::new(4).with_replication(Replication::Full),
        );
        let split = OdysseyCluster::build(
            &data,
            ClusterConfig::new(4).with_replication(Replication::EquallySplit),
        );
        assert!(
            full.build_report().total_index_bytes()
                > split.build_report().total_index_bytes()
        );
    }

    #[test]
    fn reconfigured_shares_indexes_and_stays_exact() {
        let data = random_walk(800, 64, 47);
        let w = QueryWorkload::generate(&data, 6, WorkloadKind::Hard, 2);
        let base = OdysseyCluster::build(
            &data,
            ClusterConfig::new(4).with_replication(Replication::Partial(2)),
        );
        let variant = base.reconfigured(|c| {
            c.with_scheduler(SchedulerKind::Static)
                .with_work_stealing(false)
                .with_bsf_sharing(false)
        });
        let a = base.answer_batch(&w.queries);
        let b = variant.answer_batch(&w.queries);
        for qi in 0..w.len() {
            assert!((a.answers[qi].distance - b.answers[qi].distance).abs() < 1e-9);
        }
        // Index identity is shared, not copied.
        assert!(Arc::ptr_eq(base.chunk_index(0), variant.chunk_index(0)));
    }

    #[test]
    #[should_panic(expected = "replication-group count is fixed")]
    fn reconfigured_rejects_layout_changes() {
        let data = random_walk(200, 64, 48);
        let base = OdysseyCluster::build(
            &data,
            ClusterConfig::new(4).with_replication(Replication::Partial(2)),
        );
        let _ = base.reconfigured(|c| c.with_replication(Replication::Full));
    }

    #[test]
    fn streaming_batches_stay_exact() {
        let data = random_walk(1000, 64, 19);
        let w = QueryWorkload::generate(
            &data,
            12,
            WorkloadKind::Mixed {
                hard_fraction: 0.4,
                noise: 0.05,
            },
            3,
        );
        let cluster = OdysseyCluster::build(
            &data,
            ClusterConfig::new(4)
                .with_replication(Replication::Full)
                .with_scheduler(SchedulerKind::PredictDn),
        );
        for wave in [1usize, 3, 100] {
            let report = cluster.answer_batch_stream(&w.queries, wave);
            for qi in 0..w.len() {
                let want = brute_force(&data, w.query(qi));
                assert!(
                    (report.answers[qi].distance - want.distance).abs() < 1e-9,
                    "wave={wave} query {qi}"
                );
            }
        }
    }

    #[test]
    fn approximate_batch_upper_bounds_exact() {
        let data = random_walk(1200, 64, 29);
        let w = QueryWorkload::generate(&data, 10, WorkloadKind::Hard, 7);
        let cluster = OdysseyCluster::build(
            &data,
            ClusterConfig::new(4).with_replication(Replication::Partial(2)),
        );
        let approx = cluster.answer_batch_approximate(&w.queries);
        let exact = cluster.answer_batch(&w.queries);
        for qi in 0..w.len() {
            assert!(
                approx.answers[qi].distance >= exact.answers[qi].distance - 1e-9,
                "query {qi}: approx below exact"
            );
            // The approximate answer is a real series at that distance.
            let id = approx.answers[qi].series_id.expect("approx id") as usize;
            let d = odyssey_core::distance::euclidean_sq(w.query(qi), data.series(id));
            assert!((d - approx.answers[qi].distance_sq).abs() < 1e-9);
        }
        // Approximate search is much cheaper than exact.
        assert!(approx.makespan_units() < exact.makespan_units());
    }

    #[test]
    fn inter_query_lanes_stay_exact_and_match_sequential_nodes() {
        // A PREDICT policy engages the per-node lanes (stealing off
        // here isolates the lane mechanism; the lanes×stealing
        // composition is covered by `tests/multiq.rs`); answers must
        // equal brute force and the lanes-off run.
        let data = random_walk(1200, 64, 61);
        let w = QueryWorkload::generate(
            &data,
            14,
            WorkloadKind::Mixed {
                hard_fraction: 0.3,
                noise: 0.03,
            },
            5,
        );
        let base = OdysseyCluster::build(
            &data,
            ClusterConfig::new(4)
                .with_replication(Replication::Partial(2))
                .with_scheduler(SchedulerKind::PredictDn)
                .with_work_stealing(false)
                .with_threads_per_node(4),
        );
        let laned = base.answer_batch(&w.queries);
        let sequential = base
            .reconfigured(|c| c.with_inter_query_lanes(false))
            .answer_batch(&w.queries);
        for qi in 0..w.len() {
            let want = brute_force(&data, w.query(qi));
            assert!(
                (laned.answers[qi].distance - want.distance).abs() < 1e-9,
                "query {qi}: lanes vs brute force"
            );
            assert_eq!(
                laned.answers[qi].distance.to_bits(),
                sequential.answers[qi].distance.to_bits(),
                "query {qi}: lanes vs sequential nodes"
            );
        }
        assert_eq!(
            laned.per_node_queries.iter().sum::<usize>(),
            w.len() * base.topology().n_groups(),
            "every group answers every query exactly once"
        );
    }

    #[test]
    fn adaptive_plan_matches_static_plan_bit_identical() {
        // The tentpole contract: the makespan-optimal width solver (and
        // the calibration run feeding it) may change *scheduling* only —
        // answers must equal the static plan's bit for bit, at every
        // pool width, across ED, DTW and k-NN.
        let data = random_walk(700, 64, 83);
        let w = QueryWorkload::generate(
            &data,
            8,
            WorkloadKind::Mixed {
                hard_fraction: 0.4,
                noise: 0.05,
            },
            29,
        );
        for tpn in [1usize, 2, 4, 8] {
            let adaptive = OdysseyCluster::build(
                &data,
                ClusterConfig::new(2)
                    .with_replication(Replication::Full)
                    .with_threads_per_node(tpn),
            );
            assert!(adaptive.config().adaptive_widths);
            let fixed = adaptive.reconfigured(|c| c.with_adaptive_widths(false));
            let (a_ed, f_ed) = (adaptive.answer_batch(&w.queries), fixed.answer_batch(&w.queries));
            let (a_dtw, f_dtw) = (
                adaptive.answer_batch_dtw(&w.queries, 3),
                fixed.answer_batch_dtw(&w.queries, 3),
            );
            let (a_knn, f_knn) = (
                adaptive.answer_batch_knn(&w.queries, 3),
                fixed.answer_batch_knn(&w.queries, 3),
            );
            for qi in 0..w.len() {
                assert_eq!(
                    a_ed.answers[qi].distance.to_bits(),
                    f_ed.answers[qi].distance.to_bits(),
                    "tpn={tpn} query {qi}: ED adaptive vs static"
                );
                assert_eq!(
                    a_dtw.answers[qi].distance_sq.to_bits(),
                    f_dtw.answers[qi].distance_sq.to_bits(),
                    "tpn={tpn} query {qi}: DTW adaptive vs static"
                );
                for (j, (got, want)) in a_knn.answers[qi]
                    .neighbors
                    .iter()
                    .zip(&f_knn.answers[qi].neighbors)
                    .enumerate()
                {
                    assert_eq!(
                        got.0.to_bits(),
                        want.0.to_bits(),
                        "tpn={tpn} query {qi} neighbor {j}: k-NN adaptive vs static"
                    );
                }
            }
            if tpn > 1 {
                assert!(
                    adaptive.calibrated_curve().is_some(),
                    "tpn={tpn}: lane planning must have calibrated the curve"
                );
            }
        }
    }

    #[test]
    fn online_feedback_records_and_refits_without_changing_answers() {
        // Tiny refit cadence: the predictor refits *during* the sweep,
        // later batches are planned from refit estimates — answers must
        // stay exact throughout.
        let data = random_walk(800, 64, 84);
        let w = QueryWorkload::generate(
            &data,
            9,
            WorkloadKind::Mixed {
                hard_fraction: 0.4,
                noise: 0.05,
            },
            31,
        );
        let cluster = OdysseyCluster::build(
            &data,
            ClusterConfig::new(2)
                .with_replication(Replication::Full)
                .with_threads_per_node(2)
                .with_feedback_refit_every(4),
        );
        for round in 0..3 {
            let report = cluster.answer_batch(&w.queries);
            for qi in 0..w.len() {
                let want = brute_force(&data, w.query(qi));
                assert!(
                    (report.answers[qi].distance - want.distance).abs() < 1e-9,
                    "round {round} query {qi}"
                );
            }
        }
        let fb = cluster.feedback();
        assert_eq!(
            fb.samples(),
            3 * w.len(),
            "every finished non-stolen execution records one sample"
        );
        assert!(fb.refits() > 0, "cadence 4 must have refit by now");
    }

    #[test]
    fn threshold_model_per_query_th_stays_exact() {
        use odyssey_sched::{SigmoidFit, ThresholdModel};
        let data = random_walk(900, 64, 77);
        let w = QueryWorkload::generate(
            &data,
            8,
            WorkloadKind::Mixed {
                hard_fraction: 0.5,
                noise: 0.05,
            },
            13,
        );
        // A crude hand-rolled sigmoid: easy queries get tiny thresholds,
        // hard ones large — exactness must not depend on it.
        let model = ThresholdModel::new(
            SigmoidFit {
                m: 16.0,
                big_m: 4096.0,
                b: 1.0,
                c: 1.0,
                d: 4.0,
                sse: 0.0,
            },
            16.0,
        );
        for lanes in [false, true] {
            let cluster = OdysseyCluster::build(
                &data,
                ClusterConfig::new(2)
                    .with_replication(Replication::Full)
                    .with_work_stealing(false)
                    .with_inter_query_lanes(lanes)
                    .with_threshold_model(model),
            );
            let report = cluster.answer_batch(&w.queries);
            let knn = cluster.answer_batch_knn(&w.queries, 3);
            for qi in 0..w.len() {
                let want = brute_force(&data, w.query(qi));
                assert!(
                    (report.answers[qi].distance - want.distance).abs() < 1e-9,
                    "lanes={lanes} query {qi}"
                );
                assert!(
                    (knn.answers[qi].neighbors[0].0 - want.distance_sq).abs() < 1e-9,
                    "lanes={lanes} query {qi}: knn rank 0"
                );
            }
        }
    }

    #[test]
    fn kill_with_surviving_replica_stays_bit_identical() {
        let data = random_walk(1000, 64, 91);
        let w = QueryWorkload::generate(
            &data,
            10,
            WorkloadKind::Mixed {
                hard_fraction: 0.4,
                noise: 0.05,
            },
            17,
        );
        // Static scheduling pins per-node workloads, so the fault point
        // is deterministically reached (a dynamic queue could let the
        // siblings drain the batch before node 1's second claim).
        let base = OdysseyCluster::build(
            &data,
            ClusterConfig::new(4)
                .with_replication(Replication::Partial(2))
                .with_scheduler(SchedulerKind::Static),
        );
        let clean = base.answer_batch(&w.queries);
        // Node 1 dies before its third execution; node 3 holds the
        // same chunk and picks up the stranded work.
        let faulted = base
            .reconfigured(|c| c.with_fault_plan(FaultPlan::new().kill(1, 2)))
            .answer_batch(&w.queries);
        assert_eq!(faulted.dead_nodes, vec![1]);
        assert!(faulted.final_epoch >= 1);
        assert!(faulted.fully_covered());
        assert!(clean.fully_covered() && clean.dead_nodes.is_empty());
        for qi in 0..w.len() {
            assert_eq!(
                faulted.answers[qi].distance.to_bits(),
                clean.answers[qi].distance.to_bits(),
                "query {qi}: failover changed the answer"
            );
        }
    }

    #[test]
    fn whole_group_dead_yields_partial_coverage_not_lies() {
        let data = random_walk(900, 64, 92);
        let w = QueryWorkload::generate(&data, 8, WorkloadKind::Hard, 19);
        let cluster = OdysseyCluster::build(
            &data,
            ClusterConfig::new(2)
                .with_replication(Replication::EquallySplit)
                .with_fault_plan(FaultPlan::new().kill(1, 0)),
        );
        let report = cluster.answer_batch(&w.queries);
        assert_eq!(report.dead_nodes, vec![1]);
        // Group 1 died before answering anything: every query is
        // explicitly partial — and exact over the surviving chunk.
        let survivors = cluster.chunk_ids(0);
        for qi in 0..w.len() {
            assert_eq!(
                report.coverage[qi],
                Coverage::Partial {
                    missing_groups: vec![1]
                }
            );
            let mut best = f64::INFINITY;
            for &gid in survivors.iter() {
                best = best.min(odyssey_core::distance::euclidean_sq(
                    w.query(qi),
                    data.series(gid as usize),
                ));
            }
            assert!(
                (report.answers[qi].distance_sq - best).abs() < 1e-9,
                "query {qi}: partial answer must be exact over survivors"
            );
        }
    }

    #[test]
    fn knn_kill_with_survivor_matches_brute_force() {
        let data = random_walk(700, 64, 93);
        let w = QueryWorkload::generate(&data, 6, WorkloadKind::Hard, 21);
        let cluster = OdysseyCluster::build(
            &data,
            ClusterConfig::new(4)
                .with_replication(Replication::Partial(2))
                .with_scheduler(SchedulerKind::Static)
                .with_fault_plan(FaultPlan::new().kill(0, 1)),
        );
        let k = 3;
        let report = cluster.answer_batch_knn(&w.queries, k);
        assert!(report.coverage.iter().all(|c| c.is_complete()));
        for qi in 0..w.len() {
            let q = w.query(qi);
            let mut all: Vec<f64> = (0..data.num_series())
                .map(|i| odyssey_core::distance::euclidean_sq(q, data.series(i)))
                .collect();
            all.sort_by(|a, b| a.total_cmp(b));
            for (j, got) in report.answers[qi].neighbors.iter().enumerate() {
                assert!(
                    (got.0 - all[j]).abs() < 1e-9,
                    "query {qi} neighbor {j} after failover"
                );
            }
        }
    }

    #[test]
    fn work_stealing_reports_steals_on_skewed_batches() {
        // One very hard query at the end (the paper's motivating case):
        // with FULL replication + stealing, idle nodes should steal.
        let data = random_walk(3000, 64, 13);
        let mut qdata = Vec::new();
        // 3 easy queries then 1 hard one.
        let easy = QueryWorkload::generate(&data, 3, WorkloadKind::Easy { noise: 0.01 }, 3);
        qdata.extend_from_slice(easy.queries.raw());
        let hard = QueryWorkload::generate(&data, 1, WorkloadKind::Hard, 4);
        qdata.extend_from_slice(hard.queries.raw());
        let queries = DatasetBuffer::from_vec(qdata, 64);
        let cluster = OdysseyCluster::build(
            &data,
            ClusterConfig::new(4)
                .with_replication(Replication::Full)
                .with_scheduler(SchedulerKind::Dynamic)
                .with_pq_threshold(8),
        );
        let report = cluster.answer_batch(&queries);
        for qi in 0..4 {
            let want = brute_force(&data, queries.series(qi));
            assert!((report.answers[qi].distance - want.distance).abs() < 1e-9);
        }
        // Steal attempts occur (success depends on timing, attempts must).
        assert!(report.steals_attempted > 0, "idle nodes should try to steal");
    }
}
