//! The deterministic work-unit cost model.
//!
//! One *unit* ≈ one floating-point multiply-add. Per-node loads summed in
//! units are hardware- and interleaving-independent, so the max-over-nodes
//! makespan is reproducible — see the crate docs for why wall-clock
//! per-node times are unusable on a shared development machine.

use odyssey_core::search::exact::SearchStats;

/// Approximate seconds per work unit, for pretty-printing unit counts as
/// "simulated seconds" in harness output (2 ns/FLOP ≈ a modest core).
pub const SECONDS_PER_UNIT: f64 = 2.0e-9;

/// Work units of one search execution.
pub fn search_units(stats: &SearchStats, series_len: usize, segments: usize) -> u64 {
    stats.lb_node_computations * segments as u64
        + stats.lb_series_computations * segments as u64
        + stats.real_distance_computations * series_len as u64
        // Heap operations per collected leaf (small constant).
        + stats.leaves_collected * 8
}

/// Work units of the index-construction *buffer phase* for one chunk:
/// one pass over every value (PAA + symbol lookup).
pub fn buffer_units(n_series: usize, series_len: usize) -> u64 {
    (n_series * series_len) as u64 * 2
}

/// Work units of the *tree phase*: every series id is re-partitioned once
/// per tree level it passes through, so the cost is the sum over leaves of
/// `series × depth`.
pub fn tree_units(index: &odyssey_core::Index) -> u64 {
    let mut total = 0u64;
    for st in index.forest() {
        // Depth-weighted series counts via explicit traversal.
        let mut stack = vec![(&st.node, 1u64)];
        while let Some((node, depth)) = stack.pop() {
            match node {
                odyssey_core::tree::Node::Inner { children, .. } => {
                    stack.push((&children[0], depth + 1));
                    stack.push((&children[1], depth + 1));
                }
                odyssey_core::tree::Node::Leaf(l) => {
                    total += l.slice.len() as u64 * depth;
                }
            }
        }
    }
    total
}

/// Converts units to simulated seconds given the node's thread count
/// (units are total work; `t` threads shorten the wall time).
pub fn units_to_seconds(units: u64, threads_per_node: usize) -> f64 {
    units as f64 * SECONDS_PER_UNIT / threads_per_node.max(1) as f64
}

/// Recovery latency of a faulted batch in simulated seconds: how much
/// *longer* the batch ran (max-over-nodes, in units) than its
/// fault-free baseline. Re-routed executions land on survivors, so the
/// faulted makespan is at least the baseline; the difference is the
/// price of the failover. Clamped at zero (a kill can also *shorten*
/// the makespan when the dead node was the straggler).
pub fn recovery_seconds(
    faulted_makespan_units: u64,
    baseline_makespan_units: u64,
    threads_per_node: usize,
) -> f64 {
    units_to_seconds(
        faulted_makespan_units.saturating_sub(baseline_makespan_units),
        threads_per_node,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_units_weighting() {
        let stats = SearchStats {
            lb_node_computations: 10,
            lb_series_computations: 100,
            real_distance_computations: 5,
            leaves_collected: 3,
            ..Default::default()
        };
        let u = search_units(&stats, 256, 16);
        assert_eq!(u, 10 * 16 + 100 * 16 + 5 * 256 + 3 * 8);
    }

    #[test]
    fn units_to_seconds_scales_with_threads() {
        let one = units_to_seconds(1_000_000, 1);
        let four = units_to_seconds(1_000_000, 4);
        assert!((one / four - 4.0).abs() < 1e-12);
    }

    #[test]
    fn buffer_units_proportional_to_volume() {
        assert_eq!(buffer_units(100, 64), 12_800);
        assert_eq!(buffer_units(200, 64), 25_600);
    }

    #[test]
    fn recovery_seconds_is_clamped_overhead() {
        let over = recovery_seconds(3_000_000, 1_000_000, 1);
        assert!((over - units_to_seconds(2_000_000, 1)).abs() < 1e-15);
        // A kill that removed the straggler: no recovery cost.
        assert_eq!(recovery_seconds(500, 1_000, 4), 0.0);
    }
}
