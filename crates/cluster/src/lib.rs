//! # odyssey-cluster
//!
//! The distributed half of Odyssey (Sections 3.1–3.4): replication
//! groups, query scheduling, BSF sharing, and data-free work-stealing —
//! over a **simulated multi-node system**.
//!
//! ## The simulation substitution
//!
//! The paper runs on a 16-node Infiniband cluster with MPI. Here each
//! *system node* is an OS thread owning (a) a private chunk of the data
//! and (b) its own [`odyssey_core::Index`] over that chunk. Nodes
//! interact **only** through the same messages the MPI implementation
//! exchanges: query dispatch, `DONE` notifications, steal
//! requests/responses carrying RS-batch *ids*, and BSF-improvement
//! broadcasts. No node ever reads another node's index or raw series.
//! The protocol logic — which node answers what, who steals what, which
//! improvement reaches whom — is therefore exactly the paper's.
//!
//! ## Time measurement
//!
//! The paper reports, per experiment, the *maximum over nodes* of each
//! node's busy time. On a single development machine, wall-clock per-node
//! times are distorted by the OS interleaving all node threads onto the
//! same cores, so this crate measures per-node load in deterministic
//! **work units** (a weighted count of the floating-point work each node
//! performed: lower-bound computations × segment count, real-distance
//! computations × series length, and index-construction operations).
//! The reported makespan is the max over nodes of those units — the
//! quantity the paper's wall-clock maxima estimate on real hardware.
//! Wall-clock durations are reported alongside for reference.
//!
//! ## Failure awareness
//!
//! The replication *degree* of a PARTIAL-k topology buys replication
//! *capability*: a [`shard_map::ShardMap`] tracks per-node health
//! (`Up`/`Suspect`/`Down`) with lease-style liveness and an epoch
//! counter; a deterministic [`faults::FaultPlan`] injects node kills,
//! mid-query worker panics, and delays; and the batch runtime
//! re-routes a dead node's unfinished queries to a surviving replica
//! of the same group. When a group loses all replicas, queries
//! terminate with an explicit [`shard_map::Coverage::Partial`] answer
//! (exact over the surviving chunks) instead of hanging or silently
//! passing a subset answer off as complete.

pub mod boards;
pub mod config;
pub mod faults;
pub mod runtime;
pub mod serve;
pub mod shard_map;
pub mod stealing;
pub mod topology;
pub mod units;

pub use config::{BatchMode, ClusterConfig, Replication};
pub use faults::{Fault, FaultPlan};
pub use odyssey_sched::SchedulerKind;
pub use runtime::{BatchReport, BuildReport, KnnBatchReport, OdysseyCluster};
pub use serve::{ServeHandle, ServeOutcome, ServeQuery, ServeStats, ServedAnswer};
pub use shard_map::{Coverage, NodeHealth, ShardMap};
pub use topology::Topology;
