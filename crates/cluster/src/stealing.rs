//! The inter-node work-stealing protocol (Section 3.2.2, Algorithms 3–4).
//!
//! Each node runs a **work-stealing manager** alongside its search
//! workers (Algorithm 1 line 6 allocates a thread for this role). When a
//! `StealingRequest` arrives, the manager consults the node engine's
//! [`StealRegistry`] — the service that tracks **every** in-flight query
//! of the node, whether it runs on the full pool or on one of the
//! concurrent lanes — picks the victim query with the widest remaining
//! work, takes away up to `Nsend` RS-batches satisfying the Take-Away
//! property, marks their queues stolen, and replies with the batch
//! **ids**, the query id, and the query's current BSF — never any series
//! data. The thief rebuilds those priority queues from its own identical
//! index (replication-group nodes store the same chunk) and processes
//! them.
//!
//! Because the registry (not a one-query "active slot") is the unit the
//! manager inspects, stealing composes with the inter-query lanes of
//! `odyssey_core::search::multiq`: a node running eight lane queries at
//! once serves thieves from whichever of them has the most unclaimed
//! work, mid-round. The same serving path also runs cooperatively on
//! the search workers themselves through the registry's installed
//! service hook (see `ClusterConfig::work_stealing`).
//!
//! ## Dead-node semantics
//!
//! The protocol tolerates a victim dying mid-batch without wedging
//! thieves, because every path degrades to the *empty reply*:
//!
//! * a node that dies between queries has no registered grant, so its
//!   registry is empty and [`serve_request`] answers
//!   [`StealResponse::empty`];
//! * a node that dies *mid-query* through the worker-panic path has its
//!   grant deregistered by the engine's unwind (the `InflightQuery`
//!   drop recycles the published batch views), so the next request also
//!   sees an empty registry — a dead node's in-flight work is never
//!   served twice;
//! * the manager thread outlives its node's death: [`manager_loop`]
//!   exits only when the whole group is done (a dying node still
//!   increments the group counter during its hand-off), so requests
//!   racing with the death are answered, not dropped.
//!
//! An empty reply sends the thief back to pick another victim; the dead
//! node's *unfinished queries* travel separately, through the runtime's
//! re-route queue, as whole re-executions on a surviving replica.

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use odyssey_core::search::engine::StealRegistry;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// A steal request (`StealingRequest` in Algorithm 3).
pub struct StealRequest {
    /// Requesting node id (for accounting).
    pub from: usize,
    /// Channel for the response.
    pub reply: Sender<StealResponse>,
}

/// The manager's reply: `⟨S, Q of sn, Q's current BSF⟩` (Algorithm 3
/// line 3). An empty `batch_ids` means nothing was stealable.
#[derive(Debug, Clone)]
pub struct StealResponse {
    /// Global RS-batch ids the thief should process.
    pub batch_ids: Vec<usize>,
    /// The query those batches belong to.
    pub query_id: Option<usize>,
    /// The victim's current (squared) BSF for that query.
    pub bsf_sq: f64,
}

impl StealResponse {
    /// The "nothing to steal" reply.
    pub fn empty() -> Self {
        StealResponse {
            batch_ids: Vec::new(),
            query_id: None,
            bsf_sq: f64::INFINITY,
        }
    }
}

/// Serves one steal request against the node's steal registry (the body
/// of Algorithm 3, lines 2–4, generalized over every in-flight query).
/// Used both by the manager thread and by the search workers'
/// cooperative service hook.
pub fn serve_request(
    req: StealRequest,
    registry: &StealRegistry,
    nsend: usize,
    steals_served: &AtomicU64,
) {
    let stolen = registry.serve_steal(nsend);
    if std::env::var("ODYSSEY_STEAL_DEBUG").is_ok() {
        eprintln!(
            "serve from node {}: {} in flight -> {:?}",
            req.from,
            registry.in_flight(),
            stolen
                .as_ref()
                .map(|w| (w.query_id, w.batch_ids.len()))
        );
    }
    let response = match stolen {
        Some(w) => {
            steals_served.fetch_add(1, Ordering::Relaxed);
            StealResponse {
                batch_ids: w.batch_ids,
                query_id: Some(w.query_id),
                bsf_sq: w.bsf_sq,
            }
        }
        // The thief may have timed out; a dropped receiver is fine.
        None => StealResponse::empty(),
    };
    let _ = req.reply.send(response);
}

/// Runs one node's work-stealing manager until every node of the group
/// is done (Algorithm 3). `group_done` counts finished group members out
/// of `group_total`.
pub fn manager_loop(
    rx: &Receiver<StealRequest>,
    registry: &StealRegistry,
    group_done: &AtomicUsize,
    group_total: usize,
    nsend: usize,
    steals_served: &AtomicU64,
) {
    loop {
        match rx.recv_timeout(Duration::from_millis(1)) {
            Ok(req) => serve_request(req, registry, nsend, steals_served),
            Err(RecvTimeoutError::Timeout) => {
                if group_done.load(Ordering::Acquire) >= group_total {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Drain any request that raced with the exit condition.
    while let Ok(req) = rx.try_recv() {
        serve_request(req, registry, nsend, steals_served);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::{bounded, unbounded};
    use odyssey_core::search::bsf::{ResultSet, SharedBsf};
    use std::sync::Arc;

    #[test]
    fn manager_replies_empty_when_idle() {
        let (tx, rx) = unbounded::<StealRequest>();
        let registry = Arc::new(StealRegistry::default());
        let done = AtomicUsize::new(0);
        let served = AtomicU64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| manager_loop(&rx, &registry, &done, 1, 4, &served));
            let (rtx, rrx) = bounded(1);
            tx.send(StealRequest { from: 9, reply: rtx }).unwrap();
            let resp = rrx.recv_timeout(Duration::from_secs(1)).unwrap();
            assert!(resp.batch_ids.is_empty());
            assert_eq!(resp.query_id, None);
            done.store(1, Ordering::Release); // unblock exit
        });
        assert_eq!(served.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn manager_serves_registered_query() {
        let (tx, rx) = unbounded::<StealRequest>();
        let registry = Arc::new(StealRegistry::default());
        // Simulate a search mid-processing with 6 batches published.
        let bsf = Arc::new(SharedBsf::new(42.0, Some(7)));
        let grant = registry.register(3, 2, Arc::clone(&bsf) as Arc<dyn ResultSet + Send + Sync>);
        grant.view().test_init(6);
        grant.view().test_publish(vec![0, 1, 2, 3, 4, 5]);
        let done = AtomicUsize::new(0);
        let served = AtomicU64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| manager_loop(&rx, &registry, &done, 2, 4, &served));
            let (rtx, rrx) = bounded(1);
            tx.send(StealRequest { from: 1, reply: rtx }).unwrap();
            let resp = rrx.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(resp.batch_ids, vec![5, 4, 3, 2], "Nsend=4, rightmost");
            assert_eq!(resp.query_id, Some(3));
            assert_eq!(resp.bsf_sq, 42.0);
            done.store(2, Ordering::Release);
        });
        assert_eq!(served.load(Ordering::Relaxed), 1);
        drop(grant);
        assert_eq!(registry.in_flight(), 0, "grant drop deregisters");
    }

    #[test]
    fn manager_picks_widest_remaining_lane_query() {
        // Two concurrent lane queries in one registry: the one with more
        // unclaimed queues is the steal victim.
        let (tx, rx) = unbounded::<StealRequest>();
        let registry = Arc::new(StealRegistry::default());
        let narrow = registry.register(
            10,
            1,
            Arc::new(SharedBsf::new(1.0, None)) as Arc<dyn ResultSet + Send + Sync>,
        );
        narrow.view().test_init(2);
        narrow.view().test_publish(vec![0, 1]);
        let wide = registry.register(
            11,
            2,
            Arc::new(SharedBsf::new(2.0, None)) as Arc<dyn ResultSet + Send + Sync>,
        );
        wide.view().test_init(5);
        wide.view().test_publish(vec![0, 1, 2, 3, 4]);
        let done = AtomicUsize::new(0);
        let served = AtomicU64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| manager_loop(&rx, &registry, &done, 1, 2, &served));
            let (rtx, rrx) = bounded(1);
            tx.send(StealRequest { from: 0, reply: rtx }).unwrap();
            let resp = rrx.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(resp.query_id, Some(11), "most remaining work wins");
            assert_eq!(resp.bsf_sq, 2.0);
            done.store(1, Ordering::Release);
        });
        assert_eq!(served.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn dead_victim_replies_empty_and_never_double_serves() {
        // A "node death" from the protocol's point of view: the grants
        // drop (the engine unwound or the node retired between queries)
        // while the manager keeps running on an incremented group
        // counter. Thieves must get empty replies, not hangs, and the
        // dropped query's batches must never be served again.
        let (tx, rx) = unbounded::<StealRequest>();
        let registry = Arc::new(StealRegistry::default());
        let grant = registry.register(
            5,
            2,
            Arc::new(SharedBsf::new(9.0, None)) as Arc<dyn ResultSet + Send + Sync>,
        );
        grant.view().test_init(4);
        grant.view().test_publish(vec![0, 1, 2, 3]);
        // The node dies: the grant drops (views recycled) and its
        // hand-off counts it done.
        drop(grant);
        assert_eq!(registry.in_flight(), 0);
        let done = AtomicUsize::new(1);
        let served = AtomicU64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| manager_loop(&rx, &registry, &done, 2, 4, &served));
            let (rtx, rrx) = bounded(1);
            tx.send(StealRequest { from: 0, reply: rtx }).unwrap();
            let resp = rrx
                .recv_timeout(Duration::from_secs(1))
                .expect("thief must not wedge on a dead victim");
            assert!(resp.batch_ids.is_empty(), "dead node serves nothing");
            assert_eq!(resp.query_id, None);
            done.store(2, Ordering::Release);
        });
        assert_eq!(served.load(Ordering::Relaxed), 0, "no double-serve");
    }

    #[test]
    fn manager_exits_when_group_done() {
        let (_tx, rx) = unbounded::<StealRequest>();
        let registry = Arc::new(StealRegistry::default());
        let done = AtomicUsize::new(3);
        let served = AtomicU64::new(0);
        let t0 = std::time::Instant::now();
        manager_loop(&rx, &registry, &done, 3, 4, &served);
        assert!(t0.elapsed() < Duration::from_secs(1));
    }
}
