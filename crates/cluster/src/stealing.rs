//! The inter-node work-stealing protocol (Section 3.2.2, Algorithms 3–4).
//!
//! Each node runs a **work-stealing manager** alongside its search
//! workers (Algorithm 1 line 6 allocates a thread for this role). When a
//! `StealingRequest` arrives, the manager consults the
//! `StealView` (see `odyssey_core::search::exact`) of the query the
//! node is currently answering, takes away up to `Nsend` RS-batches
//! satisfying the Take-Away property, marks their queues stolen, and
//! replies with the batch **ids**, the query id, and the query's current
//! BSF — never any series data. The thief rebuilds those priority queues
//! from its own identical index (replication-group nodes store the same
//! chunk) and processes them.

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use odyssey_core::search::bsf::SharedBsf;
use odyssey_core::search::exact::StealView;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A steal request (`StealingRequest` in Algorithm 3).
pub struct StealRequest {
    /// Requesting node id (for accounting).
    pub from: usize,
    /// Channel for the response.
    pub reply: Sender<StealResponse>,
}

/// The manager's reply: `⟨S, Q of sn, Q's current BSF⟩` (Algorithm 3
/// line 3). An empty `batch_ids` means nothing was stealable.
#[derive(Debug, Clone)]
pub struct StealResponse {
    /// Global RS-batch ids the thief should process.
    pub batch_ids: Vec<usize>,
    /// The query those batches belong to.
    pub query_id: Option<usize>,
    /// The victim's current (squared) BSF for that query.
    pub bsf_sq: f64,
}

impl StealResponse {
    /// The "nothing to steal" reply.
    pub fn empty() -> Self {
        StealResponse {
            batch_ids: Vec::new(),
            query_id: None,
            bsf_sq: f64::INFINITY,
        }
    }
}

/// What a node's manager knows about the query currently being answered.
#[derive(Clone)]
pub struct ActiveQuery {
    /// Query id within the batch.
    pub query_id: usize,
    /// The running search's steal view.
    pub view: Arc<StealView>,
    /// The running search's local BSF.
    pub bsf: Arc<SharedBsf>,
}

/// The per-node slot the worker publishes its active query into.
pub type ActiveSlot = Mutex<Option<ActiveQuery>>;

/// Serves one steal request against the currently running query's state
/// (the body of Algorithm 3, lines 2–4). Used both by the manager thread
/// and by the search workers' cooperative service hook.
pub fn serve_request(
    req: StealRequest,
    query_id: usize,
    view: &StealView,
    bsf: &SharedBsf,
    nsend: usize,
    steals_served: &AtomicU64,
) {
    let batch_ids = view.try_steal(nsend);
    if std::env::var("ODYSSEY_STEAL_DEBUG").is_ok() {
        let (claimed, total) = view.queue_progress();
        eprintln!(
            "serve q{query_id}: processing={} done={} queues={claimed}/{total} -> {} ids",
            view.is_processing(),
            view.is_done(),
            batch_ids.len(),
        );
    }
    let response = if batch_ids.is_empty() {
        StealResponse::empty()
    } else {
        steals_served.fetch_add(1, Ordering::Relaxed);
        StealResponse {
            batch_ids,
            query_id: Some(query_id),
            bsf_sq: bsf.get_sq(),
        }
    };
    let _ = req.reply.send(response);
}

/// Runs one node's work-stealing manager until every node of the group
/// is done (Algorithm 3). `group_done` counts finished group members out
/// of `group_total`.
pub fn manager_loop(
    rx: &Receiver<StealRequest>,
    active: &ActiveSlot,
    group_done: &AtomicUsize,
    group_total: usize,
    nsend: usize,
    steals_served: &AtomicU64,
) {
    let serve = |req: StealRequest| {
        let aq = active.lock().clone();
        match aq {
            Some(aq) => serve_request(req, aq.query_id, &aq.view, &aq.bsf, nsend, steals_served),
            None => {
                if std::env::var("ODYSSEY_STEAL_DEBUG").is_ok() {
                    eprintln!("steal miss: victim idle");
                }
                // The thief may have timed out; a dropped receiver is fine.
                let _ = req.reply.send(StealResponse::empty());
            }
        }
    };
    loop {
        match rx.recv_timeout(Duration::from_millis(1)) {
            Ok(req) => serve(req),
            Err(RecvTimeoutError::Timeout) => {
                if group_done.load(Ordering::Acquire) >= group_total {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Drain any request that raced with the exit condition.
    while let Ok(req) = rx.try_recv() {
        serve(req);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::{bounded, unbounded};

    #[test]
    fn manager_replies_empty_when_idle() {
        let (tx, rx) = unbounded::<StealRequest>();
        let active: ActiveSlot = Mutex::new(None);
        let done = AtomicUsize::new(0);
        let served = AtomicU64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| manager_loop(&rx, &active, &done, 1, 4, &served));
            let (rtx, rrx) = bounded(1);
            tx.send(StealRequest { from: 9, reply: rtx }).unwrap();
            let resp = rrx.recv_timeout(Duration::from_secs(1)).unwrap();
            assert!(resp.batch_ids.is_empty());
            assert_eq!(resp.query_id, None);
            done.store(1, Ordering::Release); // unblock exit
        });
        assert_eq!(served.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn manager_serves_active_query() {
        let (tx, rx) = unbounded::<StealRequest>();
        let view = Arc::new(StealView::new());
        // Simulate a search mid-processing with 6 batches published.
        view.test_init(6);
        view.test_publish(vec![0, 1, 2, 3, 4, 5]);
        let bsf = Arc::new(SharedBsf::new(42.0, Some(7)));
        let active: ActiveSlot = Mutex::new(Some(ActiveQuery {
            query_id: 3,
            view,
            bsf,
        }));
        let done = AtomicUsize::new(0);
        let served = AtomicU64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| manager_loop(&rx, &active, &done, 2, 4, &served));
            let (rtx, rrx) = bounded(1);
            tx.send(StealRequest { from: 1, reply: rtx }).unwrap();
            let resp = rrx.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(resp.batch_ids, vec![5, 4, 3, 2], "Nsend=4, rightmost");
            assert_eq!(resp.query_id, Some(3));
            assert_eq!(resp.bsf_sq, 42.0);
            done.store(2, Ordering::Release);
        });
        assert_eq!(served.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn manager_exits_when_group_done() {
        let (_tx, rx) = unbounded::<StealRequest>();
        let active: ActiveSlot = Mutex::new(None);
        let done = AtomicUsize::new(3);
        let served = AtomicU64::new(0);
        let t0 = std::time::Instant::now();
        manager_loop(&rx, &active, &done, 3, 4, &served);
        assert!(t0.elapsed() < Duration::from_secs(1));
    }
}
