//! Deterministic fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] is a reproducible failure scenario: the same plan on
//! the same batch produces the same deaths at the same points, so every
//! chaos test and failover benchmark is replayable. Three fault kinds:
//!
//! * [`Fault::Kill`] — node `n` crashes immediately before starting its
//!   (`after_queries`+1)-th query execution. The dying node hands its
//!   unfinished work (the claimed query plus anything still in its
//!   dispatch queue) to the group's re-route queue and marks itself
//!   `Down` in the [`crate::shard_map::ShardMap`].
//! * [`Fault::WorkerPanic`] — during node `n`'s `during_query`-th
//!   execution, a search worker panics mid-query. The panic crosses the
//!   engine's poisonable `PhaseBarrier` (no sibling worker deadlocks),
//!   unwinds to the node loop, and the node treats it as fatal: the
//!   fault is a *kill through the panic path*. The panic itself fires
//!   from the registry's cooperative service hook, so whether it lands
//!   mid-phase depends on the engine's claim cadence; the node's death
//!   at that query is deterministic either way.
//! * [`Fault::Delay`] — node `n`'s responses are delayed: every service
//!   tick sleeps `micros` behind the fault clock, modelling a slow or
//!   flaky link. Delays never kill; they exercise the `Suspect` lease
//!   state and recovery.
//!
//! The only `thread::sleep` calls in the failure machinery live here,
//! behind the `FAULT-CLOCK:` discipline that `xtask lint` enforces:
//! fault-injection sleeps must be driven by a plan, never scattered
//! ad hoc through the runtime.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Node `node` crashes before starting its (`after_queries`+1)-th
    /// query execution (`after_queries: 0` = dies before doing
    /// anything).
    Kill {
        /// The node that dies.
        node: usize,
        /// Query executions the node completes before dying.
        after_queries: usize,
    },
    /// A worker of `node` panics during its `during_query`-th (0-based)
    /// execution; the node dies through the poisoned-barrier path.
    WorkerPanic {
        /// The node whose worker panics.
        node: usize,
        /// The 0-based execution index the panic is armed for.
        during_query: usize,
    },
    /// Node `node`'s processing is paced by `micros` per service tick.
    Delay {
        /// The delayed node.
        node: usize,
        /// Extra microseconds per service tick.
        micros: u64,
    },
}

impl Fault {
    /// The node the fault applies to.
    pub fn node(&self) -> usize {
        match *self {
            Fault::Kill { node, .. }
            | Fault::WorkerPanic { node, .. }
            | Fault::Delay { node, .. } => node,
        }
    }

    /// Whether the fault ends the node's life (kill or panic).
    pub fn is_fatal(&self) -> bool {
        !matches!(self, Fault::Delay { .. })
    }
}

/// A reproducible failure scenario: an ordered list of faults consumed
/// by the runtime, the chaos tests, and the failover bench bins.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a [`Fault::Kill`].
    pub fn kill(mut self, node: usize, after_queries: usize) -> Self {
        self.faults.push(Fault::Kill {
            node,
            after_queries,
        });
        self
    }

    /// Adds a [`Fault::WorkerPanic`].
    pub fn worker_panic(mut self, node: usize, during_query: usize) -> Self {
        self.faults.push(Fault::WorkerPanic {
            node,
            during_query,
        });
        self
    }

    /// Adds a [`Fault::Delay`].
    pub fn delay(mut self, node: usize, micros: u64) -> Self {
        self.faults.push(Fault::Delay { node, micros });
        self
    }

    /// All faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Whether any fault targets `node`.
    pub fn affects(&self, node: usize) -> bool {
        self.faults.iter().any(|f| f.node() == node)
    }

    /// The nodes a fatal fault will eventually kill (deduplicated, in
    /// id order) — what [`crate::runtime::BatchReport::dead_nodes`]
    /// must equal after the batch.
    pub fn doomed_nodes(&self) -> Vec<usize> {
        let mut nodes: Vec<usize> = self
            .faults
            .iter()
            .filter(|f| f.is_fatal())
            .map(|f| f.node())
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// The earliest kill point for `node`: the number of executions it
    /// completes before dying, or `None` when no fatal fault targets it.
    /// (A `WorkerPanic { during_query: t }` node dies *at* execution
    /// `t`, i.e. after completing `t` clean ones — same clock as
    /// `Kill { after_queries: t }`, except the t-th execution starts
    /// and is then torn down.)
    pub fn fatal_after(&self, node: usize) -> Option<usize> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::Kill {
                    node: n,
                    after_queries,
                } if n == node => Some(after_queries),
                Fault::WorkerPanic {
                    node: n,
                    during_query,
                } if n == node => Some(during_query),
                _ => None,
            })
            .min()
    }

    /// Whether `node`'s earliest fatal fault goes through the panic
    /// path (ties prefer the plain kill, which triggers first).
    pub fn dies_by_panic(&self, node: usize) -> bool {
        let Some(at) = self.fatal_after(node) else {
            return false;
        };
        !self.faults.iter().any(|f| {
            matches!(*f, Fault::Kill { node: n, after_queries } if n == node && after_queries <= at)
        })
    }

    /// Total delay pacing for `node` per service tick.
    pub fn delay_micros(&self, node: usize) -> u64 {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::Delay { node: n, micros } if n == node => Some(micros),
                _ => None,
            })
            .sum()
    }
}

/// One node's runtime view of the plan: a local execution counter that
/// gates the fault triggers, plus the shared flag the cooperative
/// service hook reads to fire an armed worker panic.
#[derive(Debug)]
pub struct NodeFaults {
    fatal_after: Option<usize>,
    by_panic: bool,
    delay: Option<Duration>,
    executed: usize,
    panic_armed: Arc<AtomicBool>,
}

impl NodeFaults {
    /// The fault state of `node` under `plan` (`None` = fault-free).
    pub fn new(plan: Option<&FaultPlan>, node: usize) -> Self {
        let (fatal_after, by_panic, delay) = match plan {
            Some(p) => (
                p.fatal_after(node),
                p.dies_by_panic(node),
                match p.delay_micros(node) {
                    0 => None,
                    us => Some(Duration::from_micros(us)),
                },
            ),
            None => (None, false, None),
        };
        NodeFaults {
            fatal_after,
            by_panic,
            delay,
            executed: 0,
            panic_armed: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Whether a fatal fault targets this node at all (such nodes run
    /// the sequential pool surface so their death point is
    /// well-defined; lanes would smear one query's death across a
    /// whole round).
    pub fn has_fatal(&self) -> bool {
        self.fatal_after.is_some()
    }

    /// Whether the node must die *now*, before starting its next
    /// execution ([`Fault::Kill`] semantics).
    pub fn kill_due(&self) -> bool {
        !self.by_panic && self.fatal_after == Some(self.executed)
    }

    /// Whether the node dies at/after the execution it is about to
    /// start (the [`Fault::WorkerPanic`] point). Arms the panic flag
    /// for the service hook; the caller treats the execution as fatal
    /// whether or not a worker happened to cross the hook while armed.
    pub fn panic_due(&self) -> bool {
        if self.by_panic && self.fatal_after == Some(self.executed) {
            self.panic_armed.store(true, Ordering::Release);
            true
        } else {
            false
        }
    }

    /// Counts one finished (or torn-down) execution.
    pub fn record_execution(&mut self) {
        self.executed += 1;
    }

    /// Executions completed so far.
    pub fn executed(&self) -> usize {
        self.executed
    }

    /// The shared flag the service hook polls ([`service_tick`]).
    pub fn panic_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.panic_armed)
    }

    /// The node's delay pacing, if any, for the service hook.
    pub fn delay(&self) -> Option<Duration> {
        self.delay
    }
}

/// The fault-clock service tick, called from the engine's cooperative
/// service hook on the node's search workers: applies the plan's delay
/// pacing and fires an armed worker panic (once).
///
/// # Panics
/// Panics — by design — when `panic_armed` was armed by
/// [`NodeFaults::panic_due`]; the panic poisons the engine's
/// `PhaseBarrier` and unwinds to the node loop.
pub fn service_tick(panic_armed: &AtomicBool, delay: Option<Duration>) {
    if let Some(d) = delay {
        // FAULT-CLOCK: delayed-response injection — the only sleep the
        // fault machinery performs, paced by the plan's Delay fault.
        std::thread::sleep(d);
    }
    if panic_armed.swap(false, Ordering::AcqRel) {
        panic!("fault injection: worker panic (FaultPlan::worker_panic)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_queries() {
        let p = FaultPlan::new().kill(1, 3).delay(2, 50).worker_panic(3, 0);
        assert!(p.affects(1) && p.affects(2) && p.affects(3));
        assert!(!p.affects(0));
        assert_eq!(p.doomed_nodes(), vec![1, 3]);
        assert_eq!(p.fatal_after(1), Some(3));
        assert_eq!(p.fatal_after(3), Some(0));
        assert_eq!(p.fatal_after(2), None);
        assert!(!p.dies_by_panic(1));
        assert!(p.dies_by_panic(3));
        assert_eq!(p.delay_micros(2), 50);
        assert_eq!(p.delay_micros(1), 0);
        assert!(FaultPlan::new().is_empty());
        assert!(!p.is_empty());
    }

    #[test]
    fn earliest_fatal_wins_and_kill_breaks_ties() {
        let p = FaultPlan::new().worker_panic(0, 2).kill(0, 2).kill(0, 5);
        assert_eq!(p.fatal_after(0), Some(2));
        assert!(!p.dies_by_panic(0), "kill at the same point triggers first");
        let q = FaultPlan::new().worker_panic(0, 1).kill(0, 4);
        assert_eq!(q.fatal_after(0), Some(1));
        assert!(q.dies_by_panic(0));
    }

    #[test]
    fn node_faults_trigger_points() {
        let p = FaultPlan::new().kill(0, 2);
        let mut f = NodeFaults::new(Some(&p), 0);
        assert!(f.has_fatal());
        assert!(!f.kill_due());
        f.record_execution();
        f.record_execution();
        assert!(f.kill_due(), "dies before its third execution");
        assert!(!f.panic_due());
        let clean = NodeFaults::new(Some(&p), 1);
        assert!(!clean.has_fatal() && !clean.kill_due());
        let none = NodeFaults::new(None, 0);
        assert!(!none.has_fatal());
    }

    #[test]
    fn panic_due_arms_the_flag_once_per_check() {
        let p = FaultPlan::new().worker_panic(0, 1);
        let mut f = NodeFaults::new(Some(&p), 0);
        assert!(!f.panic_due());
        f.record_execution();
        assert!(f.panic_due());
        let flag = f.panic_flag();
        assert!(flag.load(Ordering::Acquire), "armed for the hook");
        // The tick consumes the flag and panics exactly once.
        let r = std::panic::catch_unwind(|| service_tick(&flag, None));
        assert!(r.is_err());
        assert!(!flag.load(Ordering::Acquire));
        service_tick(&flag, None); // disarmed: no panic
    }

    #[test]
    fn delay_only_plans_are_not_fatal() {
        let p = FaultPlan::new().delay(1, 25);
        let f = NodeFaults::new(Some(&p), 1);
        assert!(!f.has_fatal());
        assert_eq!(f.delay(), Some(Duration::from_micros(25)));
        service_tick(&f.panic_flag(), f.delay()); // sleeps, returns
    }
}
