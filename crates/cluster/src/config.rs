//! Cluster configuration.

use crate::faults::FaultPlan;
use odyssey_partition::PartitioningScheme;
use odyssey_sched::{AdmissionConfig, CostModel, SchedulerKind, ThresholdModel};
use std::sync::Arc;
use std::time::Duration;

/// The replication strategies of Section 3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replication {
    /// PARTIAL-1: every node stores the full dataset.
    Full,
    /// PARTIAL-k: `k` replication groups.
    Partial(usize),
    /// PARTIAL-N: every node stores a disjoint chunk (no replication).
    EquallySplit,
}

impl Replication {
    /// The number of replication groups for `n_nodes` system nodes.
    pub fn n_groups(&self, n_nodes: usize) -> usize {
        match self {
            Replication::Full => 1,
            Replication::Partial(k) => *k,
            Replication::EquallySplit => n_nodes,
        }
    }

    /// The paper's label.
    pub fn label(&self) -> String {
        match self {
            Replication::Full => "FULL".into(),
            Replication::Partial(k) => format!("PARTIAL-{k}"),
            Replication::EquallySplit => "EQUALLY-SPLIT".into(),
        }
    }
}

/// What kind of queries a batch contains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchMode {
    /// Euclidean 1-NN (the paper's primary setting).
    Euclidean,
    /// Euclidean k-NN (Section 4; Figure 18 uses k = 10).
    Knn {
        /// Neighbor count.
        k: usize,
    },
    /// DTW 1-NN with a Sakoe-Chiba band (Section 4; Figure 19 uses 5%).
    Dtw {
        /// Band half-width in points.
        window: usize,
    },
}

/// Full cluster configuration.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of simulated system nodes.
    pub n_nodes: usize,
    /// Replication strategy (PARTIAL-k family).
    pub replication: Replication,
    /// Query-scheduling policy inside each replication group.
    pub scheduler: SchedulerKind,
    /// How the coordinator partitions data into chunks.
    pub partitioning: PartitioningScheme,
    /// Worker threads per node (the paper's nodes have 128 cores; the
    /// simulation defaults to 2 so protocols still exercise intra-node
    /// parallelism without oversubscribing the host).
    pub threads_per_node: usize,
    /// Enable the inter-node work-stealing mechanism (Section 3.2.2).
    pub work_stealing: bool,
    /// Enable the common BSF-sharing channel (Section 3.4).
    pub bsf_sharing: bool,
    /// RS-batches handed over per steal (`Nsend`; the paper fixes 4).
    pub steal_nsend: usize,
    /// iSAX segments for the per-node indexes.
    pub segments: usize,
    /// Leaf capacity for the per-node indexes.
    pub leaf_capacity: usize,
    /// Optional trained cost model; `None` uses the initial BSF itself
    /// as the (monotone) cost estimate for the PREDICT-* policies.
    pub cost_model: Option<Arc<dyn CostModel>>,
    /// Priority-queue threshold `TH` for the per-node searches.
    pub pq_threshold: usize,
    /// RS-batch count `Nsb` per search. The paper's best setting is one
    /// batch per worker thread on 128-core nodes; the simulation's nodes
    /// have few threads, so the default keeps 16 batches to preserve a
    /// meaningful stealing granularity.
    pub rs_batches: usize,
    /// Enable inter-query concurrency inside each node: a node with
    /// per-query cost predictions (a PREDICT-* scheduler) admits
    /// windows of queries onto disjoint worker groups (narrow lanes for
    /// predicted-easy queries, the full pool for predicted-hard ones)
    /// instead of running every query across all of its threads. Lanes
    /// compose with inter-node work-stealing: every in-flight lane
    /// query registers with the engine's steal registry, so the node's
    /// manager (and the workers' cooperative service hook) hand out
    /// RS-batches of whichever query has the widest remaining work,
    /// mid-round.
    pub inter_query_lanes: bool,
    /// Lane-admission knobs (easy width, hardness cutoff).
    pub lane_admission: AdmissionConfig,
    /// Makespan-optimal lane planning: when a PREDICT-* scheduler
    /// provides per-query cost estimates, plan each node's lane widths
    /// with the calibrated speedup-vs-width curve (Figure 8) and the
    /// makespan solver instead of the static median-ratio cutoff. The
    /// first batch calibrates the curve once per cluster (a short
    /// seeded probe set at widths 1, 2, 4, .., pool); widths never
    /// change answers, only wall-clock.
    pub adaptive_widths: bool,
    /// Capacity of the online-feedback ring that collects observed
    /// `(initial BSF, execution time)` pairs (and, when a threshold
    /// model is installed, `(initial BSF, median PQ size)` pairs).
    pub feedback_capacity: usize,
    /// Refit the online cost/threshold predictors every this many
    /// recorded samples (deterministic in sample *count*, never
    /// wall-clock). Refits only sharpen estimates for later batches;
    /// answers stay bit-identical.
    pub feedback_refit_every: usize,
    /// Lane width for the online-serving path
    /// ([`crate::runtime::OdysseyCluster::serve`]): each node
    /// partitions its pool into groups of this many workers, and each
    /// group claims streamed queries continuously. `1` maximizes
    /// inter-query concurrency; `threads_per_node` dedicates the whole
    /// node to one query at a time.
    pub service_lane_width: usize,
    /// On the serving path, how many shard-map ticks a claim by a
    /// `Suspect` node may age before a healthy peer hedges the query
    /// (re-executes it on its own replica rather than waiting for the
    /// suspect to recover or be declared `Down`).
    pub suspect_hedge_after: u64,
    /// Upper bound on hedged re-executions per query on the serving
    /// path (bounded retry — a flapping suspect cannot trigger
    /// unbounded duplicate work).
    pub suspect_max_hedges: u32,
    /// Optional trained sigmoid threshold model (Figure 6): when set,
    /// every query runs with its own predicted priority-queue
    /// threshold `TH` instead of the batch-wide [`Self::pq_threshold`].
    pub threshold_model: Option<ThresholdModel>,
    /// RNG seed for victim selection and the random-shuffle partitioner.
    pub seed: u64,
    /// Relative node speeds (empty = all `1.0`). A speed of `0.25` makes
    /// a node four times slower: its work units are accounted at 4x and
    /// its query processing is paced accordingly, modelling heterogeneous
    /// or degraded hardware. The work-stealing ablation uses this to show
    /// the mechanism compensating for stragglers.
    pub node_speeds: Vec<f64>,
    /// Deterministic fault scenario for this cluster (kills, worker
    /// panics, delays — see [`crate::faults`]). `None` = fault-free;
    /// the failover machinery is then entirely inert and the batch
    /// paths behave exactly as before.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// How many times one query may be re-routed to another replica
    /// after node deaths before it is abandoned (its group then counts
    /// as missing in the query's [`crate::shard_map::Coverage`]).
    pub max_reroutes: usize,
    /// Upper bound on how long a drained node waits for possible
    /// re-routed work from group members that might still die. Purely
    /// defensive: the group-exit protocol terminates on its own; the
    /// deadline guarantees a `Coverage::Partial` answer is returned
    /// within it even if a member wedges.
    pub query_deadline: Duration,
    /// Lease length, in logical heartbeat ticks, for the shard map's
    /// liveness tracking (one tick per query execution). A node a full
    /// lease overdue turns `Suspect`; two leases overdue turns `Down`.
    pub lease_ticks: u64,
}

impl ClusterConfig {
    /// Odyssey defaults: FULL replication, PREDICT-DN scheduling,
    /// work-stealing and BSF sharing on — the paper's best configuration
    /// (WORK-STEAL-PREDICT).
    pub fn new(n_nodes: usize) -> Self {
        ClusterConfig {
            n_nodes,
            replication: Replication::Full,
            scheduler: SchedulerKind::PredictDn,
            partitioning: PartitioningScheme::EquallySplit,
            threads_per_node: 2,
            work_stealing: true,
            bsf_sharing: true,
            steal_nsend: odyssey_core::search::exact::DEFAULT_NSEND,
            segments: 16,
            leaf_capacity: 256,
            cost_model: None,
            pq_threshold: 8,
            rs_batches: 32,
            inter_query_lanes: true,
            lane_admission: AdmissionConfig::default(),
            adaptive_widths: true,
            feedback_capacity: 1024,
            feedback_refit_every: 64,
            service_lane_width: 1,
            suspect_hedge_after: 8,
            suspect_max_hedges: 1,
            threshold_model: None,
            seed: 0xD15EA5E,
            node_speeds: Vec::new(),
            fault_plan: None,
            max_reroutes: 3,
            query_deadline: Duration::from_secs(5),
            lease_ticks: 64,
        }
    }

    /// Sets the replication strategy.
    pub fn with_replication(mut self, r: Replication) -> Self {
        self.replication = r;
        self
    }

    /// Sets the scheduling policy.
    pub fn with_scheduler(mut self, s: SchedulerKind) -> Self {
        self.scheduler = s;
        self
    }

    /// Sets the partitioning scheme.
    pub fn with_partitioning(mut self, p: PartitioningScheme) -> Self {
        self.partitioning = p;
        self
    }

    /// Sets per-node worker threads.
    pub fn with_threads_per_node(mut self, t: usize) -> Self {
        assert!(t >= 1);
        self.threads_per_node = t;
        self
    }

    /// Toggles work-stealing.
    pub fn with_work_stealing(mut self, on: bool) -> Self {
        self.work_stealing = on;
        self
    }

    /// Toggles BSF sharing.
    pub fn with_bsf_sharing(mut self, on: bool) -> Self {
        self.bsf_sharing = on;
        self
    }

    /// Sets `Nsend`.
    pub fn with_steal_nsend(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.steal_nsend = n;
        self
    }

    /// Sets the iSAX segment count.
    pub fn with_segments(mut self, s: usize) -> Self {
        self.segments = s;
        self
    }

    /// Sets the index leaf capacity.
    pub fn with_leaf_capacity(mut self, c: usize) -> Self {
        self.leaf_capacity = c;
        self
    }

    /// Installs a trained cost model for the PREDICT-* policies.
    pub fn with_cost_model(mut self, m: Arc<dyn CostModel>) -> Self {
        self.cost_model = Some(m);
        self
    }

    /// Sets the priority-queue threshold.
    pub fn with_pq_threshold(mut self, th: usize) -> Self {
        assert!(th > 0);
        self.pq_threshold = th;
        self
    }

    /// Sets the per-search RS-batch count `Nsb`.
    pub fn with_rs_batches(mut self, nsb: usize) -> Self {
        assert!(nsb >= 1);
        self.rs_batches = nsb;
        self
    }

    /// Toggles per-node inter-query lanes.
    pub fn with_inter_query_lanes(mut self, on: bool) -> Self {
        self.inter_query_lanes = on;
        self
    }

    /// Sets the lane-admission knobs.
    pub fn with_lane_admission(mut self, a: AdmissionConfig) -> Self {
        self.lane_admission = a;
        self
    }

    /// Toggles makespan-optimal adaptive lane planning.
    pub fn with_adaptive_widths(mut self, on: bool) -> Self {
        self.adaptive_widths = on;
        self
    }

    /// Sets the online-feedback ring capacity.
    pub fn with_feedback_capacity(mut self, cap: usize) -> Self {
        assert!(cap >= 1);
        self.feedback_capacity = cap;
        self
    }

    /// Sets the online predictor refit cadence (in samples).
    pub fn with_feedback_refit_every(mut self, every: usize) -> Self {
        assert!(every >= 1);
        self.feedback_refit_every = every;
        self
    }

    /// Sets the serving-path lane width.
    pub fn with_service_lane_width(mut self, w: usize) -> Self {
        assert!(w >= 1);
        self.service_lane_width = w;
        self
    }

    /// Sets the suspect-hedge age threshold (in shard-map ticks).
    pub fn with_suspect_hedge_after(mut self, ticks: u64) -> Self {
        self.suspect_hedge_after = ticks;
        self
    }

    /// Caps hedged re-executions per query on the serving path.
    pub fn with_suspect_max_hedges(mut self, n: u32) -> Self {
        self.suspect_max_hedges = n;
        self
    }

    /// Installs a trained per-query `TH` model.
    pub fn with_threshold_model(mut self, m: ThresholdModel) -> Self {
        self.threshold_model = Some(m);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets one node's relative speed (see [`ClusterConfig::node_speeds`]).
    pub fn with_node_speed(mut self, node: usize, speed: f64) -> Self {
        assert!(node < self.n_nodes, "node id out of range");
        assert!(speed > 0.0, "speed must be positive");
        if self.node_speeds.is_empty() {
            self.node_speeds = vec![1.0; self.n_nodes];
        }
        self.node_speeds[node] = speed;
        self
    }

    /// The relative speed of `node` (`1.0` when unset).
    pub fn node_speed(&self, node: usize) -> f64 {
        self.node_speeds.get(node).copied().unwrap_or(1.0)
    }

    /// Installs a deterministic fault scenario.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(Arc::new(plan));
        self
    }

    /// Sets the per-query re-route budget.
    pub fn with_max_reroutes(mut self, n: usize) -> Self {
        self.max_reroutes = n;
        self
    }

    /// Sets the drained-node wait deadline.
    pub fn with_query_deadline(mut self, d: Duration) -> Self {
        assert!(d > Duration::ZERO, "deadline must be positive");
        self.query_deadline = d;
        self
    }

    /// Sets the shard-map lease length in heartbeat ticks.
    pub fn with_lease_ticks(mut self, t: u64) -> Self {
        assert!(t >= 1, "leases need a positive length");
        self.lease_ticks = t;
        self
    }
}

impl std::fmt::Debug for ClusterConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterConfig")
            .field("n_nodes", &self.n_nodes)
            .field("replication", &self.replication.label())
            .field("scheduler", &self.scheduler.label())
            .field("partitioning", &self.partitioning.label())
            .field("threads_per_node", &self.threads_per_node)
            .field("work_stealing", &self.work_stealing)
            .field("bsf_sharing", &self.bsf_sharing)
            .field("fault_plan", &self.fault_plan.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_group_counts() {
        assert_eq!(Replication::Full.n_groups(8), 1);
        assert_eq!(Replication::Partial(4).n_groups(8), 4);
        assert_eq!(Replication::EquallySplit.n_groups(8), 8);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Replication::Full.label(), "FULL");
        assert_eq!(Replication::Partial(2).label(), "PARTIAL-2");
        assert_eq!(Replication::EquallySplit.label(), "EQUALLY-SPLIT");
    }

    #[test]
    fn node_speeds() {
        let c = ClusterConfig::new(4).with_node_speed(2, 0.5);
        assert_eq!(c.node_speed(0), 1.0);
        assert_eq!(c.node_speed(2), 0.5);
        let d = ClusterConfig::new(4);
        assert_eq!(d.node_speed(3), 1.0);
    }

    #[test]
    fn failover_knobs() {
        let c = ClusterConfig::new(4)
            .with_fault_plan(FaultPlan::new().kill(1, 2))
            .with_max_reroutes(5)
            .with_query_deadline(Duration::from_millis(750))
            .with_lease_ticks(8);
        assert!(c.fault_plan.as_ref().is_some_and(|p| p.affects(1)));
        assert_eq!(c.max_reroutes, 5);
        assert_eq!(c.query_deadline, Duration::from_millis(750));
        assert_eq!(c.lease_ticks, 8);
        let d = ClusterConfig::new(4);
        assert!(d.fault_plan.is_none(), "fault-free by default");
    }

    #[test]
    fn adaptive_knobs() {
        let c = ClusterConfig::new(2);
        assert!(c.adaptive_widths, "adaptive planning is the default");
        assert_eq!(c.feedback_capacity, 1024);
        assert_eq!(c.feedback_refit_every, 64);
        let d = ClusterConfig::new(2)
            .with_adaptive_widths(false)
            .with_feedback_capacity(16)
            .with_feedback_refit_every(4);
        assert!(!d.adaptive_widths);
        assert_eq!(d.feedback_capacity, 16);
        assert_eq!(d.feedback_refit_every, 4);
    }

    #[test]
    fn builder_chain() {
        let c = ClusterConfig::new(4)
            .with_replication(Replication::Partial(2))
            .with_scheduler(SchedulerKind::Static)
            .with_threads_per_node(3)
            .with_work_stealing(false)
            .with_bsf_sharing(false)
            .with_steal_nsend(2)
            .with_seed(7);
        assert_eq!(c.n_nodes, 4);
        assert_eq!(c.replication, Replication::Partial(2));
        assert!(!c.work_stealing);
        assert_eq!(c.threads_per_node, 3);
    }
}
