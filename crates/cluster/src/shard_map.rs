//! The failure-aware control plane: a node registry / shard map layered
//! over [`Topology`].
//!
//! The [`Topology`] answers *where data lives* (which nodes form which
//! replication group); the [`ShardMap`] answers *who is alive to serve
//! it*. Grounded in the clarium HA design (SNIPPETS.md snippet 1: node
//! registry + shard map + leases + degraded-mode reads):
//!
//! * every node carries a health state — [`NodeHealth::Up`],
//!   [`NodeHealth::Suspect`], or [`NodeHealth::Down`];
//! * liveness is lease-style: nodes renew their lease with
//!   [`ShardMap::heartbeat`] ticks of a logical clock; a node whose
//!   lease is one interval overdue becomes `Suspect`, two intervals
//!   overdue becomes `Down` ([`ShardMap::expire_leases`]);
//! * a crash notification ([`ShardMap::mark_down`]) short-circuits the
//!   lease path — the simulated runtime calls it from a dying node's
//!   own hand-off, the way an MPI connection reset would surface;
//! * every health transition bumps an **epoch** counter, so any routing
//!   decision can be attributed to the exact map version it was made
//!   under ([`ShardMap::snapshot`]).
//!
//! `Down` is terminal within a batch: a downed node's heartbeats are
//! fenced out (a rejoin is a *new* node — online node add is
//! intentionally out of scope, see ROADMAP). `Suspect` is recoverable:
//! the next heartbeat restores `Up`, so a merely *delayed* node (a
//! [`crate::faults::Fault::Delay`] straggler) flaps to `Suspect` and
//! back without ever being routed around permanently.
//!
//! The degraded-answer contract is expressed by [`Coverage`]: a query
//! whose every replication group contributed an answer is
//! [`Coverage::Complete`]; if some group lost all replicas before
//! answering, the query still terminates — with
//! [`Coverage::Partial`] naming the missing groups instead of hanging
//! or silently passing off a subset answer as exact.

use crate::topology::Topology;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Health of one node in the shard map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    /// Lease current; full routing target.
    Up,
    /// Lease one interval overdue; still serving, deprioritized for
    /// routing, recovers to [`NodeHealth::Up`] on the next heartbeat.
    Suspect,
    /// Crashed or lease two intervals overdue. Terminal for the batch.
    Down,
}

const UP: u8 = 0;
const SUSPECT: u8 = 1;
const DOWN: u8 = 2;

impl NodeHealth {
    fn from_u8(v: u8) -> Self {
        match v {
            UP => NodeHealth::Up,
            SUSPECT => NodeHealth::Suspect,
            _ => NodeHealth::Down,
        }
    }
}

/// How much of the data a query's answer covers (the degraded-answer
/// contract).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Coverage {
    /// Every replication group contributed: the answer is exact over
    /// the full collection.
    Complete,
    /// The named groups lost all replicas before answering: the answer
    /// is exact over the *surviving* chunks only.
    Partial {
        /// Replication groups (= chunks) with no contribution.
        missing_groups: Vec<usize>,
    },
}

impl Coverage {
    /// Whether the answer covers the whole collection.
    pub fn is_complete(&self) -> bool {
        matches!(self, Coverage::Complete)
    }

    /// The missing groups (empty when complete).
    pub fn missing_groups(&self) -> &[usize] {
        match self {
            Coverage::Complete => &[],
            Coverage::Partial { missing_groups } => missing_groups,
        }
    }
}

/// An immutable view of the map at one epoch, for attributing routing
/// decisions.
#[derive(Debug, Clone)]
pub struct ShardMapSnapshot {
    /// The epoch the health vector was read at.
    pub epoch: u64,
    /// Per-node health at that epoch.
    pub health: Vec<NodeHealth>,
}

/// The node registry: per-group member lists with health states,
/// lease-driven liveness, and an epoch counter.
///
/// All methods take `&self` and are safe to call concurrently from
/// every node thread of the simulated runtime.
#[derive(Debug)]
pub struct ShardMap {
    topology: Topology,
    health: Vec<AtomicU8>,
    /// Logical-clock value of each node's last heartbeat.
    last_beat: Vec<AtomicU64>,
    /// The logical clock leases are measured against.
    clock: AtomicU64,
    /// Bumped once per health transition.
    epoch: AtomicU64,
    lease_ticks: u64,
}

impl ShardMap {
    /// A map over `topology` with every node `Up` and leases `lease_ticks`
    /// logical ticks long.
    pub fn new(topology: Topology, lease_ticks: u64) -> Self {
        assert!(lease_ticks >= 1, "leases need a positive length");
        let n = topology.n_nodes();
        ShardMap {
            topology,
            health: (0..n).map(|_| AtomicU8::new(UP)).collect(),
            last_beat: (0..n).map(|_| AtomicU64::new(0)).collect(),
            clock: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            lease_ticks,
        }
    }

    /// The topology this map is layered over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Current epoch (bumped once per health transition).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Advances the logical clock by one tick and returns the new time.
    /// The simulated runtime ticks once per query execution.
    pub fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Health of `node`.
    pub fn health(&self, node: usize) -> NodeHealth {
        NodeHealth::from_u8(self.health[node].load(Ordering::Acquire))
    }

    /// Whether `node` is `Down`.
    pub fn is_down(&self, node: usize) -> bool {
        self.health[node].load(Ordering::Acquire) == DOWN
    }

    /// Renews `node`'s lease at the current logical time. A `Suspect`
    /// node recovers to `Up`; a `Down` node's heartbeat is fenced out
    /// (stale beats from a declared-dead node must not resurrect it).
    pub fn heartbeat(&self, node: usize) {
        self.last_beat[node].store(self.now(), Ordering::Relaxed);
        if self.health[node]
            .compare_exchange(SUSPECT, UP, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            self.epoch.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Applies lease expiry at the current logical time: a lease one
    /// interval overdue demotes `Up → Suspect`; two intervals overdue
    /// demotes `Suspect → Down`. Any node may call this (every node
    /// observes every other node's silence).
    pub fn expire_leases(&self) {
        let now = self.now();
        for node in 0..self.topology.n_nodes() {
            let age = now.saturating_sub(self.last_beat[node].load(Ordering::Relaxed));
            if age > 2 * self.lease_ticks
                && self.health[node]
                    .compare_exchange(SUSPECT, DOWN, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                self.epoch.fetch_add(1, Ordering::AcqRel);
            }
            if age > self.lease_ticks
                && self.health[node]
                    .compare_exchange(UP, SUSPECT, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                self.epoch.fetch_add(1, Ordering::AcqRel);
            }
        }
    }

    /// Declares `node` `Down` immediately (a crash notification, not a
    /// lease expiry). Returns whether this call performed the
    /// transition — exactly one caller wins, so death-driven hand-off
    /// runs once.
    pub fn mark_down(&self, node: usize) -> bool {
        let prev = self.health[node].swap(DOWN, Ordering::AcqRel);
        if prev != DOWN {
            self.epoch.fetch_add(1, Ordering::AcqRel);
            true
        } else {
            false
        }
    }

    /// The members of group `g` that are not `Down`, in id order.
    pub fn live_in_group(&self, g: usize) -> Vec<usize> {
        self.topology
            .nodes_in_group(g)
            .into_iter()
            .filter(|&n| !self.is_down(n))
            .collect()
    }

    /// Whether group `g` still has at least one non-`Down` member (its
    /// chunk is still reachable).
    pub fn group_has_survivor(&self, g: usize) -> bool {
        self.topology
            .nodes_in_group(g)
            .into_iter()
            .any(|n| !self.is_down(n))
    }

    /// Picks a surviving replica of group `g` to re-route work to,
    /// excluding `exclude` (the dead node handing its work off).
    /// Deterministic: the lowest-id `Up` member wins; `Suspect` members
    /// are used only when no member is `Up`. Returns the node and the
    /// epoch the decision was made at.
    pub fn route(&self, g: usize, exclude: usize) -> Option<(usize, u64)> {
        let epoch = self.epoch();
        let members = self.topology.nodes_in_group(g);
        let pick = |want: u8| {
            members
                .iter()
                .copied()
                .find(|&n| n != exclude && self.health[n].load(Ordering::Acquire) == want)
        };
        pick(UP).or_else(|| pick(SUSPECT)).map(|n| (n, epoch))
    }

    /// The groups with **no** surviving member — the `missing_groups` of
    /// a [`Coverage::Partial`] answer when nobody answered for them.
    pub fn dead_groups(&self) -> Vec<usize> {
        (0..self.topology.n_groups())
            .filter(|&g| !self.group_has_survivor(g))
            .collect()
    }

    /// An epoch-stamped health snapshot.
    pub fn snapshot(&self) -> ShardMapSnapshot {
        ShardMapSnapshot {
            epoch: self.epoch(),
            health: (0..self.topology.n_nodes())
                .map(|n| self.health(n))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(n_nodes: usize, n_groups: usize, lease: u64) -> ShardMap {
        ShardMap::new(Topology::new(n_nodes, n_groups).expect("valid"), lease)
    }

    #[test]
    fn starts_all_up_at_epoch_zero() {
        let m = map(4, 2, 4);
        assert_eq!(m.epoch(), 0);
        for n in 0..4 {
            assert_eq!(m.health(n), NodeHealth::Up);
        }
        assert_eq!(m.live_in_group(0), vec![0, 2]);
        assert!(m.dead_groups().is_empty());
    }

    #[test]
    fn mark_down_bumps_epoch_once() {
        let m = map(4, 2, 4);
        assert!(m.mark_down(1));
        assert_eq!(m.health(1), NodeHealth::Down);
        assert_eq!(m.epoch(), 1);
        assert!(!m.mark_down(1), "second caller loses the transition");
        assert_eq!(m.epoch(), 1);
    }

    #[test]
    fn lease_expiry_walks_up_suspect_down() {
        let m = map(2, 1, 2);
        // Node 1 beats at t=0 and then goes silent; node 0 keeps
        // beating and observing.
        for _ in 0..3 {
            m.tick();
            m.heartbeat(0);
            m.expire_leases();
        }
        // t=3: node 1's lease (2 ticks) is one interval overdue.
        assert_eq!(m.health(1), NodeHealth::Suspect);
        assert_eq!(m.health(0), NodeHealth::Up);
        for _ in 0..2 {
            m.tick();
            m.heartbeat(0);
            m.expire_leases();
        }
        // t=5: two intervals overdue.
        assert_eq!(m.health(1), NodeHealth::Down);
        assert_eq!(m.epoch(), 2, "Up→Suspect and Suspect→Down each bump");
        assert!(m.dead_groups().is_empty(), "node 0 still serves group 0");
        assert_eq!(m.live_in_group(0), vec![0]);
    }

    #[test]
    fn heartbeat_recovers_suspect_but_not_down() {
        let m = map(2, 1, 1);
        for _ in 0..2 {
            m.tick();
            m.heartbeat(0);
        }
        m.expire_leases();
        assert_eq!(m.health(1), NodeHealth::Suspect);
        let e = m.epoch();
        m.heartbeat(1);
        assert_eq!(m.health(1), NodeHealth::Up, "delayed node recovers");
        assert_eq!(m.epoch(), e + 1);
        m.mark_down(1);
        m.heartbeat(1);
        assert_eq!(m.health(1), NodeHealth::Down, "stale beat is fenced");
    }

    #[test]
    fn route_prefers_up_over_suspect_and_skips_down() {
        let m = map(8, 2, 4);
        // Group 0 = {0, 2, 4, 6}. Kill 0, suspect 2.
        m.mark_down(0);
        m.health[2].store(SUSPECT, Ordering::Release);
        let (n, epoch) = m.route(0, 0).expect("survivors exist");
        assert_eq!(n, 4, "lowest-id Up member");
        assert_eq!(epoch, m.epoch());
        // Only a Suspect left: it is still a valid target.
        m.mark_down(4);
        m.mark_down(6);
        assert_eq!(m.route(0, 0).map(|(n, _)| n), Some(2));
        m.mark_down(2);
        assert_eq!(m.route(0, 0), None, "whole group dead");
        assert_eq!(m.dead_groups(), vec![0]);
        assert!(m.group_has_survivor(1));
    }

    #[test]
    fn snapshot_is_epoch_stamped() {
        let m = map(4, 4, 4);
        let s0 = m.snapshot();
        assert_eq!(s0.epoch, 0);
        assert_eq!(s0.health, vec![NodeHealth::Up; 4]);
        m.mark_down(3);
        let s1 = m.snapshot();
        assert_eq!(s1.epoch, 1);
        assert_eq!(s1.health[3], NodeHealth::Down);
    }

    #[test]
    fn coverage_accessors() {
        assert!(Coverage::Complete.is_complete());
        assert!(Coverage::Complete.missing_groups().is_empty());
        let p = Coverage::Partial {
            missing_groups: vec![1, 3],
        };
        assert!(!p.is_complete());
        assert_eq!(p.missing_groups(), &[1, 3]);
    }
}
