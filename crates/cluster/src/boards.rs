//! The common BSF-sharing channel and per-query book-keeping
//! (Section 3.4, Figure 7).
//!
//! "When a node is processing a query and finds an improved value for
//! BSF, it shares this value through a common BSF-Sharing channel. Every
//! node periodically checks this channel. [...] Each node holds an array
//! that stores the improvements received from the channel for the BSF of
//! each query, and before answering a query it checks the data held in
//! this array."
//!
//! [`BsfBoard`] is that book-keeping array: one monotonically-decreasing
//! atomic cell per query. Publishing an improvement is a `fetch_min`
//! (the broadcast); reading is a load (the periodic check).
//! [`BoardBsf`] wires a node's local per-query BSF to the board and is
//! handed to the search engine as its
//! `ResultSet` (see `odyssey_core::search::bsf`) — remote
//! improvements are injected every `CHECK_INTERVAL` threshold reads,
//! modelling the *periodic* (not instantaneous) channel check.

use crate::shard_map::Coverage;
use odyssey_core::search::answer::{Answer, KnnAnswer};
use odyssey_core::search::bsf::{ResultSet, SharedBsf, SharedKnn};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// How many threshold reads pass between channel checks.
const CHECK_INTERVAL: u64 = 64;

/// The shared BSF channel: one cell per query of the batch.
#[derive(Debug)]
pub struct BsfBoard {
    cells: Vec<AtomicU64>,
    broadcasts: AtomicU64,
}

impl BsfBoard {
    /// A board for `n_queries` queries, all starting at +∞.
    pub fn new(n_queries: usize) -> Self {
        BsfBoard {
            cells: (0..n_queries)
                .map(|_| AtomicU64::new(f64::INFINITY.to_bits()))
                .collect(),
            broadcasts: AtomicU64::new(0),
        }
    }

    /// Current globally-best squared distance for `query`.
    #[inline]
    pub fn get_sq(&self, query: usize) -> f64 {
        f64::from_bits(self.cells[query].load(Ordering::Relaxed))
    }

    /// Publishes an improvement (no-op when not an improvement).
    #[inline]
    pub fn publish(&self, query: usize, distance_sq: f64) {
        let prev = self.cells[query].fetch_min(distance_sq.to_bits(), Ordering::AcqRel);
        if distance_sq.to_bits() < prev {
            self.broadcasts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of successful broadcasts so far.
    pub fn broadcasts(&self) -> u64 {
        self.broadcasts.load(Ordering::Relaxed)
    }
}

/// A node-local per-query BSF connected to the shared board.
///
/// The inner [`SharedBsf`] is `Arc`-shared so the node's work-stealing
/// manager can report "Q's current BSF" in steal responses while the
/// search is running.
pub struct BoardBsf<'b> {
    /// The node's local BSF (holds the local best id).
    pub local: Arc<SharedBsf>,
    board: Option<(&'b BsfBoard, usize)>,
    calls: AtomicU64,
}

impl<'b> BoardBsf<'b> {
    /// Creates the per-query BSF. When a board is attached, the initial
    /// value also consults the book-keeping array (the "before answering
    /// a query it checks the data held in this array" step).
    pub fn new(
        initial_sq: f64,
        initial_id: Option<u32>,
        board: Option<(&'b BsfBoard, usize)>,
    ) -> Self {
        let mut init = initial_sq;
        if let Some((b, q)) = board {
            init = init.min(b.get_sq(q));
        }
        // Keep the id only if the local candidate is at least as good.
        let id = if init == initial_sq { initial_id } else { None };
        BoardBsf {
            local: Arc::new(SharedBsf::new(init, id)),
            board,
            calls: AtomicU64::new(0),
        }
    }

    /// The node-local answer (only locally-found ids).
    pub fn local_answer(&self) -> Answer {
        self.local.answer()
    }
}

impl ResultSet for BoardBsf<'_> {
    #[inline]
    fn threshold_sq(&self) -> f64 {
        if let Some((board, q)) = self.board {
            let c = self.calls.fetch_add(1, Ordering::Relaxed);
            if c.is_multiple_of(CHECK_INTERVAL) {
                let remote = board.get_sq(q);
                if remote < self.local.get_sq() {
                    // Remote improvement: tighten the local bound (the id
                    // lives on the node that found it).
                    self.local.update(remote, None);
                }
            }
        }
        self.local.get_sq()
    }

    fn offer(&self, distance_sq: f64, id: u32) -> bool {
        let improved = self.local.offer(distance_sq, id);
        if improved {
            if let Some((board, q)) = self.board {
                board.publish(q, distance_sq);
            }
        }
        improved
    }
}

/// The per-query global answers, merged as nodes finish ("the coordinator
/// node collects the local answers from the group coordinators").
#[derive(Debug)]
pub struct AnswerBoard {
    answers: Vec<Mutex<Answer>>,
}

impl AnswerBoard {
    /// A board for `n_queries` queries.
    pub fn new(n_queries: usize) -> Self {
        AnswerBoard {
            answers: (0..n_queries).map(|_| Mutex::new(Answer::none())).collect(),
        }
    }

    /// Merges a node's local answer for `query`. Answers carrying a
    /// series id win ties against id-less bounds of equal distance.
    pub fn merge(&self, query: usize, local: Answer) {
        let mut cur = self.answers[query].lock();
        if local.distance_sq < cur.distance_sq
            || (local.distance_sq == cur.distance_sq
                && cur.series_id.is_none()
                && local.series_id.is_some())
        {
            *cur = local;
        }
    }

    /// Final answers, in query order.
    pub fn into_answers(self) -> Vec<Answer> {
        self.answers.into_iter().map(|m| m.into_inner()).collect()
    }
}

/// Tracks which replication *groups* have contributed a local answer to
/// each query. The globalization step needs every group — not every
/// node — to answer: replicas within a group hold the same chunk, so
/// one surviving member covers the whole group. A query whose groups
/// have all marked in is [`Coverage::Complete`]; anything less is an
/// explicit [`Coverage::Partial`] listing the missing groups.
#[derive(Debug)]
pub struct CoverageBoard {
    n_groups: usize,
    /// `answered[q * n_groups + g]` — group `g` answered query `q`.
    answered: Vec<AtomicBool>,
}

impl CoverageBoard {
    /// A board for `n_queries` queries over `n_groups` groups.
    pub fn new(n_queries: usize, n_groups: usize) -> Self {
        assert!(n_groups > 0, "coverage needs at least one group");
        CoverageBoard {
            n_groups,
            answered: (0..n_queries * n_groups)
                .map(|_| AtomicBool::new(false))
                .collect(),
        }
    }

    /// Records that `group` merged a local answer for `query`.
    /// Idempotent: replicas and re-routed executions may both mark.
    pub fn mark(&self, query: usize, group: usize) {
        self.answered[query * self.n_groups + group].store(true, Ordering::Release);
    }

    /// Whether `group` has answered `query`.
    pub fn group_answered(&self, query: usize, group: usize) -> bool {
        self.answered[query * self.n_groups + group].load(Ordering::Acquire)
    }

    /// The coverage verdict for `query` at this moment.
    pub fn coverage(&self, query: usize) -> Coverage {
        let missing: Vec<usize> = (0..self.n_groups)
            .filter(|&g| !self.group_answered(query, g))
            .collect();
        if missing.is_empty() {
            Coverage::Complete
        } else {
            Coverage::Partial {
                missing_groups: missing,
            }
        }
    }

    /// Final per-query coverages, in query order.
    pub fn into_coverages(self) -> Vec<Coverage> {
        let n = self.answered.len() / self.n_groups;
        (0..n).map(|q| self.coverage(q)).collect()
    }
}

/// k-NN analogue of the boards: a shared k-th-distance bound per query
/// plus a global merge of neighbor lists.
pub struct KnnBoard {
    k: usize,
    kth: Vec<AtomicU64>,
    merged: Vec<Mutex<KnnAnswer>>,
}

impl KnnBoard {
    /// A board for `n_queries` k-NN queries.
    pub fn new(n_queries: usize, k: usize) -> Self {
        KnnBoard {
            k,
            kth: (0..n_queries)
                .map(|_| AtomicU64::new(f64::INFINITY.to_bits()))
                .collect(),
            merged: (0..n_queries)
                .map(|_| {
                    Mutex::new(KnnAnswer {
                        neighbors: Vec::new(),
                    })
                })
                .collect(),
        }
    }

    /// Neighbor count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Shared upper bound on the global k-th distance for `query`.
    pub fn kth_sq(&self, query: usize) -> f64 {
        f64::from_bits(self.kth[query].load(Ordering::Relaxed))
    }

    /// Publishes a node-local k-th distance (valid global bound: if one
    /// node already has k candidates within `d`, the global k-th is ≤ d).
    pub fn publish_kth(&self, query: usize, kth_sq: f64) {
        self.kth[query].fetch_min(kth_sq.to_bits(), Ordering::AcqRel);
    }

    /// Merges a node's local neighbor list into the global one.
    pub fn merge(&self, query: usize, local: KnnAnswer) {
        let mut cur = self.merged[query].lock();
        let merged = std::mem::replace(
            &mut *cur,
            KnnAnswer {
                neighbors: Vec::new(),
            },
        )
        .merge(local, self.k);
        *cur = merged;
    }

    /// Final merged answers.
    pub fn into_answers(self) -> Vec<KnnAnswer> {
        self.merged.into_iter().map(|m| m.into_inner()).collect()
    }
}

/// A node-local k-NN set connected to the shared k-th bound.
pub struct BoardKnn<'b> {
    /// The node's local k-NN set. `Arc`-shared (like [`BoardBsf`]'s
    /// BSF) so the steal registry can report the query's current k-th
    /// bound while the search is running.
    pub local: Arc<SharedKnn>,
    board: Option<(&'b KnnBoard, usize)>,
    calls: AtomicU64,
}

impl<'b> BoardKnn<'b> {
    /// Creates the per-query set.
    pub fn new(k: usize, board: Option<(&'b KnnBoard, usize)>) -> Self {
        BoardKnn {
            local: Arc::new(SharedKnn::new(k)),
            board,
            calls: AtomicU64::new(0),
        }
    }
}

impl ResultSet for BoardKnn<'_> {
    #[inline]
    fn threshold_sq(&self) -> f64 {
        let mut t = self.local.threshold_sq();
        if let Some((board, q)) = self.board {
            let c = self.calls.fetch_add(1, Ordering::Relaxed);
            if c.is_multiple_of(CHECK_INTERVAL) {
                // The global k-th bound prunes candidates that cannot be
                // in the global top-k, even if they would enter the local
                // list.
                t = t.min(board.kth_sq(q));
            }
        }
        t
    }

    fn offer(&self, distance_sq: f64, id: u32) -> bool {
        let improved = self.local.offer(distance_sq, id);
        if improved {
            if let Some((board, q)) = self.board {
                let kth = self.local.threshold_sq();
                if kth.is_finite() {
                    board.publish_kth(q, kth);
                }
            }
        }
        improved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsf_board_publish_and_read() {
        let b = BsfBoard::new(3);
        assert_eq!(b.get_sq(1), f64::INFINITY);
        b.publish(1, 5.0);
        b.publish(1, 9.0); // not an improvement
        b.publish(1, 2.0);
        assert_eq!(b.get_sq(1), 2.0);
        assert_eq!(b.get_sq(0), f64::INFINITY);
        assert_eq!(b.broadcasts(), 2);
    }

    #[test]
    fn board_bsf_seeds_from_book_keeping() {
        let b = BsfBoard::new(1);
        b.publish(0, 4.0);
        let bsf = BoardBsf::new(10.0, Some(7), Some((&b, 0)));
        assert_eq!(bsf.local.get_sq(), 4.0);
        assert_eq!(bsf.local.best().1, None, "remote bound carries no id");
        let bsf2 = BoardBsf::new(1.0, Some(9), Some((&b, 0)));
        assert_eq!(bsf2.local.best(), (1.0, Some(9)), "local better, id kept");
    }

    #[test]
    fn board_bsf_publishes_improvements() {
        let b = BsfBoard::new(1);
        let bsf = BoardBsf::new(f64::INFINITY, None, Some((&b, 0)));
        assert!(bsf.offer(3.0, 42));
        assert_eq!(b.get_sq(0), 3.0);
        assert!(!bsf.offer(5.0, 43));
        assert_eq!(b.get_sq(0), 3.0);
    }

    #[test]
    fn board_bsf_absorbs_remote_improvements() {
        let b = BsfBoard::new(1);
        let bsf = BoardBsf::new(100.0, Some(1), Some((&b, 0)));
        b.publish(0, 1.0); // remote node found something better
        // The first threshold call (calls % 64 == 0) checks the channel.
        assert_eq!(bsf.threshold_sq(), 1.0);
    }

    #[test]
    fn answer_board_merges_min_and_prefers_ids() {
        let board = AnswerBoard::new(2);
        board.merge(0, Answer::from_sq(9.0, Some(1)));
        board.merge(0, Answer::from_sq(4.0, None));
        board.merge(0, Answer::from_sq(4.0, Some(2)));
        board.merge(0, Answer::from_sq(8.0, Some(3)));
        let ans = board.into_answers();
        assert_eq!(ans[0].distance_sq, 4.0);
        assert_eq!(ans[0].series_id, Some(2));
        assert_eq!(ans[1].series_id, None);
    }

    #[test]
    fn coverage_board_tracks_groups_not_nodes() {
        let c = CoverageBoard::new(2, 3);
        c.mark(0, 0);
        c.mark(0, 1);
        c.mark(0, 1); // replica of the same group — idempotent
        assert!(matches!(
            c.coverage(0),
            Coverage::Partial { ref missing_groups } if missing_groups == &[2]
        ));
        c.mark(0, 2);
        assert_eq!(c.coverage(0), Coverage::Complete);
        let cov = c.into_coverages();
        assert_eq!(cov[0], Coverage::Complete);
        assert_eq!(
            cov[1],
            Coverage::Partial {
                missing_groups: vec![0, 1, 2]
            }
        );
    }

    #[test]
    fn knn_board_merges_and_bounds() {
        let board = KnnBoard::new(1, 2);
        board.merge(
            0,
            KnnAnswer {
                neighbors: vec![(3.0, 30), (5.0, 50)],
            },
        );
        board.merge(
            0,
            KnnAnswer {
                neighbors: vec![(1.0, 10), (4.0, 40)],
            },
        );
        board.publish_kth(0, 5.0);
        board.publish_kth(0, 3.0);
        assert_eq!(board.kth_sq(0), 3.0);
        let ans = board.into_answers();
        assert_eq!(ans[0].neighbors, vec![(1.0, 10), (3.0, 30)]);
    }

    #[test]
    fn board_knn_publishes_kth_once_full() {
        let board = KnnBoard::new(1, 2);
        let set = BoardKnn::new(2, Some((&board, 0)));
        set.offer(5.0, 1);
        assert_eq!(board.kth_sq(0), f64::INFINITY, "not full yet");
        set.offer(2.0, 2);
        assert_eq!(board.kth_sq(0), 5.0, "kth = max kept distance");
        set.offer(1.0, 3);
        assert_eq!(board.kth_sq(0), 2.0);
    }
}
