//! Online serving over a built cluster: queries stream in while node
//! loops claim them continuously (the [`crate::runtime`] batch paths'
//! continuous-dispatch lanes, turned into a long-running front-end).
//!
//! The batch paths answer a closed set with a known size; this module
//! answers an *open* stream under a session: callers submit
//! [`ServeQuery`]s through a [`ServeHandle`] while every node's worker
//! pool runs a claim loop — pop the node's replication-group queue
//! (interactive class first, earliest deadline first), execute on a
//! continuous-dispatch lane, merge into the query's entry, and deliver
//! the finished answer through the `on_complete` callback the moment
//! the last group contributes. There is no batch barrier anywhere: the
//! only join is at session close, when the queues drain.
//!
//! Two serving-specific behaviors ride the existing failure machinery:
//!
//! * **deadline honesty** — a query claimed after its deadline expired
//!   is answered from the index's approximate search (the same seed the
//!   exact search starts from) and flagged [`ServeOutcome::Degraded`]
//!   with a [`Coverage::Partial`]-style report naming the degraded
//!   groups, never silently dropped;
//! * **suspect hedging** — a healthy group member that runs out of
//!   queued work re-executes a query whose claim has been sitting with
//!   a [`NodeHealth::Suspect`] peer for
//!   [`ClusterConfig::suspect_hedge_after`] shard-map ticks, bounded by
//!   [`ClusterConfig::suspect_max_hedges`] per query. First exact
//!   answer wins; the late twin is discarded on arrival.

use crate::config::ClusterConfig;
use crate::faults::NodeFaults;
use crate::runtime::OdysseyCluster;
use crate::shard_map::{Coverage, NodeHealth, ShardMap};
use odyssey_core::search::answer::{Answer, KnnAnswer};
use odyssey_core::search::engine::{BatchAnswer, BatchEngine, BatchQuery, QueryKind};
use odyssey_core::search::exact::SearchParams;
use odyssey_core::search::multiq::uniform_widths;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One streamed query.
#[derive(Debug, Clone)]
pub struct ServeQuery {
    /// The z-normalized query series (same length as the collection).
    pub data: Vec<f32>,
    /// Search kind (ED / DTW / k-NN), as in the batch paths.
    pub kind: QueryKind,
    /// Latency class: interactive queries are admitted before batch
    /// ones and ordered earliest-deadline-first among themselves.
    pub interactive: bool,
    /// Relative deadline from admission. A group that claims the query
    /// after this has elapsed answers approximately (degraded), keeping
    /// tail latency bounded instead of letting one overloaded node
    /// stall the stream.
    pub deadline: Option<Duration>,
}

impl ServeQuery {
    /// An interactive exact-ED query with no deadline.
    pub fn interactive(data: Vec<f32>) -> Self {
        ServeQuery {
            data,
            kind: QueryKind::Exact,
            interactive: true,
            deadline: None,
        }
    }

    /// A batch-class exact-ED query with no deadline.
    pub fn batch(data: Vec<f32>) -> Self {
        ServeQuery {
            data,
            kind: QueryKind::Exact,
            interactive: false,
            deadline: None,
        }
    }

    /// Sets the search kind.
    pub fn with_kind(mut self, kind: QueryKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the relative deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }
}

/// How a served answer was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// Every group ran the full exact search.
    Exact,
    /// At least one group answered from the approximate seed because
    /// the query's deadline had expired when the group claimed it.
    Degraded,
}

/// A finished streamed query, delivered through `on_complete`.
#[derive(Debug, Clone)]
pub struct ServedAnswer {
    /// The id [`ServeHandle::submit`] returned.
    pub qid: u64,
    /// The merged answer (global series ids).
    pub answer: BatchAnswer,
    /// Exact everywhere, or degraded in the named groups.
    pub outcome: ServeOutcome,
    /// [`Coverage::Partial`] names the groups that answered
    /// approximately past the deadline (`Complete` = exact everywhere).
    pub coverage: Coverage,
    /// Whether a suspect-hedge re-execution was spent on this query.
    pub hedged: bool,
    /// Submission-to-completion latency.
    pub latency: Duration,
    /// The query's latency class.
    pub interactive: bool,
}

/// Counters of one serving session.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Queries submitted.
    pub submitted: u64,
    /// Queries completed (every submitted query completes by close).
    pub completed: u64,
    /// Completions with at least one degraded group.
    pub degraded: u64,
    /// Suspect-hedge re-executions performed.
    pub hedges: u64,
    /// Group-level executions per node (hedges included).
    pub per_node_queries: Vec<u64>,
    /// Shard-map epoch at close (bumps on health transitions).
    pub final_epoch: u64,
}

/// Per-query serving state, alive until every group contributed.
struct ServeEntry {
    data: Arc<[f32]>,
    kind: QueryKind,
    interactive: bool,
    expire_at: Option<Instant>,
    admitted: Instant,
    /// Groups still owed; the entry completes when this hits zero.
    remaining: usize,
    groups_done: Vec<bool>,
    /// Groups that answered approximately past the deadline.
    degraded_groups: Vec<usize>,
    /// Outstanding claim per group: `(node, shard-map tick at claim)`.
    /// Read by the hedge scan to spot work stuck on a suspect peer.
    claims: Vec<Option<(usize, u64)>>,
    hedges: u32,
    hedged: bool,
    best_nn: Answer,
    best_knn: Option<KnnAnswer>,
}

/// The two class queues of one replication group. Interactive entries
/// carry their deadline so admission stays earliest-deadline-first
/// (deadline-free interactive queries rank after all deadlines).
struct GroupQueues {
    interactive: VecDeque<(Option<Instant>, u64)>,
    batch: VecDeque<u64>,
}

/// What a node's claim loop does next.
enum Claim {
    /// Execute `qid` (approximately when `degraded`).
    Run {
        qid: u64,
        data: Arc<[f32]>,
        kind: QueryKind,
        degraded: bool,
    },
    /// Nothing claimable right now; keep leases moving and re-poll.
    Idle,
    /// Stream closed and the group fully drained.
    Exit,
}

/// The streaming front-end of one serving session: submit queries,
/// watch the in-flight count, close the stream. Created by
/// [`OdysseyCluster::serve`] and handed to the session closure.
pub struct ServeHandle<'c> {
    cluster: &'c OdysseyCluster,
    shard_map: ShardMap,
    entries: Mutex<HashMap<u64, ServeEntry>>,
    queues: Vec<Mutex<GroupQueues>>,
    /// Outstanding claims per group — the group-exit condition.
    inflight: Vec<AtomicUsize>,
    closed: AtomicBool,
    next_qid: AtomicU64,
    completed: AtomicU64,
    degraded: AtomicU64,
    hedges: AtomicU64,
    per_node_queries: Vec<AtomicU64>,
    on_complete: &'c (dyn Fn(ServedAnswer) + Sync),
}

impl<'c> ServeHandle<'c> {
    fn new(
        cluster: &'c OdysseyCluster,
        on_complete: &'c (dyn Fn(ServedAnswer) + Sync),
    ) -> Self {
        let topo = *cluster.topology();
        let n_groups = topo.n_groups();
        let n_nodes = topo.n_nodes();
        ServeHandle {
            cluster,
            shard_map: ShardMap::new(topo, cluster.config().lease_ticks),
            entries: Mutex::new(HashMap::new()),
            queues: (0..n_groups)
                .map(|_| {
                    Mutex::new(GroupQueues {
                        interactive: VecDeque::new(),
                        batch: VecDeque::new(),
                    })
                })
                .collect(),
            inflight: (0..n_groups).map(|_| AtomicUsize::new(0)).collect(),
            closed: AtomicBool::new(false),
            next_qid: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            per_node_queries: (0..n_nodes).map(|_| AtomicU64::new(0)).collect(),
            on_complete,
        }
    }

    /// Admits one query to every replication group and returns its id.
    /// The answer arrives through the session's `on_complete` callback.
    ///
    /// # Panics
    /// Panics when called after [`ServeHandle::close`] — the node loops
    /// may already have drained and exited.
    pub fn submit(&self, q: ServeQuery) -> u64 {
        assert!(
            !self.closed.load(Ordering::Acquire),
            "submit after close: the stream is drained"
        );
        let qid = self.next_qid.fetch_add(1, Ordering::Relaxed);
        let n_groups = self.queues.len();
        let expire_at = q.deadline.map(|d| Instant::now() + d);
        let entry = ServeEntry {
            data: Arc::from(q.data),
            kind: q.kind,
            interactive: q.interactive,
            expire_at,
            admitted: Instant::now(),
            remaining: n_groups,
            groups_done: vec![false; n_groups],
            degraded_groups: Vec::new(),
            claims: vec![None; n_groups],
            hedges: 0,
            hedged: false,
            best_nn: Answer::none(),
            best_knn: None,
        };
        self.entries.lock().insert(qid, entry);
        // EDF key: concrete deadlines first (earliest wins), ties and
        // deadline-free queries in submission order.
        let key = (expire_at.is_none(), expire_at);
        for queues in &self.queues {
            let mut gq = queues.lock();
            if q.interactive {
                let pos = gq
                    .interactive
                    .iter()
                    .position(|&(e, _)| key < (e.is_none(), e))
                    .unwrap_or(gq.interactive.len());
                gq.interactive.insert(pos, (expire_at, qid));
            } else {
                gq.batch.push_back(qid);
            }
        }
        qid
    }

    /// Queries submitted but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.entries.lock().len()
    }

    /// Queued (unclaimed) group-executions across the cluster.
    pub fn queue_depth(&self) -> usize {
        self.queues
            .iter()
            .map(|q| {
                let gq = q.lock();
                gq.interactive.len() + gq.batch.len()
            })
            .sum()
    }

    /// Closes the stream: node loops drain their queues and exit.
    /// Every already-submitted query still completes.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// The cluster's live health map for this session.
    pub fn shard_map(&self) -> &ShardMap {
        &self.shard_map
    }

    fn stats(&self) -> ServeStats {
        ServeStats {
            submitted: self.next_qid.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            per_node_queries: self
                .per_node_queries
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            final_epoch: self.shard_map.epoch(),
        }
    }

    /// One claim decision for `node` (a member of group `g`).
    fn claim(&self, node: usize, g: usize) -> Claim {
        let cfg = self.cluster.config();
        // Own queue first: interactive (EDF) before batch.
        let popped = {
            let mut gq = self.queues[g].lock();
            gq.interactive
                .pop_front()
                .map(|(_, qid)| qid)
                .or_else(|| gq.batch.pop_front())
        };
        if let Some(qid) = popped {
            let mut entries = self.entries.lock();
            let e = entries.get_mut(&qid).expect("queued query has an entry");
            e.claims[g] = Some((node, self.shard_map.now()));
            self.inflight[g].fetch_add(1, Ordering::AcqRel);
            return Claim::Run {
                qid,
                data: Arc::clone(&e.data),
                kind: e.kind,
                degraded: e.expire_at.is_some_and(|t| Instant::now() > t),
            };
        }
        // Hedge scan: an idle healthy member re-claims work stuck with
        // a suspect peer (bounded per query).
        if cfg.suspect_max_hedges > 0 && self.shard_map.health(node) == NodeHealth::Up {
            let now = self.shard_map.now();
            let mut entries = self.entries.lock();
            let victim = entries.iter().find_map(|(&qid, e)| {
                if e.groups_done[g] || e.hedges >= cfg.suspect_max_hedges {
                    return None;
                }
                match e.claims[g] {
                    // Any unhealthy claimer qualifies: `Suspect` is the
                    // hedge's target, and a claim aged all the way into
                    // `Down` deserves it a fortiori.
                    Some((claimer, tick))
                        if claimer != node
                            && self.shard_map.health(claimer) != NodeHealth::Up
                            && now.saturating_sub(tick) >= cfg.suspect_hedge_after =>
                    {
                        Some(qid)
                    }
                    _ => None,
                }
            });
            if let Some(qid) = victim {
                let e = entries.get_mut(&qid).expect("victim entry exists");
                e.hedges += 1;
                e.hedged = true;
                e.claims[g] = Some((node, now));
                self.hedges.fetch_add(1, Ordering::Relaxed);
                self.inflight[g].fetch_add(1, Ordering::AcqRel);
                return Claim::Run {
                    qid,
                    data: Arc::clone(&e.data),
                    kind: e.kind,
                    degraded: e.expire_at.is_some_and(|t| Instant::now() > t),
                };
            }
        }
        let drained = {
            let gq = self.queues[g].lock();
            gq.interactive.is_empty() && gq.batch.is_empty()
        };
        if self.closed.load(Ordering::Acquire)
            && drained
            && self.inflight[g].load(Ordering::Acquire) == 0
        {
            Claim::Exit
        } else {
            Claim::Idle
        }
    }

    /// Merges group `g`'s answer for `qid`; delivers the completed
    /// query when this was the last group. A late hedge twin (its entry
    /// already completed, or its group already done) is discarded.
    fn complete(&self, node: usize, g: usize, qid: u64, answer: BatchAnswer, degraded: bool) {
        self.shard_map.tick();
        self.shard_map.heartbeat(node);
        self.shard_map.expire_leases();
        self.per_node_queries[node].fetch_add(1, Ordering::Relaxed);
        let finished = {
            let mut entries = self.entries.lock();
            let Some(e) = entries.get_mut(&qid) else {
                self.inflight[g].fetch_sub(1, Ordering::AcqRel);
                return;
            };
            if e.groups_done[g] {
                self.inflight[g].fetch_sub(1, Ordering::AcqRel);
                return;
            }
            e.groups_done[g] = true;
            e.claims[g] = None;
            e.remaining -= 1;
            if degraded {
                e.degraded_groups.push(g);
            }
            match answer {
                BatchAnswer::Nn(mut a) => {
                    if let Some(local) = a.series_id {
                        a.series_id = Some(self.cluster.chunk_ids(g)[local as usize]);
                    }
                    // The batch boards' merge rule: strictly smaller
                    // squared distance wins; on an exact tie an
                    // identified answer beats an anonymous one.
                    if a.distance_sq < e.best_nn.distance_sq
                        || (a.distance_sq == e.best_nn.distance_sq
                            && e.best_nn.series_id.is_none()
                            && a.series_id.is_some())
                    {
                        e.best_nn = a;
                    }
                }
                BatchAnswer::Knn(mut a) => {
                    let QueryKind::Knn(k) = e.kind else {
                        unreachable!("k-NN answer for a non-k-NN query")
                    };
                    for n in &mut a.neighbors {
                        n.1 = self.cluster.chunk_ids(g)[n.1 as usize];
                    }
                    e.best_knn = Some(match e.best_knn.take() {
                        None => a,
                        Some(prev) => prev.merge(a, k),
                    });
                }
            }
            let done = (e.remaining == 0).then(|| entries.remove(&qid).expect("entry present"));
            // Decrement under the entries lock: a sibling observing
            // `inflight == 0` must also observe this group done, so the
            // exit condition never fires with a merge still pending.
            self.inflight[g].fetch_sub(1, Ordering::AcqRel);
            done
        };
        if let Some(e) = finished {
            self.completed.fetch_add(1, Ordering::Relaxed);
            let coverage = if e.degraded_groups.is_empty() {
                Coverage::Complete
            } else {
                self.degraded.fetch_add(1, Ordering::Relaxed);
                let mut missing_groups = e.degraded_groups;
                missing_groups.sort_unstable();
                Coverage::Partial { missing_groups }
            };
            let outcome = if coverage.is_complete() {
                ServeOutcome::Exact
            } else {
                ServeOutcome::Degraded
            };
            (self.on_complete)(ServedAnswer {
                qid,
                answer: match e.best_knn {
                    Some(knn) => BatchAnswer::Knn(knn),
                    None => BatchAnswer::Nn(e.best_nn),
                },
                outcome,
                coverage,
                hedged: e.hedged,
                latency: e.admitted.elapsed(),
                interactive: e.interactive,
            });
        }
    }

    /// One node's serving loop: continuous-dispatch lanes over the
    /// node's engine, each claiming from the group queue until close.
    fn node_loop(&self, node: usize) {
        let cfg: &ClusterConfig = self.cluster.config();
        let g = self.cluster.topology().group_of(node);
        let engine = BatchEngine::new(
            Arc::clone(self.cluster.chunk_index(g)),
            cfg.threads_per_node,
        );
        // Online predictor feedback: every full execution on this node
        // trains the cluster's shared cost/TH models, so batch calls
        // issued after (or between) serving sessions plan from a
        // predictor already fitted to the live stream. Degraded
        // (approximate) answers never reach the observer — they skip
        // `ctx.execute` — and a k-NN seed bound that is still infinite
        // carries no usable feature, so it is skipped too.
        {
            let feedback = Arc::clone(self.cluster.feedback());
            let th = self.cluster.th_feedback().cloned();
            engine
                .steal_registry()
                .install_observer(Arc::new(move |_qid, stats| {
                    if stats.initial_bsf.is_finite() {
                        feedback.record(stats.initial_bsf, stats.elapsed.as_secs_f64());
                        if let Some(th) = &th {
                            th.record(stats.initial_bsf, stats.pq_size_median as f64);
                        }
                    }
                }));
        }
        let params = SearchParams::new(cfg.threads_per_node)
            .with_th(cfg.pq_threshold)
            .with_nsb(cfg.rs_batches);
        // Delay faults pace the node between claim and execution (a
        // slow replica whose peers out-tick its lease — the suspect the
        // hedge path exists for). Fatal faults stay a batch-path
        // concern: the serving loop models overload, not crash-failover
        // (that machinery is exercised by `answer_batch`).
        let delay = NodeFaults::new(cfg.fault_plan.as_deref(), node).delay();
        let widths = uniform_widths(cfg.threads_per_node, cfg.service_lane_width);
        engine.run_dispatch(&widths, &|ctx, _lane| loop {
            match self.claim(node, g) {
                Claim::Run {
                    qid,
                    data,
                    kind,
                    degraded,
                } => {
                    if let Some(d) = delay {
                        std::thread::sleep(d);
                    }
                    let query = BatchQuery::new(&data, kind);
                    let answer = if degraded {
                        engine.approximate(&query)
                    } else {
                        ctx.execute(qid as usize, &query, &params).answer
                    };
                    self.complete(node, g, qid, answer, degraded);
                }
                Claim::Idle => {
                    self.shard_map.expire_leases();
                    std::thread::sleep(Duration::from_micros(50));
                }
                Claim::Exit => break,
            }
        });
    }
}

impl OdysseyCluster {
    /// Runs one serving session: every node stands up its engine and
    /// claims streamed queries continuously while `session` drives a
    /// [`ServeHandle`] (submit / close) from the calling thread.
    /// Finished queries are delivered through `on_complete` (called
    /// from node threads, unordered). Returns the session's value and
    /// the session's counters once the stream is drained.
    ///
    /// Answers are bit-identical to [`OdysseyCluster::answer_batch`] /
    /// [`OdysseyCluster::answer_batch_knn`] over the same queries, as
    /// long as no deadline expires (deadlines trade exactness for
    /// bounded latency, honestly flagged per answer).
    pub fn serve<R, S>(
        &self,
        session: S,
        on_complete: &(dyn Fn(ServedAnswer) + Sync),
    ) -> (R, ServeStats)
    where
        S: FnOnce(&ServeHandle) -> R,
    {
        let handle = ServeHandle::new(self, on_complete);
        let mut out = None;
        let mut session_panic = None;
        std::thread::scope(|scope| {
            for node in 0..self.topology().n_nodes() {
                let h = &handle;
                scope.spawn(move || h.node_loop(node));
            }
            // The session runs on the calling thread; close() runs even
            // when it panics, so the node loops always terminate and
            // the scope join cannot deadlock on a dead submitter.
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| session(&handle)));
            handle.close();
            match r {
                Ok(v) => out = Some(v),
                Err(p) => session_panic = Some(p),
            }
        });
        if let Some(p) = session_panic {
            std::panic::resume_unwind(p);
        }
        (out.expect("session ran"), handle.stats())
    }
}
