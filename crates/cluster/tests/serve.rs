//! The serving path's contracts: streamed answers bit-identical to the
//! batch paths, deadline expiry degrading honestly (never dropping),
//! and suspect hedging un-sticking work from a stalled replica.

use odyssey_cluster::{
    ClusterConfig, Coverage, FaultPlan, OdysseyCluster, Replication, ServeOutcome, ServeQuery,
    ServedAnswer,
};
use odyssey_core::search::engine::{BatchAnswer, QueryKind};
use odyssey_core::series::DatasetBuffer;
use odyssey_workloads::generator::random_walk;
use odyssey_workloads::queries::{QueryWorkload, WorkloadKind};
use parking_lot::Mutex;
use std::time::Duration;

fn workload(data: &DatasetBuffer, n: usize, seed: u64) -> QueryWorkload {
    QueryWorkload::generate(
        data,
        n,
        WorkloadKind::Mixed {
            hard_fraction: 0.4,
            noise: 0.05,
        },
        seed,
    )
}

fn collect_serve(
    cluster: &OdysseyCluster,
    queries: Vec<ServeQuery>,
) -> (Vec<Option<ServedAnswer>>, odyssey_cluster::ServeStats) {
    let n = queries.len();
    let results: Vec<Mutex<Option<ServedAnswer>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let on_complete = |a: ServedAnswer| {
        let slot = a.qid as usize;
        *results[slot].lock() = Some(a);
    };
    let (ids, stats) = cluster.serve(
        |handle| queries.into_iter().map(|q| handle.submit(q)).collect::<Vec<u64>>(),
        &on_complete,
    );
    assert_eq!(ids, (0..n as u64).collect::<Vec<u64>>());
    (results.into_iter().map(|m| m.into_inner()).collect(), stats)
}

/// Streamed answers must be bit-identical to the batch paths for the
/// same mixed ED / DTW / k-NN query set, across thread counts and both
/// latency classes.
#[test]
fn streamed_answers_match_batch_bit_for_bit() {
    let data = random_walk(1400, 64, 301);
    let w = workload(&data, 12, 47);
    let k = 3;
    let window = 4;
    for tpn in [1usize, 2, 4, 8] {
        let cluster = OdysseyCluster::build(
            &data,
            ClusterConfig::new(4)
                .with_replication(Replication::Partial(2))
                .with_threads_per_node(tpn),
        );
        let ed = cluster.answer_batch(&w.queries);
        let dtw = cluster.answer_batch_dtw(&w.queries, window);
        let knn = cluster.answer_batch_knn(&w.queries, k);

        // One streamed query per (batch query, kind), classes mixed.
        let mut stream = Vec::new();
        for qi in 0..w.len() {
            for kind in [QueryKind::Exact, QueryKind::Dtw(window), QueryKind::Knn(k)] {
                let q = if qi % 2 == 0 {
                    ServeQuery::interactive(w.query(qi).to_vec())
                } else {
                    ServeQuery::batch(w.query(qi).to_vec())
                };
                stream.push(q.with_kind(kind));
            }
        }
        let (results, stats) = collect_serve(&cluster, stream);
        assert_eq!(stats.completed, 3 * w.len() as u64, "tpn={tpn}");
        assert_eq!(stats.degraded, 0);
        for qi in 0..w.len() {
            let got = |slot: usize| {
                results[3 * qi + slot]
                    .as_ref()
                    .unwrap_or_else(|| panic!("tpn={tpn} query {qi} slot {slot} unanswered"))
            };
            for slot in 0..3 {
                assert_eq!(got(slot).outcome, ServeOutcome::Exact);
                assert_eq!(got(slot).coverage, Coverage::Complete);
            }
            match (&got(0).answer, &got(1).answer) {
                (BatchAnswer::Nn(e), BatchAnswer::Nn(d)) => {
                    assert_eq!(
                        e.distance.to_bits(),
                        ed.answers[qi].distance.to_bits(),
                        "tpn={tpn} query {qi}: serve ED vs batch ED"
                    );
                    assert_eq!(e.series_id, ed.answers[qi].series_id);
                    assert_eq!(
                        d.distance.to_bits(),
                        dtw.answers[qi].distance.to_bits(),
                        "tpn={tpn} query {qi}: serve DTW vs batch DTW"
                    );
                }
                _ => panic!("1-NN kinds diverged"),
            }
            match &got(2).answer {
                BatchAnswer::Knn(a) => {
                    assert_eq!(
                        a.neighbors, knn.answers[qi].neighbors,
                        "tpn={tpn} query {qi}: serve k-NN vs batch k-NN"
                    );
                }
                _ => panic!("k-NN kind diverged"),
            }
        }
    }
}

/// An already-expired deadline must yield a degraded-but-present answer
/// naming every group — never a silent drop — while deadline-free
/// queries in the same stream stay exact.
#[test]
fn expired_deadline_degrades_honestly() {
    let data = random_walk(1000, 64, 88);
    let w = workload(&data, 6, 9);
    let cluster = OdysseyCluster::build(
        &data,
        ClusterConfig::new(2)
            .with_replication(Replication::Partial(2))
            .with_threads_per_node(2),
    );
    let exact = cluster.answer_batch(&w.queries);
    let stream: Vec<ServeQuery> = (0..w.len())
        .map(|qi| {
            let q = ServeQuery::interactive(w.query(qi).to_vec());
            if qi % 2 == 0 {
                q.with_deadline(Duration::ZERO)
            } else {
                q
            }
        })
        .collect();
    let (results, stats) = collect_serve(&cluster, stream);
    assert_eq!(stats.completed, w.len() as u64);
    assert_eq!(stats.degraded, w.len().div_ceil(2) as u64);
    for (qi, r) in results.iter().enumerate() {
        let r = r.as_ref().expect("no silent drops");
        let BatchAnswer::Nn(a) = &r.answer else {
            panic!("ED query answered with k-NN")
        };
        if qi % 2 == 0 {
            assert_eq!(r.outcome, ServeOutcome::Degraded, "query {qi}");
            // Every group answered from its approximate seed.
            assert_eq!(
                r.coverage.missing_groups(),
                &(0..cluster.topology().n_groups()).collect::<Vec<_>>()[..],
                "query {qi}"
            );
            // The seed is an upper bound on the exact distance, and it
            // is a real series, not a placeholder.
            assert!(a.series_id.is_some(), "query {qi}: degraded but identified");
            assert!(
                a.distance >= exact.answers[qi].distance - 1e-12,
                "query {qi}: seed must upper-bound the exact distance"
            );
        } else {
            assert_eq!(r.outcome, ServeOutcome::Exact, "query {qi}");
            assert_eq!(
                a.distance.to_bits(),
                exact.answers[qi].distance.to_bits(),
                "query {qi}: deadline-free stays exact"
            );
        }
    }
}

/// A delayed replica falls behind on heartbeats, turns `Suspect`, and
/// its stuck claim is hedged by the healthy group member within the
/// configured bound — the stream completes without waiting out the
/// slow node for every query.
#[test]
fn suspect_claims_are_hedged_by_healthy_peer() {
    let data = random_walk(900, 64, 55);
    let w = workload(&data, 24, 21);
    let cluster = OdysseyCluster::build(
        &data,
        ClusterConfig::new(2)
            .with_replication(Replication::Full)
            .with_threads_per_node(2)
            .with_lease_ticks(4)
            .with_suspect_hedge_after(2)
            .with_suspect_max_hedges(1)
            // Node 1 stalls 40ms per claim: node 0 out-ticks its lease
            // long before it finishes, so its claim ages into a hedge.
            .with_fault_plan(FaultPlan::new().delay(1, 40_000)),
    );
    let exact = cluster.answer_batch(&w.queries);
    let stream: Vec<ServeQuery> = (0..w.len())
        .map(|qi| ServeQuery::interactive(w.query(qi).to_vec()))
        .collect();
    let (results, stats) = collect_serve(&cluster, stream);
    assert_eq!(stats.completed, w.len() as u64, "no drops under a slow replica");
    assert!(
        stats.hedges >= 1,
        "the suspect's stuck claims must be hedged (got {})",
        stats.hedges
    );
    assert!(
        stats.final_epoch >= 1,
        "the slow node's health transition bumps the epoch"
    );
    for (qi, r) in results.iter().enumerate() {
        let r = r.as_ref().expect("answered");
        let BatchAnswer::Nn(a) = &r.answer else { panic!() };
        assert_eq!(
            a.distance.to_bits(),
            exact.answers[qi].distance.to_bits(),
            "query {qi}: hedged execution changes nothing about the answer"
        );
    }
    assert!(results.iter().flatten().any(|r| r.hedged), "some answer was hedged");
}

/// Submitting after close is a contract violation and must fail fast.
#[test]
fn submit_after_close_panics() {
    let data = random_walk(400, 64, 7);
    let cluster = OdysseyCluster::build(
        &data,
        ClusterConfig::new(2)
            .with_replication(Replication::Partial(2))
            .with_threads_per_node(1),
    );
    let on_complete = |_a: ServedAnswer| {};
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        cluster.serve(
            |handle| {
                handle.close();
                handle.submit(ServeQuery::batch(data.series(0).to_vec()));
            },
            &on_complete,
        )
    }));
    assert!(err.is_err(), "submit after close must panic");
}

/// Serving trains the cluster's online cost predictor: every exact
/// execution appends a sample, degraded (approximate) answers do not,
/// and the samples drive refits at the configured cadence — all without
/// perturbing the served answers (checked bit-for-bit above).
#[test]
fn serving_feeds_the_online_predictor() {
    let data = random_walk(900, 64, 61);
    let w = workload(&data, 10, 19);
    let cluster = OdysseyCluster::build(
        &data,
        ClusterConfig::new(2)
            .with_replication(Replication::Full)
            .with_threads_per_node(2)
            .with_feedback_refit_every(4),
    );
    assert_eq!(cluster.feedback().samples(), 0);
    let stream: Vec<ServeQuery> = (0..w.len())
        .map(|qi| ServeQuery::interactive(w.query(qi).to_vec()))
        .collect();
    let (results, stats) = collect_serve(&cluster, stream);
    assert_eq!(stats.completed, w.len() as u64);
    assert!(results.iter().all(|r| r.is_some()));
    // One sample per group-level exact execution, however the nodes
    // split the claims.
    let executions: u64 = stats.per_node_queries.iter().sum();
    assert_eq!(cluster.feedback().samples() as u64, executions);
    assert!(
        cluster.feedback().refits() > 0,
        "10 samples at refit_every=4 must have crossed a refit boundary"
    );
}
