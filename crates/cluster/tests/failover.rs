//! Chaos suite for the failure-aware cluster: deterministic fault plans
//! and property-tested random ones, all checked against the two-sided
//! degraded-answer contract.
//!
//! * **Survivor exists** → the batch must be *bit-identical* to the
//!   fault-free run (`f64::to_bits` on the distances). Re-routing a dead
//!   node's queries to a replica re-executes them over the same chunk,
//!   and duplicated or re-ordered executions cannot change a min over
//!   true distances.
//! * **Whole group dead** → the batch must still terminate, the affected
//!   queries must carry `Coverage::Partial` naming the missing groups,
//!   and the answers must be honest: the reported id realizes the
//!   reported distance, and the distance is no worse than exact search
//!   over every chunk the coverage claims.
//!
//! Never hang, never silently wrong.

use odyssey_cluster::{
    BatchReport, ClusterConfig, Coverage, FaultPlan, OdysseyCluster, Replication, SchedulerKind,
};
use odyssey_core::distance::euclidean_sq;
use odyssey_core::series::DatasetBuffer;
use odyssey_workloads::generator::random_walk;
use odyssey_workloads::queries::{QueryWorkload, WorkloadKind};
use proptest::prelude::*;

fn workload(data: &DatasetBuffer, n: usize, seed: u64) -> QueryWorkload {
    QueryWorkload::generate(
        data,
        n,
        WorkloadKind::Mixed {
            hard_fraction: 0.5,
            noise: 0.05,
        },
        seed,
    )
}

/// Exact 1-NN distance over the chunks of `groups` only.
fn covered_min(
    cluster: &OdysseyCluster,
    data: &DatasetBuffer,
    q: &[f32],
    groups: impl Iterator<Item = usize>,
) -> f64 {
    let mut best = f64::INFINITY;
    for g in groups {
        for &gid in cluster.chunk_ids(g).iter() {
            best = best.min(euclidean_sq(q, data.series(gid as usize)));
        }
    }
    best
}

/// The degraded-answer contract, checked query by query:
/// complete coverage must match the clean run bit-for-bit; partial
/// coverage must name the lost groups and stay exact over the rest.
fn assert_contract(
    label: &str,
    cluster: &OdysseyCluster,
    data: &DatasetBuffer,
    w: &QueryWorkload,
    clean: &BatchReport,
    faulted: &BatchReport,
) {
    let n_groups = cluster.topology().n_groups();
    for qi in 0..w.len() {
        match &faulted.coverage[qi] {
            Coverage::Complete => {
                assert_eq!(
                    faulted.answers[qi].distance.to_bits(),
                    clean.answers[qi].distance.to_bits(),
                    "{label}: query {qi} fully covered but not bit-identical"
                );
            }
            Coverage::Partial { missing_groups } => {
                assert!(
                    !missing_groups.is_empty() && missing_groups.iter().all(|&g| g < n_groups),
                    "{label}: query {qi} partial with bogus groups {missing_groups:?}"
                );
                let got = faulted.answers[qi];
                // The id must realize the distance (the answer points at
                // a real series, not at torn state)...
                let id = got.series_id.expect("partial answer still carries an id") as usize;
                assert!(
                    (euclidean_sq(w.query(qi), data.series(id)) - got.distance_sq).abs() < 1e-9,
                    "{label}: query {qi} id does not realize its distance"
                );
                // ...and must be at least as good as exact search over
                // every chunk the coverage claims was answered.
                let want = covered_min(
                    cluster,
                    data,
                    w.query(qi),
                    (0..n_groups).filter(|g| !missing_groups.contains(g)),
                );
                assert!(
                    got.distance_sq <= want + 1e-9,
                    "{label}: query {qi} misses a series from a covered chunk \
                     (got {} want <= {want})",
                    got.distance_sq
                );
            }
        }
    }
}

#[test]
fn single_kill_is_bit_identical_across_topologies_and_kill_times() {
    let data = random_walk(1_200, 64, 71);
    let w = workload(&data, 10, 23);
    // PARTIAL-1 (FULL) and PARTIAL-2 at 4 nodes: every group keeps a
    // survivor under any single kill, so coverage must stay complete and
    // the answers bit-identical — whether the node dies before its first
    // query, mid-batch, or idle after its share (the Phase-B kill path).
    // The static scheduler pins per-node workloads, so whether a fault
    // point is reached is deterministic: every node owns at least two
    // queries here, and `after = 64` is past every workload, so that
    // fault never fires and the victim must *survive*.
    for rep in [Replication::Full, Replication::Partial(2)] {
        let base = OdysseyCluster::build(
            &data,
            ClusterConfig::new(4)
                .with_replication(rep)
                .with_scheduler(SchedulerKind::Static),
        );
        let clean = base.answer_batch(&w.queries);
        assert!(clean.fully_covered() && clean.dead_nodes.is_empty());
        for victim in 0..4 {
            for after in [0usize, 1, 2, 64] {
                let label = format!("{rep:?} kill({victim},{after})");
                let faulted = base
                    .reconfigured(|c| c.with_fault_plan(FaultPlan::new().kill(victim, after)))
                    .answer_batch(&w.queries);
                if after == 64 {
                    assert!(faulted.dead_nodes.is_empty(), "{label}: phantom death");
                } else {
                    assert_eq!(faulted.dead_nodes, vec![victim], "{label}");
                    assert!(faulted.final_epoch >= 1, "{label}");
                }
                assert!(faulted.fully_covered(), "{label}: lost coverage");
                assert_contract(&label, &base, &data, &w, &clean, &faulted);
            }
        }
    }
}

#[test]
fn whole_group_dead_is_partial_never_hung_never_wrong() {
    let data = random_walk(1_000, 64, 72);
    let w = workload(&data, 8, 29);
    // PARTIAL-N at 4 nodes: one node per group, so any kill loses a
    // whole group (each node runs every query over its own chunk).
    // Early and mid-batch kills must terminate with honest partial
    // answers; a kill point past the whole workload never fires.
    let base = OdysseyCluster::build(
        &data,
        ClusterConfig::new(4)
            .with_replication(Replication::EquallySplit)
            .with_scheduler(SchedulerKind::Static),
    );
    let clean = base.answer_batch(&w.queries);
    for (victim, after) in [(2usize, 0usize), (1, 1), (0, 4), (3, 64)] {
        let label = format!("EquallySplit kill({victim},{after})");
        let faulted = base
            .reconfigured(|c| c.with_fault_plan(FaultPlan::new().kill(victim, after)))
            .answer_batch(&w.queries);
        if after == 64 {
            assert!(faulted.dead_nodes.is_empty(), "{label}: phantom death");
            assert!(faulted.fully_covered(), "{label}");
        } else {
            assert_eq!(faulted.dead_nodes, vec![victim], "{label}");
            // The victim answered exactly `after` queries before dying;
            // the rest of the batch lost that group.
            let partial = faulted
                .coverage
                .iter()
                .filter(|c| !c.is_complete())
                .count();
            assert_eq!(partial, w.len() - after, "{label}");
            for c in &faulted.coverage {
                if let Coverage::Partial { missing_groups } = c {
                    assert_eq!(missing_groups, &vec![victim], "{label}");
                }
            }
        }
        assert_contract(&label, &base, &data, &w, &clean, &faulted);
    }
}

#[test]
fn worker_panic_with_survivor_is_bit_identical() {
    let data = random_walk(1_000, 64, 73);
    let w = workload(&data, 8, 31);
    let base = OdysseyCluster::build(
        &data,
        ClusterConfig::new(4)
            .with_replication(Replication::Partial(2))
            .with_scheduler(SchedulerKind::Static),
    );
    let clean = base.answer_batch(&w.queries);
    // Node 2 panics mid-query (torn execution → unwound engine →
    // re-route of the torn query); node 0 holds the same chunk.
    for during in [0usize, 1] {
        let label = format!("worker_panic(2,{during})");
        let faulted = base
            .reconfigured(|c| c.with_fault_plan(FaultPlan::new().worker_panic(2, during)))
            .answer_batch(&w.queries);
        assert_eq!(faulted.dead_nodes, vec![2], "{label}");
        assert!(faulted.fully_covered(), "{label}");
        assert!(faulted.reroutes >= 1, "{label}: torn query was not re-routed");
        assert_contract(&label, &base, &data, &w, &clean, &faulted);
    }
}

#[test]
fn delay_fault_changes_nothing_but_time() {
    let data = random_walk(800, 64, 74);
    let w = workload(&data, 6, 37);
    let base = OdysseyCluster::build(
        &data,
        ClusterConfig::new(2).with_replication(Replication::Full),
    );
    let clean = base.answer_batch(&w.queries);
    let faulted = base
        .reconfigured(|c| c.with_fault_plan(FaultPlan::new().delay(1, 200)))
        .answer_batch(&w.queries);
    assert!(faulted.dead_nodes.is_empty(), "a delay is not a death");
    assert!(faulted.fully_covered());
    assert_contract("delay(1,200us)", &base, &data, &w, &clean, &faulted);
}

#[test]
fn kill_composes_with_work_stealing_and_lanes() {
    // The stealing manager and the inter-query lanes stay on for the
    // healthy nodes while node 1 dies; thieves must not wedge on the
    // dead victim and the answers must not change.
    let data = random_walk(1_200, 64, 75);
    let w = workload(&data, 10, 41);
    let base = OdysseyCluster::build(
        &data,
        ClusterConfig::new(4)
            .with_replication(Replication::Partial(2))
            .with_scheduler(SchedulerKind::Static)
            .with_work_stealing(true)
            .with_inter_query_lanes(true),
    );
    let clean = base.answer_batch(&w.queries);
    let faulted = base
        .reconfigured(|c| c.with_fault_plan(FaultPlan::new().kill(1, 1)))
        .answer_batch(&w.queries);
    assert_eq!(faulted.dead_nodes, vec![1]);
    assert!(faulted.fully_covered());
    assert_contract("steal+lanes kill(1,1)", &base, &data, &w, &clean, &faulted);
}

#[test]
fn knn_kill_with_survivor_keeps_exact_neighbors() {
    let data = random_walk(700, 64, 76);
    let w = workload(&data, 5, 43);
    let base = OdysseyCluster::build(
        &data,
        ClusterConfig::new(4)
            .with_replication(Replication::Partial(2))
            .with_scheduler(SchedulerKind::Static),
    );
    let k = 3;
    let report = base
        .reconfigured(|c| c.with_fault_plan(FaultPlan::new().kill(3, 1)))
        .answer_batch_knn(&w.queries, k);
    assert!(report.coverage.iter().all(|c| c.is_complete()));
    for qi in 0..w.len() {
        let q = w.query(qi);
        let mut all: Vec<f64> = (0..data.num_series())
            .map(|i| euclidean_sq(q, data.series(i)))
            .collect();
        all.sort_by(|a, b| a.total_cmp(b));
        for (j, got) in report.answers[qi].neighbors.iter().enumerate() {
            assert!(
                (got.0 - all[j]).abs() < 1e-9,
                "query {qi} neighbor {j} wrong after failover"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Random single-fault plans over every topology shape at 4 nodes:
    // the batch always terminates and the contract always holds —
    // bit-identity when the victim's group keeps a survivor, honest
    // partial coverage when it does not.
    #[test]
    fn random_fault_plans_never_hang_never_lie(
        victim in 0usize..4,
        after in 0usize..6,
        rep_idx in 0usize..3,
        panic_instead in any::<bool>(),
    ) {
        let rep = [
            Replication::Full,
            Replication::Partial(2),
            Replication::EquallySplit,
        ][rep_idx];
        let data = random_walk(500, 32, 77 + rep_idx as u64);
        let w = workload(&data, 6, 47);
        let base = OdysseyCluster::build(
            &data,
            ClusterConfig::new(4)
                .with_replication(rep)
                .with_scheduler(SchedulerKind::Static),
        );
        let clean = base.answer_batch(&w.queries);
        let plan = if panic_instead {
            FaultPlan::new().worker_panic(victim, after)
        } else {
            FaultPlan::new().kill(victim, after)
        };
        let label = format!("{rep:?} victim={victim} after={after} panic={panic_instead}");
        let faulted = base
            .reconfigured(|c| c.with_fault_plan(plan))
            .answer_batch(&w.queries);
        // The fault fires only if the victim's deterministic workload
        // reaches the trigger point; otherwise the node must survive
        // and the batch must be indistinguishable from the clean run.
        if faulted.dead_nodes.is_empty() {
            prop_assert!(faulted.fully_covered(), "{label}: unfired fault lost coverage");
            prop_assert_eq!(faulted.reroutes, 0);
        } else {
            prop_assert_eq!(&faulted.dead_nodes, &vec![victim]);
            prop_assert!(faulted.final_epoch >= 1, "{label}: epoch never advanced");
            let survivor_exists = base
                .topology()
                .nodes_in_group(base.topology().group_of(victim))
                .len()
                > 1;
            if survivor_exists {
                prop_assert!(faulted.fully_covered(), "{label}: survivor exists");
            }
        }
        assert_contract(&label, &base, &data, &w, &clean, &faulted);
    }
}
