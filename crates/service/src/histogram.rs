//! A fixed-bucket concurrent latency histogram — in-crate, no
//! dependencies, lock-free recording from every worker thread.
//!
//! Buckets are powers of two in microseconds: bucket `i` counts
//! latencies in `(2^(i-1), 2^i]` µs (bucket 0 is `<= 1` µs). Forty
//! buckets reach ~2^39 µs (over six days), far past any deadline this
//! service accepts, so the top bucket only clips pathological stalls.
//! Percentiles report the **upper edge** of the bucket holding the
//! requested rank — a conservative (never under-reporting) tail
//! estimate with a fixed 2x resolution, which is what an offered-load
//! sweep needs: stable, monotone, cheap.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const N_BUCKETS: usize = 40;

/// Concurrent log2-bucket histogram of latencies.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [(); N_BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }

    fn bucket_of(micros: u64) -> usize {
        // ceil(log2(micros)), clipped to the top bucket; 0 and 1 µs
        // both land in bucket 0.
        let m = micros.max(1);
        (u64::BITS - m.leading_zeros() - u32::from(m.is_power_of_two()))
            .min(N_BUCKETS as u32 - 1) as usize
    }

    /// Records one latency.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough snapshot for reporting (recording may race;
    /// each counter is read once).
    pub fn summary(&self) -> HistogramSummary {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        let percentile = |p: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            // The sample at rank ceil(p * total), 1-based.
            let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return 1u64 << i;
                }
            }
            1u64 << (N_BUCKETS - 1)
        };
        let sum = self.sum_micros.load(Ordering::Relaxed);
        HistogramSummary {
            count: total,
            p50_us: percentile(0.50),
            p90_us: percentile(0.90),
            p99_us: percentile(0.99),
            mean_us: if total == 0 { 0.0 } else { sum as f64 / total as f64 },
            max_us: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time percentile summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Median latency (bucket upper edge), µs.
    pub p50_us: u64,
    /// 90th percentile, µs.
    pub p90_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
    /// Exact arithmetic mean, µs.
    pub mean_us: f64,
    /// Exact maximum, µs.
    pub max_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_upper_edge_inclusive() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 2);
        assert_eq!(LatencyHistogram::bucket_of(5), 3);
        assert_eq!(LatencyHistogram::bucket_of(1024), 10);
        assert_eq!(LatencyHistogram::bucket_of(1025), 11);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn percentiles_never_under_report() {
        let h = LatencyHistogram::new();
        for us in [100u64, 200, 300, 400, 500, 600, 700, 800, 900, 10_000] {
            h.record(Duration::from_micros(us));
        }
        let s = h.summary();
        assert_eq!(s.count, 10);
        // Ranks 5, 9, 10 → samples 500, 900, 10000; upper edges cover.
        assert!(s.p50_us >= 500 && s.p50_us <= 1024, "p50={}", s.p50_us);
        assert!(s.p90_us >= 900 && s.p90_us <= 1024, "p90={}", s.p90_us);
        assert!(s.p99_us >= 10_000 && s.p99_us <= 16_384, "p99={}", s.p99_us);
        assert_eq!(s.max_us, 10_000);
        assert!((s.mean_us - 1450.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let s = LatencyHistogram::new().summary();
        assert_eq!(
            (s.count, s.p50_us, s.p99_us, s.max_us, s.mean_us),
            (0, 0, 0, 0, 0.0)
        );
    }
}
