//! The online query service: a long-running front-end that streams
//! queries into the engine's continuous-dispatch lanes.
//!
//! The batch paths (`BatchEngine::run_batch*`,
//! `OdysseyCluster::answer_batch*`) answer a pre-collected slice; the
//! serving workloads of the paper's motivation ("millions of users")
//! never hand you a slice. [`QueryService`] closes that gap:
//!
//! * **continuous admission** — clients [`ServiceClient::submit`]
//!   queries into a shared dispatch queue; worker lanes claim them
//!   one at a time with no barrier anywhere (the engine's
//!   `run_dispatch` surface), so an easy query never waits for a hard
//!   one to clear a window;
//! * **latency classes** — [`LatencyClass::Interactive`] queries are
//!   admitted before [`LatencyClass::Batch`] ones and ordered
//!   earliest-deadline-first among themselves; each class gets its own
//!   latency histogram in the [`ServiceReport`];
//! * **backpressure** — admission is bounded by
//!   [`ServiceConfig::queue_capacity`]; past it, `submit` fails fast
//!   with [`Busy`] carrying a retry-after hint (an EWMA of recent
//!   service latency), so overload degrades into rejections with
//!   bounded queues instead of unbounded queueing;
//! * **deadline honesty** — a query claimed after its deadline is
//!   answered from the index's approximate seed and flagged
//!   [`ServeOutcome::Degraded`], never silently dropped.
//!
//! Two backends share the client API: [`QueryService::serve_index`]
//! runs a single-node service over one [`BatchEngine`];
//! [`QueryService::serve_cluster`] fronts a whole
//! [`OdysseyCluster`] serving session (replication, shard map, suspect
//! hedging). Without deadlines, answers are bit-identical to the
//! corresponding batch path — streaming changes scheduling, never
//! results.

#![forbid(unsafe_code)]

pub mod histogram;

pub use histogram::{HistogramSummary, LatencyHistogram};
pub use odyssey_cluster::{ServeOutcome, ServedAnswer};

use odyssey_cluster::{OdysseyCluster, ServeQuery};
use odyssey_core::index::Index;
use odyssey_core::search::engine::{BatchAnswer, BatchEngine, BatchQuery, QueryKind};
use odyssey_core::search::exact::SearchParams;
use odyssey_core::search::multiq::uniform_widths;
use odyssey_sched::OnlineCostModel;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The two admission classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatencyClass {
    /// Latency-sensitive: admitted before any queued batch query,
    /// earliest deadline first.
    Interactive,
    /// Throughput-oriented: FIFO behind the interactive class.
    Batch,
}

/// Admission rejection: the service's bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Busy {
    /// Suggested back-off before retrying — an EWMA of recent
    /// service latency (1 ms before any query has completed).
    pub retry_after: Duration,
}

/// One query to submit.
#[derive(Debug, Clone)]
pub struct ServiceQuery {
    /// The z-normalized query series.
    pub data: Vec<f32>,
    /// ED / DTW / k-NN, as in the batch paths.
    pub kind: QueryKind,
    /// Admission class.
    pub class: LatencyClass,
    /// Per-query deadline override (defaults to the class deadline of
    /// the [`ServiceConfig`]).
    pub deadline: Option<Duration>,
}

impl ServiceQuery {
    /// An interactive exact-ED query.
    pub fn interactive(data: Vec<f32>) -> Self {
        ServiceQuery {
            data,
            kind: QueryKind::Exact,
            class: LatencyClass::Interactive,
            deadline: None,
        }
    }

    /// A batch-class exact-ED query.
    pub fn batch(data: Vec<f32>) -> Self {
        ServiceQuery {
            data,
            kind: QueryKind::Exact,
            class: LatencyClass::Batch,
            deadline: None,
        }
    }

    /// Sets the search kind.
    pub fn with_kind(mut self, kind: QueryKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets a per-query deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }
}

/// A completed query, as returned by [`ServiceClient::wait`].
#[derive(Debug, Clone)]
pub struct ServiceAnswer {
    /// The id `submit` returned.
    pub qid: u64,
    /// The answer (global series ids on the cluster backend).
    pub answer: BatchAnswer,
    /// The query's admission class.
    pub class: LatencyClass,
    /// Exact, or degraded by a deadline expiry.
    pub outcome: ServeOutcome,
    /// Whether a suspect hedge was spent (cluster backend only).
    pub hedged: bool,
    /// Submit-to-completion latency.
    pub latency: Duration,
}

/// Service tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Bound on in-flight (admitted, not yet completed) queries;
    /// admission past it returns [`Busy`].
    pub queue_capacity: usize,
    /// Worker threads of the single-node backend (the cluster backend
    /// takes its pools from the cluster's own configuration).
    pub pool_threads: usize,
    /// Continuous-dispatch lane width (1 = maximal inter-query
    /// concurrency, `pool_threads` = one query at a time, full pool).
    pub lane_width: usize,
    /// Default deadline for interactive queries (`None` = unbounded).
    pub interactive_deadline: Option<Duration>,
    /// Default deadline for batch queries (`None` = unbounded).
    pub batch_deadline: Option<Duration>,
    /// Ring capacity of the session's online cost-predictor feedback
    /// store (single-node backend; the cluster backend trains the
    /// cluster's own models).
    pub feedback_capacity: usize,
    /// Refit cadence of the session predictor: one least-squares refit
    /// per this many recorded executions.
    pub feedback_refit_every: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 64,
            pool_threads: 4,
            lane_width: 1,
            interactive_deadline: None,
            batch_deadline: None,
            feedback_capacity: 1024,
            feedback_refit_every: 64,
        }
    }
}

impl ServiceConfig {
    /// Sets the admission bound.
    pub fn with_queue_capacity(mut self, c: usize) -> Self {
        assert!(c >= 1);
        self.queue_capacity = c;
        self
    }

    /// Sets the single-node pool size.
    pub fn with_pool_threads(mut self, t: usize) -> Self {
        assert!(t >= 1);
        self.pool_threads = t;
        self
    }

    /// Sets the dispatch lane width.
    pub fn with_lane_width(mut self, w: usize) -> Self {
        assert!(w >= 1);
        self.lane_width = w;
        self
    }

    /// Sets the interactive-class default deadline.
    pub fn with_interactive_deadline(mut self, d: Duration) -> Self {
        self.interactive_deadline = Some(d);
        self
    }

    /// Sets the batch-class default deadline.
    pub fn with_batch_deadline(mut self, d: Duration) -> Self {
        self.batch_deadline = Some(d);
        self
    }

    /// Sets the feedback-ring capacity.
    pub fn with_feedback_capacity(mut self, c: usize) -> Self {
        assert!(c >= 1);
        self.feedback_capacity = c;
        self
    }

    /// Sets the predictor refit cadence.
    pub fn with_feedback_refit_every(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.feedback_refit_every = n;
        self
    }

    fn class_deadline(&self, class: LatencyClass) -> Option<Duration> {
        match class {
            LatencyClass::Interactive => self.interactive_deadline,
            LatencyClass::Batch => self.batch_deadline,
        }
    }
}

/// End-of-session instrumentation.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Queries admitted.
    pub admitted: u64,
    /// Submissions rejected with [`Busy`] (the backpressure counter).
    pub rejected: u64,
    /// Queries completed (equals `admitted` once the session closes).
    pub completed: u64,
    /// Completions degraded by deadline expiry.
    pub degraded: u64,
    /// Completions that spent a suspect hedge (cluster backend).
    pub hedged: u64,
    /// Peak in-flight count observed (gauges queue pressure).
    pub max_in_flight: usize,
    /// Interactive-class latency percentiles.
    pub interactive: HistogramSummary,
    /// Batch-class latency percentiles.
    pub batch: HistogramSummary,
    /// Exact executions recorded into the online cost predictor this
    /// session (degraded answers train nothing).
    pub predictor_samples: u64,
    /// Predictor refits performed this session.
    pub predictor_refits: u64,
    /// Session wall-clock, open to close-drained.
    pub wall: Duration,
}

/// A query admitted to the single-node backend, waiting for a lane.
struct Pending {
    data: Arc<[f32]>,
    kind: QueryKind,
    class: LatencyClass,
    expire_at: Option<Instant>,
    admitted: Instant,
}

/// The single-node backend's class queues (interactive is kept in
/// earliest-deadline-first order; deadline-free entries rank last).
#[derive(Default)]
struct ClassQueues {
    interactive: VecDeque<(Option<Instant>, u64)>,
    batch: VecDeque<u64>,
}

/// State shared by clients, worker lanes, and completion callbacks.
struct ServiceState {
    config: ServiceConfig,
    queues: Mutex<ClassQueues>,
    pending: Mutex<HashMap<u64, Pending>>,
    results: Mutex<HashMap<u64, ServiceAnswer>>,
    in_flight: AtomicUsize,
    executing: AtomicUsize,
    closed: AtomicBool,
    next_qid: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    degraded: AtomicU64,
    hedged: AtomicU64,
    max_in_flight: AtomicUsize,
    interactive_hist: LatencyHistogram,
    batch_hist: LatencyHistogram,
    /// EWMA of completion latency in µs — the [`Busy`] retry hint.
    ewma_micros: AtomicU64,
    /// Online cost-predictor feedback of the single-node backend: the
    /// engine's query observer appends `(initial BSF, seconds)` after
    /// every exact execution. The cluster backend leaves this untouched
    /// and trains the cluster's own models instead.
    feedback: Arc<OnlineCostModel>,
}

impl ServiceState {
    fn new(config: ServiceConfig) -> Self {
        ServiceState {
            config,
            queues: Mutex::new(ClassQueues::default()),
            pending: Mutex::new(HashMap::new()),
            results: Mutex::new(HashMap::new()),
            in_flight: AtomicUsize::new(0),
            executing: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            next_qid: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            hedged: AtomicU64::new(0),
            max_in_flight: AtomicUsize::new(0),
            interactive_hist: LatencyHistogram::new(),
            batch_hist: LatencyHistogram::new(),
            ewma_micros: AtomicU64::new(0),
            feedback: Arc::new(OnlineCostModel::new(
                config.feedback_capacity,
                config.feedback_refit_every,
            )),
        }
    }

    /// Claims an admission slot, or constructs the [`Busy`] rejection.
    fn admit(&self) -> Result<(), Busy> {
        let cap = self.config.queue_capacity;
        let won = self
            .in_flight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < cap).then_some(n + 1)
            })
            .is_ok();
        if !won {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            let ewma = self.ewma_micros.load(Ordering::Relaxed);
            return Err(Busy {
                retry_after: Duration::from_micros(if ewma == 0 { 1000 } else { ewma }),
            });
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.max_in_flight
            .fetch_max(self.in_flight.load(Ordering::Acquire), Ordering::Relaxed);
        Ok(())
    }

    /// Records a completion: histogram, counters, result slot, and the
    /// admission slot released last (so backpressure tracks real work).
    fn record(&self, a: ServiceAnswer) {
        match a.class {
            LatencyClass::Interactive => self.interactive_hist.record(a.latency),
            LatencyClass::Batch => self.batch_hist.record(a.latency),
        }
        if a.outcome == ServeOutcome::Degraded {
            self.degraded.fetch_add(1, Ordering::Relaxed);
        }
        if a.hedged {
            self.hedged.fetch_add(1, Ordering::Relaxed);
        }
        let micros = a.latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let _ = self
            .ewma_micros
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |old| {
                Some(if old == 0 { micros } else { (4 * old + micros) / 5 })
            });
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.results.lock().insert(a.qid, a);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }

    fn report(&self, wall: Duration, predictor_samples: u64, predictor_refits: u64) -> ServiceReport {
        ServiceReport {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            hedged: self.hedged.load(Ordering::Relaxed),
            max_in_flight: self.max_in_flight.load(Ordering::Relaxed),
            interactive: self.interactive_hist.summary(),
            batch: self.batch_hist.summary(),
            predictor_samples,
            predictor_refits,
            wall,
        }
    }

    /// Queues a query on the single-node backend.
    fn enqueue(&self, q: ServiceQuery) -> u64 {
        let qid = self.next_qid.fetch_add(1, Ordering::Relaxed);
        let expire_at = q
            .deadline
            .or(self.config.class_deadline(q.class))
            .map(|d| Instant::now() + d);
        self.pending.lock().insert(
            qid,
            Pending {
                data: Arc::from(q.data),
                kind: q.kind,
                class: q.class,
                expire_at,
                admitted: Instant::now(),
            },
        );
        let mut queues = self.queues.lock();
        match q.class {
            LatencyClass::Interactive => {
                let key = (expire_at.is_none(), expire_at);
                let pos = queues
                    .interactive
                    .iter()
                    .position(|&(e, _)| key < (e.is_none(), e))
                    .unwrap_or(queues.interactive.len());
                queues.interactive.insert(pos, (expire_at, qid));
            }
            LatencyClass::Batch => queues.batch.push_back(qid),
        }
        qid
    }

    /// One single-node claim: interactive first (EDF), then batch.
    fn claim(&self) -> EngineClaim {
        let popped = {
            let mut queues = self.queues.lock();
            queues
                .interactive
                .pop_front()
                .map(|(_, qid)| qid)
                .or_else(|| queues.batch.pop_front())
        };
        if let Some(qid) = popped {
            self.executing.fetch_add(1, Ordering::AcqRel);
            let p = self
                .pending
                .lock()
                .remove(&qid)
                .expect("queued query is pending");
            return EngineClaim::Run(qid, p);
        }
        let empty = {
            let queues = self.queues.lock();
            queues.interactive.is_empty() && queues.batch.is_empty()
        };
        if self.closed.load(Ordering::Acquire)
            && empty
            && self.executing.load(Ordering::Acquire) == 0
        {
            EngineClaim::Exit
        } else {
            EngineClaim::Idle
        }
    }
}

enum EngineClaim {
    Run(u64, Pending),
    Idle,
    Exit,
}

/// What `submit` does after admission: queue locally or stream into a
/// cluster serving session.
enum Backend<'a> {
    Engine,
    Cluster(&'a odyssey_cluster::ServeHandle<'a>),
}

/// The client handed to a service session: submit queries, collect
/// answers, observe pressure.
pub struct ServiceClient<'a> {
    state: &'a ServiceState,
    backend: Backend<'a>,
}

impl ServiceClient<'_> {
    /// Submits one query, or rejects it with [`Busy`] when the service
    /// is at capacity. The returned id claims the answer via
    /// [`ServiceClient::wait`] / [`ServiceClient::try_take`].
    pub fn submit(&self, q: ServiceQuery) -> Result<u64, Busy> {
        self.state.admit()?;
        Ok(match &self.backend {
            Backend::Engine => self.state.enqueue(q),
            Backend::Cluster(handle) => handle.submit(ServeQuery {
                data: q.data,
                kind: q.kind,
                interactive: q.class == LatencyClass::Interactive,
                deadline: q.deadline.or(self.state.config.class_deadline(q.class)),
            }),
        })
    }

    /// Takes `qid`'s answer if it has completed.
    pub fn try_take(&self, qid: u64) -> Option<ServiceAnswer> {
        self.state.results.lock().remove(&qid)
    }

    /// Blocks (polling) until `qid` completes. Only ids returned by
    /// [`ServiceClient::submit`] ever complete; waiting on anything
    /// else never returns.
    pub fn wait(&self, qid: u64) -> ServiceAnswer {
        loop {
            if let Some(a) = self.try_take(qid) {
                return a;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    /// Takes every completed-but-uncollected answer.
    pub fn drain(&self) -> Vec<ServiceAnswer> {
        self.state.results.lock().drain().map(|(_, a)| a).collect()
    }

    /// Admitted queries not yet completed.
    pub fn in_flight(&self) -> usize {
        self.state.in_flight.load(Ordering::Acquire)
    }

    /// Remaining admission slots before [`Busy`].
    pub fn capacity_left(&self) -> usize {
        self.state
            .config
            .queue_capacity
            .saturating_sub(self.in_flight())
    }
}

/// The online query service front-end. One `QueryService` value is a
/// configuration; each `serve_*` call runs one session over it.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryService {
    /// The session knobs.
    pub config: ServiceConfig,
}

impl QueryService {
    /// A service with the given knobs.
    pub fn new(config: ServiceConfig) -> Self {
        QueryService { config }
    }

    /// Runs a single-node serving session over one index: a resident
    /// [`BatchEngine`] pool claims streamed queries on continuous
    /// dispatch lanes while `session` drives the client from the
    /// calling thread. Returns the session value and the report once
    /// the stream drains.
    pub fn serve_index<R>(
        &self,
        index: &Arc<Index>,
        session: impl FnOnce(&ServiceClient) -> R,
    ) -> (R, ServiceReport) {
        let t0 = Instant::now();
        let state = ServiceState::new(self.config);
        let params = SearchParams::new(self.config.pool_threads);
        let mut out = None;
        let mut session_panic = None;
        std::thread::scope(|scope| {
            let st = &state;
            let worker = scope.spawn(move || {
                let engine = BatchEngine::new(Arc::clone(index), st.config.pool_threads);
                // Every exact execution trains the session predictor;
                // degraded answers bypass `ctx.execute` and train
                // nothing, and a non-finite seed carries no feature.
                {
                    let feedback = Arc::clone(&st.feedback);
                    engine
                        .steal_registry()
                        .install_observer(Arc::new(move |_qid, stats| {
                            if stats.initial_bsf.is_finite() {
                                feedback
                                    .record(stats.initial_bsf, stats.elapsed.as_secs_f64());
                            }
                        }));
                }
                let widths = uniform_widths(st.config.pool_threads, st.config.lane_width);
                engine.run_dispatch(&widths, &|ctx, _lane| loop {
                    match st.claim() {
                        EngineClaim::Run(qid, p) => {
                            let query = BatchQuery::new(&p.data, p.kind);
                            let degraded = p.expire_at.is_some_and(|t| Instant::now() > t);
                            let answer = if degraded {
                                engine.approximate(&query)
                            } else {
                                ctx.execute(qid as usize, &query, &params).answer
                            };
                            st.record(ServiceAnswer {
                                qid,
                                answer,
                                class: p.class,
                                outcome: if degraded {
                                    ServeOutcome::Degraded
                                } else {
                                    ServeOutcome::Exact
                                },
                                hedged: false,
                                latency: p.admitted.elapsed(),
                            });
                            st.executing.fetch_sub(1, Ordering::AcqRel);
                        }
                        EngineClaim::Idle => std::thread::sleep(Duration::from_micros(50)),
                        EngineClaim::Exit => break,
                    }
                });
            });
            let client = ServiceClient {
                state: &state,
                backend: Backend::Engine,
            };
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| session(&client)));
            state.closed.store(true, Ordering::Release);
            match r {
                Ok(v) => out = Some(v),
                Err(p) => session_panic = Some(p),
            }
            worker.join().expect("service worker panicked");
        });
        if let Some(p) = session_panic {
            std::panic::resume_unwind(p);
        }
        let report = state.report(
            t0.elapsed(),
            state.feedback.samples() as u64,
            state.feedback.refits() as u64,
        );
        (out.expect("session ran"), report)
    }

    /// Runs a cluster serving session behind the same client API:
    /// admission control and per-class histograms here, replication,
    /// shard-map health and suspect hedging in
    /// [`OdysseyCluster::serve`].
    pub fn serve_cluster<R>(
        &self,
        cluster: &OdysseyCluster,
        session: impl FnOnce(&ServiceClient) -> R,
    ) -> (R, ServiceReport) {
        let t0 = Instant::now();
        let state = ServiceState::new(self.config);
        // The cluster's serving loops train the *cluster's* models
        // (shared with its batch paths); report the session's delta.
        let samples0 = cluster.feedback().samples() as u64;
        let refits0 = cluster.feedback().refits() as u64;
        let st = &state;
        let on_complete = move |a: ServedAnswer| {
            st.record(ServiceAnswer {
                qid: a.qid,
                answer: a.answer,
                class: if a.interactive {
                    LatencyClass::Interactive
                } else {
                    LatencyClass::Batch
                },
                outcome: a.outcome,
                hedged: a.hedged,
                latency: a.latency,
            });
        };
        let (r, _stats) = cluster.serve(
            |handle| {
                let client = ServiceClient {
                    state: st,
                    backend: Backend::Cluster(handle),
                };
                session(&client)
            },
            &on_complete,
        );
        let report = state.report(
            t0.elapsed(),
            (cluster.feedback().samples() as u64).saturating_sub(samples0),
            (cluster.feedback().refits() as u64).saturating_sub(refits0),
        );
        (r, report)
    }
}
