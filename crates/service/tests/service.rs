//! The service crate's contracts: streamed answers bit-identical to
//! the batch engine, bounded-queue backpressure, and honest
//! deadline-expiry degradation.

use odyssey_core::index::{Index, IndexConfig};
use odyssey_core::search::engine::{BatchAnswer, BatchEngine, BatchQuery, QueryKind};
use odyssey_core::search::exact::SearchParams;
use odyssey_core::series::DatasetBuffer;
use odyssey_service::{
    LatencyClass, QueryService, ServeOutcome, ServiceConfig, ServiceQuery,
};
use odyssey_workloads::generator::random_walk;
use odyssey_workloads::queries::{QueryWorkload, WorkloadKind};
use std::sync::Arc;
use std::time::Duration;

fn build_index(n: usize, seed: u64) -> (DatasetBuffer, Arc<Index>) {
    let data = random_walk(n, 64, seed);
    let index = Arc::new(Index::build(
        data.clone(),
        IndexConfig::new(64).with_segments(8).with_leaf_capacity(32),
        4,
    ));
    (data, index)
}

fn mixed_workload(data: &DatasetBuffer, n: usize, seed: u64) -> QueryWorkload {
    QueryWorkload::generate(
        data,
        n,
        WorkloadKind::Mixed {
            hard_fraction: 0.4,
            noise: 0.05,
        },
        seed,
    )
}

/// Streamed service answers must be bit-identical to `run_batch` over
/// the same mixed ED / DTW / k-NN queries at every pool width, with
/// both latency classes interleaved.
#[test]
fn streamed_matches_batch_at_1_2_4_8_threads() {
    let (data, index) = build_index(1200, 17);
    let w = mixed_workload(&data, 12, 29);
    let kinds = |qi: usize| match qi % 3 {
        0 => QueryKind::Exact,
        1 => QueryKind::Dtw(4),
        _ => QueryKind::Knn(3),
    };
    let queries: Vec<BatchQuery> = (0..w.len())
        .map(|qi| BatchQuery::new(w.query(qi), kinds(qi)))
        .collect();
    let order: Vec<usize> = (0..queries.len()).collect();

    for threads in [1usize, 2, 4, 8] {
        let params = SearchParams::new(threads);
        let reference = BatchEngine::new(Arc::clone(&index), threads.max(2))
            .run_batch(&queries, &order, &params);
        let service = QueryService::new(
            ServiceConfig::default()
                .with_pool_threads(threads)
                .with_queue_capacity(64),
        );
        let (ids, report) = service.serve_index(&index, |client| {
            (0..w.len())
                .map(|qi| {
                    let q = ServiceQuery {
                        data: w.query(qi).to_vec(),
                        kind: kinds(qi),
                        class: if qi % 2 == 0 {
                            LatencyClass::Interactive
                        } else {
                            LatencyClass::Batch
                        },
                        deadline: None,
                    };
                    let qid = client.submit(q).expect("under capacity");
                    client.wait(qid)
                })
                .collect::<Vec<_>>()
        });
        assert_eq!(report.admitted, w.len() as u64, "threads={threads}");
        assert_eq!(report.completed, w.len() as u64);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.degraded, 0);
        assert_eq!(
            report.interactive.count + report.batch.count,
            w.len() as u64,
            "every completion lands in a class histogram"
        );
        for (qi, a) in ids.iter().enumerate() {
            assert_eq!(a.outcome, ServeOutcome::Exact);
            match (&a.answer, &reference.items[qi].answer) {
                (BatchAnswer::Nn(s), BatchAnswer::Nn(b)) => {
                    assert_eq!(
                        s.distance.to_bits(),
                        b.distance.to_bits(),
                        "threads={threads} query={qi}: service vs batch"
                    );
                    assert_eq!(s.series_id, b.series_id);
                }
                (BatchAnswer::Knn(s), BatchAnswer::Knn(b)) => {
                    assert_eq!(s.neighbors, b.neighbors, "threads={threads} query={qi}");
                }
                _ => panic!("threads={threads} query={qi}: kinds diverged"),
            }
        }
    }
}

/// A full queue must reject with `Busy` (carrying a retry hint), and
/// the accounting must hold: admitted + rejected = offered, everything
/// admitted completes.
#[test]
fn full_queue_rejects_with_busy() {
    let (data, index) = build_index(900, 5);
    let w = mixed_workload(&data, 40, 7);
    let capacity = 2;
    let service = QueryService::new(
        ServiceConfig::default()
            .with_pool_threads(2)
            .with_queue_capacity(capacity),
    );
    let ((admitted, rejected, max_retry), report) = service.serve_index(&index, |client| {
        let mut admitted = 0u64;
        let mut rejected = 0u64;
        let mut max_retry = Duration::ZERO;
        // A burst far past capacity, no waiting in between.
        for qi in 0..w.len() {
            match client.submit(ServiceQuery::batch(w.query(qi).to_vec())) {
                Ok(_) => admitted += 1,
                Err(busy) => {
                    rejected += 1;
                    max_retry = max_retry.max(busy.retry_after);
                }
            }
        }
        assert!(client.in_flight() <= capacity, "bounded queue");
        (admitted, rejected, max_retry)
    });
    assert_eq!(admitted + rejected, w.len() as u64);
    assert!(
        rejected > 0,
        "a {capacity}-slot queue cannot absorb a {}-query burst",
        w.len()
    );
    assert!(admitted >= capacity as u64, "the queue does fill before rejecting");
    assert!(max_retry > Duration::ZERO, "Busy carries a retry hint");
    assert_eq!(report.admitted, admitted);
    assert_eq!(report.rejected, rejected);
    assert_eq!(report.completed, admitted, "everything admitted completes");
    assert!(report.max_in_flight <= capacity);
}

/// An expired deadline degrades the answer honestly: it still arrives,
/// flagged, with a real (upper-bound) answer — and the same query
/// without a deadline stays exact.
#[test]
fn deadline_expiry_degrades_not_drops() {
    let (data, index) = build_index(900, 3);
    let w = mixed_workload(&data, 8, 11);
    let service = QueryService::new(
        ServiceConfig::default()
            .with_pool_threads(2)
            // Already expired at claim time, for every query.
            .with_interactive_deadline(Duration::ZERO),
    );
    let exact_service = QueryService::new(ServiceConfig::default().with_pool_threads(2));
    let (exact, _) = exact_service.serve_index(&index, |client| {
        (0..w.len())
            .map(|qi| {
                let qid = client
                    .submit(ServiceQuery::interactive(w.query(qi).to_vec()))
                    .expect("under capacity");
                client.wait(qid)
            })
            .collect::<Vec<_>>()
    });
    let (answers, report) = service.serve_index(&index, |client| {
        let ids: Vec<u64> = (0..w.len())
            .map(|qi| {
                client
                    .submit(ServiceQuery::interactive(w.query(qi).to_vec()))
                    .expect("under capacity")
            })
            .collect();
        ids.into_iter().map(|qid| client.wait(qid)).collect::<Vec<_>>()
    });
    assert_eq!(report.completed, w.len() as u64, "no silent drops");
    assert_eq!(report.degraded, w.len() as u64, "every expiry is flagged");
    for (qi, a) in answers.iter().enumerate() {
        assert_eq!(a.outcome, ServeOutcome::Degraded, "query {qi}");
        let (BatchAnswer::Nn(d), BatchAnswer::Nn(e)) = (&a.answer, &exact[qi].answer) else {
            panic!("kinds diverged")
        };
        assert!(d.series_id.is_some(), "query {qi}: degraded answers are real series");
        assert!(
            d.distance >= e.distance - 1e-12,
            "query {qi}: the approximate seed upper-bounds the exact distance"
        );
    }
}

/// The cluster backend behind the same client API: answers match the
/// cluster batch path, and the admission/histogram accounting holds.
#[test]
fn cluster_backend_matches_cluster_batch() {
    use odyssey_cluster::{ClusterConfig, OdysseyCluster, Replication};
    let data = random_walk(1000, 64, 23);
    let w = mixed_workload(&data, 8, 31);
    let cluster = OdysseyCluster::build(
        &data,
        ClusterConfig::new(4)
            .with_replication(Replication::Partial(2))
            .with_threads_per_node(2),
    );
    let batch = cluster.answer_batch(&w.queries);
    let service = QueryService::new(ServiceConfig::default().with_queue_capacity(16));
    let (answers, report) = service.serve_cluster(&cluster, |client| {
        let ids: Vec<u64> = (0..w.len())
            .map(|qi| {
                client
                    .submit(ServiceQuery::interactive(w.query(qi).to_vec()))
                    .expect("under capacity")
            })
            .collect();
        ids.into_iter().map(|qid| client.wait(qid)).collect::<Vec<_>>()
    });
    assert_eq!(report.admitted, w.len() as u64);
    assert_eq!(report.completed, w.len() as u64);
    assert_eq!(report.interactive.count, w.len() as u64);
    for (qi, a) in answers.iter().enumerate() {
        let BatchAnswer::Nn(s) = &a.answer else { panic!() };
        assert_eq!(
            s.distance.to_bits(),
            batch.answers[qi].distance.to_bits(),
            "query {qi}: service-over-cluster vs cluster batch"
        );
        assert_eq!(s.series_id, batch.answers[qi].series_id);
    }
}

/// Interactive admission outranks batch: when both classes are queued
/// behind one busy lane, the interactive query is claimed first even
/// though it was submitted last.
#[test]
fn interactive_class_claims_before_batch() {
    let (data, index) = build_index(900, 13);
    let w = mixed_workload(&data, 10, 19);
    let service = QueryService::new(
        ServiceConfig::default()
            .with_pool_threads(1)
            .with_queue_capacity(16),
    );
    let (first_done, report) = service.serve_index(&index, |client| {
        // Enqueue a batch backlog, then one interactive query.
        let batch_ids: Vec<u64> = (0..w.len() - 1)
            .map(|qi| {
                client
                    .submit(ServiceQuery::batch(w.query(qi).to_vec()))
                    .expect("under capacity")
            })
            .collect();
        let vip = client
            .submit(ServiceQuery::interactive(w.query(w.len() - 1).to_vec()))
            .expect("under capacity");
        let vip_answer = client.wait(vip);
        // The backlog may still be running; the VIP's latency must not
        // include the whole backlog (claimed ahead of the remaining
        // batch queue). Collect the rest to drain cleanly.
        for qid in batch_ids {
            client.wait(qid);
        }
        vip_answer
    });
    assert_eq!(report.completed, w.len() as u64);
    assert_eq!(first_done.class, LatencyClass::Interactive);
    assert_eq!(report.interactive.count, 1);
    assert_eq!(report.batch.count, (w.len() - 1) as u64);
}

/// The single-node backend trains its session predictor on every exact
/// execution and reports the sample/refit counters; degraded answers
/// contribute nothing.
#[test]
fn exact_executions_train_the_session_predictor() {
    let (data, index) = build_index(900, 41);
    let w = mixed_workload(&data, 10, 43);
    let service = QueryService::new(
        ServiceConfig::default()
            .with_pool_threads(2)
            .with_feedback_refit_every(4),
    );
    let (_, report) = service.serve_index(&index, |client| {
        let ids: Vec<u64> = (0..w.len())
            .map(|qi| {
                client
                    .submit(ServiceQuery::batch(w.query(qi).to_vec()))
                    .expect("under capacity")
            })
            .collect();
        for qid in ids {
            client.wait(qid);
        }
    });
    assert_eq!(report.completed, w.len() as u64);
    assert_eq!(report.degraded, 0);
    assert_eq!(report.predictor_samples, w.len() as u64);
    assert!(
        report.predictor_refits > 0,
        "10 samples at refit_every=4 must refit"
    );

    // An all-expired stream answers approximately: nothing trains.
    let (_, degraded_report) = service.serve_index(&index, |client| {
        let qid = client
            .submit(
                ServiceQuery::batch(w.query(0).to_vec())
                    .with_deadline(Duration::from_nanos(1)),
            )
            .expect("under capacity");
        client.wait(qid);
    });
    assert_eq!(degraded_report.degraded, 1);
    assert_eq!(degraded_report.predictor_samples, 0);
}
