//! DPiSAX (Yagoubi et al. 2017/2020), reimplemented on the simulated
//! runtime.
//!
//! DPiSAX "exploits the iSAX summaries of a small sample of the dataset,
//! in order to distribute the data to the nodes equally. Then, an iSAX
//! index is built in each node on the local data [...] all nodes need to
//! send their partial results to the coordinator, which merges them and
//! produces the final, exact answer."
//!
//! The partitioner builds a binary *partitioning table* over iSAX space:
//! starting from the whole space, it repeatedly splits the region holding
//! the most sample summaries (refining the segment/bit that best balances
//! the split) until there is one region per node; every series then
//! routes to the region containing its summary. Regions — unlike
//! EQUALLY-SPLIT chunks — group *similar* series together, which is
//! precisely the behaviour DENSITY-AWARE partitioning avoids; Figure 17d
//! measures the consequences.

use odyssey_cluster::{ClusterConfig, OdysseyCluster, Replication, SchedulerKind};
use odyssey_core::buffers::Summaries;
use odyssey_core::sax::IsaxWord;
use odyssey_core::series::DatasetBuffer;
use odyssey_partition::Partition;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One region of the DPiSAX partitioning table, with the sample members
/// it currently holds.
struct Region {
    word: IsaxWord,
    sample: Vec<u32>,
}

/// Builds the DPiSAX sample-based partition of `data` into `n_chunks`
/// iSAX-space regions.
///
/// `sample_size` summaries (default choice: 1% of the data, at least
/// 256) drive the table; `segments` is the iSAX word width.
pub fn dpisax_partition(
    data: &DatasetBuffer,
    n_chunks: usize,
    segments: usize,
    sample_size: usize,
    seed: u64,
) -> Partition {
    assert!(n_chunks >= 1);
    let n = data.num_series();
    let segments = segments.min(data.series_len());
    let summaries = Summaries::compute(data, segments, 2);
    // Sample without replacement.
    let mut ids: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    let sample: Vec<u32> = ids.into_iter().take(sample_size.clamp(1, n)).collect();

    // Start with one region covering all of iSAX space.
    let root = IsaxWord {
        symbols: vec![0; segments],
        card_bits: vec![0; segments],
    };
    let mut regions = vec![Region {
        word: root,
        sample,
    }];
    // Split the heaviest region until one region per chunk exists (or no
    // region can be split further).
    while regions.len() < n_chunks {
        let (ri, _) = regions
            .iter()
            .enumerate()
            .max_by_key(|(_, r)| r.sample.len())
            .expect("at least one region");
        let region = regions.swap_remove(ri);
        match split_region(region, &summaries) {
            Some((a, b)) => {
                regions.push(a);
                regions.push(b);
            }
            None => {
                // Unsplittable heaviest region: give up early; remaining
                // chunks stay empty-backed (handled below).
                regions.push(Region {
                    word: IsaxWord {
                        symbols: vec![0; segments],
                        card_bits: vec![0; segments],
                    },
                    sample: Vec::new(),
                });
                break;
            }
        }
    }
    // Route every series to the first region containing its summary (the
    // table's regions are disjoint by construction, except for the
    // degenerate give-up region above which matches everything — being
    // last, it only catches strays).
    let mut chunks: Vec<Vec<u32>> = vec![Vec::new(); n_chunks.max(regions.len())];
    for id in 0..n as u32 {
        let sax = summaries.sax(id);
        let r = regions
            .iter()
            .position(|r| r.word.contains(sax))
            .expect("regions cover iSAX space");
        chunks[r.min(n_chunks - 1)].push(id);
    }
    chunks.truncate(n_chunks);
    // If fewer regions than chunks were produced, later chunks are empty;
    // rebalance trivially by moving whole trailing runs.
    Partition { chunks }
}

/// Splits a region on the (segment, bit) refinement that best balances
/// its sample; `None` when no refinement separates the members.
fn split_region(region: Region, summaries: &Summaries) -> Option<(Region, Region)> {
    let segs = region.word.segments();
    let mut best: Option<(usize, usize)> = None; // (imbalance, seg)
    for seg in 0..segs {
        if region.word.card_bits[seg] >= odyssey_core::sax::MAX_CARD_BITS {
            continue;
        }
        let shift = odyssey_core::sax::MAX_CARD_BITS - region.word.card_bits[seg] - 1;
        let ones = region
            .sample
            .iter()
            .filter(|&&id| (summaries.sax(id)[seg] >> shift) & 1 == 1)
            .count();
        if ones == 0 || ones == region.sample.len() {
            continue;
        }
        let imbalance = region.sample.len().abs_diff(2 * ones);
        if best.is_none_or(|(bi, _)| imbalance < bi) {
            best = Some((imbalance, seg));
        }
    }
    let (_, seg) = best?;
    let shift = odyssey_core::sax::MAX_CARD_BITS - region.word.card_bits[seg] - 1;
    let (mut zeros, mut ones) = (Vec::new(), Vec::new());
    for id in region.sample {
        if (summaries.sax(id)[seg] >> shift) & 1 == 1 {
            ones.push(id);
        } else {
            zeros.push(id);
        }
    }
    Some((
        Region {
            word: region.word.refine(seg, 0),
            sample: zeros,
        },
        Region {
            word: region.word.refine(seg, 1),
            sample: ones,
        },
    ))
}

/// A DPiSAX deployment: sample-partitioned chunks, per-node index, every
/// node answers every query, coordinator merge — no BSF sharing, no
/// stealing, no prediction.
pub struct DpiSaxCluster;

impl DpiSaxCluster {
    /// Builds the DPiSAX system on the shared simulated runtime.
    pub fn build(data: &DatasetBuffer, n_nodes: usize, seed: u64) -> OdysseyCluster {
        let config = ClusterConfig::new(n_nodes)
            .with_replication(Replication::EquallySplit)
            .with_scheduler(SchedulerKind::Static)
            .with_work_stealing(false)
            .with_bsf_sharing(false)
            .with_seed(seed);
        let sample = (data.num_series() / 100).max(256).min(data.num_series());
        let partition = dpisax_partition(data, n_nodes, config.segments, sample, seed);
        OdysseyCluster::build_with_partition(data, config, partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odyssey_core::search::answer::Answer;
    use odyssey_partition::validate_partition;
    use odyssey_workloads::generator::{cluster_mixture, random_walk};
    use odyssey_workloads::queries::{QueryWorkload, WorkloadKind};

    #[test]
    fn partition_is_valid() {
        let data = random_walk(800, 64, 7);
        for k in [1usize, 2, 4, 8] {
            let p = dpisax_partition(&data, k, 8, 200, 42);
            assert_eq!(p.num_chunks(), k);
            validate_partition(&p, 800).expect("valid");
        }
    }

    #[test]
    fn partition_is_roughly_balanced_on_uniform_data() {
        let data = random_walk(2000, 64, 9);
        let p = dpisax_partition(&data, 4, 8, 500, 1);
        let sizes: Vec<usize> = p.chunks.iter().map(|c| c.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(
            max < 4 * min.max(1),
            "sample-based balance too skewed: {sizes:?}"
        );
    }

    #[test]
    fn partition_groups_similar_series() {
        // DPiSAX routes series by iSAX region, so near-identical series
        // land on the same chunk (the opposite of DENSITY-AWARE, which
        // deliberately spreads them).
        let data = cluster_mixture(400, 64, 4, 0.01, 3);
        let p = dpisax_partition(&data, 4, 8, 200, 5);
        let chunk_of: Vec<usize> = (0..400u32)
            .map(|id| p.chunks.iter().position(|c| c.contains(&id)).unwrap())
            .collect();
        let mut close_pairs = 0usize;
        let mut colocated = 0usize;
        for i in 0..400usize {
            for j in (i + 1)..400usize {
                let d = odyssey_core::distance::euclidean_sq(data.series(i), data.series(j));
                if d < 0.5 {
                    close_pairs += 1;
                    if chunk_of[i] == chunk_of[j] {
                        colocated += 1;
                    }
                }
            }
        }
        assert!(close_pairs > 100, "need enough close pairs: {close_pairs}");
        assert!(
            colocated * 10 > close_pairs * 8,
            "most close pairs co-locate under DPiSAX: {colocated}/{close_pairs}"
        );
    }

    #[test]
    fn dpisax_cluster_is_exact() {
        let data = random_walk(900, 64, 21);
        let w = QueryWorkload::generate(
            &data,
            6,
            WorkloadKind::Mixed {
                hard_fraction: 0.5,
                noise: 0.05,
            },
            2,
        );
        let cluster = DpiSaxCluster::build(&data, 4, 77);
        let report = cluster.answer_batch(&w.queries);
        for qi in 0..w.len() {
            let mut want = Answer::none();
            for i in 0..data.num_series() {
                let d = odyssey_core::distance::euclidean_sq(w.query(qi), data.series(i));
                if d < want.distance_sq {
                    want = Answer::from_sq(d, Some(i as u32));
                }
            }
            assert!(
                (report.answers[qi].distance - want.distance).abs() < 1e-9,
                "query {qi}"
            );
        }
    }
}
