//! DMESSI and DMESSI-SW-BSF (Section 5, "Algorithms").
//!
//! DMESSI models the naive scale-out of a state-of-the-art single-node
//! index: chop the data into equal disjoint chunks, run an independent
//! MESSI-style index per node, broadcast every query to every node, and
//! take the minimum of the per-node answers. Its weakness — the reason
//! the paper builds Odyssey — is that a node holding series similar to a
//! query gets a tight BSF and prunes well, while all other nodes grind
//! with loose bounds; nothing balances that load.
//!
//! DMESSI-SW-BSF adds exactly one Odyssey ingredient: the system-wide
//! BSF-sharing channel, letting the lucky node's bound prune everyone.

use odyssey_cluster::{ClusterConfig, Replication, SchedulerKind};

/// DMESSI: disjoint equal chunks, every node answers every query, no
/// coordination beyond the final merge.
pub fn dmessi_config(n_nodes: usize) -> ClusterConfig {
    ClusterConfig::new(n_nodes)
        .with_replication(Replication::EquallySplit)
        .with_scheduler(SchedulerKind::Static)
        .with_work_stealing(false)
        .with_bsf_sharing(false)
}

/// DMESSI-SW-BSF: DMESSI plus the system-wide BSF-sharing channel.
pub fn dmessi_sw_bsf_config(n_nodes: usize) -> ClusterConfig {
    dmessi_config(n_nodes).with_bsf_sharing(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use odyssey_cluster::OdysseyCluster;
    use odyssey_core::search::answer::Answer;
    use odyssey_workloads::generator::random_walk;
    use odyssey_workloads::queries::{QueryWorkload, WorkloadKind};

    #[test]
    fn dmessi_is_exact() {
        let data = random_walk(900, 64, 3);
        let w = QueryWorkload::generate(
            &data,
            6,
            WorkloadKind::Mixed {
                hard_fraction: 0.5,
                noise: 0.05,
            },
            5,
        );
        for cfg in [dmessi_config(4), dmessi_sw_bsf_config(4)] {
            let cluster = OdysseyCluster::build(&data, cfg);
            let report = cluster.answer_batch(&w.queries);
            for qi in 0..w.len() {
                let mut want = Answer::none();
                for i in 0..data.num_series() {
                    let d = odyssey_core::distance::euclidean_sq(w.query(qi), data.series(i));
                    if d < want.distance_sq {
                        want = Answer::from_sq(d, Some(i as u32));
                    }
                }
                assert!(
                    (report.answers[qi].distance - want.distance).abs() < 1e-9,
                    "query {qi}"
                );
            }
        }
    }

    #[test]
    fn sw_bsf_reduces_work_on_easy_queries() {
        // With BSF sharing, the node holding the near-identical series
        // publishes a tight bound and the other nodes prune; total work
        // must not exceed the share-nothing run.
        let data = random_walk(4000, 64, 17);
        let w = QueryWorkload::generate(&data, 8, WorkloadKind::Easy { noise: 0.01 }, 19);
        let plain = OdysseyCluster::build(&data, dmessi_config(4)).answer_batch(&w.queries);
        let shared =
            OdysseyCluster::build(&data, dmessi_sw_bsf_config(4)).answer_batch(&w.queries);
        assert!(
            shared.total_units() <= plain.total_units(),
            "sharing {} vs plain {}",
            shared.total_units(),
            plain.total_units()
        );
        assert!(shared.bsf_broadcasts > 0);
    }

    #[test]
    fn dmessi_configs_differ_only_in_bsf_sharing() {
        let a = dmessi_config(8);
        let b = dmessi_sw_bsf_config(8);
        assert!(!a.bsf_sharing && b.bsf_sharing);
        assert!(!a.work_stealing && !b.work_stealing);
        assert_eq!(a.replication, b.replication);
    }
}
