//! # odyssey-baselines
//!
//! The competitor systems of the paper's evaluation (Section 5,
//! Figure 17d):
//!
//! * **DMESSI** — "we run the MESSI index independently in each system
//!   node": every node stores a disjoint chunk, answers every query on
//!   it, and the coordinator merges; no BSF sharing, no work-stealing.
//! * **DMESSI-SW-BSF** — DMESSI "extended by enabling system-wide sharing
//!   of the BSF values".
//! * **DPiSAX** — the distributed iSAX of Yagoubi et al.: a *sample* of
//!   the collection decides an iSAX-space partitioning table, series are
//!   routed to nodes by their iSAX word, each node builds a local index
//!   and answers every query, the coordinator merges partial results.
//!
//! All three run on the same simulated runtime as Odyssey
//! (`odyssey-cluster`), differing exactly where the real systems differ:
//! partitioning, BSF sharing, scheduling, and stealing. Per-node query
//! answering uses the same engine for all systems, which makes the
//! comparison about the *distributed* design — the quantity Figure 17d
//! isolates.

#![forbid(unsafe_code)]


pub mod dmessi;
pub mod dpisax;

pub use dmessi::{dmessi_config, dmessi_sw_bsf_config};
pub use dpisax::{dpisax_partition, DpiSaxCluster};
