//! # odyssey-core
//!
//! In-memory iSAX-based data-series index with the parallel exact
//! query-answering algorithm of *Odyssey* (PVLDB 2023).
//!
//! This crate implements the single-node half of the Odyssey framework:
//!
//! * data-series containers and z-normalization ([`series`]),
//! * distance kernels: Euclidean (with early abandoning) and DTW with the
//!   LB_Keogh lower bound ([`distance`]),
//! * PAA and iSAX summarizations with nested-cardinality lower bounds
//!   ([`paa`], [`sax`]),
//! * summarization buffers and the iSAX index tree ([`buffers`], [`tree`]),
//! * the [`Index`](index::Index) façade with parallel construction, and
//! * Odyssey's exact search: RS-batches, bounded priority queues, helping,
//!   and a shared atomic best-so-far ([`search`]).
//!
//! The distributed layer (replication, scheduling, work-stealing) lives in
//! the `odyssey-cluster` crate and is built on top of the hooks exposed
//! here: [`search::exact::run_search`] can traverse an explicit subset of
//! RS-batches (the primitive that makes data-free work-stealing
//! possible), and [`search::engine::BatchEngine`] keeps a node's worker
//! threads and scratch arenas resident across a whole query batch.
//!
//! ## Quick start
//!
//! ```
//! use odyssey_core::index::{Index, IndexConfig};
//! use odyssey_core::series::DatasetBuffer;
//!
//! // 1000 series of length 64, flattened row-major.
//! let n = 1000usize;
//! let len = 64usize;
//! let mut data = vec![0.0f32; n * len];
//! let mut x = 7u64;
//! for v in data.iter_mut() {
//!     // cheap xorshift random walk filler
//!     x ^= x << 13; x ^= x >> 7; x ^= x << 17;
//!     *v = (x % 1000) as f32 / 1000.0 - 0.5;
//! }
//! let cfg = IndexConfig::new(len).with_segments(8).with_leaf_capacity(32);
//! let index = Index::build(DatasetBuffer::from_vec(data, len), cfg, 2);
//! let query: Vec<f32> = (0..len).map(|i| (i as f32).sin()).collect();
//! let answer = index.exact_search(&query, 2);
//! assert!(answer.distance >= 0.0);
//! ```
//!
//! ## Unsafe policy
//!
//! This crate is one of the two workspace crates allowed to contain
//! `unsafe` (the other is `odyssey-cluster`, which contains none
//! today). Every `unsafe` block or impl must carry a `// SAFETY:`
//! comment, and `unsafe` may only appear in the modules whitelisted by
//! the repo lint (`cargo run -p xtask -- lint`): [`buffers`], [`tree`],
//! [`search::engine`], and [`search::scratch`].

#![deny(unsafe_op_in_unsafe_fn)]
#![deny(missing_debug_implementations)]

pub mod buffers;
pub mod distance;
pub mod index;
pub mod layout;
pub mod paa;
pub mod persist;
pub mod sax;
pub mod search;
pub mod series;
pub mod subsequence;
pub mod sync;
pub mod tree;

pub use index::{Index, IndexConfig};
pub use search::answer::{Answer, KnnAnswer};
pub use series::DatasetBuffer;
