//! Data-series containers.
//!
//! A *data series* is a fixed-length sequence of `f32` points (Section 2 of
//! the paper). Collections are stored flat and row-major in a
//! [`DatasetBuffer`], which is cheaply cloneable (`Arc`-backed) so that a
//! single in-memory copy can be shared by the index tree, the search
//! workers, and (in the simulated cluster) every node of a replication
//! group.

use std::sync::Arc;

/// An immutable, shareable collection of equal-length data series.
///
/// The raw values are stored contiguously: series `i` occupies
/// `data[i * series_len .. (i + 1) * series_len]`. Storing the collection
/// flat keeps index leaves as plain `u32` id lists — the work-stealing
/// protocol never ships raw values, only ids and tree coordinates.
#[derive(Clone)]
pub struct DatasetBuffer {
    data: Arc<[f32]>,
    series_len: usize,
}

impl DatasetBuffer {
    /// Wraps a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `series_len == 0` or `data.len()` is not a multiple of
    /// `series_len`.
    pub fn new(data: Arc<[f32]>, series_len: usize) -> Self {
        assert!(series_len > 0, "series length must be positive");
        assert_eq!(
            data.len() % series_len,
            0,
            "buffer length {} is not a multiple of series length {}",
            data.len(),
            series_len
        );
        Self { data, series_len }
    }

    /// Builds a buffer from a vector of values.
    pub fn from_vec(data: Vec<f32>, series_len: usize) -> Self {
        Self::new(data.into(), series_len)
    }

    /// Builds a buffer by concatenating individual series.
    ///
    /// # Panics
    /// Panics if the series do not all share the same length.
    pub fn from_series<S: AsRef<[f32]>>(series: &[S]) -> Self {
        assert!(!series.is_empty(), "cannot build an empty dataset");
        let len = series[0].as_ref().len();
        let mut data = Vec::with_capacity(series.len() * len);
        for s in series {
            assert_eq!(s.as_ref().len(), len, "all series must share a length");
            data.extend_from_slice(s.as_ref());
        }
        Self::from_vec(data, len)
    }

    /// Number of series in the collection.
    #[inline]
    pub fn num_series(&self) -> usize {
        self.data.len() / self.series_len
    }

    /// Length (dimensionality) of each series.
    #[inline]
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Returns series `id` as a slice.
    ///
    /// # Panics
    /// Panics if `id >= self.num_series()`.
    #[inline]
    pub fn series(&self, id: usize) -> &[f32] {
        let start = id * self.series_len;
        &self.data[start..start + self.series_len]
    }

    /// The underlying flat buffer.
    #[inline]
    pub fn raw(&self) -> &[f32] {
        &self.data
    }

    /// Total size of the raw values in bytes (used by the index-size
    /// experiment, Figure 14).
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Builds a new buffer containing only the series whose ids are listed,
    /// in order. Used by the partitioning schemes to materialize per-node
    /// chunks.
    pub fn gather(&self, ids: &[u32]) -> DatasetBuffer {
        let mut data = Vec::with_capacity(ids.len() * self.series_len);
        for &id in ids {
            data.extend_from_slice(self.series(id as usize));
        }
        DatasetBuffer::from_vec(data, self.series_len)
    }
}

impl std::fmt::Debug for DatasetBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DatasetBuffer")
            .field("num_series", &self.num_series())
            .field("series_len", &self.series_len)
            .finish()
    }
}

/// Z-normalizes a series in place: zero mean, unit standard deviation.
///
/// Constant series (standard deviation below `1e-12`) are mapped to all
/// zeros, matching the convention of the UCR suite and the MESSI code base.
pub fn znormalize(series: &mut [f32]) {
    let n = series.len() as f64;
    if series.is_empty() {
        return;
    }
    let mean = series.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var = series
        .iter()
        .map(|&v| {
            let d = v as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    let std = var.sqrt();
    if std < 1e-12 {
        series.iter_mut().for_each(|v| *v = 0.0);
    } else {
        series
            .iter_mut()
            .for_each(|v| *v = ((*v as f64 - mean) / std) as f32);
    }
}

/// Returns a z-normalized copy of `series`.
pub fn znormalized(series: &[f32]) -> Vec<f32> {
    let mut out = series.to_vec();
    znormalize(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_roundtrip() {
        let buf = DatasetBuffer::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3);
        assert_eq!(buf.num_series(), 2);
        assert_eq!(buf.series_len(), 3);
        assert_eq!(buf.series(0), &[1.0, 2.0, 3.0]);
        assert_eq!(buf.series(1), &[4.0, 5.0, 6.0]);
        assert_eq!(buf.size_bytes(), 24);
    }

    #[test]
    fn from_series_concatenates() {
        let buf = DatasetBuffer::from_series(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(buf.num_series(), 2);
        assert_eq!(buf.raw(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn rejects_ragged_buffer() {
        DatasetBuffer::from_vec(vec![1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn gather_selects_rows() {
        let buf = DatasetBuffer::from_vec((0..8).map(|v| v as f32).collect(), 2);
        let sub = buf.gather(&[3, 0]);
        assert_eq!(sub.series(0), &[6.0, 7.0]);
        assert_eq!(sub.series(1), &[0.0, 1.0]);
    }

    #[test]
    fn znormalize_zero_mean_unit_std() {
        let mut s: Vec<f32> = vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        znormalize(&mut s);
        let mean: f32 = s.iter().sum::<f32>() / s.len() as f32;
        let var: f32 = s.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / s.len() as f32;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-5);
    }

    #[test]
    fn znormalize_constant_series() {
        let mut s = vec![3.5f32; 16];
        znormalize(&mut s);
        assert!(s.iter().all(|&v| v == 0.0));
    }
}
