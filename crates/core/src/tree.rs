//! The iSAX index tree (index-construction phase 2).
//!
//! Each summarization buffer becomes one **root subtree** (Figure 1d).
//! Inner nodes split by refining one segment's cardinality by one bit; the
//! two children cover the two halves of the parent's region. Leaves hold
//! no series data at all — only a [`LeafSlice`]: a contiguous slot range
//! in the index's *scan layout* (`crate::layout::LeafLayout`), where the
//! raw values and SAX words of every leaf are stored back to back. The
//! work-stealing protocol still never moves data across nodes: thieves
//! rebuild identical trees (construction is deterministic — split
//! choices and the leaf permutation depend only on the data), so slot
//! ranges mean the same thing on every node of a replication group.
//!
//! [`build_forest`] therefore returns the forest *plus* the scan
//! permutation (`scan position -> original series id`) that the layout
//! is materialized from.

use crate::buffers::{SummarizationBuffer, SummarizationBuffers, Summaries};
use crate::sax::{IsaxWord, MAX_CARD_BITS};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A contiguous range of scan-layout slots (see
/// `crate::layout::LeafLayout`).
///
/// **Contract:** leaf slices of one index partition `[0, num_series)` —
/// pairwise disjoint, and every position covered by exactly one leaf.
/// Within a slice, positions are ordered by ascending original series
/// id (dataset order), which is what keeps construction — and hence the
/// replication/stealing protocol — deterministic. The mapping from
/// positions back to original ids lives in the index's layout
/// (`LeafLayout::original_id`); answers always report original ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafSlice {
    /// First scan position of the leaf's series.
    pub offset: u32,
    /// Number of series stored in the leaf.
    pub len: u32,
}

impl LeafSlice {
    /// The covered scan positions as a `usize` range.
    #[inline]
    pub fn range(&self) -> std::ops::Range<usize> {
        let s = self.offset as usize;
        s..s + self.len as usize
    }

    /// Number of series in the leaf.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the leaf stores no series.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A leaf node: an iSAX region plus the scan-layout slots of the series
/// whose summaries fall in that region.
#[derive(Debug)]
pub struct Leaf {
    /// The iSAX region this leaf covers.
    pub word: IsaxWord,
    /// The leaf's contiguous slot range in the scan layout.
    pub slice: LeafSlice,
}

/// A tree node.
#[derive(Debug)]
pub enum Node {
    /// Inner node refined on `split_seg`; `children[b]` covers the half
    /// whose next bit on that segment is `b`.
    Inner {
        /// Region covered by this node.
        word: IsaxWord,
        /// Segment whose cardinality the split refined.
        split_seg: usize,
        /// The two half-region children.
        children: [Box<Node>; 2],
    },
    /// Leaf node.
    Leaf(Leaf),
}

impl Node {
    /// The iSAX region of this node.
    pub fn word(&self) -> &IsaxWord {
        match self {
            Node::Inner { word, .. } => word,
            Node::Leaf(l) => &l.word,
        }
    }

    /// Number of leaves below (and including) this node.
    pub fn leaf_count(&self) -> usize {
        match self {
            Node::Inner { children, .. } => {
                children[0].leaf_count() + children[1].leaf_count()
            }
            Node::Leaf(_) => 1,
        }
    }

    /// Number of series stored below this node.
    pub fn series_count(&self) -> usize {
        match self {
            Node::Inner { children, .. } => {
                children[0].series_count() + children[1].series_count()
            }
            Node::Leaf(l) => l.slice.len(),
        }
    }

    /// Maximum depth below this node (a lone leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Node::Inner { children, .. } => 1 + children[0].depth().max(children[1].depth()),
            Node::Leaf(_) => 1,
        }
    }

    /// Approximate heap size of the subtree in bytes (words + nodes);
    /// feeds the index-size experiment (Figure 14). Per-leaf id storage
    /// lives in the scan layout and is accounted there.
    pub fn size_bytes(&self) -> usize {
        let word_bytes = |w: &IsaxWord| w.symbols.len() * 2;
        match self {
            Node::Inner { word, children, .. } => {
                std::mem::size_of::<Node>()
                    + word_bytes(word)
                    + children[0].size_bytes()
                    + children[1].size_bytes()
            }
            Node::Leaf(l) => std::mem::size_of::<Node>() + word_bytes(&l.word),
        }
    }

    /// Calls `f` on every leaf below this node, in left-to-right order.
    pub fn for_each_leaf<'a>(&'a self, f: &mut impl FnMut(&'a Leaf)) {
        match self {
            Node::Inner { children, .. } => {
                children[0].for_each_leaf(f);
                children[1].for_each_leaf(f);
            }
            Node::Leaf(l) => f(l),
        }
    }
}

/// One root subtree: the tree grown from a single summarization buffer.
#[derive(Debug)]
pub struct RootSubtree {
    /// Root-word key of the originating buffer.
    pub key: u64,
    /// The subtree.
    pub node: Node,
    /// Number of series in the subtree.
    pub size: usize,
}

/// Segment-major (SoA) planes of the forest's **root words**: byte
/// `lo[i * len + r]` / `hi[i * len + r]` is the full-cardinality symbol
/// interval covered by segment `i` of root `r`'s iSAX word
/// ([`IsaxWord::full_range`]).
///
/// An iSAX forest over a high-entropy collection is wide and shallow —
/// most series land in distinct root words — so the engine's
/// node-level lower bound is evaluated once per *root* per query, and
/// that sweep dominates traversal. This transpose is the shape the
/// 8-way SIMD word-mindist kernel
/// ([`crate::sax::MindistTable::root_lb_block`]) consumes: per segment,
/// eight roots' `lo`/`hi` bytes are two contiguous 8-byte loads.
///
/// Built once at index assembly (both the build and the ODY2 load path);
/// never persisted — it is a pure function of the forest.
#[derive(Debug, Clone, Default)]
pub struct RootSoa {
    /// Lower symbol bounds, segment-major, stride = root count.
    lo: Vec<u8>,
    /// Upper symbol bounds, segment-major, stride = root count.
    hi: Vec<u8>,
    /// Number of roots (the plane stride).
    len: usize,
    /// Segments per word (the plane count).
    segments: usize,
}

impl RootSoa {
    /// Builds the planes from the forest's root words.
    ///
    /// # Panics
    /// Panics if the root words disagree on segment count.
    pub fn build(forest: &[RootSubtree]) -> Self {
        Self::from_words(forest.iter().map(|t| t.node.word()))
    }

    /// Builds the planes from an explicit word sequence (exposed for
    /// tests; [`RootSoa::build`] is the production path).
    pub fn from_words<'a>(words: impl ExactSizeIterator<Item = &'a IsaxWord>) -> Self {
        let len = words.len();
        let mut segments = 0;
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        for (r, word) in words.enumerate() {
            if r == 0 {
                segments = word.segments();
                lo = vec![0u8; segments * len];
                hi = vec![0u8; segments * len];
            }
            assert_eq!(word.segments(), segments, "ragged root word {r}");
            for i in 0..segments {
                let (l, h) = word.full_range(i);
                lo[i * len + r] = l as u8;
                hi[i * len + r] = h as u8;
            }
        }
        RootSoa {
            lo,
            hi,
            len,
            segments,
        }
    }

    /// Number of roots covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the planes cover no roots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Segments per word (0 for an empty forest).
    #[inline]
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// The lower-bound plane (segment-major, stride [`RootSoa::len`]).
    #[inline]
    pub(crate) fn lo_plane(&self) -> &[u8] {
        &self.lo
    }

    /// The upper-bound plane (segment-major, stride [`RootSoa::len`]).
    #[inline]
    pub(crate) fn hi_plane(&self) -> &[u8] {
        &self.hi
    }

    /// Heap bytes held by the planes.
    pub fn size_bytes(&self) -> usize {
        self.lo.len() + self.hi.len()
    }
}

/// Picks the segment to split: the lowest-cardinality segment whose
/// refinement actually separates the ids; among equal cardinalities the
/// most balanced split wins. Returns `None` when no segment can separate
/// (all remaining summaries identical, or all segments saturated).
fn choose_split(word: &IsaxWord, ids: &[u32], summaries: &Summaries) -> Option<usize> {
    let segs = word.segments();
    let min_bits = (0..segs)
        .filter(|&s| word.card_bits[s] < MAX_CARD_BITS)
        .map(|s| word.card_bits[s])
        .min()?;
    let mut best: Option<(usize, usize)> = None; // (imbalance, seg)
    for seg in 0..segs {
        if word.card_bits[seg] != min_bits {
            continue;
        }
        let shift = MAX_CARD_BITS - word.card_bits[seg] - 1;
        let ones = ids
            .iter()
            .filter(|&&id| (summaries.sax(id)[seg] >> shift) & 1 == 1)
            .count();
        if ones == 0 || ones == ids.len() {
            continue; // does not separate
        }
        let imbalance = ids.len().abs_diff(2 * ones);
        if best.is_none_or(|(bi, _)| imbalance < bi) {
            best = Some((imbalance, seg));
        }
    }
    match best {
        Some((_, seg)) => Some(seg),
        None => {
            // No minimum-cardinality segment separates: fall back to any
            // refinable segment that does.
            for seg in 0..segs {
                if word.card_bits[seg] >= MAX_CARD_BITS {
                    continue;
                }
                let shift = MAX_CARD_BITS - word.card_bits[seg] - 1;
                let ones = ids
                    .iter()
                    .filter(|&&id| (summaries.sax(id)[seg] >> shift) & 1 == 1)
                    .count();
                if ones > 0 && ones < ids.len() {
                    return Some(seg);
                }
            }
            None
        }
    }
}

/// Recursively builds a node for `word` covering `ids`, appending each
/// finished leaf's ids to `perm` (the subtree-local scan permutation)
/// and recording the covered range as the leaf's slice.
fn build_node(
    word: IsaxWord,
    ids: Vec<u32>,
    summaries: &Summaries,
    leaf_capacity: usize,
    perm: &mut Vec<u32>,
) -> Node {
    let make_leaf = |word: IsaxWord, ids: Vec<u32>, perm: &mut Vec<u32>| {
        let slice = LeafSlice {
            offset: perm.len() as u32,
            len: ids.len() as u32,
        };
        perm.extend_from_slice(&ids);
        Node::Leaf(Leaf { word, slice })
    };
    if ids.len() <= leaf_capacity {
        return make_leaf(word, ids, perm);
    }
    let Some(seg) = choose_split(&word, &ids, summaries) else {
        // Identical summaries beyond capacity: keep an oversized leaf.
        return make_leaf(word, ids, perm);
    };
    let shift = MAX_CARD_BITS - word.card_bits[seg] - 1;
    let (mut zeros, mut ones) = (Vec::new(), Vec::new());
    for id in ids {
        if (summaries.sax(id)[seg] >> shift) & 1 == 1 {
            ones.push(id);
        } else {
            zeros.push(id);
        }
    }
    let child0 = build_node(word.refine(seg, 0), zeros, summaries, leaf_capacity, perm);
    let child1 = build_node(word.refine(seg, 1), ones, summaries, leaf_capacity, perm);
    Node::Inner {
        word,
        split_seg: seg,
        children: [Box::new(child0), Box::new(child1)],
    }
}

/// Builds the root subtree of one summarization buffer, returning the
/// subtree (leaf slices local to this subtree, i.e. starting at 0) and
/// its scan permutation (local position -> original series id).
pub fn build_root_subtree(
    buffer: &SummarizationBuffer,
    summaries: &Summaries,
    leaf_capacity: usize,
) -> (RootSubtree, Vec<u32>) {
    let segs = summaries.segments();
    let mut symbols = vec![0u8; segs];
    for (i, sym) in symbols.iter_mut().enumerate() {
        *sym = ((buffer.key >> (segs - 1 - i)) & 1) as u8;
    }
    let word = IsaxWord {
        symbols,
        card_bits: vec![1; segs],
    };
    let mut perm = Vec::with_capacity(buffer.ids.len());
    let node = build_node(word, buffer.ids.clone(), summaries, leaf_capacity, &mut perm);
    (
        RootSubtree {
            key: buffer.key,
            node,
            size: buffer.ids.len(),
        },
        perm,
    )
}

/// Shifts every leaf slice below `node` by `base` scan positions
/// (relocating a subtree-local permutation into the global one).
fn shift_slices(node: &mut Node, base: u32) {
    match node {
        Node::Inner { children, .. } => {
            shift_slices(&mut children[0], base);
            shift_slices(&mut children[1], base);
        }
        Node::Leaf(l) => l.slice.offset += base,
    }
}

/// Builds all root subtrees in parallel: `n_threads` workers claim buffers
/// with `Fetch&Add` and grow them independently (the embarrassingly
/// parallel phase the paper inherits from MESSI). Output order matches
/// buffer order (ascending key), independent of thread interleaving.
///
/// Returns the forest plus the global scan permutation: subtree-local
/// permutations concatenated in buffer order, with every leaf slice
/// shifted to its global offset. `perm[p]` is the original id of the
/// series stored at scan position `p`.
pub fn build_forest(
    buffers: &SummarizationBuffers,
    summaries: &Summaries,
    leaf_capacity: usize,
    n_threads: usize,
) -> (Vec<RootSubtree>, Vec<u32>) {
    let nb = buffers.len();
    let mut slots: Vec<Option<(RootSubtree, Vec<u32>)>> = Vec::with_capacity(nb);
    slots.resize_with(nb, || None);
    let next = AtomicUsize::new(0);
    let n_threads = n_threads.max(1).min(nb.max(1));
    let slots_ptr = SlotsPtr::new(&mut slots);
    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            let next = &next;
            let slots_ptr = &slots_ptr;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= nb {
                    break;
                }
                let st = build_root_subtree(&buffers.buffers[i], summaries, leaf_capacity);
                // SAFETY: `i < nb` (checked above) keeps the write in
                // bounds, and the `fetch_add` claim hands each index to
                // exactly one thread, so no slot is written twice or
                // concurrently; the scope joins all writers before the
                // vector is read.
                unsafe {
                    *slots_ptr.0.add(i) = Some(st);
                }
            });
        }
    });
    let mut forest = Vec::with_capacity(nb);
    let mut perm = Vec::with_capacity(summaries.num_series());
    for slot in slots {
        let (mut st, local) = slot.expect("every buffer index was claimed");
        shift_slices(&mut st.node, perm.len() as u32);
        perm.extend_from_slice(&local);
        forest.push(st);
    }
    (forest, perm)
}

/// One [`build_forest`] output slot: a built subtree plus its local
/// leaf-order permutation, `None` until its claiming thread writes it.
type SubtreeSlot = Option<(RootSubtree, Vec<u32>)>;

/// Pointer into the borrowed subtree-slot vector of [`build_forest`],
/// shared across its worker threads.
///
/// # Invariants
///
/// * The wrapper holds the `&'a mut` borrow it was built from (via
///   `PhantomData`), so the pointer cannot outlive — or alias a safe
///   re-borrow of — the slot vector while any thread still holds it.
/// * Writers only reach slots through [`build_forest`]'s `fetch_add`
///   index claiming, so each slot is written by exactly one thread.
#[derive(Debug)]
struct SlotsPtr<'a>(*mut SubtreeSlot, std::marker::PhantomData<&'a mut [SubtreeSlot]>);

impl<'a> SlotsPtr<'a> {
    fn new(target: &'a mut [SubtreeSlot]) -> Self {
        SlotsPtr(target.as_mut_ptr(), std::marker::PhantomData)
    }
}

// SAFETY: the wrapped pointer is derived from an exclusive borrow that
// the `PhantomData` keeps alive, and concurrent writes go to distinct
// claimed slots (see the type invariants), so moving the handle to —
// and sharing it with — other threads cannot race.
unsafe impl Send for SlotsPtr<'_> {}
// SAFETY: as above — `&SlotsPtr` only exposes writes to claimed slots.
unsafe impl Sync for SlotsPtr<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffers::{SummarizationBuffers, Summaries};
    use crate::series::DatasetBuffer;

    fn walk_dataset(n: usize, len: usize, seed: u64) -> DatasetBuffer {
        let mut x = seed | 1;
        let mut data = Vec::with_capacity(n * len);
        for _ in 0..n {
            let mut acc = 0.0f32;
            let mut s = Vec::with_capacity(len);
            for _ in 0..len {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                acc += ((x % 2000) as f32 / 1000.0) - 1.0;
                s.push(acc);
            }
            crate::series::znormalize(&mut s);
            data.extend_from_slice(&s);
        }
        DatasetBuffer::from_vec(data, len)
    }

    fn forest_for(n: usize, cap: usize) -> (Vec<RootSubtree>, Vec<u32>, Summaries) {
        let data = walk_dataset(n, 64, 1234);
        let summaries = Summaries::compute(&data, 8, 2);
        let buffers = SummarizationBuffers::build(&summaries);
        let (forest, perm) = build_forest(&buffers, &summaries, cap, 3);
        (forest, perm, summaries)
    }

    #[test]
    fn forest_stores_every_series_once() {
        let (forest, perm, _) = forest_for(800, 16);
        let total: usize = forest.iter().map(|t| t.node.series_count()).sum();
        assert_eq!(total, 800);
        assert_eq!(perm.len(), 800);
        // Leaf slices partition the scan positions, and the permutation
        // covers every original id exactly once.
        let mut pos_seen = vec![false; 800];
        for t in &forest {
            t.node.for_each_leaf(&mut |leaf| {
                for p in leaf.slice.range() {
                    assert!(!pos_seen[p], "position {p} covered twice");
                    pos_seen[p] = true;
                }
            });
        }
        assert!(pos_seen.iter().all(|&b| b));
        let mut id_seen = vec![false; 800];
        for &id in &perm {
            assert!(!id_seen[id as usize], "id {id} appears twice");
            id_seen[id as usize] = true;
        }
        assert!(id_seen.iter().all(|&b| b));
    }

    #[test]
    fn leaves_respect_capacity_or_are_unsplittable() {
        let (forest, perm, summaries) = forest_for(1000, 8);
        for t in &forest {
            t.node.for_each_leaf(&mut |leaf| {
                if leaf.slice.len() > 8 {
                    // Oversized leaves are only allowed when summaries are
                    // identical on all refinable bits.
                    let ids = &perm[leaf.slice.range()];
                    let first = summaries.sax(ids[0]).to_vec();
                    for &id in ids {
                        assert_eq!(summaries.sax(id), &first[..]);
                    }
                }
            });
        }
    }

    #[test]
    fn leaf_ids_ascend_within_each_slice() {
        // The permutation stores each leaf's series in dataset order —
        // the determinism contract documented on `LeafSlice`.
        let (forest, perm, _) = forest_for(700, 10);
        for t in &forest {
            t.node.for_each_leaf(&mut |leaf| {
                let ids = &perm[leaf.slice.range()];
                for w in ids.windows(2) {
                    assert!(w[0] < w[1], "leaf ids must ascend");
                }
            });
        }
    }

    #[test]
    fn leaf_words_contain_their_series() {
        let (forest, perm, summaries) = forest_for(600, 12);
        for t in &forest {
            t.node.for_each_leaf(&mut |leaf| {
                for &id in &perm[leaf.slice.range()] {
                    assert!(
                        leaf.word.contains(summaries.sax(id)),
                        "leaf word must cover every stored series"
                    );
                }
            });
        }
    }

    #[test]
    fn children_partition_parent_region() {
        fn check(node: &Node) {
            if let Node::Inner {
                word,
                split_seg,
                children,
            } = node
            {
                for (b, child) in children.iter().enumerate() {
                    let cw = child.word();
                    assert_eq!(cw.card_bits[*split_seg], word.card_bits[*split_seg] + 1);
                    assert_eq!(cw.symbols[*split_seg] & 1, b as u8);
                    check(child);
                }
            }
        }
        let (forest, _, _) = forest_for(700, 10);
        for t in &forest {
            check(&t.node);
        }
    }

    #[test]
    fn parallel_build_is_deterministic() {
        let data = walk_dataset(500, 64, 77);
        let summaries = Summaries::compute(&data, 8, 2);
        let buffers = SummarizationBuffers::build(&summaries);
        let (f1, p1) = build_forest(&buffers, &summaries, 10, 1);
        let (f4, p4) = build_forest(&buffers, &summaries, 10, 4);
        assert_eq!(f1.len(), f4.len());
        assert_eq!(p1, p4, "scan permutation must not depend on threads");
        for (a, b) in f1.iter().zip(&f4) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.size, b.size);
            let mut la = Vec::new();
            let mut lb = Vec::new();
            a.node.for_each_leaf(&mut |l| la.push(l.slice));
            b.node.for_each_leaf(&mut |l| lb.push(l.slice));
            assert_eq!(la, lb);
        }
    }
}
