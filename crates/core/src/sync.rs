//! Poisonable phase barrier for the search runtimes.
//!
//! The three-phase engine body ([`crate::search::exact::ExecShared`])
//! synchronizes its participants with a cyclic barrier. `std::sync::
//! Barrier` has two problems here:
//!
//! 1. **Unwind safety.** If one participant panics between phases, the
//!    survivors block on `Barrier::wait` forever — a worker panic used
//!    to hang the whole pool (and CI) instead of failing the round. A
//!    [`PhaseBarrier`] can be *poisoned*: every current and future
//!    waiter aborts the round with a clear panic message instead of
//!    deadlocking.
//! 2. **Sanitizer visibility.** `Barrier::wait` is a non-generic std
//!    function, so under `-Zsanitizer=thread` (without `-Zbuild-std`)
//!    its internal synchronization is invisible to ThreadSanitizer and
//!    every barrier-ordered access is reported as a false-positive
//!    race. [`PhaseBarrier`] is compiled into this crate, so its
//!    atomics and monomorphized `Mutex<T>` critical sections are
//!    instrumented and the happens-before edges are visible — the
//!    repo's TSan CI tier depends on this.
//!
//! The barrier is cyclic (generation-counted) and is shared by the
//! pool, the scoped per-query driver, and the lane runtime.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

/// State protected by the barrier's mutex.
#[derive(Debug)]
struct BarrierState {
    /// Participants currently waiting in this generation.
    count: usize,
    /// Completed-generation counter; bumped by the last arriver.
    generation: u64,
}

/// A cyclic, poisonable `n`-party barrier (see the module docs).
#[derive(Debug)]
pub struct PhaseBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    parties: usize,
    /// Mirror of `BarrierState::generation`, published with `Release`
    /// by the last arriver and re-read with `Acquire` by every leaver:
    /// an explicit instrumented happens-before edge for ThreadSanitizer
    /// (the mutex alone would do for correctness).
    generation: AtomicU64,
    /// Set by [`PhaseBarrier::poison`]; makes every current and future
    /// [`PhaseBarrier::wait`] panic instead of blocking.
    poisoned: AtomicBool,
}

impl PhaseBarrier {
    /// A barrier for `parties` participants (≥ 1).
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1, "a barrier needs at least one party");
        PhaseBarrier {
            state: Mutex::new(BarrierState {
                count: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
            parties,
            generation: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Number of participants.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Blocks until all `parties` participants have called `wait`, then
    /// releases them together (cyclic: the barrier is immediately
    /// reusable for the next phase).
    ///
    /// # Panics
    /// Panics — instead of blocking forever — if the barrier is (or
    /// becomes) poisoned because a sibling worker panicked mid-round.
    pub fn wait(&self) {
        if self.parties == 1 {
            self.check_poison();
            return;
        }
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        self.check_poison();
        let arrived_gen = st.generation;
        st.count += 1;
        if st.count == self.parties {
            st.count = 0;
            st.generation += 1;
            self.generation.store(st.generation, Ordering::Release);
            drop(st);
            self.cv.notify_all();
        } else {
            while st.generation == arrived_gen && !self.poisoned.load(Ordering::Relaxed) {
                st = self
                    .cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            drop(st);
            self.check_poison();
            // Pair with the last arriver's `Release` store so the edge
            // is explicit under ThreadSanitizer.
            let _ = self.generation.load(Ordering::Acquire);
        }
    }

    /// Poisons the barrier: every participant currently blocked in
    /// [`PhaseBarrier::wait`] — and every later caller — panics with a
    /// clear message instead of waiting for a party that will never
    /// arrive. Called by the runtimes when a worker's round body
    /// panics.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        // Take the lock so a waiter cannot re-check the flag and then
        // sleep after our notification (missed-wakeup race).
        drop(self.state.lock().unwrap_or_else(PoisonError::into_inner));
        self.cv.notify_all();
    }

    /// Whether the barrier has been poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Clears poison and waiter state so the barrier can serve another
    /// round. Only sound once no thread is inside [`PhaseBarrier::wait`]
    /// — the pool calls it after draining every worker of the failed
    /// job.
    pub fn reset(&self) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.count = 0;
        self.poisoned.store(false, Ordering::SeqCst);
    }

    #[inline]
    fn check_poison(&self) {
        assert!(
            !self.poisoned.load(Ordering::SeqCst),
            "phase barrier poisoned: a sibling worker panicked mid-round; \
             the round is aborted instead of deadlocking"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_party_barrier_never_blocks() {
        let b = PhaseBarrier::new(1);
        for _ in 0..10 {
            b.wait();
        }
    }

    #[test]
    fn barrier_orders_phases_across_threads() {
        let n = 4;
        let b = PhaseBarrier::new(n);
        let phase1 = AtomicUsize::new(0);
        let phase2 = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..n {
                s.spawn(|| {
                    phase1.fetch_add(1, Ordering::Relaxed);
                    b.wait();
                    // Every participant must observe all phase-1 work.
                    assert_eq!(phase1.load(Ordering::Relaxed), n);
                    phase2.fetch_add(1, Ordering::Relaxed);
                    b.wait();
                    assert_eq!(phase2.load(Ordering::Relaxed), n);
                });
            }
        });
    }

    #[test]
    fn barrier_is_cyclic() {
        let b = PhaseBarrier::new(2);
        let rounds = 50;
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..rounds {
                        b.wait();
                    }
                });
            }
        });
    }

    #[test]
    fn poison_aborts_current_and_future_waiters() {
        let b = PhaseBarrier::new(2);
        std::thread::scope(|s| {
            let waiter = s.spawn(|| catch_unwind(AssertUnwindSafe(|| b.wait())));
            // Give the waiter time to block, then poison instead of
            // arriving (simulating a sibling panic).
            std::thread::sleep(std::time::Duration::from_millis(20));
            b.poison();
            let out = waiter.join().expect("waiter thread itself joined");
            assert!(out.is_err(), "blocked waiter must panic, not hang");
        });
        // Future waiters fail fast too.
        assert!(catch_unwind(AssertUnwindSafe(|| b.wait())).is_err());
        // After a reset the barrier serves again.
        b.reset();
        assert!(!b.is_poisoned());
        let b1 = PhaseBarrier::new(1);
        b1.wait();
    }

    #[test]
    fn reset_restores_service_after_poison() {
        let b = PhaseBarrier::new(2);
        b.poison();
        b.reset();
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| b.wait());
            }
        });
    }
}
