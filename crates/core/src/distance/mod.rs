//! Distance kernels.
//!
//! The paper's focus is Euclidean distance (ED) with an early-abandoning
//! scan over candidate series; Section 4 extends query answering to Dynamic
//! Time Warping (DTW) using the LB_Keogh envelope lower bound.
//!
//! All kernels work on *squared* distances internally — the square root is
//! monotone, so pruning decisions and best-so-far comparisons are identical
//! while each comparison saves a `sqrt`. Public result types expose the
//! rooted value where the paper reports one.

pub mod dtw;
pub mod ed;
pub mod simd;

pub use dtw::{
    dtw_banded, dtw_banded_scalar, keogh_envelope, keogh_envelope_reusing, lb_keogh_sq,
    lb_keogh_sq_scalar, LbKeoghEnvelope,
};
pub use ed::{euclidean, euclidean_sq, euclidean_sq_early_abandon, euclidean_sq_early_abandon_scalar};
