//! Explicit AVX2 `core::arch` kernels for the three dominant hot-path
//! loops: early-abandoning Euclidean distance, early-abandoning
//! LB_Keogh, and the mindist-table block sweep over the SoA SAX
//! transpose — plus the vectorizable half of the banded-DTW row
//! recurrence.
//!
//! Every function here is **bit-identical** to its scalar counterpart
//! (`crates/core/tests/simd_equivalence.rs` pins this with exhaustive
//! tail/threshold property tests): the scalar kernels accumulate into
//! four independent `f64` lanes in a fixed order, and one `__m256d`
//! register *is* those four lanes, so the same subtractions, products,
//! and adds happen with the same roundings. No FMA is used anywhere —
//! fusing would change the rounding of `d * d + acc` and break the
//! batch/lane/cluster bit-identity contracts that the rest of the
//! system is built on.
//!
//! # Dispatch contract
//!
//! Everything in this module is `unsafe` and compiled with
//! `#[target_feature(enable = "avx2")]`: calling any of it on a CPU
//! without AVX2 is immediate undefined behavior (illegal instruction at
//! best). The **only** callers are the safe wrappers in
//! [`super`](crate::distance::simd), each of which asserts
//! [`super::avx2_available`] — i.e. a cached
//! `is_x86_feature_detected!("avx2")` — before entering. Do not call
//! these functions from anywhere else.

#![allow(unsafe_op_in_unsafe_fn)]

use core::arch::x86_64::*;

/// Lanes per `__m256d` accumulator — equals the scalar kernels' `ACCS`.
const ACCS: usize = 4;
/// Elements between early-abandon checks (scalar `ABANDON_BLOCK`).
const ABANDON_BLOCK: usize = 32;

/// Horizontal sum of the four accumulator lanes in the scalar kernels'
/// order: `((acc0 + acc1) + acc2) + acc3`. The obvious `hadd`-based
/// reductions associate differently and would break bit-identity.
///
/// # Safety
/// Requires AVX: callers are `target_feature(avx2)` kernels, themselves
/// gated by the runtime detection in [`super::avx2_available`]
/// (`is_x86_feature_detected!`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hsum_ordered(acc: __m256d) -> f64 {
    let lo = _mm256_castpd256_pd128(acc);
    let hi = _mm256_extractf128_pd::<1>(acc);
    let a0 = _mm_cvtsd_f64(lo);
    let a1 = _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
    let a2 = _mm_cvtsd_f64(hi);
    let a3 = _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
    ((a0 + a1) + a2) + a3
}

/// AVX2 early-abandoning squared Euclidean distance; bit-identical to
/// [`crate::distance::ed::euclidean_sq_early_abandon_scalar`].
///
/// The scalar kernel subtracts in `f32`, widens to `f64`, squares, and
/// accumulates element `4k + l` into lane `l`; this version performs
/// the identical per-lane operation chain four lanes at a time.
///
/// # Safety
/// The CPU must support AVX2; callers must be gated by the runtime
/// detection in [`super::avx2_available`] (`is_x86_feature_detected!`).
#[target_feature(enable = "avx2")]
pub(super) unsafe fn euclidean_sq_early_abandon(
    a: &[f32],
    b: &[f32],
    threshold_sq: f64,
) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let blocks = n / ABANDON_BLOCK;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc = _mm256_setzero_pd();
    for blk in 0..blocks {
        let base = blk * ABANDON_BLOCK;
        // 8 sub-chunks of 4 elements, accumulated in scalar chunk order.
        for q in 0..ABANDON_BLOCK / ACCS {
            let off = base + q * ACCS;
            // SAFETY: off + 4 <= blocks * ABANDON_BLOCK <= n for both
            // equal-length slices.
            let av = _mm_loadu_ps(ap.add(off));
            let bv = _mm_loadu_ps(bp.add(off));
            let d32 = _mm_sub_ps(av, bv); // f32 subtraction, like scalar
            let d = _mm256_cvtps_pd(d32); // widen, like `as f64`
            acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d)); // no FMA
        }
        if hsum_ordered(acc) > threshold_sq {
            return None;
        }
    }
    let mut sum = hsum_ordered(acc);
    for i in blocks * ABANDON_BLOCK..n {
        // SAFETY: i < n == a.len() == b.len().
        let d = (*ap.add(i) - *bp.add(i)) as f64;
        sum += d * d;
    }
    if sum > threshold_sq {
        None
    } else {
        Some(sum)
    }
}

/// AVX2 early-abandoning squared LB_Keogh envelope distance;
/// bit-identical to [`crate::distance::dtw::lb_keogh_sq_scalar`].
///
/// Per element the scalar kernel computes
/// `max(c - upper, lower - c, 0)` in `f32`, widens, squares, and
/// accumulates into lane `l = idx % 4`; this is the same chain on four
/// lanes at once (`_mm_max_ps` matches `f32::max` for the NaN-free
/// inputs the kernels are specified over, and a `-0.0` excess squares
/// to the same `+0.0` either way).
///
/// # Safety
/// The CPU must support AVX2; callers must be gated by the runtime
/// detection in [`super::avx2_available`] (`is_x86_feature_detected!`).
#[target_feature(enable = "avx2")]
pub(super) unsafe fn lb_keogh_sq(
    upper: &[f32],
    lower: &[f32],
    candidate: &[f32],
    threshold_sq: f64,
) -> Option<f64> {
    debug_assert_eq!(upper.len(), candidate.len());
    debug_assert_eq!(lower.len(), candidate.len());
    let n = candidate.len();
    let blocks = n / ABANDON_BLOCK;
    let up = upper.as_ptr();
    let lp = lower.as_ptr();
    let cp = candidate.as_ptr();
    let zero = _mm_setzero_ps();
    let mut acc = _mm256_setzero_pd();
    for blk in 0..blocks {
        let base = blk * ABANDON_BLOCK;
        for q in 0..ABANDON_BLOCK / ACCS {
            let off = base + q * ACCS;
            // SAFETY: off + 4 <= blocks * ABANDON_BLOCK <= n for all
            // three equal-length slices.
            let cv = _mm_loadu_ps(cp.add(off));
            let uv = _mm_loadu_ps(up.add(off));
            let lv = _mm_loadu_ps(lp.add(off));
            let excess = _mm_max_ps(_mm_max_ps(_mm_sub_ps(cv, uv), _mm_sub_ps(lv, cv)), zero);
            let d = _mm256_cvtps_pd(excess);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
        }
        if hsum_ordered(acc) > threshold_sq {
            return None;
        }
    }
    let mut sum = hsum_ordered(acc);
    for i in blocks * ABANDON_BLOCK..n {
        // SAFETY: i < n for all three equal-length slices.
        let c = *cp.add(i);
        let d = (c - *up.add(i)).max(*lp.add(i) - c).max(0.0) as f64;
        sum += d * d;
    }
    if sum > threshold_sq {
        None
    } else {
        Some(sum)
    }
}

/// AVX2 8-way mindist-table sweep over a segment-major (SoA) SAX block:
/// `out[j] = sum_i table[i * 256 + seg_row_i[j]]`, eight candidates per
/// iteration via two 4-lane `f64` gathers, accumulating segments in
/// index order so every candidate's sum has the scalar summation order.
/// Bit-identical to [`crate::sax::MindistTable::series_lb_sq`] per
/// candidate.
///
/// `soa` is the full transpose, `stride` the number of scan positions
/// per segment row, `offset` the first candidate's position; segment
/// `i`'s byte for candidate `j` is `soa[i * stride + offset + j]`.
///
/// # Safety
/// The CPU must support AVX2; callers must be gated by the runtime
/// detection in [`super::avx2_available`] (`is_x86_feature_detected!`).
/// Additionally `table.len() >= segments * 256` and
/// `(segments - 1) * stride + offset + out.len() <= soa.len()` must
/// hold (asserted by the safe wrapper).
#[target_feature(enable = "avx2")]
// The tail loop indexes `out` and the raw planes by the same `j`; an
// iterator form would split the bound the SAFETY comments reason about.
#[allow(clippy::needless_range_loop)]
pub(super) unsafe fn lb_block_sq_soa(
    table: &[f64],
    soa: &[u8],
    stride: usize,
    offset: usize,
    segments: usize,
    out: &mut [f64],
) {
    const MAX_CARD: usize = crate::sax::MAX_CARD;
    debug_assert!(table.len() >= segments * MAX_CARD);
    let n = out.len();
    debug_assert!(segments == 0 || (segments - 1) * stride + offset + n <= soa.len());
    let tp = table.as_ptr();
    let sp = soa.as_ptr();
    let mut c = 0;
    while c + 8 <= n {
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        for i in 0..segments {
            // SAFETY: i * stride + offset + c + 8 <= (segments - 1) *
            // stride + offset + n <= soa.len() (wrapper precondition).
            let bytes = _mm_loadl_epi64(sp.add(i * stride + offset + c).cast::<__m128i>());
            let idx = _mm256_cvtepu8_epi32(bytes);
            let idx = _mm256_add_epi32(idx, _mm256_set1_epi32((i * MAX_CARD) as i32));
            // SAFETY: every index is i * 256 + byte < segments * 256 <=
            // table.len(); scale 8 = size_of::<f64>().
            let g0 = _mm256_i32gather_pd::<8>(tp, _mm256_castsi256_si128(idx));
            let g1 = _mm256_i32gather_pd::<8>(tp, _mm256_extracti128_si256::<1>(idx));
            acc0 = _mm256_add_pd(acc0, g0);
            acc1 = _mm256_add_pd(acc1, g1);
        }
        // SAFETY: c + 8 <= n == out.len().
        _mm256_storeu_pd(out.as_mut_ptr().add(c), acc0);
        _mm256_storeu_pd(out.as_mut_ptr().add(c + 4), acc1);
        c += 8;
    }
    // Tail candidates: scalar, same per-candidate segment order.
    for j in c..n {
        let mut sum = 0.0f64;
        for i in 0..segments {
            // SAFETY: same bound as the vector body with +1 <= +8.
            let sym = *sp.add(i * stride + offset + j) as usize;
            sum += *tp.add(i * MAX_CARD + sym);
        }
        out[j] = sum;
    }
}

/// AVX2 8-way mindist-table sweep over segment-major iSAX **word
/// ranges** (the root-level bound): candidate `j`'s segment-`i` region
/// is the symbol interval `[lo[i * stride + offset + j],
/// hi[i * stride + offset + j]]`, and the realized table entry is the
/// query's per-segment reference symbol clamped into that interval —
/// `out[j] = sum_i table[i * 256 + clamp(ref_sym[i], lo_ij, hi_ij)]`,
/// accumulated in ascending segment order. The `u8` clamp
/// (`max` then `min`) is exact integer arithmetic, so every candidate's
/// sum is bit-identical to
/// [`crate::sax::MindistTable::word_lb_sq`].
///
/// # Safety
/// The CPU must support AVX2; callers must be gated by the runtime
/// detection in [`super::avx2_available`] (`is_x86_feature_detected!`).
/// Additionally `table.len() >= segments * 256`,
/// `ref_sym.len() >= segments`, and
/// `(segments - 1) * stride + offset + out.len() <= lo.len() == hi.len()`
/// must hold (asserted by the safe wrapper).
#[target_feature(enable = "avx2")]
// The loops index `ref_sym`/`out` and the raw planes by the same
// counters; iterator forms would split the bound the SAFETY comments
// reason about.
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
pub(super) unsafe fn word_lb_sq_soa(
    table: &[f64],
    ref_sym: &[u8],
    lo: &[u8],
    hi: &[u8],
    stride: usize,
    offset: usize,
    segments: usize,
    out: &mut [f64],
) {
    const MAX_CARD: usize = crate::sax::MAX_CARD;
    debug_assert!(table.len() >= segments * MAX_CARD);
    debug_assert!(ref_sym.len() >= segments);
    let n = out.len();
    debug_assert!(segments == 0 || (segments - 1) * stride + offset + n <= lo.len());
    debug_assert_eq!(lo.len(), hi.len());
    let tp = table.as_ptr();
    let lp = lo.as_ptr();
    let hp = hi.as_ptr();
    let mut c = 0;
    while c + 8 <= n {
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        for i in 0..segments {
            let row = i * stride + offset + c;
            // SAFETY: row + 8 <= (segments - 1) * stride + offset + n <=
            // lo.len() == hi.len() (wrapper precondition).
            let lov = _mm_loadl_epi64(lp.add(row).cast::<__m128i>());
            let hiv = _mm_loadl_epi64(hp.add(row).cast::<__m128i>());
            let refv = _mm_set1_epi8(ref_sym[i] as i8);
            // clamp(ref, lo, hi) on unsigned bytes; lo <= hi per the
            // iSAX word invariant, so max-then-min is the exact clamp.
            let sym = _mm_min_epu8(_mm_max_epu8(refv, lov), hiv);
            let idx = _mm256_cvtepu8_epi32(sym);
            let idx = _mm256_add_epi32(idx, _mm256_set1_epi32((i * MAX_CARD) as i32));
            // SAFETY: every index is i * 256 + byte < segments * 256 <=
            // table.len(); scale 8 = size_of::<f64>().
            let g0 = _mm256_i32gather_pd::<8>(tp, _mm256_castsi256_si128(idx));
            let g1 = _mm256_i32gather_pd::<8>(tp, _mm256_extracti128_si256::<1>(idx));
            acc0 = _mm256_add_pd(acc0, g0);
            acc1 = _mm256_add_pd(acc1, g1);
        }
        // SAFETY: c + 8 <= n == out.len().
        _mm256_storeu_pd(out.as_mut_ptr().add(c), acc0);
        _mm256_storeu_pd(out.as_mut_ptr().add(c + 4), acc1);
        c += 8;
    }
    // Tail candidates: scalar, same per-candidate segment order.
    for j in c..n {
        let mut sum = 0.0f64;
        for i in 0..segments {
            // SAFETY: same bound as the vector body with +1 <= +8.
            let row = i * stride + offset + j;
            let sym = (ref_sym[i].max(*lp.add(row))).min(*hp.add(row)) as usize;
            sum += *tp.add(i * MAX_CARD + sym);
        }
        out[j] = sum;
    }
}

/// AVX2 pass over one banded-DTW row: for `j` in `[lo, hi]` computes
/// `cost[j] = ((ai - b[j]) as f64)^2` and
/// `emin[j] = min(prev[j], prev[j-1]) + cost[j]` (with `prev[-1]`
/// treated as `+inf`). The sequential `curr[j-1]` carry stays scalar in
/// the caller ([`crate::distance::dtw`]'s two-pass row), which is where
/// the bit-identity argument lives: `min` is exact, so hoisting the
/// `prev` half of the 3-way min out of the carry loop reassociates
/// nothing that rounds.
///
/// # Safety
/// The CPU must support AVX2; callers must be gated by the runtime
/// detection in [`super::avx2_available`] (`is_x86_feature_detected!`).
/// Additionally `hi < b.len() == prev.len() == cost.len() == emin.len()`
/// and `lo <= hi` must hold (asserted by the safe wrapper).
#[target_feature(enable = "avx2")]
pub(super) unsafe fn dtw_row_costs(
    ai: f32,
    b: &[f32],
    prev: &[f64],
    lo: usize,
    hi: usize,
    cost: &mut [f64],
    emin: &mut [f64],
) {
    debug_assert!(lo <= hi && hi < b.len());
    debug_assert!(prev.len() == b.len() && cost.len() >= b.len() && emin.len() >= b.len());
    let bp = b.as_ptr();
    let pp = prev.as_ptr();
    let cp = cost.as_mut_ptr();
    let ep = emin.as_mut_ptr();
    let aiv = _mm_set1_ps(ai);
    let mut j = lo;
    if j == 0 {
        // prev[-1] is conceptually +inf: min(prev[0], inf) == prev[0].
        let d = (ai - *bp) as f64;
        let c = d * d;
        *cp = c;
        *ep = *pp + c;
        j = 1;
    }
    while j + ACCS <= hi + 1 {
        // SAFETY: j + 4 <= hi + 1 <= b.len(); j >= 1 so j - 1 is valid
        // for the shifted prev load.
        let bv = _mm_loadu_ps(bp.add(j));
        let d = _mm256_cvtps_pd(_mm_sub_ps(aiv, bv));
        let c = _mm256_mul_pd(d, d);
        let pv = _mm256_loadu_pd(pp.add(j));
        let pm1 = _mm256_loadu_pd(pp.add(j - 1));
        let e = _mm256_add_pd(_mm256_min_pd(pv, pm1), c);
        _mm256_storeu_pd(cp.add(j), c);
        _mm256_storeu_pd(ep.add(j), e);
        j += ACCS;
    }
    while j <= hi {
        // SAFETY: j <= hi < b.len(); j >= 1 here.
        let d = (ai - *bp.add(j)) as f64;
        let c = d * d;
        *cp.add(j) = c;
        *ep.add(j) = (*pp.add(j)).min(*pp.add(j - 1)) + c;
        j += 1;
    }
}
