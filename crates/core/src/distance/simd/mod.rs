//! Runtime-dispatched SIMD kernels (explicit `core::arch` intrinsics).
//!
//! The engine's three dominant inner loops — the early-abandoning
//! Euclidean scan, the early-abandoning LB_Keogh envelope scan, and the
//! mindist-table sweep over a leaf's SAX block — plus the banded-DTW
//! row recurrence, each have an AVX2 implementation in [`avx`]. This
//! module is the **only** gate in front of them:
//!
//! * [`avx2_available`] answers "may the AVX2 kernels run?" exactly
//!   once per process (cached in an atomic): it requires both a
//!   successful `is_x86_feature_detected!("avx2")` probe *and* the
//!   absence of a scalar override. Setting the environment variable
//!   `ODYSSEY_SIMD` to `scalar`, `off`, or `0` forces every dispatch to
//!   the scalar fallback (the knob `xtask scalar` and the forced-scalar
//!   CI job turn).
//! * The safe wrappers below assert that gate before entering the
//!   `unsafe`, `#[target_feature]` kernels, and otherwise run the
//!   scalar fallback — which is the *same code* the public kernels in
//!   [`crate::distance::ed`] / [`crate::distance::dtw`] / [`crate::sax`]
//!   used before vectorization, so every non-x86_64 target and every
//!   pre-AVX2 x86 machine keeps working unchanged.
//!
//! Dispatch never changes answers: each AVX2 kernel reproduces its
//! scalar counterpart's operation-for-operation rounding (see the
//! bit-identity notes in [`avx`] and the equivalence suite in
//! `crates/core/tests/simd_equivalence.rs`), so the batch/lane/cluster
//! bit-identity contracts hold in both modes.

#[cfg(target_arch = "x86_64")]
mod avx;

use std::sync::atomic::{AtomicU8, Ordering};

const LEVEL_UNINIT: u8 = 0;
const LEVEL_SCALAR: u8 = 1;
const LEVEL_AVX2: u8 = 2;

/// Cached dispatch decision; written once by [`level`].
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNINIT);

/// Probes the environment override and the CPU. Called at most a
/// handful of times per process (until the cache settles).
fn detect() -> u8 {
    if let Ok(v) = std::env::var("ODYSSEY_SIMD") {
        let v = v.trim().to_ascii_lowercase();
        if v == "scalar" || v == "off" || v == "0" {
            return LEVEL_SCALAR;
        }
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return LEVEL_AVX2;
        }
    }
    LEVEL_SCALAR
}

/// The cached dispatch level. Racing first calls all compute the same
/// value (the probe is deterministic per process), so a relaxed
/// store-once is enough.
#[inline]
fn level() -> u8 {
    let l = LEVEL.load(Ordering::Relaxed);
    if l != LEVEL_UNINIT {
        return l;
    }
    let l = detect();
    LEVEL.store(l, Ordering::Relaxed);
    l
}

/// Whether the AVX2 kernels are allowed to run: the CPU supports AVX2
/// **and** `ODYSSEY_SIMD` does not force scalar. This is the runtime
/// guard every `unsafe` call into [`avx`] names in its SAFETY comment.
#[inline]
pub fn avx2_available() -> bool {
    level() == LEVEL_AVX2
}

/// The dispatch mode in effect, for bench/diagnostic output:
/// `"avx2"` or `"scalar"`.
pub fn dispatch_name() -> &'static str {
    if avx2_available() {
        "avx2"
    } else {
        "scalar"
    }
}

/// Dispatched early-abandoning squared Euclidean distance; bit-identical
/// to [`crate::distance::ed::euclidean_sq_early_abandon_scalar`] in both
/// modes.
#[inline]
pub(crate) fn euclidean_sq_early_abandon(a: &[f32], b: &[f32], threshold_sq: f64) -> Option<f64> {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: gated by `avx2_available()`, i.e. a cached
        // `is_x86_feature_detected!("avx2")` probe, so the AVX2
        // target-feature requirement of the callee is met.
        return unsafe { avx::euclidean_sq_early_abandon(a, b, threshold_sq) };
    }
    crate::distance::ed::euclidean_sq_early_abandon_scalar(a, b, threshold_sq)
}

/// Dispatched early-abandoning squared LB_Keogh envelope distance;
/// bit-identical to [`crate::distance::dtw::lb_keogh_sq_scalar`] in
/// both modes.
#[inline]
pub(crate) fn lb_keogh_sq(
    upper: &[f32],
    lower: &[f32],
    candidate: &[f32],
    threshold_sq: f64,
) -> Option<f64> {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: gated by `avx2_available()`, i.e. a cached
        // `is_x86_feature_detected!("avx2")` probe, so the AVX2
        // target-feature requirement of the callee is met.
        return unsafe { avx::lb_keogh_sq(upper, lower, candidate, threshold_sq) };
    }
    crate::distance::dtw::lb_keogh_sq_scalar(upper, lower, candidate, threshold_sq)
}

/// Dispatched mindist-table sweep over a segment-major (SoA) SAX block:
/// `out[j] = sum over segments i of table[i * MAX_CARD + soa[i * stride
/// + offset + j]]`, summed in ascending segment order — the exact
/// per-candidate arithmetic of
/// [`crate::sax::MindistTable::series_lb_sq`].
///
/// # Panics
/// Panics if the table is shorter than `segments * MAX_CARD` or the SoA
/// slice cannot hold `out.len()` candidates at the given
/// stride/offset.
pub(crate) fn lb_block_sq_soa(
    table: &[f64],
    soa: &[u8],
    stride: usize,
    offset: usize,
    segments: usize,
    out: &mut [f64],
) {
    assert!(table.len() >= segments * crate::sax::MAX_CARD, "short table");
    assert!(
        segments == 0 || (segments - 1) * stride + offset + out.len() <= soa.len(),
        "SoA block out of bounds"
    );
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: gated by `avx2_available()`, i.e. a cached
        // `is_x86_feature_detected!("avx2")` probe; the shape
        // preconditions of the callee are the assertions right above.
        unsafe { avx::lb_block_sq_soa(table, soa, stride, offset, segments, out) };
        return;
    }
    for (j, slot) in out.iter_mut().enumerate() {
        let mut sum = 0.0f64;
        for i in 0..segments {
            let sym = soa[i * stride + offset + j] as usize;
            sum += table[i * crate::sax::MAX_CARD + sym];
        }
        *slot = sum;
    }
}

/// Dispatched mindist-table sweep over segment-major iSAX **word
/// ranges** (the root-level node bound): `out[j] = sum over segments i
/// of table[i * MAX_CARD + clamp(ref_sym[i], lo_ij, hi_ij)]` where
/// `lo_ij = lo[i * stride + offset + j]` (likewise `hi`), summed in
/// ascending segment order — the exact per-word arithmetic of
/// [`crate::sax::MindistTable::word_lb_sq`].
///
/// # Panics
/// Panics if the table is shorter than `segments * MAX_CARD`,
/// `ref_sym` is shorter than `segments`, the `lo`/`hi` planes differ in
/// length, or they cannot hold `out.len()` candidates at the given
/// stride/offset.
#[allow(clippy::too_many_arguments)]
pub(crate) fn word_lb_sq_soa(
    table: &[f64],
    ref_sym: &[u8],
    lo: &[u8],
    hi: &[u8],
    stride: usize,
    offset: usize,
    segments: usize,
    out: &mut [f64],
) {
    assert!(table.len() >= segments * crate::sax::MAX_CARD, "short table");
    assert!(ref_sym.len() >= segments, "short reference-symbol vector");
    assert_eq!(lo.len(), hi.len(), "ragged lo/hi planes");
    assert!(
        segments == 0 || (segments - 1) * stride + offset + out.len() <= lo.len(),
        "SoA word block out of bounds"
    );
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: gated by `avx2_available()`, i.e. a cached
        // `is_x86_feature_detected!("avx2")` probe; the shape
        // preconditions of the callee are the assertions right above.
        unsafe { avx::word_lb_sq_soa(table, ref_sym, lo, hi, stride, offset, segments, out) };
        return;
    }
    for (j, slot) in out.iter_mut().enumerate() {
        let mut sum = 0.0f64;
        for i in 0..segments {
            let row = i * stride + offset + j;
            let sym = ref_sym[i].max(lo[row]).min(hi[row]) as usize;
            sum += table[i * crate::sax::MAX_CARD + sym];
        }
        *slot = sum;
    }
}

/// Dispatched vectorizable half of one banded-DTW row: fills
/// `cost[j] = ((ai - b[j]) as f64)^2` and
/// `emin[j] = min(prev[j], prev[j-1]) + cost[j]` for `j` in `[lo, hi]`
/// (`prev[-1]` treated as `+inf`). The caller keeps the sequential
/// `curr[j-1]` carry scalar; see [`crate::distance::dtw`] for why the
/// split is bit-identical to the fused three-way-min row.
///
/// # Panics
/// Panics if the band exceeds the row buffers.
pub(crate) fn dtw_row_costs(
    ai: f32,
    b: &[f32],
    prev: &[f64],
    lo: usize,
    hi: usize,
    cost: &mut [f64],
    emin: &mut [f64],
) {
    assert!(lo <= hi && hi < b.len(), "band outside the row");
    assert!(
        prev.len() == b.len() && cost.len() >= b.len() && emin.len() >= b.len(),
        "row buffers too short"
    );
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: gated by `avx2_available()`, i.e. a cached
        // `is_x86_feature_detected!("avx2")` probe; the shape
        // preconditions of the callee are the assertions right above.
        unsafe { avx::dtw_row_costs(ai, b, prev, lo, hi, cost, emin) };
        return;
    }
    for j in lo..=hi {
        let d = (ai - b[j]) as f64;
        let c = d * d;
        cost[j] = c;
        let pm1 = if j > 0 { prev[j - 1] } else { f64::INFINITY };
        emin[j] = prev[j].min(pm1) + c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_name_is_consistent_with_availability() {
        let name = dispatch_name();
        if avx2_available() {
            assert_eq!(name, "avx2");
        } else {
            assert_eq!(name, "scalar");
        }
        // The cache must settle on one answer.
        assert_eq!(dispatch_name(), name);
        // A scalar override in the environment must win over detection.
        if matches!(
            std::env::var("ODYSSEY_SIMD").as_deref(),
            Ok("scalar") | Ok("off") | Ok("0")
        ) {
            assert_eq!(name, "scalar");
        }
    }

    #[test]
    fn scalar_env_override_forces_scalar_in_child() {
        // `level()` caches per process, so the override is exercised in
        // a child process rather than by mutating this one's env.
        let exe = std::env::current_exe().expect("test exe");
        let out = std::process::Command::new(exe)
            .args(["--exact", "distance::simd::tests::dispatch_name_is_consistent_with_availability"])
            .env("ODYSSEY_SIMD", "scalar")
            .output()
            .expect("spawn child test");
        assert!(
            out.status.success(),
            "child run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
