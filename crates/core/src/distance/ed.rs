//! Euclidean distance kernels.
//!
//! The hot path of query answering is `euclidean_sq_early_abandon`: it is
//! called once per non-pruned candidate series and abandons the scan as
//! soon as the running sum exceeds the current best-so-far. The plain
//! kernel is written over fixed-width chunks so the compiler can
//! auto-vectorize it — this plays the role of the hand-written SIMD (AVX)
//! kernels of the paper's C implementation.

/// Width of the manually unrolled accumulation lanes. Eight `f32` lanes
/// match one AVX register, which is what the paper's SIMD kernels use.
const LANES: usize = 8;

/// Squared Euclidean distance between two equal-length series.
///
/// Accumulates in `f64` per lane to keep precision on long series.
///
/// # Panics
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn euclidean_sq(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; LANES];
    let chunks = a.len() / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        for l in 0..LANES {
            let d = (a[base + l] - b[base + l]) as f64;
            acc[l] += d * d;
        }
    }
    let mut sum: f64 = acc.iter().sum();
    for i in chunks * LANES..a.len() {
        let d = (a[i] - b[i]) as f64;
        sum += d * d;
    }
    sum
}

/// Euclidean distance (the rooted value the paper reports).
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f64 {
    euclidean_sq(a, b).sqrt()
}

/// Number of independent accumulators of the early-abandoning kernels:
/// breaking the additive dependency chain lets the compiler keep four
/// FMA chains in flight (and vectorize the inner loop).
const ACCS: usize = 4;

/// Elements processed between two abandon checks. Checking per block —
/// instead of per element or per 8-lane chunk — keeps the branch out of
/// the vectorizable inner loop; the cost is at most one extra block of
/// arithmetic past the abandon point, which is far cheaper than a
/// serialized inner loop.
const ABANDON_BLOCK: usize = 32;

/// Early-abandoning squared Euclidean distance.
///
/// Returns `None` as soon as the partial sum exceeds `threshold_sq`
/// (the current best-so-far, squared); otherwise returns the full
/// squared distance. Accumulates into [`ACCS`] independent lanes and
/// checks the abandon condition once per [`ABANDON_BLOCK`] elements.
///
/// The returned value may differ from [`euclidean_sq`] in the last few
/// ulps (different summation order); the `Some`/`None` decision is
/// exact with respect to this kernel's own sum.
///
/// Dispatches to the AVX2 kernel when
/// [`crate::distance::simd::avx2_available`] says so; the result is
/// bit-identical to [`euclidean_sq_early_abandon_scalar`] either way.
#[inline]
pub fn euclidean_sq_early_abandon(a: &[f32], b: &[f32], threshold_sq: f64) -> Option<f64> {
    crate::distance::simd::euclidean_sq_early_abandon(a, b, threshold_sq)
}

/// The scalar (auto-vectorizable) body of [`euclidean_sq_early_abandon`]:
/// the always-available fallback, and the rounding reference the SIMD
/// path must reproduce bit for bit.
#[inline]
pub fn euclidean_sq_early_abandon_scalar(a: &[f32], b: &[f32], threshold_sq: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; ACCS];
    let mut blocks_a = a.chunks_exact(ABANDON_BLOCK);
    let mut blocks_b = b.chunks_exact(ABANDON_BLOCK);
    for (ba, bb) in blocks_a.by_ref().zip(blocks_b.by_ref()) {
        for (qa, qb) in ba.chunks_exact(ACCS).zip(bb.chunks_exact(ACCS)) {
            for l in 0..ACCS {
                let d = (qa[l] - qb[l]) as f64;
                acc[l] += d * d;
            }
        }
        if acc[0] + acc[1] + acc[2] + acc[3] > threshold_sq {
            return None;
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for (&x, &y) in blocks_a.remainder().iter().zip(blocks_b.remainder()) {
        let d = (x - y) as f64;
        sum += d * d;
    }
    if sum > threshold_sq {
        None
    } else {
        Some(sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_sq(a: &[f32], b: &[f32]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| {
                let d = (x - y) as f64;
                d * d
            })
            .sum()
    }

    #[test]
    fn matches_naive_on_odd_lengths() {
        for len in [1usize, 7, 8, 9, 15, 16, 17, 100, 256] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32 * 0.37).sin()).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32 * 0.11).cos()).collect();
            let got = euclidean_sq(&a, &b);
            let want = naive_sq(&a, &b);
            assert!(
                (got - want).abs() < 1e-9 * want.max(1.0),
                "len={len}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn zero_distance_to_self() {
        let a: Vec<f32> = (0..64).map(|i| i as f32).collect();
        assert_eq!(euclidean_sq(&a, &a), 0.0);
        assert_eq!(euclidean(&a, &a), 0.0);
    }

    #[test]
    fn early_abandon_agrees_when_below_threshold() {
        let a: Vec<f32> = (0..128).map(|i| (i as f32 * 0.2).sin()).collect();
        let b: Vec<f32> = (0..128).map(|i| (i as f32 * 0.2).cos()).collect();
        let full = euclidean_sq(&a, &b);
        let got = euclidean_sq_early_abandon(&a, &b, full + 1.0).expect("below threshold");
        assert!((got - full).abs() < 1e-9);
    }

    #[test]
    fn early_abandon_rejects_when_above_threshold() {
        let a = vec![0.0f32; 64];
        let b = vec![10.0f32; 64];
        assert!(euclidean_sq_early_abandon(&a, &b, 1.0).is_none());
    }

    #[test]
    fn early_abandon_boundary_is_inclusive() {
        let a = vec![0.0f32; 8];
        let b = vec![1.0f32; 8];
        // distance² is exactly 8.0; an equal threshold must keep it
        assert_eq!(euclidean_sq_early_abandon(&a, &b, 8.0), Some(8.0));
        assert_eq!(euclidean_sq_early_abandon(&a, &b, 7.999), None);
    }
}
