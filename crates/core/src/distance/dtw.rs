//! Dynamic Time Warping with the LB_Keogh lower bound (Section 4).
//!
//! The index needs **no structural change** for DTW queries: the paper
//! computes the LB_Keogh envelope of the query, uses the distance between a
//! candidate and the envelope as the lower bound for pruning, and only runs
//! the full banded DTW on survivors. `lb_keogh_sq` is that envelope
//! distance; `dtw_banded` is a Sakoe-Chiba-band DTW with early abandoning.

/// Upper/lower envelope of a query under a warping window, as used by
/// LB_Keogh. `upper[i]`/`lower[i]` are the max/min of the query over
/// `[i - w, i + w]`.
#[derive(Debug, Clone)]
pub struct LbKeoghEnvelope {
    /// Pointwise upper envelope.
    pub upper: Vec<f32>,
    /// Pointwise lower envelope.
    pub lower: Vec<f32>,
    /// Warping window (band half-width) in points.
    pub window: usize,
}

/// Computes the LB_Keogh envelope of `query` for warping window `window`
/// (in points; the paper sweeps 1%–15% of the series length).
///
/// Uses the monotonic-deque (Lemire) algorithm, O(n).
pub fn keogh_envelope(query: &[f32], window: usize) -> LbKeoghEnvelope {
    keogh_envelope_reusing(query, window, Vec::new(), Vec::new())
}

/// [`keogh_envelope`] reusing caller-provided buffer allocations for the
/// upper/lower envelopes (their contents are discarded; every slot is
/// rewritten). Callers that construct envelopes back to back — kernel
/// construction in a batch — hand the previous envelope's vectors back
/// in so the allocations are *cleared, not reallocated*.
pub fn keogh_envelope_reusing(
    query: &[f32],
    window: usize,
    upper: Vec<f32>,
    lower: Vec<f32>,
) -> LbKeoghEnvelope {
    ENVELOPE_DEQUES.with(|cell| {
        let (max_dq, min_dq) = &mut *cell.borrow_mut();
        max_dq.clear();
        min_dq.clear();
        keogh_envelope_with(query, window, max_dq, min_dq, upper, lower)
    })
}

thread_local! {
    /// Reusable monotonic-deque allocations for [`keogh_envelope`]: a
    /// worker computing DTW-query envelopes back to back (the batch
    /// engine's workload) allocates them once per thread, not per query.
    static ENVELOPE_DEQUES: std::cell::RefCell<(
        std::collections::VecDeque<usize>,
        std::collections::VecDeque<usize>,
    )> = const {
        std::cell::RefCell::new((std::collections::VecDeque::new(), std::collections::VecDeque::new()))
    };
}

fn keogh_envelope_with(
    query: &[f32],
    window: usize,
    max_dq: &mut std::collections::VecDeque<usize>,
    min_dq: &mut std::collections::VecDeque<usize>,
    mut upper: Vec<f32>,
    mut lower: Vec<f32>,
) -> LbKeoghEnvelope {
    let n = query.len();
    let w = window.min(n.saturating_sub(1));
    // The loop below writes every slot of both envelopes, so resizing
    // (not zeroing) recycled buffers is enough.
    upper.clear();
    upper.resize(n, 0.0);
    lower.clear();
    lower.resize(n, 0.0);
    // Deques of indices; front is the extremum of the current window.
    for i in 0..n + w {
        if i < n {
            while let Some(&b) = max_dq.back() {
                if query[b] <= query[i] {
                    max_dq.pop_back();
                } else {
                    break;
                }
            }
            max_dq.push_back(i);
            while let Some(&b) = min_dq.back() {
                if query[b] >= query[i] {
                    min_dq.pop_back();
                } else {
                    break;
                }
            }
            min_dq.push_back(i);
        }
        // The window centered at `c = i - w` covers [c - w, c + w] = [i - 2w, i].
        if i >= w {
            let c = i - w;
            while let Some(&f) = max_dq.front() {
                if f + w < c {
                    max_dq.pop_front();
                } else {
                    break;
                }
            }
            while let Some(&f) = min_dq.front() {
                if f + w < c {
                    min_dq.pop_front();
                } else {
                    break;
                }
            }
            upper[c] = query[*max_dq.front().expect("window never empty")];
            lower[c] = query[*min_dq.front().expect("window never empty")];
        }
    }
    LbKeoghEnvelope {
        upper,
        lower,
        window: w,
    }
}

/// Independent accumulators / abandon-check block of the LB_Keogh
/// kernel (mirrors the early-abandoning Euclidean kernel).
const ACCS: usize = 4;
const ABANDON_BLOCK: usize = 32;

/// Squared pointwise envelope excess, written branchless so the blocked
/// inner loop vectorizes: `max(c - upper, lower - c, 0)²`.
#[inline(always)]
fn env_excess_sq(c: f32, upper: f32, lower: f32) -> f64 {
    let d = (c - upper).max(lower - c).max(0.0) as f64;
    d * d
}

/// Squared LB_Keogh lower bound of the DTW distance between the enveloped
/// query and `candidate`. Early-abandons past `threshold_sq`, returning
/// `None` (candidate prunable). Accumulates into [`ACCS`] independent
/// lanes with one abandon check per [`ABANDON_BLOCK`] elements, so the
/// inner loop stays branch-free and vectorizable.
///
/// Dispatches to the AVX2 kernel when
/// [`crate::distance::simd::avx2_available`] says so; the result is
/// bit-identical to [`lb_keogh_sq_scalar`] either way.
#[inline]
pub fn lb_keogh_sq(env: &LbKeoghEnvelope, candidate: &[f32], threshold_sq: f64) -> Option<f64> {
    crate::distance::simd::lb_keogh_sq(&env.upper, &env.lower, candidate, threshold_sq)
}

/// The scalar (auto-vectorizable) body of [`lb_keogh_sq`], over the raw
/// envelope slices: the always-available fallback, and the rounding
/// reference the SIMD path must reproduce bit for bit.
#[inline]
pub fn lb_keogh_sq_scalar(
    upper: &[f32],
    lower: &[f32],
    candidate: &[f32],
    threshold_sq: f64,
) -> Option<f64> {
    debug_assert_eq!(upper.len(), candidate.len());
    debug_assert_eq!(lower.len(), candidate.len());
    let mut acc = [0.0f64; ACCS];
    let mut bc = candidate.chunks_exact(ABANDON_BLOCK);
    let mut bu = upper.chunks_exact(ABANDON_BLOCK);
    let mut bl = lower.chunks_exact(ABANDON_BLOCK);
    for ((cb, ub), lb) in bc.by_ref().zip(bu.by_ref()).zip(bl.by_ref()) {
        for ((cq, uq), lq) in cb
            .chunks_exact(ACCS)
            .zip(ub.chunks_exact(ACCS))
            .zip(lb.chunks_exact(ACCS))
        {
            for l in 0..ACCS {
                acc[l] += env_excess_sq(cq[l], uq[l], lq[l]);
            }
        }
        if acc[0] + acc[1] + acc[2] + acc[3] > threshold_sq {
            return None;
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for ((&c, &u), &l) in bc
        .remainder()
        .iter()
        .zip(bu.remainder())
        .zip(bl.remainder())
    {
        sum += env_excess_sq(c, u, l);
    }
    if sum > threshold_sq {
        None
    } else {
        Some(sum)
    }
}

/// Squared DTW distance constrained to a Sakoe-Chiba band of half-width
/// `window`, with early abandoning: returns `None` once every cell of a row
/// exceeds `threshold_sq`.
///
/// Uses a two-row dynamic program, O(n·window) time and O(n) space. The
/// rows live in a per-thread scratch (the hottest allocation of the
/// DTW path: one set per *candidate*, not per query), cleared — not
/// reallocated — between calls.
///
/// When [`crate::distance::simd::avx2_available`] says so, each row
/// `i >= 1` is computed in two passes: a vectorized pass fills
/// `cost[j]` and `emin[j] = min(prev[j], prev[j-1]) + cost[j]`, then a
/// scalar carry folds in the sequential in-row predecessor,
/// `curr[j] = min(emin[j], curr[j-1] + cost[j])`. That split is
/// bit-identical to the fused three-way-min row ([`dtw_banded_scalar`]):
/// `min` rounds nothing, and rounding is monotone, so
/// `min(fl(x + c), fl(y + c)) == fl(min(x, y) + c)` for the NaN-free
/// values the band holds.
pub fn dtw_banded(a: &[f32], b: &[f32], window: usize, threshold_sq: f64) -> Option<f64> {
    DTW_ROWS.with(|cell| {
        let (prev, curr, cost, emin) = &mut *cell.borrow_mut();
        let simd = crate::distance::simd::avx2_available();
        dtw_banded_with(a, b, window, threshold_sq, prev, curr, cost, emin, simd)
    })
}

/// [`dtw_banded`] pinned to the scalar row kernel regardless of the
/// dispatch decision — the rounding reference for the equivalence
/// suite, and the body every non-AVX2 machine runs.
pub fn dtw_banded_scalar(a: &[f32], b: &[f32], window: usize, threshold_sq: f64) -> Option<f64> {
    DTW_ROWS.with(|cell| {
        let (prev, curr, cost, emin) = &mut *cell.borrow_mut();
        dtw_banded_with(a, b, window, threshold_sq, prev, curr, cost, emin, false)
    })
}

/// The `(prev, curr, cost, emin)` row quartet of the banded DP.
type DtwRows = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);

thread_local! {
    /// Reusable DP band rows for [`dtw_banded`]: `(prev, curr)` plus the
    /// `(cost, emin)` pair of the vectorized two-pass row.
    static DTW_ROWS: std::cell::RefCell<DtwRows> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new(), Vec::new(), Vec::new())) };
}

#[allow(clippy::too_many_arguments)]
fn dtw_banded_with(
    a: &[f32],
    b: &[f32],
    window: usize,
    threshold_sq: f64,
    prev: &mut Vec<f64>,
    curr: &mut Vec<f64>,
    cost: &mut Vec<f64>,
    emin: &mut Vec<f64>,
    use_simd: bool,
) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    if n == 0 {
        return Some(0.0);
    }
    let w = window.min(n.saturating_sub(1));
    const INF: f64 = f64::INFINITY;
    prev.clear();
    prev.resize(n, INF);
    curr.clear();
    curr.resize(n, INF);
    if use_simd {
        // Every in-band slot is overwritten before being read, so the
        // fill value is irrelevant; resize just guarantees length.
        cost.clear();
        cost.resize(n, 0.0);
        emin.clear();
        emin.resize(n, 0.0);
    }
    for (i, &ai) in a.iter().enumerate() {
        let lo = i.saturating_sub(w);
        let hi = (i + w).min(n - 1);
        let mut row_min = INF;
        if use_simd && i > 0 {
            // Row 0 (with its j == 0 anchor) always runs scalar below.
            crate::distance::simd::dtw_row_costs(ai, b, prev, lo, hi, cost, emin);
            let mut j = lo;
            if j == 0 {
                // No in-row predecessor: emin already holds the answer.
                curr[0] = emin[0];
                row_min = curr[0];
                j = 1;
            }
            while j <= hi {
                let v = emin[j].min(curr[j - 1] + cost[j]);
                curr[j] = v;
                row_min = row_min.min(v);
                j += 1;
            }
        } else {
            for j in lo..=hi {
                let d = (ai - b[j]) as f64;
                let cost = d * d;
                let best_prev = if i == 0 && j == 0 {
                    0.0
                } else {
                    let mut m = INF;
                    if j > 0 {
                        m = m.min(curr[j - 1]); // insertion
                    }
                    if i > 0 {
                        m = m.min(prev[j]); // deletion
                        if j > 0 {
                            m = m.min(prev[j - 1]); // match
                        }
                    }
                    m
                };
                curr[j] = best_prev + cost;
                row_min = row_min.min(curr[j]);
            }
        }
        if row_min > threshold_sq {
            return None;
        }
        std::mem::swap(prev, curr);
        curr[lo..=hi].iter_mut().for_each(|v| *v = INF);
    }
    let result = prev[n - 1];
    if result > threshold_sq {
        None
    } else {
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::ed::euclidean_sq;

    fn naive_envelope(q: &[f32], w: usize) -> (Vec<f32>, Vec<f32>) {
        let n = q.len();
        let mut up = vec![0.0f32; n];
        let mut lo = vec![0.0f32; n];
        for i in 0..n {
            let s = i.saturating_sub(w);
            let e = (i + w).min(n - 1);
            up[i] = q[s..=e].iter().cloned().fold(f32::MIN, f32::max);
            lo[i] = q[s..=e].iter().cloned().fold(f32::MAX, f32::min);
        }
        (up, lo)
    }

    fn dtw_full(a: &[f32], b: &[f32], w: usize) -> f64 {
        dtw_banded(a, b, w, f64::INFINITY).expect("no threshold")
    }

    #[test]
    fn envelope_matches_naive() {
        let q: Vec<f32> = (0..57).map(|i| ((i * 31) % 17) as f32 - 8.0).collect();
        for w in [0usize, 1, 3, 8, 56, 100] {
            let env = keogh_envelope(&q, w);
            let (up, lo) = naive_envelope(&q, w.min(q.len() - 1));
            assert_eq!(env.upper, up, "upper w={w}");
            assert_eq!(env.lower, lo, "lower w={w}");
        }
    }

    #[test]
    fn envelope_contains_query() {
        let q: Vec<f32> = (0..100).map(|i| (i as f32 * 0.3).sin()).collect();
        let env = keogh_envelope(&q, 5);
        for (i, &v) in q.iter().enumerate() {
            assert!(env.lower[i] <= v && v <= env.upper[i]);
        }
    }

    #[test]
    fn dtw_zero_window_is_euclidean() {
        let a: Vec<f32> = (0..40).map(|i| (i as f32 * 0.2).sin()).collect();
        let b: Vec<f32> = (0..40).map(|i| (i as f32 * 0.25).cos()).collect();
        let dtw = dtw_full(&a, &b, 0);
        let ed = euclidean_sq(&a, &b);
        assert!((dtw - ed).abs() < 1e-9);
    }

    #[test]
    fn dtw_is_at_most_euclidean() {
        let a: Vec<f32> = (0..64).map(|i| (i as f32 * 0.2).sin()).collect();
        let b: Vec<f32> = (0..64).map(|i| ((i as f32 + 3.0) * 0.2).sin()).collect();
        for w in [1usize, 2, 5, 10] {
            assert!(dtw_full(&a, &b, w) <= euclidean_sq(&a, &b) + 1e-9);
        }
    }

    #[test]
    fn dtw_aligns_shifted_series() {
        // A shifted copy should have near-zero DTW with a wide enough band.
        let a: Vec<f32> = (0..64).map(|i| (i as f32 * 0.3).sin()).collect();
        let mut b = a.clone();
        b.rotate_right(3);
        let narrow = dtw_full(&a, &b, 1);
        let wide = dtw_full(&a, &b, 8);
        assert!(wide < narrow);
    }

    #[test]
    fn lb_keogh_lower_bounds_dtw() {
        let q: Vec<f32> = (0..48).map(|i| (i as f32 * 0.17).sin()).collect();
        for w in [1usize, 3, 7] {
            let env = keogh_envelope(&q, w);
            for seed in 0..5u32 {
                let c: Vec<f32> = (0..48)
                    .map(|i| ((i as f32 + seed as f32) * 0.23).cos())
                    .collect();
                let lb = lb_keogh_sq(&env, &c, f64::INFINITY).expect("no threshold");
                let d = dtw_full(&q, &c, w);
                assert!(lb <= d + 1e-9, "w={w} seed={seed}: lb={lb} dtw={d}");
            }
        }
    }

    #[test]
    fn dtw_early_abandon_consistency() {
        let a: Vec<f32> = (0..32).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..32).map(|i| (i as f32) + 5.0).collect();
        let full = dtw_full(&a, &b, 3);
        assert_eq!(dtw_banded(&a, &b, 3, full + 1.0), Some(full));
        assert_eq!(dtw_banded(&a, &b, 3, full * 0.5), None);
    }

    #[test]
    fn dtw_empty_series() {
        assert_eq!(dtw_banded(&[], &[], 2, 1.0), Some(0.0));
    }
}
