//! Summarization buffers (index-construction phase 1).
//!
//! Following the MESSI-family design the paper builds on (Section 2,
//! "Single-Node Parallel Summary-Based DS Indexing"), index construction
//! first computes the iSAX summary of every series **in parallel** and
//! groups series ids into *summarization buffers* — one buffer per
//! root-level iSAX word (1 bit per segment). Series with similar summaries
//! land in the same buffer, which gives the tree-construction phase perfect
//! locality and makes it embarrassingly parallel (each buffer becomes an
//! independent root subtree).
//!
//! Buffers are also the unit of the DENSITY-AWARE partitioning scheme
//! (Section 3.4.1), which orders them by Gray code — hence the public
//! `root_key` accessors.

use crate::sax::{sax_word_into, MAX_CARD_BITS};
use crate::series::DatasetBuffer;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Full-cardinality SAX words for a whole collection, stored flat
/// (`segments` bytes per series). Shared by the tree and the search phase
/// (per-candidate lower bounds when draining priority queues).
#[derive(Debug, Clone)]
pub struct Summaries {
    sax: Arc<[u8]>,
    segments: usize,
}

impl Summaries {
    /// Computes the SAX word of every series using `n_threads` workers.
    pub fn compute(data: &DatasetBuffer, segments: usize, n_threads: usize) -> Self {
        let n = data.num_series();
        let len = data.series_len();
        assert!(segments > 0 && segments <= len, "invalid segment count");
        let mut sax = vec![0u8; n * segments];
        let n_threads = n_threads.max(1).min(n.max(1));
        let next = AtomicUsize::new(0);
        // Claim fixed-size stripes of series with Fetch&Add, writing into
        // disjoint regions of the output (no synchronization on the data).
        const STRIPE: usize = 1024;
        let sax_ptr = SendPtr::new(&mut sax);
        std::thread::scope(|scope| {
            for _ in 0..n_threads {
                let next = &next;
                let sax_ptr = &sax_ptr;
                scope.spawn(move || {
                    let mut paa_buf = vec![0.0f64; segments];
                    loop {
                        let start = next.fetch_add(STRIPE, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + STRIPE).min(n);
                        for id in start..end {
                            crate::paa::paa_into(data.series(id), &mut paa_buf);
                            // SAFETY: stripes are disjoint, so each byte of
                            // the output is written by exactly one thread.
                            let out = unsafe {
                                std::slice::from_raw_parts_mut(
                                    sax_ptr.0.add(id * segments),
                                    segments,
                                )
                            };
                            sax_word_into(&paa_buf, out);
                        }
                    }
                });
            }
        });
        Summaries {
            sax: sax.into(),
            segments,
        }
    }

    /// Reconstructs summaries from a raw SAX byte array (the persistence
    /// path; the array must be `segments` bytes per series).
    ///
    /// # Panics
    /// Panics if `sax.len()` is not a multiple of `segments`.
    pub fn from_raw(sax: Arc<[u8]>, segments: usize) -> Self {
        assert!(segments > 0);
        assert_eq!(sax.len() % segments, 0, "ragged SAX array");
        Summaries { sax, segments }
    }

    /// SAX word (8-bit symbols) of series `id`.
    #[inline]
    pub fn sax(&self, id: u32) -> &[u8] {
        let s = id as usize * self.segments;
        &self.sax[s..s + self.segments]
    }

    /// Number of segments per word.
    #[inline]
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Number of summarized series.
    #[inline]
    pub fn num_series(&self) -> usize {
        self.sax.len() / self.segments
    }

    /// Size of the summary storage in bytes.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.sax.len()
    }

    /// Root-level buffer key of series `id`: the top bit of each segment's
    /// symbol, packed MSB-first into a `u64`.
    #[inline]
    pub fn root_key(&self, id: u32) -> u64 {
        root_key_of_sax(self.sax(id))
    }
}

/// Pointer into a borrowed output byte array, shared across the worker
/// threads of [`Summaries::compute`] for its disjoint-stripe write
/// pattern.
///
/// # Invariants
///
/// * The wrapper holds the `&'a mut [u8]` borrow it was built from (via
///   `PhantomData`), so the pointer cannot outlive — or alias a safe
///   re-borrow of — the buffer while any thread still holds it.
/// * Writers derive accesses only through [`Summaries::compute`]'s
///   stripe claiming (`fetch_add` over series ids), so any two threads
///   always touch pairwise-disjoint byte ranges.
#[derive(Debug)]
struct SendPtr<'a>(*mut u8, std::marker::PhantomData<&'a mut [u8]>);

impl<'a> SendPtr<'a> {
    fn new(target: &'a mut [u8]) -> Self {
        SendPtr(target.as_mut_ptr(), std::marker::PhantomData)
    }
}

// SAFETY: the wrapped pointer is derived from an exclusive borrow that
// the `PhantomData` keeps alive, and all concurrent writes through it
// go to pairwise-disjoint ranges (see the type invariants), so moving
// the handle to — and sharing it with — other threads cannot race.
unsafe impl Send for SendPtr<'_> {}
// SAFETY: as above — `&SendPtr` only exposes writes to disjoint ranges.
unsafe impl Sync for SendPtr<'_> {}

/// Packs the top bit of each SAX symbol into a root-word key, MSB-first
/// (segment 0 is the most significant bit).
///
/// # Panics
/// Panics if the word has more than 64 segments — the key would
/// silently shift high segments out of the `u64`, scattering series
/// across wrong buffers. Checked in release builds too: persisted
/// indexes pass externally-supplied words through here.
#[inline]
pub fn root_key_of_sax(sax: &[u8]) -> u64 {
    assert!(
        sax.len() <= 64,
        "SAX word has {} segments; root keys support at most 64",
        sax.len()
    );
    let mut key = 0u64;
    for &s in sax {
        key = (key << 1) | (s >> (MAX_CARD_BITS - 1)) as u64;
    }
    key
}

/// One summarization buffer: a root-word key plus the ids of the series
/// whose summaries fall into that root region.
#[derive(Debug, Clone)]
pub struct SummarizationBuffer {
    /// Root iSAX word key (1 bit per segment, MSB-first).
    pub key: u64,
    /// Series ids in this buffer, in dataset order.
    pub ids: Vec<u32>,
}

/// The full set of summarization buffers of a collection, sorted by key.
#[derive(Debug, Clone)]
pub struct SummarizationBuffers {
    /// Buffers sorted ascending by `key`; every non-empty root region
    /// appears exactly once.
    pub buffers: Vec<SummarizationBuffer>,
    /// Number of segments of the underlying words.
    pub segments: usize,
}

impl SummarizationBuffers {
    /// Groups all series ids of `summaries` into buffers.
    ///
    /// Deterministic: ids inside each buffer appear in dataset order, so
    /// identical data always yields identical buffers (a property the
    /// work-stealing protocol relies on — replication-group nodes must
    /// build identical trees).
    pub fn build(summaries: &Summaries) -> Self {
        let n = summaries.num_series();
        let mut map: std::collections::BTreeMap<u64, Vec<u32>> = std::collections::BTreeMap::new();
        for id in 0..n as u32 {
            map.entry(summaries.root_key(id)).or_default().push(id);
        }
        let buffers = map
            .into_iter()
            .map(|(key, ids)| SummarizationBuffer { key, ids })
            .collect();
        SummarizationBuffers {
            buffers,
            segments: summaries.segments(),
        }
    }

    /// Number of buffers.
    #[inline]
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// Whether there are no buffers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    /// Total number of series across buffers.
    pub fn total_series(&self) -> usize {
        self.buffers.iter().map(|b| b.ids.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::DatasetBuffer;

    fn walk_dataset(n: usize, len: usize, seed: u64) -> DatasetBuffer {
        let mut x = seed | 1;
        let mut data = Vec::with_capacity(n * len);
        for _ in 0..n {
            let mut acc = 0.0f32;
            let mut s = Vec::with_capacity(len);
            for _ in 0..len {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                acc += ((x % 2000) as f32 / 1000.0) - 1.0;
                s.push(acc);
            }
            crate::series::znormalize(&mut s);
            data.extend_from_slice(&s);
        }
        DatasetBuffer::from_vec(data, len)
    }

    #[test]
    fn summaries_match_sequential_reference() {
        let data = walk_dataset(300, 64, 42);
        let par = Summaries::compute(&data, 8, 4);
        let seq = Summaries::compute(&data, 8, 1);
        for id in 0..300u32 {
            assert_eq!(par.sax(id), seq.sax(id), "id={id}");
        }
    }

    #[test]
    fn root_key_packs_msb_first() {
        let sax = [0b1000_0000u8, 0b0000_0000, 0b1111_1111, 0b0111_1111];
        assert_eq!(root_key_of_sax(&sax), 0b1010);
    }

    #[test]
    fn buffers_partition_all_ids() {
        let data = walk_dataset(500, 96, 7);
        let summaries = Summaries::compute(&data, 8, 2);
        let bufs = SummarizationBuffers::build(&summaries);
        assert_eq!(bufs.total_series(), 500);
        let mut seen = vec![false; 500];
        for b in &bufs.buffers {
            for &id in &b.ids {
                assert!(!seen[id as usize], "duplicate id {id}");
                seen[id as usize] = true;
                assert_eq!(summaries.root_key(id), b.key);
            }
        }
        assert!(seen.iter().all(|&s| s));
        // sorted by key, unique keys
        for w in bufs.buffers.windows(2) {
            assert!(w[0].key < w[1].key);
        }
    }

    #[test]
    fn buffers_are_deterministic() {
        let data = walk_dataset(400, 64, 99);
        let s1 = Summaries::compute(&data, 16, 3);
        let s2 = Summaries::compute(&data, 16, 1);
        let b1 = SummarizationBuffers::build(&s1);
        let b2 = SummarizationBuffers::build(&s2);
        assert_eq!(b1.len(), b2.len());
        for (x, y) in b1.buffers.iter().zip(&b2.buffers) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.ids, y.ids);
        }
    }
}
