//! Index persistence: a compact, versioned binary format for saving a
//! built [`Index`] (raw data + summaries + forest) and loading it back
//! without rebuilding.
//!
//! The paper's setting is in-memory, but any deployment answering more
//! than one batch wants to pay the construction cost once. The format is
//! deliberately simple (explicit little-endian fields, no external
//! serialization dependency) and fully validated on load — a corrupted
//! or truncated file produces an error, never a wrong index.
//!
//! Version 2 ("ODY2") persists the leaf-contiguous scan layout: raw
//! values in **scan order**, the scan permutation, and per-leaf slot
//! ranges instead of id lists. Loading validates that the permutation
//! is a bijection and that the leaf slices partition the position
//! space, so a loaded index satisfies the same layout contract as a
//! freshly built one.
//!
//! The segment-major SAX transpose the SIMD mindist sweep reads
//! (`LeafLayout::sax_soa_view`) is **not** persisted: it is a pure
//! function of the persisted AoS block, and both the build and the load
//! path assemble through `LeafLayout::from_scan_parts`, which rebuilds
//! it — so ODY2 files written before vectorization load unchanged, and
//! the format needs no version bump.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "ODY2" | u32 series_len | u32 segments | u32 leaf_capacity
//! u64 num_series | raw f32 data (scan order)
//! per-series SAX bytes (scan order)
//! scan permutation: u32 original id per scan position
//! u64 n_subtrees | per subtree: u64 key, node tree (pre-order)
//! node: u8 tag (0=leaf, 1=inner)
//!   leaf : word, u32 slice offset, u32 slice len
//!   inner: word, u32 split_seg, then both children
//! word : per segment u8 symbol, then per segment u8 card_bits
//! ```

use crate::index::{Index, IndexConfig};
use crate::sax::IsaxWord;
use crate::series::DatasetBuffer;
use crate::tree::{Leaf, LeafSlice, Node, RootSubtree};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"ODY2";

/// Errors produced when loading a persisted index.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The bytes are not a valid persisted index.
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Corrupt(m) => write!(f, "corrupt index file: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> PersistError {
    PersistError::Corrupt(msg.into())
}

struct Writer<'w, W: Write> {
    out: &'w mut W,
}

impl<W: Write> Writer<'_, W> {
    fn u8(&mut self, v: u8) -> io::Result<()> {
        self.out.write_all(&[v])
    }
    fn u32(&mut self, v: u32) -> io::Result<()> {
        self.out.write_all(&v.to_le_bytes())
    }
    fn u64(&mut self, v: u64) -> io::Result<()> {
        self.out.write_all(&v.to_le_bytes())
    }
    fn bytes(&mut self, v: &[u8]) -> io::Result<()> {
        self.out.write_all(v)
    }
    fn word(&mut self, w: &IsaxWord) -> io::Result<()> {
        self.bytes(&w.symbols)?;
        self.bytes(&w.card_bits)
    }
    fn node(&mut self, n: &Node) -> io::Result<()> {
        match n {
            Node::Leaf(l) => {
                self.u8(0)?;
                self.word(&l.word)?;
                self.u32(l.slice.offset)?;
                self.u32(l.slice.len)?;
            }
            Node::Inner {
                word,
                split_seg,
                children,
            } => {
                self.u8(1)?;
                self.word(word)?;
                self.u32(*split_seg as u32)?;
                self.node(&children[0])?;
                self.node(&children[1])?;
            }
        }
        Ok(())
    }
}

struct Reader<'r, R: Read> {
    inp: &'r mut R,
    segments: usize,
}

impl<R: Read> Reader<'_, R> {
    fn u8(&mut self) -> Result<u8, PersistError> {
        let mut b = [0u8; 1];
        self.inp.read_exact(&mut b)?;
        Ok(b[0])
    }
    fn u32(&mut self) -> Result<u32, PersistError> {
        let mut b = [0u8; 4];
        self.inp.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> Result<u64, PersistError> {
        let mut b = [0u8; 8];
        self.inp.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    fn word(&mut self) -> Result<IsaxWord, PersistError> {
        let mut symbols = vec![0u8; self.segments];
        self.inp.read_exact(&mut symbols)?;
        let mut card_bits = vec![0u8; self.segments];
        self.inp.read_exact(&mut card_bits)?;
        if card_bits.iter().any(|&b| b > crate::sax::MAX_CARD_BITS) {
            return Err(corrupt("cardinality exceeds maximum"));
        }
        Ok(IsaxWord { symbols, card_bits })
    }
    /// Reads a node, marking each leaf's slice positions in `covered`
    /// (the caller validates the slices partition the position space).
    fn node(
        &mut self,
        num_series: u64,
        depth: usize,
        covered: &mut [bool],
    ) -> Result<Node, PersistError> {
        if depth > 16 * crate::sax::MAX_CARD_BITS as usize + 64 {
            return Err(corrupt("tree deeper than any valid iSAX tree"));
        }
        match self.u8()? {
            0 => {
                let word = self.word()?;
                let offset = self.u32()?;
                let len = self.u32()?;
                let end = u64::from(offset) + u64::from(len);
                if end > num_series {
                    return Err(corrupt("leaf slice out of range"));
                }
                for (p, slot) in covered
                    .iter_mut()
                    .enumerate()
                    .take(end as usize)
                    .skip(offset as usize)
                {
                    if *slot {
                        return Err(corrupt(format!("scan position {p} covered twice")));
                    }
                    *slot = true;
                }
                Ok(Node::Leaf(Leaf {
                    word,
                    slice: LeafSlice { offset, len },
                }))
            }
            1 => {
                let word = self.word()?;
                let split_seg = self.u32()? as usize;
                if split_seg >= self.segments {
                    return Err(corrupt("split segment out of range"));
                }
                let c0 = self.node(num_series, depth + 1, covered)?;
                let c1 = self.node(num_series, depth + 1, covered)?;
                Ok(Node::Inner {
                    word,
                    split_seg,
                    children: [Box::new(c0), Box::new(c1)],
                })
            }
            t => Err(corrupt(format!("unknown node tag {t}"))),
        }
    }
}

/// Serializes a built index (including its raw data, in scan order) to
/// a writer.
pub fn save_index<W: Write>(index: &Index, out: &mut W) -> io::Result<()> {
    let mut w = Writer { out };
    let cfg = index.config();
    w.bytes(MAGIC)?;
    w.u32(cfg.series_len as u32)?;
    w.u32(cfg.segments as u32)?;
    w.u32(cfg.leaf_capacity as u32)?;
    let n = index.num_series();
    w.u64(n as u64)?;
    for &v in index.layout().data().raw() {
        w.bytes(&v.to_le_bytes())?;
    }
    w.bytes(index.layout().sax_block(0..n))?;
    for &id in index.layout().scan_to_id() {
        w.u32(id)?;
    }
    w.u64(index.forest().len() as u64)?;
    for st in index.forest() {
        w.u64(st.key)?;
        w.node(&st.node)?;
    }
    Ok(())
}

/// Deserializes an index previously written by [`save_index`].
pub fn load_index<R: Read>(inp: &mut R) -> Result<Index, PersistError> {
    let mut magic = [0u8; 4];
    inp.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(corrupt("bad magic (not an Odyssey index file)"));
    }
    let mut hdr = Reader { inp, segments: 0 };
    let series_len = hdr.u32()? as usize;
    let segments = hdr.u32()? as usize;
    let leaf_capacity = hdr.u32()? as usize;
    if series_len == 0 || segments == 0 || segments > series_len || segments > 64 {
        return Err(corrupt("invalid dimensions"));
    }
    if leaf_capacity == 0 {
        return Err(corrupt("invalid leaf capacity"));
    }
    let n = hdr.u64()? as usize;
    let mut raw = vec![0.0f32; n * series_len];
    {
        let mut buf = [0u8; 4];
        for v in raw.iter_mut() {
            hdr.inp.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
    }
    let mut sax = vec![0u8; n * segments];
    hdr.inp.read_exact(&mut sax)?;
    // The scan permutation must be a bijection onto [0, n).
    let mut scan_to_id = Vec::with_capacity(n);
    {
        let mut seen = vec![false; n];
        for _ in 0..n {
            let id = hdr.u32()? as usize;
            if id >= n {
                return Err(corrupt("scan permutation id out of range"));
            }
            if seen[id] {
                return Err(corrupt(format!("id {id} appears twice in permutation")));
            }
            seen[id] = true;
            scan_to_id.push(id as u32);
        }
    }
    let n_subtrees = hdr.u64()? as usize;
    if n_subtrees > n.max(1) {
        return Err(corrupt("more subtrees than series"));
    }
    let mut reader = Reader {
        inp: hdr.inp,
        segments,
    };
    let mut forest = Vec::with_capacity(n_subtrees);
    let mut prev_key: Option<u64> = None;
    let mut total = 0usize;
    // Leaf slices must partition the scan positions (no overlap, full
    // coverage) — the layout contract every search path relies on.
    let mut covered = vec![false; n];
    for _ in 0..n_subtrees {
        let key = reader.u64()?;
        if let Some(p) = prev_key {
            if key <= p {
                return Err(corrupt("subtree keys not strictly ascending"));
            }
        }
        prev_key = Some(key);
        let node = reader.node(n as u64, 0, &mut covered)?;
        let size = node.series_count();
        total += size;
        forest.push(RootSubtree { key, node, size });
    }
    if total != n {
        return Err(corrupt(format!(
            "forest stores {total} series, header says {n}"
        )));
    }
    if !covered.iter().all(|&c| c) {
        return Err(corrupt("leaf slices do not cover every scan position"));
    }
    // The determinism contract documented on `LeafSlice`: within each
    // leaf, positions ascend in original-id order. A file violating it
    // would load into an index whose tie resolution diverges from a
    // freshly built one.
    for st in &forest {
        let mut ordered = true;
        st.node.for_each_leaf(&mut |leaf| {
            let ids = &scan_to_id[leaf.slice.range()];
            if ids.windows(2).any(|w| w[0] >= w[1]) {
                ordered = false;
            }
        });
        if !ordered {
            return Err(corrupt("leaf ids not in dataset order"));
        }
    }
    let data = DatasetBuffer::from_vec(raw, series_len);
    let cfg = IndexConfig {
        series_len,
        segments,
        leaf_capacity,
    };
    Ok(Index::from_parts(cfg, data, sax, scan_to_id, forest))
}

/// Saves an index to a file path.
pub fn save_index_file(index: &Index, path: &std::path::Path) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    save_index(index, &mut f)?;
    f.flush()
}

/// Loads an index from a file path.
pub fn load_index_file(path: &std::path::Path) -> Result<Index, PersistError> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    load_index(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::exact::{exact_search, SearchParams};

    fn walk_dataset(n: usize, len: usize, seed: u64) -> DatasetBuffer {
        let mut x = seed | 1;
        let mut data = Vec::with_capacity(n * len);
        for _ in 0..n {
            let mut acc = 0.0f32;
            let mut s = Vec::with_capacity(len);
            for _ in 0..len {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                acc += ((x % 2000) as f32 / 1000.0) - 1.0;
                s.push(acc);
            }
            crate::series::znormalize(&mut s);
            data.extend_from_slice(&s);
        }
        DatasetBuffer::from_vec(data, len)
    }

    fn build(n: usize) -> Index {
        Index::build(
            walk_dataset(n, 64, 99),
            IndexConfig::new(64).with_segments(8).with_leaf_capacity(16),
            2,
        )
    }

    #[test]
    fn roundtrip_preserves_answers() {
        let index = build(700);
        let mut bytes = Vec::new();
        save_index(&index, &mut bytes).expect("save");
        let loaded = load_index(&mut bytes.as_slice()).expect("load");
        assert_eq!(loaded.num_series(), 700);
        assert_eq!(loaded.forest().len(), index.forest().len());
        let q = walk_dataset(1, 64, 5).series(0).to_vec();
        let a = exact_search(&index, &q, &SearchParams::new(2));
        let b = exact_search(&loaded, &q, &SearchParams::new(2));
        assert_eq!(a.answer.distance, b.answer.distance);
        assert_eq!(a.answer.series_id, b.answer.series_id);
    }

    #[test]
    fn roundtrip_preserves_structure_exactly() {
        let index = build(400);
        let mut bytes = Vec::new();
        save_index(&index, &mut bytes).expect("save");
        let loaded = load_index(&mut bytes.as_slice()).expect("load");
        assert_eq!(
            index.layout().scan_to_id(),
            loaded.layout().scan_to_id(),
            "scan permutation survives"
        );
        for (a, b) in index.forest().iter().zip(loaded.forest()) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.size, b.size);
            let mut la = Vec::new();
            let mut lb = Vec::new();
            a.node.for_each_leaf(&mut |l| la.push((l.word.clone(), l.slice)));
            b.node.for_each_leaf(&mut |l| lb.push((l.word.clone(), l.slice)));
            assert_eq!(la, lb);
        }
        for id in 0..400u32 {
            assert_eq!(index.sax_by_id(id), loaded.sax_by_id(id));
            assert_eq!(index.series_by_id(id), loaded.series_by_id(id));
        }
    }

    #[test]
    fn load_rebuilds_segment_major_transpose() {
        // The SoA transpose is not in the file; `from_scan_parts` must
        // reconstruct it byte-identically on load.
        let index = build(300);
        let mut bytes = Vec::new();
        save_index(&index, &mut bytes).expect("save");
        let loaded = load_index(&mut bytes.as_slice()).expect("load");
        assert_eq!(
            index.layout().sax_soa_bytes(),
            loaded.layout().sax_soa_bytes(),
            "SoA transpose survives a save/load roundtrip"
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = b"NOPE".to_vec();
        bytes.extend_from_slice(&[0u8; 64]);
        assert!(matches!(
            load_index(&mut bytes.as_slice()),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let index = build(120);
        let mut bytes = Vec::new();
        save_index(&index, &mut bytes).expect("save");
        // Truncate at a spread of offsets; every prefix must fail cleanly.
        for frac in [10usize, 30, 50, 70, 90, 99] {
            let cut = bytes.len() * frac / 100;
            let mut slice = &bytes[..cut];
            assert!(
                load_index(&mut slice).is_err(),
                "truncation at {frac}% must not produce an index"
            );
        }
    }

    #[test]
    fn rejects_out_of_range_ids() {
        let index = build(50);
        let mut bytes = Vec::new();
        save_index(&index, &mut bytes).expect("save");
        // Lower the series count in the header: everything downstream
        // (permutation, slices) is now inconsistent with it.
        let off = 4 + 4 + 4 + 4; // magic + 3 u32s
        bytes[off..off + 8].copy_from_slice(&10u64.to_le_bytes());
        assert!(load_index(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn rejects_corrupted_scan_permutation() {
        let index = build(50);
        let cfg = *index.config();
        let n = index.num_series();
        let mut bytes = Vec::new();
        save_index(&index, &mut bytes).expect("save");
        // Overwrite the first permutation entry with a copy of the
        // second: the permutation is no longer a bijection.
        let perm_off = 4 + 12 + 8 + n * cfg.series_len * 4 + n * cfg.segments;
        let dup = bytes[perm_off + 4..perm_off + 8].to_vec();
        bytes[perm_off..perm_off + 4].copy_from_slice(&dup);
        match load_index(&mut bytes.as_slice()) {
            Err(PersistError::Corrupt(m)) => {
                assert!(m.contains("twice"), "unexpected message: {m}")
            }
            other => panic!("expected corruption error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_leaf_ids_out_of_dataset_order() {
        let index = build(200);
        let cfg = *index.config();
        let n = index.num_series();
        // Find a leaf holding at least two series.
        let mut off = None;
        for st in index.forest() {
            st.node.for_each_leaf(&mut |l| {
                if off.is_none() && l.slice.len() >= 2 {
                    off = Some(l.slice.offset as usize);
                }
            });
        }
        let off = off.expect("some leaf holds two series");
        let mut bytes = Vec::new();
        save_index(&index, &mut bytes).expect("save");
        // Swap the leaf's first two permutation entries: still a valid
        // bijection with valid slices, but the within-leaf dataset
        // order — and hence tie-resolution determinism — is broken.
        let perm_off =
            4 + 12 + 8 + n * cfg.series_len * 4 + n * cfg.segments + off * 4;
        let (a, b) = (perm_off, perm_off + 4);
        for i in 0..4 {
            bytes.swap(a + i, b + i);
        }
        match load_index(&mut bytes.as_slice()) {
            Err(PersistError::Corrupt(m)) => {
                assert!(m.contains("dataset order"), "unexpected message: {m}")
            }
            other => panic!("expected corruption error, got {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip() {
        let index = build(200);
        let path = std::env::temp_dir().join(format!("odyssey_persist_{}.idx", std::process::id()));
        save_index_file(&index, &path).expect("save file");
        let loaded = load_index_file(&path).expect("load file");
        assert_eq!(loaded.num_series(), 200);
        std::fs::remove_file(&path).ok();
    }
}
