//! Index persistence: a compact, versioned binary format for saving a
//! built [`Index`] (raw data + summaries + forest) and loading it back
//! without rebuilding.
//!
//! The paper's setting is in-memory, but any deployment answering more
//! than one batch wants to pay the construction cost once. The format is
//! deliberately simple (explicit little-endian fields, no external
//! serialization dependency) and fully validated on load — a corrupted
//! or truncated file produces an error, never a wrong index.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "ODY1" | u32 series_len | u32 segments | u32 leaf_capacity
//! u64 num_series | raw f32 data | per-series SAX bytes
//! u64 n_subtrees | per subtree: u64 key, node tree (pre-order)
//! node: u8 tag (0=leaf, 1=inner)
//!   leaf : word, u64 n_ids, u32 ids...
//!   inner: word, u32 split_seg, then both children
//! word : per segment u8 symbol, then per segment u8 card_bits
//! ```

use crate::buffers::Summaries;
use crate::index::{Index, IndexConfig};
use crate::sax::IsaxWord;
use crate::series::DatasetBuffer;
use crate::tree::{Leaf, Node, RootSubtree};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"ODY1";

/// Errors produced when loading a persisted index.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The bytes are not a valid persisted index.
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Corrupt(m) => write!(f, "corrupt index file: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> PersistError {
    PersistError::Corrupt(msg.into())
}

struct Writer<'w, W: Write> {
    out: &'w mut W,
}

impl<W: Write> Writer<'_, W> {
    fn u8(&mut self, v: u8) -> io::Result<()> {
        self.out.write_all(&[v])
    }
    fn u32(&mut self, v: u32) -> io::Result<()> {
        self.out.write_all(&v.to_le_bytes())
    }
    fn u64(&mut self, v: u64) -> io::Result<()> {
        self.out.write_all(&v.to_le_bytes())
    }
    fn bytes(&mut self, v: &[u8]) -> io::Result<()> {
        self.out.write_all(v)
    }
    fn word(&mut self, w: &IsaxWord) -> io::Result<()> {
        self.bytes(&w.symbols)?;
        self.bytes(&w.card_bits)
    }
    fn node(&mut self, n: &Node) -> io::Result<()> {
        match n {
            Node::Leaf(l) => {
                self.u8(0)?;
                self.word(&l.word)?;
                self.u64(l.ids.len() as u64)?;
                for &id in &l.ids {
                    self.u32(id)?;
                }
            }
            Node::Inner {
                word,
                split_seg,
                children,
            } => {
                self.u8(1)?;
                self.word(word)?;
                self.u32(*split_seg as u32)?;
                self.node(&children[0])?;
                self.node(&children[1])?;
            }
        }
        Ok(())
    }
}

struct Reader<'r, R: Read> {
    inp: &'r mut R,
    segments: usize,
}

impl<R: Read> Reader<'_, R> {
    fn u8(&mut self) -> Result<u8, PersistError> {
        let mut b = [0u8; 1];
        self.inp.read_exact(&mut b)?;
        Ok(b[0])
    }
    fn u32(&mut self) -> Result<u32, PersistError> {
        let mut b = [0u8; 4];
        self.inp.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> Result<u64, PersistError> {
        let mut b = [0u8; 8];
        self.inp.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    fn word(&mut self) -> Result<IsaxWord, PersistError> {
        let mut symbols = vec![0u8; self.segments];
        self.inp.read_exact(&mut symbols)?;
        let mut card_bits = vec![0u8; self.segments];
        self.inp.read_exact(&mut card_bits)?;
        if card_bits.iter().any(|&b| b > crate::sax::MAX_CARD_BITS) {
            return Err(corrupt("cardinality exceeds maximum"));
        }
        Ok(IsaxWord { symbols, card_bits })
    }
    fn node(&mut self, num_series: u64, depth: usize) -> Result<Node, PersistError> {
        if depth > 16 * crate::sax::MAX_CARD_BITS as usize + 64 {
            return Err(corrupt("tree deeper than any valid iSAX tree"));
        }
        match self.u8()? {
            0 => {
                let word = self.word()?;
                let n = self.u64()?;
                if n > num_series {
                    return Err(corrupt("leaf larger than the collection"));
                }
                let mut ids = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let id = self.u32()?;
                    if u64::from(id) >= num_series {
                        return Err(corrupt("series id out of range"));
                    }
                    ids.push(id);
                }
                Ok(Node::Leaf(Leaf { word, ids }))
            }
            1 => {
                let word = self.word()?;
                let split_seg = self.u32()? as usize;
                if split_seg >= self.segments {
                    return Err(corrupt("split segment out of range"));
                }
                let c0 = self.node(num_series, depth + 1)?;
                let c1 = self.node(num_series, depth + 1)?;
                Ok(Node::Inner {
                    word,
                    split_seg,
                    children: [Box::new(c0), Box::new(c1)],
                })
            }
            t => Err(corrupt(format!("unknown node tag {t}"))),
        }
    }
}

/// Serializes a built index (including its raw data) to a writer.
pub fn save_index<W: Write>(index: &Index, out: &mut W) -> io::Result<()> {
    let mut w = Writer { out };
    let cfg = index.config();
    w.bytes(MAGIC)?;
    w.u32(cfg.series_len as u32)?;
    w.u32(cfg.segments as u32)?;
    w.u32(cfg.leaf_capacity as u32)?;
    let n = index.num_series();
    w.u64(n as u64)?;
    for &v in index.data().raw() {
        w.bytes(&v.to_le_bytes())?;
    }
    for id in 0..n as u32 {
        w.bytes(index.summaries().sax(id))?;
    }
    w.u64(index.forest().len() as u64)?;
    for st in index.forest() {
        w.u64(st.key)?;
        w.node(&st.node)?;
    }
    Ok(())
}

/// Deserializes an index previously written by [`save_index`].
pub fn load_index<R: Read>(inp: &mut R) -> Result<Index, PersistError> {
    let mut magic = [0u8; 4];
    inp.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(corrupt("bad magic (not an Odyssey index file)"));
    }
    let mut hdr = Reader { inp, segments: 0 };
    let series_len = hdr.u32()? as usize;
    let segments = hdr.u32()? as usize;
    let leaf_capacity = hdr.u32()? as usize;
    if series_len == 0 || segments == 0 || segments > series_len || segments > 64 {
        return Err(corrupt("invalid dimensions"));
    }
    if leaf_capacity == 0 {
        return Err(corrupt("invalid leaf capacity"));
    }
    let n = hdr.u64()? as usize;
    let mut raw = vec![0.0f32; n * series_len];
    {
        let mut buf = [0u8; 4];
        for v in raw.iter_mut() {
            hdr.inp.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
    }
    let mut sax = vec![0u8; n * segments];
    hdr.inp.read_exact(&mut sax)?;
    let n_subtrees = hdr.u64()? as usize;
    if n_subtrees > n.max(1) {
        return Err(corrupt("more subtrees than series"));
    }
    let mut reader = Reader {
        inp: hdr.inp,
        segments,
    };
    let mut forest = Vec::with_capacity(n_subtrees);
    let mut prev_key: Option<u64> = None;
    let mut total = 0usize;
    for _ in 0..n_subtrees {
        let key = reader.u64()?;
        if let Some(p) = prev_key {
            if key <= p {
                return Err(corrupt("subtree keys not strictly ascending"));
            }
        }
        prev_key = Some(key);
        let node = reader.node(n as u64, 0)?;
        let size = node.series_count();
        total += size;
        forest.push(RootSubtree { key, node, size });
    }
    if total != n {
        return Err(corrupt(format!(
            "forest stores {total} series, header says {n}"
        )));
    }
    let data = DatasetBuffer::from_vec(raw, series_len);
    let summaries = Summaries::from_raw(sax.into(), segments);
    let cfg = IndexConfig {
        series_len,
        segments,
        leaf_capacity,
    };
    Ok(Index::from_parts(cfg, data, summaries, forest))
}

/// Saves an index to a file path.
pub fn save_index_file(index: &Index, path: &std::path::Path) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    save_index(index, &mut f)?;
    f.flush()
}

/// Loads an index from a file path.
pub fn load_index_file(path: &std::path::Path) -> Result<Index, PersistError> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    load_index(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::exact::{exact_search, SearchParams};

    fn walk_dataset(n: usize, len: usize, seed: u64) -> DatasetBuffer {
        let mut x = seed | 1;
        let mut data = Vec::with_capacity(n * len);
        for _ in 0..n {
            let mut acc = 0.0f32;
            let mut s = Vec::with_capacity(len);
            for _ in 0..len {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                acc += ((x % 2000) as f32 / 1000.0) - 1.0;
                s.push(acc);
            }
            crate::series::znormalize(&mut s);
            data.extend_from_slice(&s);
        }
        DatasetBuffer::from_vec(data, len)
    }

    fn build(n: usize) -> Index {
        Index::build(
            walk_dataset(n, 64, 99),
            IndexConfig::new(64).with_segments(8).with_leaf_capacity(16),
            2,
        )
    }

    #[test]
    fn roundtrip_preserves_answers() {
        let index = build(700);
        let mut bytes = Vec::new();
        save_index(&index, &mut bytes).expect("save");
        let loaded = load_index(&mut bytes.as_slice()).expect("load");
        assert_eq!(loaded.num_series(), 700);
        assert_eq!(loaded.forest().len(), index.forest().len());
        let q = walk_dataset(1, 64, 5).series(0).to_vec();
        let a = exact_search(&index, &q, &SearchParams::new(2));
        let b = exact_search(&loaded, &q, &SearchParams::new(2));
        assert_eq!(a.answer.distance, b.answer.distance);
        assert_eq!(a.answer.series_id, b.answer.series_id);
    }

    #[test]
    fn roundtrip_preserves_structure_exactly() {
        let index = build(400);
        let mut bytes = Vec::new();
        save_index(&index, &mut bytes).expect("save");
        let loaded = load_index(&mut bytes.as_slice()).expect("load");
        for (a, b) in index.forest().iter().zip(loaded.forest()) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.size, b.size);
            let mut la = Vec::new();
            let mut lb = Vec::new();
            a.node.for_each_leaf(&mut |l| la.push((l.word.clone(), l.ids.clone())));
            b.node.for_each_leaf(&mut |l| lb.push((l.word.clone(), l.ids.clone())));
            assert_eq!(la, lb);
        }
        for id in 0..400u32 {
            assert_eq!(index.summaries().sax(id), loaded.summaries().sax(id));
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = b"NOPE".to_vec();
        bytes.extend_from_slice(&[0u8; 64]);
        assert!(matches!(
            load_index(&mut bytes.as_slice()),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let index = build(120);
        let mut bytes = Vec::new();
        save_index(&index, &mut bytes).expect("save");
        // Truncate at a spread of offsets; every prefix must fail cleanly.
        for frac in [10usize, 30, 50, 70, 90, 99] {
            let cut = bytes.len() * frac / 100;
            let mut slice = &bytes[..cut];
            assert!(
                load_index(&mut slice).is_err(),
                "truncation at {frac}% must not produce an index"
            );
        }
    }

    #[test]
    fn rejects_out_of_range_ids() {
        let index = build(50);
        let mut bytes = Vec::new();
        save_index(&index, &mut bytes).expect("save");
        // Lower the series count in the header: stored ids now exceed it.
        let off = 4 + 4 + 4 + 4; // magic + 3 u32s
        bytes[off..off + 8].copy_from_slice(&10u64.to_le_bytes());
        assert!(load_index(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let index = build(200);
        let path = std::env::temp_dir().join(format!("odyssey_persist_{}.idx", std::process::id()));
        save_index_file(&index, &path).expect("save file");
        let loaded = load_index_file(&path).expect("load file");
        assert_eq!(loaded.num_series(), 200);
        std::fs::remove_file(&path).ok();
    }
}
