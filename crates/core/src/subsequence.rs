//! Subsequence similarity search (the paper's stated future work,
//! following the ULISSE line it cites).
//!
//! Given one or more *long* sequences, find the z-normalized
//! length-`w` subsequence closest to a length-`w` query. The classic
//! reduction — index every sliding window as its own z-normalized series
//! and run whole-matching search — is implemented here: a
//! [`SubsequenceIndex`] materializes the windows (optionally strided),
//! maps window ids back to `(sequence, offset)` positions, and exposes
//! exact/k-NN search over them through the ordinary [`Index`] machinery.
//! Overlapping-window *trivial matches* can be suppressed with an
//! exclusion radius, as in matrix-profile practice.

use crate::index::{Index, IndexConfig};
use crate::search::answer::Answer;
use crate::search::exact::{exact_search, SearchParams};
use crate::series::{znormalize, DatasetBuffer};

/// A position inside the original long-sequence collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowRef {
    /// Index of the source sequence.
    pub sequence: usize,
    /// Offset of the window's first point within that sequence.
    pub offset: usize,
}

/// A whole-matching index over the sliding windows of long sequences.
#[derive(Debug)]
pub struct SubsequenceIndex {
    index: Index,
    refs: Vec<WindowRef>,
    window: usize,
}

impl SubsequenceIndex {
    /// Builds the index over all windows of length `window`, taken every
    /// `stride` points, from each sequence in `sequences`.
    ///
    /// # Panics
    /// Panics when `window == 0`, `stride == 0`, or no sequence is long
    /// enough to contain a single window.
    pub fn build<S: AsRef<[f32]>>(
        sequences: &[S],
        window: usize,
        stride: usize,
        n_threads: usize,
    ) -> Self {
        assert!(window > 0 && stride > 0);
        let mut data = Vec::new();
        let mut refs = Vec::new();
        let mut buf = vec![0.0f32; window];
        for (si, seq) in sequences.iter().enumerate() {
            let seq = seq.as_ref();
            if seq.len() < window {
                continue;
            }
            let mut off = 0;
            while off + window <= seq.len() {
                buf.copy_from_slice(&seq[off..off + window]);
                znormalize(&mut buf);
                data.extend_from_slice(&buf);
                refs.push(WindowRef {
                    sequence: si,
                    offset: off,
                });
                off += stride;
            }
        }
        assert!(
            !refs.is_empty(),
            "no sequence is long enough for a {window}-point window"
        );
        let cfg = IndexConfig::new(window)
            .with_segments(16.min(window))
            .with_leaf_capacity(128);
        let index = Index::build(DatasetBuffer::from_vec(data, window), cfg, n_threads);
        SubsequenceIndex {
            index,
            refs,
            window,
        }
    }

    /// The window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of indexed windows.
    pub fn num_windows(&self) -> usize {
        self.refs.len()
    }

    /// The underlying whole-matching index.
    pub fn index(&self) -> &Index {
        &self.index
    }

    /// The source position of window id `w`.
    pub fn window_ref(&self, w: u32) -> WindowRef {
        self.refs[w as usize]
    }

    /// Exact best-match search: the z-normalized window closest to the
    /// (z-normalized) query. Returns the answer plus its source position.
    ///
    /// # Panics
    /// Panics if the query length differs from the window length.
    pub fn best_match(&self, query: &[f32], n_threads: usize) -> (Answer, WindowRef) {
        assert_eq!(query.len(), self.window, "query/window length mismatch");
        let q = crate::series::znormalized(query);
        let out = exact_search(&self.index, &q, &SearchParams::new(n_threads));
        let id = out.answer.series_id.expect("non-empty index");
        (out.answer, self.refs[id as usize])
    }

    /// The `k` best matches whose windows are pairwise non-trivial: two
    /// matches from the same sequence must differ in offset by at least
    /// `exclusion` points (use `exclusion = window / 2` for the common
    /// matrix-profile convention; `0` disables the filter).
    pub fn top_matches(
        &self,
        query: &[f32],
        k: usize,
        exclusion: usize,
        n_threads: usize,
    ) -> Vec<(f64, WindowRef)> {
        assert_eq!(query.len(), self.window);
        let q = crate::series::znormalized(query);
        // Over-fetch, then greedily keep non-trivial matches. The factor
        // bounds how many overlapping windows one true match can spawn.
        let overfetch = k * (2 * exclusion / self.window.max(1) + 4);
        let (knn, _) = crate::search::knn::knn_search(
            &self.index,
            &q,
            overfetch.min(self.num_windows()),
            &SearchParams::new(n_threads),
        );
        let mut kept: Vec<(f64, WindowRef)> = Vec::with_capacity(k);
        for &(d_sq, id) in &knn.neighbors {
            let r = self.refs[id as usize];
            let trivial = kept.iter().any(|&(_, kr)| {
                kr.sequence == r.sequence && kr.offset.abs_diff(r.offset) < exclusion.max(1)
            });
            if !trivial || exclusion == 0 {
                kept.push((d_sq, r));
                if kept.len() == k {
                    break;
                }
            }
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::euclidean_sq;

    fn long_sequence(len: usize, seed: u64) -> Vec<f32> {
        let mut x = seed | 1;
        let mut acc = 0.0f32;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                acc += ((x % 2000) as f32 / 1000.0) - 1.0;
                acc
            })
            .collect()
    }

    #[test]
    fn finds_planted_pattern() {
        // Plant an exact copy of the query inside a long sequence.
        let mut seq = long_sequence(2000, 7);
        let pattern = long_sequence(64, 99);
        seq[500..564].copy_from_slice(&pattern[..64]);
        let idx = SubsequenceIndex::build(&[seq], 64, 1, 2);
        let (ans, r) = idx.best_match(&pattern[..64], 2);
        assert_eq!(r.offset, 500);
        assert_eq!(r.sequence, 0);
        assert!(ans.distance < 1e-4, "distance {}", ans.distance);
    }

    #[test]
    fn best_match_equals_brute_force_over_windows() {
        let seqs = vec![long_sequence(800, 3), long_sequence(600, 5)];
        let w = 48;
        let idx = SubsequenceIndex::build(&seqs, w, 1, 2);
        let query = long_sequence(w, 21);
        let qz = crate::series::znormalized(&query);
        // Brute force over all z-normalized windows.
        let mut best = f64::INFINITY;
        for seq in &seqs {
            for off in 0..=(seq.len() - w) {
                let wz = crate::series::znormalized(&seq[off..off + w]);
                best = best.min(euclidean_sq(&qz, &wz));
            }
        }
        let (ans, _) = idx.best_match(&query, 2);
        assert!((ans.distance_sq - best).abs() < 1e-6);
    }

    #[test]
    fn stride_reduces_window_count() {
        let seq = long_sequence(1000, 9);
        let dense = SubsequenceIndex::build(std::slice::from_ref(&seq), 64, 1, 1);
        let sparse = SubsequenceIndex::build(&[seq], 64, 8, 1);
        assert_eq!(dense.num_windows(), 1000 - 64 + 1);
        assert_eq!(sparse.num_windows(), (1000 - 64) / 8 + 1);
    }

    #[test]
    fn top_matches_respect_exclusion() {
        let mut seq = long_sequence(3000, 11);
        let pattern = long_sequence(64, 77);
        // Plant the pattern at two distant spots.
        seq[400..464].copy_from_slice(&pattern[..64]);
        seq[2000..2064].copy_from_slice(&pattern[..64]);
        let idx = SubsequenceIndex::build(&[seq], 64, 1, 2);
        let matches = idx.top_matches(&pattern[..64], 2, 32, 2);
        assert_eq!(matches.len(), 2);
        let offs: Vec<usize> = matches.iter().map(|m| m.1.offset).collect();
        assert!(offs.contains(&400), "offsets: {offs:?}");
        assert!(offs.contains(&2000), "offsets: {offs:?}");
        // Without exclusion the two best matches are the exact plants
        // (both at distance ~0), order unconstrained.
        let trivial = idx.top_matches(&pattern[..64], 2, 0, 2);
        assert!(trivial.iter().all(|&(d, _)| d < 1e-6));
    }

    #[test]
    fn short_sequences_are_skipped() {
        let seqs = vec![long_sequence(10, 1), long_sequence(200, 2)];
        let idx = SubsequenceIndex::build(&seqs, 64, 1, 1);
        assert!(idx.num_windows() > 0);
        assert!((0..idx.num_windows() as u32).all(|w| idx.window_ref(w).sequence == 1));
    }

    #[test]
    #[should_panic(expected = "long enough")]
    fn all_too_short_panics() {
        let seqs = vec![long_sequence(10, 1)];
        SubsequenceIndex::build(&seqs, 64, 1, 1);
    }
}
