//! The `Index` façade: parallel construction, approximate search, stats.
//!
//! `Index::build` runs the two construction phases the paper times
//! separately in every index-scalability experiment (Figure 17):
//! the **buffer phase** (parallel summarization + buffer fill) and the
//! **tree phase** (parallel root-subtree growth). The timings are kept on
//! the index so harnesses can report the same breakdown.

use crate::buffers::{root_key_of_sax, SummarizationBuffers, Summaries};
use crate::layout::LeafLayout;
use crate::paa::paa;
use crate::sax::sax_word_into;
use crate::search::answer::Answer;
use crate::search::exact::{exact_search, SearchParams};
use crate::series::DatasetBuffer;
use crate::tree::{build_forest, Node, RootSubtree};
use std::time::Duration;

/// Roots bounded per sweep call in the approximate search's fallback
/// scan — a stack buffer's worth, so the scan allocates nothing.
const ROOT_SWEEP_CHUNK: usize = 64;

/// Index construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexConfig {
    /// Length (dimensionality) of every series.
    pub series_len: usize,
    /// Number of iSAX segments (the paper and the MESSI line use 16).
    pub segments: usize,
    /// Maximum series per leaf before splitting.
    pub leaf_capacity: usize,
}

impl IndexConfig {
    /// Defaults: 16 segments, leaf capacity 2000 (the MESSI defaults),
    /// clamped so `segments <= series_len`.
    pub fn new(series_len: usize) -> Self {
        IndexConfig {
            series_len,
            segments: 16.min(series_len),
            leaf_capacity: 2000,
        }
    }

    /// Sets the segment count.
    pub fn with_segments(mut self, segments: usize) -> Self {
        assert!(segments > 0 && segments <= self.series_len);
        assert!(segments <= 64, "root keys are packed into u64");
        self.segments = segments;
        self
    }

    /// Sets the leaf capacity.
    pub fn with_leaf_capacity(mut self, cap: usize) -> Self {
        assert!(cap > 0);
        self.leaf_capacity = cap;
        self
    }
}

/// Construction-time breakdown, matching the paper's evaluation measures
/// ("buffer time" and "tree time"; their sum is the "index time").
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildTimes {
    /// Summarization + buffer-fill phase.
    pub buffer_time: Duration,
    /// Tree-construction phase.
    pub tree_time: Duration,
}

impl BuildTimes {
    /// Total index-creation time.
    pub fn index_time(&self) -> Duration {
        self.buffer_time + self.tree_time
    }
}

/// An in-memory iSAX index over one data chunk.
///
/// The raw series and SAX words are stored **leaf-contiguously** in a
/// [`LeafLayout`]: tree leaves hold slot ranges, not id lists, so
/// draining a leaf during search reads sequential memory. All public
/// ids (answers, [`Index::summaries`]) remain *original* dataset ids;
/// the layout keeps the position/id mapping.
pub struct Index {
    config: IndexConfig,
    layout: LeafLayout,
    forest: Vec<RootSubtree>,
    /// Segment-major planes of the root words (the shape the SIMD
    /// root-mindist sweep consumes); a pure function of `forest`,
    /// rebuilt on load, never persisted.
    root_soa: crate::tree::RootSoa,
    build_times: BuildTimes,
}

/// Result of the approximate search that seeds the exact algorithm's BSF.
#[derive(Debug, Clone, Copy)]
pub struct ApproxResult {
    /// Rooted Euclidean distance of the best series in the visited leaf.
    pub distance: f64,
    /// Squared distance (what the search actually compares against).
    pub distance_sq: f64,
    /// Id of that series, or `None` on an empty index.
    pub series_id: Option<u32>,
    /// Number of series scanned in the visited leaf (the cost of the
    /// approximate search, used by the cluster's unit accounting).
    pub leaf_size: usize,
}

impl Index {
    /// Builds the index with `n_threads` workers.
    ///
    /// # Panics
    /// Panics if the buffer's series length disagrees with the config.
    pub fn build(data: DatasetBuffer, config: IndexConfig, n_threads: usize) -> Self {
        assert_eq!(
            data.series_len(),
            config.series_len,
            "config/series length mismatch"
        );
        let t0 = std::time::Instant::now();
        let summaries = Summaries::compute(&data, config.segments, n_threads);
        let buffers = SummarizationBuffers::build(&summaries);
        let buffer_time = t0.elapsed();
        let t1 = std::time::Instant::now();
        let (forest, scan_to_id) = build_forest(&buffers, &summaries, config.leaf_capacity, n_threads);
        // Materialize the leaf-contiguous scan layout; the dataset-ordered
        // buffer is dropped — the permuted copy plus the id mapping is the
        // single copy of the raw values.
        let layout = LeafLayout::build(&data, &summaries, scan_to_id);
        let tree_time = t1.elapsed();
        Index {
            config,
            layout,
            root_soa: crate::tree::RootSoa::build(&forest),
            forest,
            build_times: BuildTimes {
                buffer_time,
                tree_time,
            },
        }
    }

    /// Reassembles an index from parts (the persistence path): raw
    /// data, SAX words, and the permutation all in **scan order**, plus
    /// the forest. The caller guarantees consistency (`crate::persist`
    /// validates it); build times are zeroed since nothing was built.
    pub fn from_parts(
        config: IndexConfig,
        scan_data: DatasetBuffer,
        scan_sax: Vec<u8>,
        scan_to_id: Vec<u32>,
        forest: Vec<crate::tree::RootSubtree>,
    ) -> Self {
        assert_eq!(scan_data.series_len(), config.series_len);
        let layout =
            LeafLayout::from_scan_parts(scan_data, scan_sax, scan_to_id, config.segments);
        Index {
            config,
            layout,
            root_soa: crate::tree::RootSoa::build(&forest),
            forest,
            build_times: BuildTimes::default(),
        }
    }

    /// The construction parameters.
    #[inline]
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// The leaf-contiguous scan layout (position-indexed raw data and
    /// SAX words plus the position/id mappings).
    #[inline]
    pub fn layout(&self) -> &LeafLayout {
        &self.layout
    }

    /// Raw values of the series with original dataset id `id`.
    #[inline]
    pub fn series_by_id(&self, id: u32) -> &[f32] {
        self.layout.series_by_id(id)
    }

    /// Full-cardinality SAX word of the series with original dataset id
    /// `id` (looked up through the scan layout — the SAX bytes are
    /// stored exactly once, in scan order).
    #[inline]
    pub fn sax_by_id(&self, id: u32) -> &[u8] {
        self.layout.sax(self.layout.scan_pos(id))
    }

    /// The root subtrees, sorted by root key.
    #[inline]
    pub fn forest(&self) -> &[RootSubtree] {
        &self.forest
    }

    /// Segment-major planes of the root words — the operand of the
    /// batched root-level lower-bound sweep
    /// ([`crate::sax::MindistTable::root_lb_block`]).
    #[inline]
    pub fn root_soa(&self) -> &crate::tree::RootSoa {
        &self.root_soa
    }

    /// Construction timing breakdown.
    #[inline]
    pub fn build_times(&self) -> BuildTimes {
        self.build_times
    }

    /// Number of indexed series.
    #[inline]
    pub fn num_series(&self) -> usize {
        self.layout.num_series()
    }

    /// Total leaves in the forest.
    pub fn leaf_count(&self) -> usize {
        self.forest.iter().map(|t| t.node.leaf_count()).sum()
    }

    /// Index overhead in bytes: the scan layout (SAX words + id
    /// mappings) and the tree structure, excluding the raw data (the
    /// quantity plotted in Figure 14).
    pub fn size_bytes(&self) -> usize {
        self.layout.size_bytes()
            + self.root_soa.size_bytes()
            + self
                .forest
                .iter()
                .map(|t| t.node.size_bytes() + std::mem::size_of::<RootSubtree>())
                .sum::<usize>()
    }

    /// PAA of a query under this index's configuration.
    pub fn query_paa(&self, query: &[f32]) -> Vec<f64> {
        assert_eq!(query.len(), self.config.series_len, "query length mismatch");
        paa(query, self.config.segments)
    }

    /// Approximate search (the "initial BSF" computation, Algorithm 1
    /// line 5): descend greedily to the most promising leaf and take the
    /// best real distance inside it.
    pub fn approx_search(&self, query: &[f32]) -> ApproxResult {
        let qpaa = self.query_paa(query);
        self.approx_search_paa(query, &qpaa)
    }

    /// [`Index::approx_search`] with a precomputed query PAA. Builds a
    /// throwaway per-query [`MindistTable`] — callers that already hold
    /// one (the exact-search kernels) use
    /// [`Index::approx_search_with_table`] instead.
    pub fn approx_search_paa(&self, query: &[f32], qpaa: &[f64]) -> ApproxResult {
        let table = crate::sax::MindistTable::from_paa(qpaa, self.config.series_len);
        self.approx_search_with_table(query, qpaa, &table)
    }

    /// [`Index::approx_search`] against a caller-supplied per-query
    /// mindist table (built from the same `qpaa`). All lower bounds —
    /// the fallback scan over every root and the greedy descent — go
    /// through the table, whose `word_lb_sq` is bit-identical to the
    /// reference [`crate::sax::mindist_paa_isax_sq`], so the visited leaf (and
    /// hence the seeded BSF) is exactly the one the reference
    /// arithmetic selects. The root scan runs through the batched SIMD
    /// sweep over the root-word planes rather than one
    /// breakpoint-recomputing call per root.
    pub fn approx_search_with_table(
        &self,
        query: &[f32],
        qpaa: &[f64],
        table: &crate::sax::MindistTable,
    ) -> ApproxResult {
        if self.forest.is_empty() {
            return ApproxResult {
                distance: f64::INFINITY,
                distance_sq: f64::INFINITY,
                series_id: None,
                leaf_size: 0,
            };
        }
        // Prefer the root subtree whose region contains the query; fall
        // back to the minimum-mindist subtree (first minimum on ties,
        // matching `Iterator::min_by` over the same values).
        let mut qsax = vec![0u8; self.config.segments];
        sax_word_into(qpaa, &mut qsax);
        let qkey = root_key_of_sax(&qsax);
        let subtree = match self.forest.binary_search_by_key(&qkey, |t| t.key) {
            Ok(i) => &self.forest[i],
            Err(_) => {
                let mut best = f64::INFINITY;
                let mut best_root = 0usize;
                let mut lbs = [0.0f64; ROOT_SWEEP_CHUNK];
                let mut start = 0;
                while start < self.forest.len() {
                    let end = (start + ROOT_SWEEP_CHUNK).min(self.forest.len());
                    let lbs = &mut lbs[..end - start];
                    table.root_lb_block(&self.root_soa, start..end, lbs);
                    for (k, &d) in lbs.iter().enumerate() {
                        if d.total_cmp(&best) == std::cmp::Ordering::Less {
                            best = d;
                            best_root = start + k;
                        }
                    }
                    start = end;
                }
                &self.forest[best_root]
            }
        };
        // Greedy descent by child mindist.
        let mut node = &subtree.node;
        loop {
            match node {
                Node::Inner { children, .. } => {
                    let d0 = table.word_lb_sq(children[0].word());
                    let d1 = table.word_lb_sq(children[1].word());
                    node = if d0 <= d1 { &children[0] } else { &children[1] };
                }
                Node::Leaf(leaf) => {
                    // Leaf-contiguous scan: sequential raw values; slice
                    // positions ascend in original-id order, so ties
                    // resolve exactly as a dataset-order scan would.
                    let mut best = f64::INFINITY;
                    let mut best_id = None;
                    for p in leaf.slice.range() {
                        let d = crate::distance::euclidean_sq(query, self.layout.series(p));
                        if d < best {
                            best = d;
                            best_id = Some(self.layout.original_id(p));
                        }
                    }
                    return ApproxResult {
                        distance: best.sqrt(),
                        distance_sq: best,
                        series_id: best_id,
                        leaf_size: leaf.slice.len(),
                    };
                }
            }
        }
    }

    /// Exact 1-NN search with default Odyssey parameters (convenience
    /// wrapper over [`crate::search::exact::exact_search`]).
    pub fn exact_search(&self, query: &[f32], n_threads: usize) -> Answer {
        let params = SearchParams::new(n_threads);
        exact_search(self, query, &params).answer
    }

    /// Brute-force 1-NN scan; the test oracle for every search algorithm.
    /// Scans in original-id order (via the layout's id mapping) so tie
    /// resolution matches the pre-layout oracle exactly.
    pub fn brute_force(&self, query: &[f32]) -> Answer {
        let mut best = f64::INFINITY;
        let mut best_id = None;
        for id in 0..self.num_series() {
            let d = crate::distance::euclidean_sq(query, self.layout.series_by_id(id as u32));
            if d < best {
                best = d;
                best_id = Some(id as u32);
            }
        }
        Answer {
            distance: best.sqrt(),
            distance_sq: best,
            series_id: best_id,
        }
    }
}

impl std::fmt::Debug for Index {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Index")
            .field("num_series", &self.num_series())
            .field("series_len", &self.config.series_len)
            .field("segments", &self.config.segments)
            .field("root_subtrees", &self.forest.len())
            .field("leaves", &self.leaf_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk_dataset(n: usize, len: usize, seed: u64) -> DatasetBuffer {
        let mut x = seed | 1;
        let mut data = Vec::with_capacity(n * len);
        for _ in 0..n {
            let mut acc = 0.0f32;
            let mut s = Vec::with_capacity(len);
            for _ in 0..len {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                acc += ((x % 2000) as f32 / 1000.0) - 1.0;
                s.push(acc);
            }
            crate::series::znormalize(&mut s);
            data.extend_from_slice(&s);
        }
        DatasetBuffer::from_vec(data, len)
    }

    fn test_index(n: usize) -> Index {
        let data = walk_dataset(n, 64, 5);
        let cfg = IndexConfig::new(64).with_segments(8).with_leaf_capacity(20);
        Index::build(data, cfg, 2)
    }

    #[test]
    fn build_covers_all_series() {
        let idx = test_index(500);
        let total: usize = idx.forest().iter().map(|t| t.node.series_count()).sum();
        assert_eq!(total, 500);
        assert!(idx.leaf_count() >= 1);
        assert!(idx.size_bytes() > 0);
    }

    #[test]
    fn approx_search_returns_real_distance() {
        let idx = test_index(400);
        // Query = an indexed series: approximate search lands in its own
        // leaf region, so the distance must be exactly zero.
        let q = idx.series_by_id(123).to_vec();
        let r = idx.approx_search(&q);
        assert_eq!(r.distance, 0.0);
        assert_eq!(r.series_id, Some(123));
    }

    #[test]
    fn approx_upper_bounds_exact() {
        let idx = test_index(600);
        let q: Vec<f32> = crate::series::znormalized(
            &(0..64)
                .map(|i| (i as f32 * 0.21).sin())
                .collect::<Vec<_>>(),
        );
        let approx = idx.approx_search(&q);
        let exact = idx.brute_force(&q);
        assert!(approx.distance >= exact.distance - 1e-9);
    }

    #[test]
    fn brute_force_finds_planted_neighbor() {
        let mut data = walk_dataset(300, 64, 9);
        // plant an exact copy of the query at id 300
        let q: Vec<f32> = data.series(42).iter().map(|&v| v + 1e-4).collect();
        let mut raw = data.raw().to_vec();
        raw.extend_from_slice(&q);
        data = DatasetBuffer::from_vec(raw, 64);
        let cfg = IndexConfig::new(64).with_segments(8).with_leaf_capacity(16);
        let idx = Index::build(data, cfg, 2);
        let ans = idx.brute_force(&q);
        assert_eq!(ans.series_id, Some(300));
        assert_eq!(ans.distance, 0.0);
    }

    #[test]
    fn build_times_are_recorded() {
        let idx = test_index(200);
        let t = idx.build_times();
        assert!(t.index_time() >= t.buffer_time);
        assert!(t.index_time() >= t.tree_time);
    }
}
