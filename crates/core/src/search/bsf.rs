//! Best-so-far (BSF) values shared across threads — and, via the
//! distributed BSF-sharing channel, across system nodes.
//!
//! [`SharedBsf`] exploits the fact that non-negative IEEE-754 doubles
//! order identically to their bit patterns, so the hot read path is a
//! single relaxed atomic load and improvements are `fetch_min` on the
//! bits; the (rare) winner additionally records the answering series id
//! under a mutex.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Anything that can absorb candidate results and expose a pruning
/// threshold: 1-NN ([`SharedBsf`]) or k-NN ([`SharedKnn`]).
pub trait ResultSet: Sync {
    /// Current pruning threshold: candidates with (lower-bound or real)
    /// squared distance `>=` this value cannot improve the result.
    fn threshold_sq(&self) -> f64;
    /// Offers a candidate; returns `true` if it improved the result.
    fn offer(&self, distance_sq: f64, id: u32) -> bool;
}

/// A concurrent 1-NN best-so-far: squared distance plus the series id.
#[derive(Debug)]
pub struct SharedBsf {
    bits: AtomicU64,
    best: Mutex<(f64, Option<u32>)>,
}

impl SharedBsf {
    /// Starts at the given squared distance (often the approximate-search
    /// result, or `f64::INFINITY`).
    pub fn new(distance_sq: f64, id: Option<u32>) -> Self {
        assert!(distance_sq >= 0.0);
        SharedBsf {
            bits: AtomicU64::new(distance_sq.to_bits()),
            best: Mutex::new((distance_sq, id)),
        }
    }

    /// Current squared BSF (a relaxed load; safe because the value only
    /// ever decreases, so a stale read merely prunes less).
    #[inline]
    pub fn get_sq(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Lowers the BSF to `distance_sq` if it improves it, recording `id`.
    /// Returns `true` on improvement.
    pub fn update(&self, distance_sq: f64, id: Option<u32>) -> bool {
        debug_assert!(distance_sq >= 0.0);
        let prev = self
            .bits
            .fetch_min(distance_sq.to_bits(), Ordering::AcqRel);
        let improved = distance_sq.to_bits() < prev;
        if improved {
            let mut best = self.best.lock();
            if distance_sq < best.0 {
                *best = (distance_sq, id);
            }
        }
        improved
    }

    /// The best `(squared distance, id)` seen so far.
    pub fn best(&self) -> (f64, Option<u32>) {
        *self.best.lock()
    }

    /// Current answer snapshot.
    pub fn answer(&self) -> super::answer::Answer {
        let (d, id) = self.best();
        super::answer::Answer::from_sq(d, id)
    }
}

impl ResultSet for SharedBsf {
    #[inline]
    fn threshold_sq(&self) -> f64 {
        self.get_sq()
    }

    #[inline]
    fn offer(&self, distance_sq: f64, id: u32) -> bool {
        self.update(distance_sq, Some(id))
    }
}

/// A concurrent k-NN result set: keeps the `k` smallest distinct-id
/// candidates; the pruning threshold is the current k-th distance.
#[derive(Debug)]
pub struct SharedKnn {
    k: usize,
    /// Sorted ascending by `(distance, id)`; length `<= k`.
    items: Mutex<Vec<(f64, u32)>>,
    /// Cached k-th squared distance for lock-free threshold reads.
    kth_bits: AtomicU64,
}

impl SharedKnn {
    /// An empty set for `k` neighbors (`k >= 1`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        SharedKnn {
            k,
            items: Mutex::new(Vec::with_capacity(k + 1)),
            kth_bits: AtomicU64::new(f64::INFINITY.to_bits()),
        }
    }

    /// The requested neighbor count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Snapshot of the current neighbor list.
    pub fn snapshot(&self) -> super::answer::KnnAnswer {
        super::answer::KnnAnswer {
            neighbors: self.items.lock().clone(),
        }
    }
}

impl ResultSet for SharedKnn {
    #[inline]
    fn threshold_sq(&self) -> f64 {
        f64::from_bits(self.kth_bits.load(Ordering::Relaxed))
    }

    fn offer(&self, distance_sq: f64, id: u32) -> bool {
        if distance_sq >= self.threshold_sq() {
            return false;
        }
        let mut items = self.items.lock();
        if items.iter().any(|&(_, i)| i == id) {
            return false; // duplicate candidate (e.g. re-processed batch)
        }
        let pos = items.partition_point(|&(d, _)| d <= distance_sq);
        items.insert(pos, (distance_sq, id));
        if items.len() > self.k {
            items.pop();
        }
        if items.len() == self.k {
            self.kth_bits
                .store(items[self.k - 1].0.to_bits(), Ordering::Release);
        }
        pos < self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsf_monotone_decreasing() {
        let bsf = SharedBsf::new(10.0, None);
        assert!(bsf.update(5.0, Some(1)));
        assert!(!bsf.update(7.0, Some(2)));
        assert!(bsf.update(2.0, Some(3)));
        assert_eq!(bsf.get_sq(), 2.0);
        assert_eq!(bsf.best(), (2.0, Some(3)));
    }

    #[test]
    fn bsf_concurrent_updates_keep_minimum() {
        let bsf = SharedBsf::new(f64::INFINITY, None);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let bsf = &bsf;
                s.spawn(move || {
                    for i in 0..1000u32 {
                        let d = ((t * 1000 + i) % 997) as f64 + 1.0;
                        bsf.update(d, Some(t * 1000 + i));
                    }
                });
            }
        });
        let (d, id) = bsf.best();
        assert_eq!(d, 1.0);
        assert_eq!(bsf.get_sq(), 1.0);
        assert!(id.is_some());
    }

    #[test]
    fn knn_keeps_k_smallest() {
        let knn = SharedKnn::new(3);
        assert_eq!(knn.threshold_sq(), f64::INFINITY);
        for (d, id) in [(5.0, 5), (1.0, 1), (3.0, 3), (2.0, 2), (4.0, 4)] {
            knn.offer(d, id);
        }
        let snap = knn.snapshot();
        assert_eq!(snap.neighbors, vec![(1.0, 1), (2.0, 2), (3.0, 3)]);
        assert_eq!(knn.threshold_sq(), 3.0);
    }

    #[test]
    fn knn_rejects_duplicates_and_worse() {
        let knn = SharedKnn::new(2);
        assert!(knn.offer(2.0, 7));
        assert!(!knn.offer(2.0, 7), "duplicate id must be ignored");
        assert!(knn.offer(1.0, 8));
        assert!(!knn.offer(9.0, 9), "worse than kth once full");
        assert_eq!(knn.snapshot().neighbors, vec![(1.0, 8), (2.0, 7)]);
    }

    #[test]
    fn knn_concurrent_offers_are_consistent() {
        let knn = SharedKnn::new(5);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let knn = &knn;
                s.spawn(move || {
                    for i in 0..500u32 {
                        let id = t * 500 + i;
                        knn.offer((id % 101) as f64 + 1.0, id);
                    }
                });
            }
        });
        let snap = knn.snapshot();
        assert_eq!(snap.neighbors.len(), 5);
        // All kept distances are 1.0 (the minimum, hit by several ids).
        assert!(snap.neighbors.iter().all(|&(d, _)| d == 1.0));
        // Distinct ids.
        let mut ids: Vec<u32> = snap.neighbors.iter().map(|&(_, i)| i).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 5);
    }
}
