//! Odyssey's single-node query answering (Section 3.2.1, Algorithms 1–2).
//!
//! The engine in [`exact`] implements the paper's three phases:
//!
//! 1. **Tree-traversal phase** — root subtrees are grouped into
//!    *RS-batches* ([`batches`]); worker threads claim batches with
//!    `Fetch&Add`, prune subtrees against the best-so-far ([`bsf`]), and
//!    push surviving leaves into per-batch *bounded* priority queues
//!    ([`pqueue`]); idle threads *help* unfinished batches (bounded by
//!    `HelpTH`).
//! 2. **Priority-queue preprocessing** — all queues are gathered and
//!    sorted by their minimum element, so the most promising leaves are
//!    drained first.
//! 3. **Priority-queue processing** — threads claim queues with
//!    `Fetch&Add`, verify candidates with per-series lower bounds and
//!    early-abandoning real distances, and publish BSF improvements.
//!
//! The engine is generic over a [`kernel::QueryKernel`] (Euclidean, DTW)
//! and a [`bsf::ResultSet`] (1-NN, k-NN), so the extensions of Section 4
//! reuse the same code path. It also publishes a [`exact::StealView`] that
//! the distributed layer's work-stealing manager uses to give away
//! RS-batches without moving any data.
//!
//! Three drivers execute that per-query body: the per-query
//! [`std::thread::scope`] path ([`exact::run_search`]), the persistent
//! worker-pool [`engine::BatchEngine`], which amortizes thread and
//! scratch setup across whole query batches (the private `scratch`
//! module holds the per-worker reusable arenas), and the inter-query
//! concurrency layer in [`multiq`], which partitions the pool into
//! disjoint worker groups ("lanes") so several queries of a batch run
//! simultaneously.

pub mod answer;
pub mod batches;
pub mod bsf;
pub mod dtw_search;
pub mod engine;
pub mod epsilon;
pub mod exact;
pub mod kernel;
pub mod knn;
pub mod multiq;
pub mod pqueue;
pub(crate) mod scratch;
