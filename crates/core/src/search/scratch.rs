//! Per-worker reusable scratch arenas for the search engine.
//!
//! The paper's workloads are *batches* of queries; re-provisioning
//! execution state per query (thread stacks, priority-queue heaps,
//! lower-bound buffers) is pure overhead once a
//! [`BatchEngine`](super::engine::BatchEngine) keeps worker threads
//! resident. A [`WorkerScratch`] lives as long as its worker thread and
//! is *cleared, not reallocated* between queries.
//!
//! The only subtlety is lifetimes: traversal stacks hold `&Node` and
//! priority-queue heaps hold `&Leaf`, both borrowed from the index of
//! the *current* query, while the scratch outlives any single query. The
//! arenas therefore store **empty** collections with their lifetime
//! parameter erased to `'static`: taking an allocation out re-binds it
//! to the current query's lifetime (a safe covariant coercion), and
//! returning one erases the lifetime again via [`recycle_empty`] — sound
//! because an empty collection contains no borrows at all, only a raw
//! allocation.

use crate::tree::Node;

/// Converts an empty `Vec<T>` into an empty `Vec<U>` of a
/// layout-identical element type (in practice: the same type up to
/// lifetime parameters), keeping the allocation.
pub(crate) fn recycle_empty<T, U>(mut v: Vec<T>) -> Vec<U> {
    assert!(
        std::mem::size_of::<T>() == std::mem::size_of::<U>()
            && std::mem::align_of::<T>() == std::mem::align_of::<U>(),
        "recycle_empty requires layout-identical element types"
    );
    v.clear();
    let cap = v.capacity();
    let ptr = v.as_mut_ptr();
    std::mem::forget(v);
    // SAFETY: the vector is empty, so no `T` value is ever reinterpreted
    // as a `U`; length 0 is trivially valid; the allocation was made by
    // `Vec<T>` and the size/align assertion above guarantees `Vec<U>`
    // frees it under the same layout.
    unsafe { Vec::from_raw_parts(ptr.cast::<U>(), 0, cap) }
}

/// A spare traversal-stack allocation (`Vec<&Node>`), empty between
/// queries.
#[derive(Default)]
pub(crate) struct SpareStack(Vec<&'static Node>);

impl SpareStack {
    /// Takes the allocation out as an empty stack borrowing at `'a`
    /// (covariant: `'static` outlives `'a`).
    pub(crate) fn take<'a>(&mut self) -> Vec<&'a Node> {
        std::mem::take(&mut self.0)
    }

    /// Returns a stack's allocation for the next query.
    pub(crate) fn put(&mut self, stack: Vec<&Node>) {
        self.0 = recycle_empty(stack);
    }
}

/// Per-worker scratch: every field keeps its allocation across queries.
#[derive(Default)]
pub(crate) struct WorkerScratch {
    /// Lower-bound block buffer for the two-pass leaf drain (phase 3).
    /// Grows to the largest leaf seen and is never shrunk or re-zeroed:
    /// the lower-bound sweep overwrites exactly the prefix it uses.
    pub(crate) lb_block: Vec<f64>,
    /// Surviving scan positions of the current leaf (phase 3); cleared —
    /// not reallocated — between leaves.
    pub(crate) survivors: Vec<usize>,
    /// Spare iterative-traversal stack (phase 1).
    pub(crate) stack: SpareStack,
    /// Spare priority-queue heap allocations, drawn on queue rollover
    /// (phase 1) and refilled from drained queues (phase 3).
    pub(crate) heaps: Vec<super::pqueue::SpareHeap>,
}

impl WorkerScratch {
    /// First-touch NUMA warmup: grows and **touches** the hot arenas
    /// (the lower-bound block and survivor buffers, sized by the
    /// index's leaf capacity) on the *calling* thread. Invoked by every
    /// pool worker on its own pinned thread right after pinning, so the
    /// pages are physically allocated on the worker's local node — a
    /// lane's contiguous core block then scans leaves through
    /// node-local scratch. The buffers only ever grow (`lb_block` is
    /// overwritten prefix-wise, `survivors` is cleared per leaf), so
    /// faulting them early never changes behavior, only page placement.
    pub(crate) fn prefault(&mut self, leaf_capacity: usize) {
        if self.lb_block.len() < leaf_capacity {
            self.lb_block.resize(leaf_capacity, 0.0);
        }
        if self.survivors.capacity() < leaf_capacity {
            // `resize` + `clear` (not `reserve`): reserving leaves the
            // pages untouched, so they would still first-fault — and
            // first-touch — on whichever thread runs the first query.
            self.survivors.resize(leaf_capacity, 0);
            self.survivors.clear();
        }
    }
}

/// Cap on hoarded spare heaps per worker, and on the capacity of a heap
/// worth keeping (matches the `BoundedPqSet` preallocation cap, so an
/// unbounded-`TH` run never parks a giant allocation in the scratch).
pub(crate) const MAX_SPARE_HEAPS: usize = 64;
pub(crate) const MAX_SPARE_HEAP_CAP: usize = 1 << 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycle_empty_keeps_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(123);
        v.extend_from_slice(&[1, 2, 3]);
        let r: Vec<u64> = recycle_empty(v);
        assert!(r.is_empty());
        assert!(r.capacity() >= 123);
    }

    #[test]
    fn spare_stack_roundtrip_keeps_capacity() {
        let mut spare = SpareStack::default();
        {
            let mut s: Vec<&Node> = spare.take();
            assert_eq!(s.capacity(), 0);
            s.reserve(64);
            spare.put(s);
        }
        let s: Vec<&Node> = spare.take();
        assert!(s.capacity() >= 64);
    }

    // The next three tests are part of the Miri tier (`cargo run -p
    // xtask -- miri` runs this module under the interpreter): they
    // drive the raw `Vec::from_raw_parts` recycling through enough
    // cycles that a double-free, use-after-free, or per-cycle leak is
    // caught by Miri's allocation tracking.

    #[test]
    fn recycle_empty_survives_1000_cycles_without_leak() {
        let mut v: Vec<u64> = Vec::with_capacity(32);
        for round in 0..1000 {
            v.push(round);
            let r: Vec<i64> = recycle_empty(v);
            assert!(r.is_empty());
            assert!(r.capacity() >= 32);
            v = recycle_empty(r);
        }
        // Dropping `v` here must free the one original allocation.
    }

    #[test]
    fn spare_stack_survives_1000_cycles_without_leak() {
        let node = Node::Leaf(crate::tree::Leaf {
            word: crate::sax::IsaxWord {
                symbols: Vec::new(),
                card_bits: Vec::new(),
            },
            slice: crate::tree::LeafSlice { offset: 0, len: 0 },
        });
        let mut spare = SpareStack::default();
        for _ in 0..1000 {
            let mut s: Vec<&Node> = spare.take();
            s.push(&node);
            s.reserve(16);
            spare.put(s);
        }
    }

    #[test]
    #[should_panic(expected = "layout-identical")]
    fn recycle_empty_rejects_layout_mismatch() {
        let v: Vec<u64> = Vec::with_capacity(8);
        let _: Vec<u8> = recycle_empty(v);
    }
}
