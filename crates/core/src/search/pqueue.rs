//! Bounded leaf priority queues (Section 3.2.1, "Size of Priority
//! Queues").
//!
//! During the tree-traversal phase every RS-batch owns one *active*
//! priority queue; when its size reaches the threshold `TH` the queue is
//! sealed and a fresh one is started. This (i) keeps queue sizes — and
//! hence processing-phase work items — roughly equal, which is what makes
//! thread-level load balancing work, and (ii) guarantees a queue never
//! mixes leaves of different RS-batches, which is what makes *queue-level
//! stealing by batch id* possible.

use crate::tree::Leaf;
use std::collections::BinaryHeap;

/// A leaf candidate ordered by its lower-bound distance (min first).
#[derive(Debug)]
pub struct LeafCandidate<'a> {
    /// Squared `mindist` of the leaf's region to the query.
    pub lb_sq: f64,
    /// The leaf (borrowed from the index; never moved between nodes).
    pub leaf: &'a Leaf,
}

impl PartialEq for LeafCandidate<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.lb_sq == other.lb_sq
    }
}
impl Eq for LeafCandidate<'_> {}
impl PartialOrd for LeafCandidate<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LeafCandidate<'_> {
    /// Inverted so that `BinaryHeap` (a max-heap) pops the **smallest**
    /// lower bound first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.lb_sq.total_cmp(&self.lb_sq)
    }
}

/// A min-priority queue of leaf candidates.
#[derive(Debug, Default)]
pub struct LeafPq<'a> {
    heap: BinaryHeap<LeafCandidate<'a>>,
}

impl<'a> LeafPq<'a> {
    /// An empty queue.
    pub fn new() -> Self {
        LeafPq {
            heap: BinaryHeap::new(),
        }
    }

    /// An empty queue with `cap` slots preallocated (sealing-threshold
    /// sized queues never reallocate while filling).
    pub fn with_capacity(cap: usize) -> Self {
        LeafPq {
            heap: BinaryHeap::with_capacity(cap),
        }
    }

    /// Inserts a candidate.
    #[inline]
    pub fn push(&mut self, lb_sq: f64, leaf: &'a Leaf) {
        self.heap.push(LeafCandidate { lb_sq, leaf });
    }

    /// Removes and returns the smallest-lower-bound candidate.
    #[inline]
    pub fn pop(&mut self) -> Option<LeafCandidate<'a>> {
        self.heap.pop()
    }

    /// The smallest lower bound currently queued.
    #[inline]
    pub fn min_lb_sq(&self) -> Option<f64> {
        self.heap.peek().map(|c| c.lb_sq)
    }

    /// Number of queued candidates.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Allocated heap slots.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Ensures capacity for at least `cap` total candidates.
    #[inline]
    pub fn reserve(&mut self, cap: usize) {
        let len = self.heap.len();
        if cap > len {
            self.heap.reserve(cap - len);
        }
    }

    /// Clears the queue and surrenders its allocation for reuse by a
    /// later query (the batch engine's scratch arenas).
    pub fn into_spare(self) -> SpareHeap {
        let mut v = self.heap.into_vec();
        v.clear();
        SpareHeap(super::scratch::recycle_empty(v))
    }
}

/// An **empty**, lifetime-erased [`LeafPq`] allocation. The batch
/// engine's per-worker scratch holds these between queries so bounded
/// queues are provisioned from recycled heaps instead of fresh
/// allocations.
#[derive(Default)]
pub struct SpareHeap(Vec<LeafCandidate<'static>>);

impl std::fmt::Debug for SpareHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The vector is empty by invariant; only the capacity matters.
        f.debug_tuple("SpareHeap")
            .field(&format_args!("capacity: {}", self.0.capacity()))
            .finish()
    }
}

impl SpareHeap {
    /// Rebinds the allocation to the current query's lifetime (safe:
    /// the vector is empty and `'static` outlives `'a`).
    pub fn into_pq<'a>(self) -> LeafPq<'a> {
        let v: Vec<LeafCandidate<'a>> = self.0;
        LeafPq {
            heap: BinaryHeap::from(v),
        }
    }
}

/// The per-RS-batch set of bounded queues: one active queue, sealed when
/// it reaches `th`.
#[derive(Debug)]
pub struct BoundedPqSet<'a> {
    th: usize,
    /// Whether `active` has been provisioned (preallocated or drawn from
    /// a spare). [`BoundedPqSet::deferred`] sets this false so the first
    /// push can provision from the pushing worker's scratch.
    provisioned: bool,
    active: LeafPq<'a>,
    sealed: Vec<LeafPq<'a>>,
}

impl<'a> BoundedPqSet<'a> {
    /// Heap slots preallocated for a bounded queue: exactly `th` (a
    /// queue seals the moment it reaches `th` entries), capped so an
    /// unbounded or absurdly large threshold does not reserve memory up
    /// front.
    fn prealloc(th: usize) -> usize {
        if th == usize::MAX {
            0
        } else {
            th.min(1 << 16)
        }
    }

    /// A new set with threshold `th` (`usize::MAX` = unbounded, one queue).
    pub fn new(th: usize) -> Self {
        assert!(th > 0, "threshold must be positive");
        BoundedPqSet {
            th,
            provisioned: true,
            active: LeafPq::with_capacity(Self::prealloc(th)),
            sealed: Vec::new(),
        }
    }

    /// Like [`BoundedPqSet::new`], but defers provisioning the first
    /// queue until the first [`BoundedPqSet::push_with`], which draws it
    /// from the pushing worker's spare-heap scratch.
    pub fn deferred(th: usize) -> Self {
        assert!(th > 0, "threshold must be positive");
        BoundedPqSet {
            th,
            provisioned: false,
            active: LeafPq::new(),
            sealed: Vec::new(),
        }
    }

    /// Provisions a threshold-sized queue, recycling a spare allocation
    /// when one is available.
    fn provision(th: usize, spares: &mut Vec<SpareHeap>) -> LeafPq<'a> {
        match spares.pop() {
            Some(s) => {
                let mut q = s.into_pq();
                q.reserve(Self::prealloc(th));
                q
            }
            None => LeafPq::with_capacity(Self::prealloc(th)),
        }
    }

    /// Pushes a leaf; seals the active queue when it reaches the
    /// threshold ("the thread gives up this priority queue and initiates
    /// a new one"). The replacement queue is preallocated at the
    /// threshold size, so rollover never grows heaps incrementally.
    pub fn push(&mut self, lb_sq: f64, leaf: &'a Leaf) {
        self.push_with(lb_sq, leaf, &mut Vec::new());
    }

    /// [`BoundedPqSet::push`] drawing provisioned/rollover queues from
    /// `spares` (a worker's scratch arena) before allocating fresh ones.
    pub fn push_with(&mut self, lb_sq: f64, leaf: &'a Leaf, spares: &mut Vec<SpareHeap>) {
        if !self.provisioned {
            self.active = Self::provision(self.th, spares);
            self.provisioned = true;
        }
        self.active.push(lb_sq, leaf);
        if self.active.len() >= self.th {
            let full =
                std::mem::replace(&mut self.active, Self::provision(self.th, spares));
            self.sealed.push(full);
        }
    }

    /// Total candidates across all queues.
    pub fn total_len(&self) -> usize {
        self.active.len() + self.sealed.iter().map(|q| q.len()).sum::<usize>()
    }

    /// Consumes the set, yielding every non-empty queue.
    pub fn into_queues(mut self) -> Vec<LeafPq<'a>> {
        if !self.active.is_empty() {
            self.sealed.push(self.active);
        }
        self.sealed.retain(|q| !q.is_empty());
        self.sealed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sax::IsaxWord;

    fn leaf() -> Leaf {
        Leaf {
            word: IsaxWord {
                symbols: vec![0; 4],
                card_bits: vec![1; 4],
            },
            slice: crate::tree::LeafSlice { offset: 0, len: 3 },
        }
    }

    #[test]
    fn pq_pops_in_ascending_lb_order() {
        let l = leaf();
        let mut pq = LeafPq::new();
        for lb in [5.0, 1.0, 3.0, 2.0, 4.0] {
            pq.push(lb, &l);
        }
        let mut got = Vec::new();
        while let Some(c) = pq.pop() {
            got.push(c.lb_sq);
        }
        assert_eq!(got, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn min_lb_tracks_peek() {
        let l = leaf();
        let mut pq = LeafPq::new();
        assert_eq!(pq.min_lb_sq(), None);
        pq.push(4.0, &l);
        pq.push(2.0, &l);
        assert_eq!(pq.min_lb_sq(), Some(2.0));
    }

    #[test]
    fn bounded_set_seals_at_threshold() {
        let l = leaf();
        let mut set = BoundedPqSet::new(3);
        for i in 0..8 {
            set.push(i as f64, &l);
        }
        assert_eq!(set.total_len(), 8);
        let queues = set.into_queues();
        // 8 pushes with TH=3: two sealed queues of 3 and one active of 2.
        assert_eq!(queues.len(), 3);
        let mut sizes: Vec<usize> = queues.iter().map(|q| q.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 3, 3]);
    }

    #[test]
    fn bounded_set_preallocates_threshold_capacity() {
        let l = leaf();
        let mut set = BoundedPqSet::new(64);
        assert!(set.active.capacity() >= 64, "initial queue preallocated");
        for i in 0..64 {
            set.push(i as f64, &l);
        }
        assert_eq!(set.sealed.len(), 1);
        assert!(
            set.active.capacity() >= 64,
            "rollover queue preallocated, not grown from empty"
        );
    }

    #[test]
    fn unbounded_set_keeps_one_queue() {
        let l = leaf();
        let mut set = BoundedPqSet::new(usize::MAX);
        for i in 0..100 {
            set.push(i as f64, &l);
        }
        let queues = set.into_queues();
        assert_eq!(queues.len(), 1);
        assert_eq!(queues[0].len(), 100);
    }

    #[test]
    fn empty_set_yields_no_queues() {
        let set = BoundedPqSet::new(4);
        assert!(set.into_queues().is_empty());
    }

    #[test]
    fn spare_heap_roundtrip_recycles_allocation() {
        let l = leaf();
        let mut pq = LeafPq::with_capacity(128);
        for i in 0..100 {
            pq.push(i as f64, &l);
        }
        let spare = pq.into_spare();
        let pq2: LeafPq = spare.into_pq();
        assert!(pq2.is_empty(), "spares are always empty");
        assert!(pq2.capacity() >= 128, "allocation survives the roundtrip");
    }

    #[test]
    fn deferred_set_provisions_from_spares() {
        let l = leaf();
        let mut spares = vec![LeafPq::with_capacity(512).into_spare()];
        let mut set = BoundedPqSet::deferred(4);
        assert_eq!(set.active.capacity(), 0, "deferred: nothing provisioned");
        set.push_with(1.0, &l, &mut spares);
        assert!(spares.is_empty(), "first push consumed the spare");
        assert!(set.active.capacity() >= 4);
        for i in 0..7 {
            set.push_with(i as f64, &l, &mut spares);
        }
        assert_eq!(set.total_len(), 8);
        assert_eq!(set.into_queues().len(), 2);
    }
}
