//! Exact DTW similarity search (Section 4, "DTW Distance").
//!
//! "No changes are required in the index structure for this: the index we
//! build can answer both Euclidean and DTW similarity search queries."
//! Only the kernel changes:
//!
//! * **node / per-series lower bound** — the distance between the iSAX
//!   region of a candidate and the *LB_Keogh envelope* of the query. For
//!   segment `i` we compare the envelope's per-segment hull
//!   `[Lmin_i, Umax_i]` (the min of the lower / max of the upper envelope
//!   over the segment) against the region's breakpoint interval: any gap
//!   lower-bounds the pointwise envelope distance and hence, by LB_Keogh,
//!   the DTW distance.
//! * **real distance** — LB_Keogh on the raw candidate first (cheap,
//!   early-abandoning), then banded DTW on survivors.

use super::answer::Answer;
use super::bsf::SharedBsf;
use super::exact::{run_search, SearchParams, SearchStats, StealView};
use super::kernel::QueryKernel;
use crate::distance::{dtw_banded, keogh_envelope_reusing, lb_keogh_sq, LbKeoghEnvelope};
use crate::index::Index;
use crate::paa::segment_bounds;
use crate::sax::{IsaxWord, MindistTable};

/// The DTW query kernel: envelope, per-segment envelope hull, window.
///
/// Like [`super::kernel::EdKernel`], construction folds the hull and
/// the breakpoints into a per-query [`MindistTable`]: the envelope of
/// segment `i` is `[min lower, max upper]` over the segment's points,
/// so every table-based bound equals the interval-gap arithmetic the
/// kernel previously evaluated per candidate — and stays below
/// LB_Keogh, hence below DTW (the soundness chain).
#[derive(Debug)]
pub struct DtwKernel<'q> {
    query: &'q [f32],
    env: LbKeoghEnvelope,
    table: MindistTable,
    window: usize,
}

thread_local! {
    /// Recycled envelope buffers for [`DtwKernel`] construction: a
    /// thread seeding DTW queries back to back (the batch engine's
    /// submitter, a lane's rank-0 worker, a cluster node's estimator)
    /// reuses one pair of allocations instead of allocating two vectors
    /// per query — the last piece of the "cleared, not reallocated"
    /// story (the Lemire deques and DTW band rows are already
    /// thread-local). Refilled by `DtwKernel`'s `Drop`.
    static ENVELOPE_BUFS: std::cell::Cell<Option<(Vec<f32>, Vec<f32>)>> =
        const { std::cell::Cell::new(None) };
}

impl Drop for DtwKernel<'_> {
    fn drop(&mut self) {
        let upper = std::mem::take(&mut self.env.upper);
        let lower = std::mem::take(&mut self.env.lower);
        ENVELOPE_BUFS.set(Some((upper, lower)));
    }
}

impl<'q> DtwKernel<'q> {
    /// Builds the kernel for `query` with a Sakoe-Chiba band of
    /// half-width `window` points, under `segments` iSAX segments.
    pub fn new(query: &'q [f32], window: usize, segments: usize) -> Self {
        let (upper, lower) = ENVELOPE_BUFS.take().unwrap_or_default();
        let env = keogh_envelope_reusing(query, window, upper, lower);
        let n = query.len();
        let mut seg_upper = vec![0.0f64; segments];
        let mut seg_lower = vec![0.0f64; segments];
        for i in 0..segments {
            let (s, e) = segment_bounds(n, segments, i);
            seg_upper[i] = env.upper[s..e].iter().cloned().fold(f32::MIN, f32::max) as f64;
            seg_lower[i] = env.lower[s..e].iter().cloned().fold(f32::MAX, f32::min) as f64;
        }
        let table = MindistTable::from_envelope(&seg_lower, &seg_upper, n);
        DtwKernel {
            query,
            env,
            table,
            window,
        }
    }

    /// The warping window in points.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl QueryKernel for DtwKernel<'_> {
    #[inline]
    fn node_lb_sq(&self, word: &IsaxWord) -> f64 {
        self.table.word_lb_sq(word)
    }

    #[inline]
    fn series_lb_sq(&self, sax: &[u8]) -> f64 {
        self.table.series_lb_sq(sax)
    }

    #[inline]
    fn lb_block_sq(&self, sax_block: &[u8], segments: usize, out: &mut [f64]) {
        debug_assert_eq!(segments, self.table.segments());
        self.table.block_lb_sq(sax_block, out);
    }

    #[inline]
    fn lb_block_at(
        &self,
        layout: &crate::layout::LeafLayout,
        range: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        self.table.block_lb_sq_soa(&layout.sax_soa_view(range), out);
    }

    #[inline]
    fn root_lb_block(
        &self,
        _forest: &[crate::tree::RootSubtree],
        roots: &crate::tree::RootSoa,
        range: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        self.table.root_lb_block(roots, range, out);
    }

    fn distance_sq(&self, candidate: &[f32], threshold_sq: f64) -> Option<f64> {
        // Tight raw-data filter first, then the full banded DTW.
        lb_keogh_sq(&self.env, candidate, threshold_sq)?;
        dtw_banded(self.query, candidate, self.window, threshold_sq)
    }
}

/// Greedy root-to-leaf descent under the DTW kernel's node bounds:
/// returns the most promising leaf, or `None` on an empty forest. The
/// single place both DTW seeding paths ([`approx_dtw`] and
/// [`dtw_knn_search`]) derive their initial leaf from.
fn most_promising_leaf<'i>(index: &'i Index, kernel: &DtwKernel) -> Option<&'i crate::tree::Leaf> {
    use crate::tree::Node;
    let forest = index.forest();
    if forest.is_empty() {
        return None;
    }
    // Minimum-bound root via the batched sweep (first minimum on ties,
    // matching `Iterator::min_by` over the same values).
    let mut best = f64::INFINITY;
    let mut best_root = 0usize;
    let mut lbs = [0.0f64; 64];
    let mut start = 0;
    while start < forest.len() {
        let end = (start + lbs.len()).min(forest.len());
        let lbs = &mut lbs[..end - start];
        kernel.root_lb_block(forest, index.root_soa(), start..end, lbs);
        for (k, &d) in lbs.iter().enumerate() {
            if d.total_cmp(&best) == std::cmp::Ordering::Less {
                best = d;
                best_root = start + k;
            }
        }
        start = end;
    }
    let subtree = &forest[best_root];
    let mut node = &subtree.node;
    loop {
        match node {
            Node::Inner { children, .. } => {
                let d0 = kernel.node_lb_sq(children[0].word());
                let d1 = kernel.node_lb_sq(children[1].word());
                node = if d0 <= d1 { &children[0] } else { &children[1] };
            }
            Node::Leaf(leaf) => return Some(leaf),
        }
    }
}

/// Descends to the approximate-search leaf and returns the best *DTW*
/// squared distance inside it plus the series id (the initial BSF for
/// DTW queries). Public so the distributed layer can seed per-node BSFs.
pub fn approx_dtw(index: &Index, kernel: &DtwKernel) -> (f64, Option<u32>) {
    let Some(leaf) = most_promising_leaf(index, kernel) else {
        return (f64::INFINITY, None);
    };
    let layout = index.layout();
    let mut best = f64::INFINITY;
    let mut best_id = None;
    for p in leaf.slice.range() {
        if let Some(d) = dtw_banded(kernel.query, layout.series(p), kernel.window, best) {
            if d < best {
                best = d;
                best_id = Some(layout.original_id(p));
            }
        }
    }
    (best, best_id)
}

/// Builds the DTW kernel and an approx-seeded [`SharedBsf`] — the DTW
/// analogue of [`super::exact::seed_ed`], shared by [`dtw_search`] and
/// the batch engine.
pub(crate) fn seed_dtw<'q>(
    index: &Index,
    query: &'q [f32],
    window: usize,
) -> (DtwKernel<'q>, SharedBsf, f64) {
    let kernel = DtwKernel::new(query, window, index.config().segments);
    let (init_sq, init_id) = approx_dtw(index, &kernel);
    (kernel, SharedBsf::new(init_sq, init_id), init_sq.sqrt())
}

/// Exact 1-NN DTW search with a Sakoe-Chiba band of `window` points.
pub fn dtw_search(
    index: &Index,
    query: &[f32],
    window: usize,
    params: &SearchParams,
) -> (Answer, SearchStats) {
    let (kernel, bsf, initial) = seed_dtw(index, query, window);
    let mut stats = run_search(
        index,
        &kernel,
        params,
        &bsf,
        None,
        &StealView::new(),
        &|_, _| {},
    );
    stats.initial_bsf = initial;
    (bsf.answer(), stats)
}

/// Exact k-NN search under DTW: the two Section-4 extensions composed.
/// The result set tracks the k smallest DTW distances; pruning uses the
/// current k-th distance.
pub fn dtw_knn_search(
    index: &Index,
    query: &[f32],
    window: usize,
    k: usize,
    params: &SearchParams,
) -> (super::answer::KnnAnswer, SearchStats) {
    use super::bsf::{ResultSet, SharedKnn};
    let kernel = DtwKernel::new(query, window, index.config().segments);
    let knn = SharedKnn::new(k);
    // Seed from the most promising leaf (DTW distances).
    if let Some(leaf) = most_promising_leaf(index, &kernel) {
        let layout = index.layout();
        for p in leaf.slice.range() {
            if let Some(d) = dtw_banded(query, layout.series(p), window, knn.threshold_sq()) {
                knn.offer(d, layout.original_id(p));
            }
        }
    }
    let stats = run_search(
        index,
        &kernel,
        params,
        &knn,
        None,
        &StealView::new(),
        &|_, _| {},
    );
    (knn.snapshot(), stats)
}

/// Brute-force DTW 1-NN oracle. Scans in original-id order so tie
/// resolution matches the pre-layout oracle exactly.
pub fn dtw_brute_force(index: &Index, query: &[f32], window: usize) -> Answer {
    let mut best = f64::INFINITY;
    let mut best_id = None;
    for id in 0..index.num_series() {
        if let Some(d) = dtw_banded(query, index.series_by_id(id as u32), window, best) {
            if d < best {
                best = d;
                best_id = Some(id as u32);
            }
        }
    }
    Answer::from_sq(best, best_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use crate::series::DatasetBuffer;

    fn walk_dataset(n: usize, len: usize, seed: u64) -> DatasetBuffer {
        let mut x = seed | 1;
        let mut data = Vec::with_capacity(n * len);
        for _ in 0..n {
            let mut acc = 0.0f32;
            let mut s = Vec::with_capacity(len);
            for _ in 0..len {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                acc += ((x % 2000) as f32 / 1000.0) - 1.0;
                s.push(acc);
            }
            crate::series::znormalize(&mut s);
            data.extend_from_slice(&s);
        }
        DatasetBuffer::from_vec(data, len)
    }

    fn build(n: usize) -> crate::index::Index {
        crate::index::Index::build(
            walk_dataset(n, 64, 21),
            IndexConfig::new(64).with_segments(8).with_leaf_capacity(16),
            2,
        )
    }

    #[test]
    fn dtw_kernel_soundness_chain() {
        // node_lb <= series_lb <= LB_Keogh <= DTW for random candidates.
        let q = walk_dataset(1, 64, 777).series(0).to_vec();
        let kernel = DtwKernel::new(&q, 3, 8);
        for seed in 0..8u64 {
            let c = walk_dataset(1, 64, 1000 + seed).series(0).to_vec();
            let cpaa = crate::paa::paa(&c, 8);
            let mut sax = vec![0u8; 8];
            crate::sax::sax_word_into(&cpaa, &mut sax);
            let dtw = dtw_banded(&q, &c, 3, f64::INFINITY).expect("no threshold");
            let series_lb = kernel.series_lb_sq(&sax);
            assert!(series_lb <= dtw + 1e-6, "seed={seed}: {series_lb} > {dtw}");
            for bits in 1..=crate::sax::MAX_CARD_BITS {
                let word = IsaxWord::from_sax(&sax, bits);
                let node_lb = kernel.node_lb_sq(&word);
                assert!(node_lb <= series_lb + 1e-9, "bits={bits}");
            }
        }
    }

    #[test]
    fn dtw_search_matches_brute_force() {
        let idx = build(500);
        for qseed in [31u64, 47] {
            let q = walk_dataset(1, 64, qseed).series(0).to_vec();
            for window in [1usize, 3, 6] {
                let want = dtw_brute_force(&idx, &q, window);
                for threads in [1usize, 2] {
                    let (got, _) = dtw_search(&idx, &q, window, &SearchParams::new(threads));
                    assert!(
                        (got.distance - want.distance).abs() < 1e-9,
                        "qseed={qseed} window={window} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn dtw_search_finds_identical_series() {
        let idx = build(400);
        let q = idx.series_by_id(123).to_vec();
        let (ans, _) = dtw_search(&idx, &q, 3, &SearchParams::new(2));
        assert_eq!(ans.distance, 0.0);
    }

    #[test]
    fn dtw_knn_matches_brute_force_top_k() {
        let idx = build(400);
        let q = walk_dataset(1, 64, 61).series(0).to_vec();
        let window = 3;
        let k = 5;
        // Oracle: all DTW distances, sorted.
        let mut all: Vec<f64> = (0..idx.num_series())
            .map(|i| {
                dtw_banded(&q, idx.series_by_id(i as u32), window, f64::INFINITY)
                    .expect("unbounded")
            })
            .collect();
        all.sort_by(f64::total_cmp);
        let (got, _) = dtw_knn_search(&idx, &q, window, k, &SearchParams::new(2));
        assert_eq!(got.neighbors.len(), k);
        for (j, &want) in all.iter().take(k).enumerate() {
            assert!(
                (got.neighbors[j].0 - want).abs() < 1e-9,
                "rank {j}: {} vs {}",
                got.neighbors[j].0,
                want
            );
        }
    }

    #[test]
    fn kernel_envelope_reuse_is_bit_identical_to_fresh() {
        // Constructing kernels back to back recycles envelope buffers
        // through the thread-local slot (including across different
        // lengths and windows); the envelopes must equal a fresh
        // computation bit for bit.
        for (len, window) in [(64usize, 3usize), (96, 9), (32, 1), (64, 0)] {
            let q = walk_dataset(1, len, 9000 + (len + window) as u64)
                .series(0)
                .to_vec();
            let want = crate::distance::keogh_envelope(&q, window);
            let kernel = DtwKernel::new(&q, window, 8);
            assert_eq!(kernel.env.upper, want.upper, "len={len} window={window}");
            assert_eq!(kernel.env.lower, want.lower, "len={len} window={window}");
            drop(kernel); // parks the buffers for the next iteration
        }
    }

    #[test]
    fn dtw_answer_never_exceeds_euclidean_answer() {
        // DTW 1-NN distance <= ED 1-NN distance (warping only helps).
        let idx = build(400);
        let q = walk_dataset(1, 64, 5).series(0).to_vec();
        let ed = idx.brute_force(&q);
        let (dtw, _) = dtw_search(&idx, &q, 4, &SearchParams::new(2));
        assert!(dtw.distance <= ed.distance + 1e-9);
    }
}
