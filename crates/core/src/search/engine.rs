//! The persistent batch-query engine.
//!
//! Odyssey's headline results are about *batch* throughput: hundreds of
//! queries dispatched by a scheduling policy onto a fixed set of node
//! threads. The per-query entry points
//! ([`exact_search`](super::exact::exact_search) and friends) pay
//! `std::thread::scope` spawn/join, barrier construction, and scratch
//! allocation for **every** query; a [`BatchEngine`] pays them **once
//! per index** instead:
//!
//! * a pool of worker threads is created at engine construction and
//!   stays resident (pinned to cores, best-effort, on Linux) until the
//!   engine drops;
//! * each worker owns a scratch arena (lower-bound block buffers,
//!   priority-queue heap allocations, traversal stacks) that is cleared
//!   — not reallocated — between queries;
//! * queries execute **one at a time across all workers**, preserving
//!   the paper's intra-query parallelism, RS-batch/HelpTH semantics and
//!   [`StealView`] work-stealing hooks unchanged — the engine runs the
//!   exact same three-phase body as the per-query path.
//!
//! The submitting thread participates as worker 0, so a 1-thread engine
//! runs queries inline with zero synchronization, and an `n`-thread
//! engine keeps only `n - 1` resident workers.
//!
//! [`BatchEngine::run_batch`] is the entry point the scheduling layer
//! feeds: it takes a set of [`BatchQuery`]s plus a dispatch *order* (a
//! permutation, e.g. the descending-cost order of `odyssey-sched`'s
//! PREDICT-DN policy) and executes the batch on the resident pool.
//!
//! The engine also hosts the **steal service**: a [`StealRegistry`]
//! tracking every in-flight query — full-pool or lane — with its
//! [`StealView`], worker-group width, and progress. A node's
//! work-stealing manager inspects the registry (not a per-query side
//! channel) to pick a victim among everything the engine is running,
//! and the registry's installed service hook is invoked cooperatively
//! by the search workers themselves, so steal requests are served even
//! mid-round while several lane queries are in flight.

use super::answer::{Answer, KnnAnswer};
use super::bsf::ResultSet;
use super::dtw_search::seed_dtw;
use super::epsilon::EpsilonRelaxed;
use super::exact::{
    seed_ed, ExecShared, SearchOutcome, SearchParams, SearchStats, StealView,
};
use super::kernel::QueryKernel;
use super::knn::seed_knn;
use super::multiq::{ConcurrentPlan, DispatchRuntime, LaneCtx, LaneRuntime, RoundSpec};
use super::scratch::WorkerScratch;
use crate::index::Index;
use crate::sync::PhaseBarrier;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// One query of a batch.
#[derive(Debug, Clone, Copy)]
pub struct BatchQuery<'a> {
    /// The (z-normalized) query series.
    pub data: &'a [f32],
    /// Which search to run.
    pub kind: QueryKind,
    /// Per-query tuning override (e.g. the sigmoid model's predicted
    /// `TH` for this query); `None` falls back to the batch-wide params.
    /// `n_threads` is always overridden by the executing pool or lane.
    pub params: Option<SearchParams>,
}

impl<'a> BatchQuery<'a> {
    /// A batch item using the batch-wide parameters.
    pub fn new(data: &'a [f32], kind: QueryKind) -> Self {
        BatchQuery {
            data,
            kind,
            params: None,
        }
    }

    /// Attaches per-query parameters (typically a predicted `TH`).
    pub fn with_params(mut self, params: SearchParams) -> Self {
        self.params = Some(params);
        self
    }
}

/// The search mode of a [`BatchQuery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Euclidean exact 1-NN.
    Exact,
    /// Euclidean exact k-NN.
    Knn(usize),
    /// DTW exact 1-NN with a Sakoe-Chiba band of the given half-width.
    Dtw(usize),
}

/// The answer of one batch item.
#[derive(Debug, Clone)]
pub enum BatchAnswer {
    /// 1-NN answer (Euclidean or DTW).
    Nn(Answer),
    /// k-NN answer.
    Knn(KnnAnswer),
}

impl BatchAnswer {
    /// The 1-NN answer, panicking on a k-NN item (test/CLI convenience).
    pub fn nn(&self) -> &Answer {
        match self {
            BatchAnswer::Nn(a) => a,
            BatchAnswer::Knn(_) => panic!("k-NN item has no 1-NN answer"),
        }
    }
}

/// Result of one query inside a batch.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// The answer.
    pub answer: BatchAnswer,
    /// Execution statistics of this query.
    pub stats: SearchStats,
}

/// Result of [`BatchEngine::run_batch`].
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One item per input query, in **input order** (not dispatch order).
    pub items: Vec<BatchItem>,
    /// Wall-clock duration of the whole batch.
    pub wall: Duration,
}

/// A persistent worker-pool search engine bound to one index.
pub struct BatchEngine {
    index: Arc<Index>,
    pool: WorkerPool,
    registry: Arc<StealRegistry>,
    /// Warmup-calibration probe measurements, taken once per engine on
    /// first use (see [`BatchEngine::calibrate`]).
    calibration: OnceLock<Vec<(usize, f64)>>,
}

impl std::fmt::Debug for BatchEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchEngine")
            .field("n_threads", &self.pool.n_threads)
            .field("in_flight", &self.registry.in_flight())
            .finish_non_exhaustive()
    }
}

impl BatchEngine {
    /// Creates an engine with `n_threads` total execution threads (the
    /// submitting thread counts as one; `n_threads - 1` workers are
    /// spawned and stay resident until drop).
    pub fn new(index: Arc<Index>, n_threads: usize) -> Self {
        Self::with_registry(index, n_threads, Arc::new(StealRegistry::default()))
    }

    /// [`BatchEngine::new`] with an externally created [`StealRegistry`]
    /// — the distributed layer shares the registry with the node's
    /// work-stealing manager thread, which may outlive (or predate) the
    /// engine itself.
    pub fn with_registry(
        index: Arc<Index>,
        n_threads: usize,
        registry: Arc<StealRegistry>,
    ) -> Self {
        // Workers prefault their scratch arenas to the index's leaf
        // capacity on their own (pinned) threads, so the pages are
        // first-touched — and therefore allocated — on each lane
        // worker's local NUMA node rather than wherever the submitting
        // thread happens to run.
        let pool = WorkerPool::new(n_threads.max(1), index.config().leaf_capacity);
        BatchEngine {
            index,
            pool,
            registry,
            calibration: OnceLock::new(),
        }
    }

    /// The engine's index.
    pub fn index(&self) -> &Arc<Index> {
        &self.index
    }

    /// Total execution threads per query (pool workers + submitter).
    pub fn n_threads(&self) -> usize {
        self.pool.n_threads
    }

    /// The engine's steal service: every in-flight query (full-pool or
    /// lane) is visible here while it runs.
    pub fn steal_registry(&self) -> &Arc<StealRegistry> {
        &self.registry
    }

    /// Registers a full-pool query with the steal service and returns
    /// its execution grant (view allocation + registry entry). The grant
    /// is what [`BatchEngine::run_query`] executes under; dropping it
    /// deregisters the query and recycles its view.
    pub fn admit(
        &self,
        query_id: usize,
        results: Arc<dyn ResultSet + Send + Sync>,
    ) -> InflightQuery {
        self.registry
            .register(query_id, self.pool.n_threads, results)
    }

    /// [`BatchEngine::admit`] with a cost estimate attached: the steal
    /// service weights victims by estimated *remaining work* (estimate ×
    /// unclaimed fraction) when estimates are available.
    pub fn admit_estimated(
        &self,
        query_id: usize,
        results: Arc<dyn ResultSet + Send + Sync>,
        estimate: Option<f64>,
    ) -> InflightQuery {
        self.registry
            .register_estimated(query_id, self.pool.n_threads, results, estimate)
    }

    /// Warmup calibration (Figure 8): measures a small seeded probe set
    /// at widths `{1, 2, 4, …, pool}` and returns the raw `(width,
    /// wall-seconds)` samples, cached for the engine's lifetime (the
    /// first call measures, later calls return the cached samples).
    /// The scheduling layer fits its speedup-vs-width curve from these
    /// (`odyssey-sched`'s `SpeedupCurve::from_times`); the engine only
    /// *measures* — the dependency points from sched to core, never
    /// back.
    ///
    /// Probes are derived deterministically from the index's own series
    /// (spread positions, perturbed by a fixed xorshift stream and
    /// re-normalized), so the same index always probes the same queries
    /// in the same order at the same widths. Probe queries run through
    /// the normal lane machinery but are **not** reported to the
    /// installed [query observer](StealRegistry::install_observer):
    /// calibration measures the machine, it is not traffic.
    pub fn calibrate(&self) -> &[(usize, f64)] {
        self.calibration.get_or_init(|| self.run_calibration())
    }

    fn run_calibration(&self) -> Vec<(usize, f64)> {
        let pool = self.pool.n_threads;
        let probes = calibration_probes(&self.index, 3);
        let params = SearchParams::new(pool);
        // Probe widths: powers of two up to the pool, plus the pool.
        let mut widths = Vec::new();
        let mut w = 1usize;
        while w < pool {
            widths.push(w);
            w *= 2;
        }
        widths.push(pool);
        // No steal serving while probes are in flight: a thief must
        // never receive a probe's RS-batches under a real query id.
        self.registry.set_steal_paused(true);
        // One untimed warm pass: faults the tree and the scratch arenas
        // so the first timed probe is not charged for one-time warmup.
        let _ = self.probe_at(pool, &probes, &params);
        let samples = widths
            .into_iter()
            .map(|w| (w, self.probe_at(w, &probes, &params)))
            .collect();
        self.registry.set_steal_paused(false);
        samples
    }

    /// Times one pass of the probe set on a `width`-worker lane (the
    /// remaining workers idle in a filler lane), returning wall seconds.
    fn probe_at(&self, width: usize, probes: &[Vec<f32>], params: &SearchParams) -> f64 {
        let pool = self.pool.n_threads;
        let widths: Vec<usize> = if width >= pool {
            vec![pool]
        } else {
            vec![width, pool - width]
        };
        let t0 = std::time::Instant::now();
        self.run_dispatch(&widths, &|ctx, lane| {
            if lane != 0 {
                return;
            }
            for probe in probes {
                let (kernel, bsf, _initial) = seed_ed(ctx.index(), probe);
                let bsf = Arc::new(bsf);
                let grant = ctx.admit(0, Arc::clone(&bsf) as Arc<dyn ResultSet + Send + Sync>);
                let _ = ctx.run_query(&kernel, params, &*bsf, None, &grant, &|_, _| {});
            }
        });
        t0.elapsed().as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// Runs one admitted query on the resident pool. Mirrors
    /// [`super::exact::run_search_with_service`] — same three-phase
    /// engine, same `batch_subset`/`on_improve` hooks — but
    /// `params.n_threads` is overridden by the pool size, no threads are
    /// spawned, and the [`StealView`] plus the cooperative steal-service
    /// hook come from the engine itself: `query` carries the view, and
    /// workers invoke the registry's installed service between queue
    /// claims.
    ///
    /// # Panics
    /// A panic raised by a hook (or the engine body) on any participant
    /// propagates to the caller after all workers have finished the
    /// query. A panic between the phase barriers *poisons* the pool's
    /// [`PhaseBarrier`], so the surviving workers abort the round with
    /// a clear message instead of deadlocking on a party that will
    /// never arrive (the pool resets the barrier afterwards and stays
    /// usable).
    pub fn run_query<K: QueryKernel + ?Sized, R: ResultSet + ?Sized>(
        &self,
        kernel: &K,
        params: &SearchParams,
        results: &R,
        batch_subset: Option<&[usize]>,
        query: &InflightQuery,
        on_improve: &(dyn Fn(f64, u32) + Sync),
    ) -> SearchStats {
        let mut eff = *params;
        eff.n_threads = self.pool.n_threads;
        let hook = self.registry.service_hook();
        let registry = &*self.registry;
        let service = move || {
            if let Some(h) = &hook {
                h(registry);
            }
        };
        let shared = ExecShared::new(
            &self.index,
            kernel,
            &eff,
            results,
            batch_subset,
            query.view(),
            on_improve,
            &service,
        );
        if shared.has_work() {
            let barrier = &self.pool.inner.barrier;
            self.pool
                .run(&|tid, scratch| shared.worker(tid, barrier, scratch));
        }
        shared.finish()
    }

    /// Exact Euclidean 1-NN on the pool; answer-identical to
    /// [`super::exact::exact_search`] with the same thread count.
    /// Standalone calls register with the steal service as query 0.
    pub fn exact(&self, query: &[f32], params: &SearchParams) -> SearchOutcome {
        self.exact_as(0, query, params)
    }

    fn exact_as(&self, query_id: usize, query: &[f32], params: &SearchParams) -> SearchOutcome {
        let (kernel, bsf, initial) = seed_ed(&self.index, query);
        let bsf = Arc::new(bsf);
        let grant = self.admit(query_id, Arc::clone(&bsf) as Arc<dyn ResultSet + Send + Sync>);
        let mut stats = self.run_query(&kernel, params, &*bsf, None, &grant, &|_, _| {});
        stats.initial_bsf = initial;
        self.registry.observe(query_id, &stats);
        SearchOutcome {
            answer: bsf.answer(),
            stats,
        }
    }

    /// ε-approximate 1-NN on the pool (see
    /// [`super::epsilon::epsilon_search`]).
    pub fn epsilon(
        &self,
        query: &[f32],
        epsilon: f64,
        params: &SearchParams,
    ) -> (Answer, SearchStats) {
        let (kernel, bsf, initial) = seed_ed(&self.index, query);
        let bsf = Arc::new(bsf);
        let relaxed = EpsilonRelaxed::new(&*bsf, epsilon);
        let grant = self.admit(0, Arc::clone(&bsf) as Arc<dyn ResultSet + Send + Sync>);
        let mut stats = self.run_query(&kernel, params, &relaxed, None, &grant, &|_, _| {});
        stats.initial_bsf = initial;
        self.registry.observe(0, &stats);
        (bsf.answer(), stats)
    }

    /// Exact Euclidean k-NN on the pool; answer-identical to
    /// [`super::knn::knn_search`] with the same thread count.
    pub fn knn(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> (KnnAnswer, SearchStats) {
        self.knn_as(0, query, k, params)
    }

    fn knn_as(
        &self,
        query_id: usize,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> (KnnAnswer, SearchStats) {
        let (kernel, knn) = seed_knn(&self.index, query, k);
        let knn = Arc::new(knn);
        let grant = self.admit(query_id, Arc::clone(&knn) as Arc<dyn ResultSet + Send + Sync>);
        let stats = self.run_query(&kernel, params, &*knn, None, &grant, &|_, _| {});
        self.registry.observe(query_id, &stats);
        (knn.snapshot(), stats)
    }

    /// Exact DTW 1-NN on the pool; answer-identical to
    /// [`super::dtw_search::dtw_search`] with the same thread count.
    pub fn dtw(
        &self,
        query: &[f32],
        window: usize,
        params: &SearchParams,
    ) -> (Answer, SearchStats) {
        self.dtw_as(0, query, window, params)
    }

    fn dtw_as(
        &self,
        query_id: usize,
        query: &[f32],
        window: usize,
        params: &SearchParams,
    ) -> (Answer, SearchStats) {
        let (kernel, bsf, initial) = seed_dtw(&self.index, query, window);
        let bsf = Arc::new(bsf);
        let grant = self.admit(query_id, Arc::clone(&bsf) as Arc<dyn ResultSet + Send + Sync>);
        let mut stats = self.run_query(&kernel, params, &*bsf, None, &grant, &|_, _| {});
        stats.initial_bsf = initial;
        self.registry.observe(query_id, &stats);
        (bsf.answer(), stats)
    }

    /// Answers one batch item, registering it with the steal service
    /// under its batch index. Shared by the sequential and concurrent
    /// batch drivers.
    fn run_one(&self, query_id: usize, q: &BatchQuery, params: &SearchParams) -> BatchItem {
        match q.kind {
            QueryKind::Exact => {
                let out = self.exact_as(query_id, q.data, params);
                BatchItem {
                    answer: BatchAnswer::Nn(out.answer),
                    stats: out.stats,
                }
            }
            QueryKind::Knn(k) => {
                let (ans, stats) = self.knn_as(query_id, q.data, k, params);
                BatchItem {
                    answer: BatchAnswer::Knn(ans),
                    stats,
                }
            }
            QueryKind::Dtw(window) => {
                let (ans, stats) = self.dtw_as(query_id, q.data, window, params);
                BatchItem {
                    answer: BatchAnswer::Nn(ans),
                    stats,
                }
            }
        }
    }

    /// Executes a whole batch in the given dispatch `order` (a
    /// permutation of `0..queries.len()`, e.g. from an `odyssey-sched`
    /// policy). Queries run one at a time across all pool threads;
    /// results are returned in input order.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of the query indices.
    pub fn run_batch(
        &self,
        queries: &[BatchQuery],
        order: &[usize],
        params: &SearchParams,
    ) -> BatchOutcome {
        assert_eq!(
            order.len(),
            queries.len(),
            "dispatch order must cover every query exactly once"
        );
        let t0 = std::time::Instant::now();
        let mut items: Vec<Option<BatchItem>> = (0..queries.len()).map(|_| None).collect();
        for &qi in order {
            let slot = items
                .get_mut(qi)
                .unwrap_or_else(|| panic!("dispatch order names query {qi} out of range"));
            assert!(slot.is_none(), "dispatch order repeats query {qi}");
            let q = &queries[qi];
            let p = q.params.unwrap_or(*params);
            items[qi] = Some(self.run_one(qi, q, &p));
        }
        BatchOutcome {
            items: items.into_iter().map(|i| i.expect("order is total")).collect(),
            wall: t0.elapsed(),
        }
    }

    /// Executes one [`RoundSpec`]: its lanes run **simultaneously** on
    /// disjoint worker groups, and `driver(ctx, qi)` is invoked on each
    /// lane's rank-0 worker for that lane's queries, in order. The
    /// driver runs queries through [`LaneCtx::run_query`] (or the
    /// [`LaneCtx::execute`] convenience), which scopes execution to the
    /// lane's group.
    ///
    /// This is the building block the cluster runtime drives directly
    /// (it needs custom result sets and id translation per query);
    /// [`BatchEngine::run_batch_concurrent`] is the plain-batch wrapper.
    ///
    /// # Panics
    /// Panics if the round's lane widths do not exactly partition the
    /// pool. A panic inside `driver` or a hook poisons the lane's
    /// [`PhaseBarrier`], aborting that lane's round instead of
    /// deadlocking it (the group-barrier contract of
    /// [`BatchEngine::run_query`]).
    pub fn run_concurrent<F>(&self, round: &RoundSpec, driver: &F)
    where
        F: Fn(&mut LaneCtx, usize) + Sync,
    {
        round.validate_pool(self.pool.n_threads);
        let rt = LaneRuntime::new(round);
        self.pool.run(&|tid, scratch| {
            rt.participate(tid, scratch, &self.index, &self.registry, driver)
        });
    }

    /// Executes one **continuous-dispatch** round: the pool is
    /// partitioned into lanes of the given `widths` and `driver(ctx,
    /// lane)` runs **once** on each lane's rank-0 worker. The driver is
    /// expected to loop — claim the next query from a shared source,
    /// answer it through [`LaneCtx::execute`] (or
    /// [`LaneCtx::run_query`]), publish the result, repeat — and return
    /// when the source closes.
    ///
    /// This is the serving-path building block: unlike
    /// [`BatchEngine::run_concurrent`] there is no admission window and
    /// no per-round barrier — a lane that finishes a query immediately
    /// claims the next one, so lanes never idle while work is queued.
    /// The only synchronization point is the pool-level join once every
    /// driver has returned. Answers remain bit-identical to the
    /// sequential paths: each claimed query runs the same three-phase
    /// engine body at the lane's width.
    ///
    /// # Panics
    /// Panics if `widths` does not exactly partition the pool. A panic
    /// inside `driver` poisons that lane's [`PhaseBarrier`], aborting
    /// the lane instead of deadlocking it.
    pub fn run_dispatch<F>(&self, widths: &[usize], driver: &F)
    where
        F: Fn(&mut LaneCtx, usize) + Sync,
    {
        assert!(
            widths.iter().all(|&w| w >= 1),
            "dispatch lane width must be at least 1"
        );
        assert_eq!(
            widths.iter().sum::<usize>(),
            self.pool.n_threads,
            "dispatch lane widths must exactly partition the {}-thread pool",
            self.pool.n_threads
        );
        let rt = DispatchRuntime::new(widths);
        self.pool.run(&|tid, scratch| {
            rt.participate(tid, scratch, &self.index, &self.registry, driver)
        });
    }

    /// The seed-only approximate answer for `query` — the same initial
    /// candidate every exact search starts from (approximate tree
    /// descent; for k-NN, the seed leaf's candidates). See
    /// [`approximate_answer`].
    pub fn approximate(&self, query: &BatchQuery) -> BatchAnswer {
        approximate_answer(&self.index, query)
    }

    /// Executes a batch under a [`ConcurrentPlan`]: several queries run
    /// at once on disjoint worker groups (inter-query parallelism), each
    /// on the same three-phase engine body as [`BatchEngine::run_batch`]
    /// — answers are bit-identical to the sequential path. Results come
    /// back in input order.
    ///
    /// # Panics
    /// Panics unless the plan's rounds partition the pool and name every
    /// query exactly once.
    pub fn run_batch_concurrent(
        &self,
        queries: &[BatchQuery],
        plan: &ConcurrentPlan,
        params: &SearchParams,
    ) -> BatchOutcome {
        plan.validate(self.pool.n_threads, queries.len());
        let t0 = std::time::Instant::now();
        let items: Vec<OnceLock<BatchItem>> = (0..queries.len()).map(|_| OnceLock::new()).collect();
        for round in &plan.rounds {
            self.run_concurrent(round, &|ctx, qi| {
                let q = &queries[qi];
                let p = q.params.unwrap_or(*params);
                let item = ctx.execute(qi, q, &p);
                items[qi]
                    .set(item)
                    .unwrap_or_else(|_| unreachable!("validated plan names each query once"));
            });
        }
        BatchOutcome {
            items: items
                .into_iter()
                .map(|s| s.into_inner().expect("validated plan is total"))
                .collect(),
            wall: t0.elapsed(),
        }
    }
}

/// The **approximate** answer a query's exact search is seeded from:
/// the approximate tree descent's candidate for 1-NN (Euclidean or
/// DTW), the seed leaf's candidates for k-NN. Runs in microseconds —
/// one leaf visit, no queue processing.
///
/// This is the serving layer's honest degraded answer: when a query's
/// deadline has already expired at claim time, the service returns this
/// seed answer explicitly marked as degraded instead of silently
/// dropping the query or burning a full exact search past its
/// deadline. The returned distance is a true upper bound (it is the
/// real distance to a real series), never a fabricated "exact" claim.
pub fn approximate_answer(index: &Index, query: &BatchQuery) -> BatchAnswer {
    match query.kind {
        QueryKind::Exact => {
            let (_kernel, bsf, _initial) = seed_ed(index, query.data);
            BatchAnswer::Nn(bsf.answer())
        }
        QueryKind::Knn(k) => {
            let (_kernel, knn) = seed_knn(index, query.data, k);
            BatchAnswer::Knn(knn.snapshot())
        }
        QueryKind::Dtw(window) => {
            let (_kernel, bsf, _initial) = seed_dtw(index, query.data, window);
            BatchAnswer::Nn(bsf.answer())
        }
    }
}

/// Deterministic calibration probes: series drawn from spread positions
/// of the index itself, perturbed by a fixed xorshift stream and
/// re-normalized — realistic queries (near the data distribution, not
/// exact matches) without any RNG dependency or external query set.
fn calibration_probes(index: &Index, count: usize) -> Vec<Vec<f32>> {
    let n = index.num_series();
    if n == 0 {
        return Vec::new();
    }
    let count = count.min(n).max(1);
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    (0..count)
        .map(|i| {
            let id = (i * n / count + n / (2 * count)).min(n - 1) as u32;
            let mut q = index.series_by_id(id).to_vec();
            for v in &mut q {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *v += ((x % 2000) as f32 / 1000.0 - 1.0) * 0.05;
            }
            crate::series::znormalize(&mut q);
            q
        })
        .collect()
}

// ---------------------------------------------------------------------
// The steal service
// ---------------------------------------------------------------------

/// The cooperative steal-service hook installed into a
/// [`StealRegistry`]: invoked by every search worker between queue
/// claims (and by a node's manager thread), with the registry to serve
/// from. The distributed layer installs a hook that drains its
/// steal-request channel and answers each request via
/// [`StealRegistry::serve_steal`].
pub type StealServiceHook = Arc<dyn Fn(&StealRegistry) + Send + Sync>;

/// The per-query feedback observer installed into a [`StealRegistry`]:
/// invoked with `(query_id, stats)` after **every** query the engine
/// answers — full-pool or lane — so the scheduling layer can append
/// `(initial BSF, observed time)` samples to its online predictors
/// without the core crate depending on them. Calibration probes are
/// not reported (they measure the machine, not the traffic).
pub type QueryObserver = Arc<dyn Fn(usize, &SearchStats) + Send + Sync>;

/// Work handed to a thief by [`StealRegistry::serve_steal`].
#[derive(Debug, Clone)]
pub struct StolenWork {
    /// The victim query's caller-assigned id (its batch index).
    pub query_id: usize,
    /// Global RS-batch ids the thief should process.
    pub batch_ids: Vec<usize>,
    /// The victim query's current pruning threshold (squared BSF).
    pub bsf_sq: f64,
}

/// Progress snapshot of one in-flight query (diagnostics).
#[derive(Debug, Clone)]
pub struct InflightInfo {
    /// Caller-assigned query id.
    pub query_id: usize,
    /// Worker-group width the query runs at.
    pub width: usize,
    /// Claimed queues of the processing phase.
    pub claimed: usize,
    /// Total queues of the processing phase.
    pub total: usize,
    /// Whether the query is in the (stealable) processing phase.
    pub processing: bool,
}

struct InflightEntry {
    token: u64,
    query_id: usize,
    width: usize,
    view: Arc<StealView>,
    results: Arc<dyn ResultSet + Send + Sync>,
    /// Predicted total cost of the query (scheduler estimate), if the
    /// admitting layer attached one; weights steal-victim selection.
    estimate: Option<f64>,
}

/// Cap on recycled [`StealView`] allocations parked in the registry.
const MAX_SPARE_VIEWS: usize = 32;

/// The engine-resident steal service: tracks every in-flight query of a
/// [`BatchEngine`] — full-pool or lane — with its [`StealView`], its
/// worker-group width, and (via the view) its processing progress.
///
/// The registry replaces the per-query "active slot" side channel: a
/// work-stealing manager serves a steal request by asking the registry,
/// which picks a victim among **all** in-flight queries — the one with
/// the widest remaining work (most unclaimed queues, ties broken by
/// wider lane) — so stealing composes with concurrent lanes instead of
/// requiring one active full-pool query per node.
///
/// Views are allocated and recycled here: registration hands out a
/// fresh (or reset) [`StealView`], and dropping the returned
/// [`InflightQuery`] grant returns the allocation for the next query.
#[derive(Default)]
pub struct StealRegistry {
    inflight: Mutex<Vec<InflightEntry>>,
    spare_views: Mutex<Vec<StealView>>,
    hook: RwLock<Option<StealServiceHook>>,
    observer: RwLock<Option<QueryObserver>>,
    next_token: AtomicU64,
    /// While set, [`StealRegistry::serve_steal`] serves nothing. The
    /// engine pauses serving during warmup calibration: probe queries
    /// register like any in-flight query (they run through the normal
    /// lane machinery), but handing their RS-batches to a thief would
    /// let the thief execute them under a *real* query's id — probes
    /// are measurement, not stealable work.
    paused: AtomicBool,
}

impl std::fmt::Debug for StealRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StealRegistry")
            .field("in_flight", &self.in_flight())
            .field("spare_views", &self.spare_view_count())
            .finish_non_exhaustive()
    }
}

impl StealRegistry {
    /// Registers one in-flight query: `query_id` is the caller's id for
    /// it (reported to thieves), `width` its worker-group width, and
    /// `results` the live result set whose threshold a steal response
    /// reports as the victim's current BSF. Returns the execution grant;
    /// the query stays visible to the service until the grant drops.
    pub fn register(
        self: &Arc<Self>,
        query_id: usize,
        width: usize,
        results: Arc<dyn ResultSet + Send + Sync>,
    ) -> InflightQuery {
        self.register_estimated(query_id, width, results, None)
    }

    /// [`StealRegistry::register`] with a scheduler cost estimate
    /// attached: [`StealRegistry::serve_steal`] weights victims by
    /// estimated remaining work (estimate × unclaimed queue fraction)
    /// when estimates are present, falling back to raw unclaimed-queue
    /// counts for queries admitted without one.
    pub fn register_estimated(
        self: &Arc<Self>,
        query_id: usize,
        width: usize,
        results: Arc<dyn ResultSet + Send + Sync>,
        estimate: Option<f64>,
    ) -> InflightQuery {
        let view = {
            let mut spares = lock_plain(&self.spare_views);
            spares.pop().unwrap_or_default()
        };
        let view = Arc::new(view);
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        lock_plain(&self.inflight).push(InflightEntry {
            token,
            query_id,
            width,
            view: Arc::clone(&view),
            results,
            estimate: estimate.filter(|e| e.is_finite() && *e > 0.0),
        });
        InflightQuery {
            registry: Arc::clone(self),
            view: Some(view),
            token,
            query_id,
        }
    }

    /// Number of currently registered queries.
    pub fn in_flight(&self) -> usize {
        lock_plain(&self.inflight).len()
    }

    /// Progress snapshot of every registered query (diagnostics).
    pub fn snapshot(&self) -> Vec<InflightInfo> {
        lock_plain(&self.inflight)
            .iter()
            .map(|e| {
                let (claimed, total) = e.view.queue_progress();
                InflightInfo {
                    query_id: e.query_id,
                    width: e.width,
                    claimed,
                    total,
                    processing: e.view.is_processing(),
                }
            })
            .collect()
    }

    /// Installs the cooperative service hook. Search workers invoke it
    /// between queue claims for **every** query the engine runs (pool or
    /// lane), so pending steal requests are served even while the
    /// serving node is itself mid-query.
    pub fn install_service(&self, hook: StealServiceHook) {
        *self.hook.write().unwrap_or_else(PoisonError::into_inner) = Some(hook);
    }

    /// Removes the installed service hook.
    pub fn clear_service(&self) {
        *self.hook.write().unwrap_or_else(PoisonError::into_inner) = None;
    }

    /// The installed hook, if any (cloned once per query execution).
    pub(crate) fn service_hook(&self) -> Option<StealServiceHook> {
        self.hook
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Invokes the installed service hook once (no-op without one).
    pub fn service(&self) {
        if let Some(h) = self.service_hook() {
            h(self);
        }
    }

    /// Pauses or resumes steal serving (see the `paused` field docs);
    /// while paused, [`StealRegistry::serve_steal`] returns `None`.
    pub fn set_steal_paused(&self, paused: bool) {
        self.paused.store(paused, Ordering::Release);
    }

    /// Installs the per-query feedback observer: invoked with
    /// `(query_id, stats)` after every query answered through the
    /// owning engine (pool entry points and lane execution alike).
    pub fn install_observer(&self, observer: QueryObserver) {
        *self
            .observer
            .write()
            .unwrap_or_else(PoisonError::into_inner) = Some(observer);
    }

    /// Removes the installed feedback observer.
    pub fn clear_observer(&self) {
        *self
            .observer
            .write()
            .unwrap_or_else(PoisonError::into_inner) = None;
    }

    /// Reports one finished query to the installed observer (no-op
    /// without one). Called by the engine after every answered query.
    pub fn observe(&self, query_id: usize, stats: &SearchStats) {
        let obs = self
            .observer
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        if let Some(o) = obs {
            o(query_id, stats);
        }
    }

    /// Serves one steal request against the registry: picks the victim
    /// with the **most estimated remaining work**. When the admitting
    /// layer attached a cost estimate, remaining work is the estimate
    /// scaled by the unclaimed queue fraction — a nearly-drained
    /// expensive query ranks below a barely-started cheap one, which raw
    /// queue counts get wrong. Estimated victims outrank unestimated
    /// ones; among unestimated victims (and as the tie-break everywhere)
    /// the original ordering applies — most unclaimed processing queues
    /// first, ties broken by wider worker group, then by registration
    /// order. Takes away up to `nsend` of the victim's RS-batches (the
    /// Take-Away property is enforced by [`StealView::try_steal`]),
    /// falls through to the next candidate when a race leaves the first
    /// with nothing stealable, and returns `None` when no in-flight
    /// query has stealable work.
    pub fn serve_steal(&self, nsend: usize) -> Option<StolenWork> {
        if self.paused.load(Ordering::Acquire) {
            return None;
        }
        struct Candidate {
            /// Estimated remaining work: cost estimate × unclaimed
            /// fraction, when an estimate was attached at admission.
            score: Option<f64>,
            remaining: usize,
            width: usize,
            token: u64,
            view: Arc<StealView>,
            query_id: usize,
            results: Arc<dyn ResultSet + Send + Sync>,
        }
        let mut candidates: Vec<Candidate> = {
            let inflight = lock_plain(&self.inflight);
            inflight
                .iter()
                .filter(|e| e.view.is_processing())
                .filter_map(|e| {
                    let (claimed, total) = e.view.queue_progress();
                    let remaining = total - claimed;
                    (remaining > 0).then(|| Candidate {
                        score: e
                            .estimate
                            .map(|est| est * remaining as f64 / total.max(1) as f64),
                        remaining,
                        width: e.width,
                        token: e.token,
                        view: Arc::clone(&e.view),
                        query_id: e.query_id,
                        results: Arc::clone(&e.results),
                    })
                })
                .collect()
        };
        candidates.sort_by(|a, b| {
            // Estimated remaining work first (higher is better; queries
            // without an estimate sort after every estimated one), then
            // the estimate-free ordering as the fallback and tie-break.
            let sa = a.score.unwrap_or(f64::NEG_INFINITY);
            let sb = b.score.unwrap_or(f64::NEG_INFINITY);
            sb.partial_cmp(&sa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.remaining.cmp(&a.remaining))
                .then(b.width.cmp(&a.width))
                .then(a.token.cmp(&b.token))
        });
        for c in candidates {
            let batch_ids = c.view.try_steal(nsend);
            if !batch_ids.is_empty() {
                // Read the victim's bound *after* the successful steal:
                // the latest (tightest) value seeds the thief with the
                // most pruning power.
                return Some(StolenWork {
                    query_id: c.query_id,
                    batch_ids,
                    bsf_sq: c.results.threshold_sq(),
                });
            }
        }
        None
    }

    /// Test/diagnostic helper: recycled view allocations currently
    /// parked in the registry.
    #[doc(hidden)]
    pub fn spare_view_count(&self) -> usize {
        lock_plain(&self.spare_views).len()
    }

    fn deregister(&self, token: u64, view: Arc<StealView>) {
        {
            let mut inflight = lock_plain(&self.inflight);
            let before = inflight.len();
            inflight.retain(|e| e.token != token);
            // Contract check: every grant deregisters exactly the entry
            // it registered — a miss means a double drop or a token
            // collision, both protocol violations.
            debug_assert_eq!(
                before - inflight.len(),
                1,
                "InflightQuery deregistered a query the registry does not hold"
            );
        }
        // Recycle the view allocation if this was the last reference
        // (a manager holding a snapshot clone just forfeits the spare).
        if let Ok(mut view) = Arc::try_unwrap(view) {
            view.reset();
            let mut spares = lock_plain(&self.spare_views);
            if spares.len() < MAX_SPARE_VIEWS {
                spares.push(view);
            }
        }
    }
}

/// Recovers a guard from a (practically unreachable) poisoned registry
/// lock: the registry's critical sections are trivial state updates.
fn lock_plain<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The execution grant of one registered query: carries the
/// engine-allocated [`StealView`] the query runs under. Dropping the
/// grant deregisters the query from the [`StealRegistry`] (it can no
/// longer be chosen as a steal victim) and recycles the view.
pub struct InflightQuery {
    registry: Arc<StealRegistry>,
    view: Option<Arc<StealView>>,
    token: u64,
    query_id: usize,
}

impl std::fmt::Debug for InflightQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InflightQuery")
            .field("query_id", &self.query_id)
            .field("token", &self.token)
            .finish_non_exhaustive()
    }
}

impl InflightQuery {
    /// The steal view this query executes under.
    pub fn view(&self) -> &Arc<StealView> {
        self.view.as_ref().expect("view present until drop")
    }

    /// The caller-assigned query id.
    pub fn query_id(&self) -> usize {
        self.query_id
    }
}

impl Drop for InflightQuery {
    fn drop(&mut self) {
        if let Some(view) = self.view.take() {
            self.registry.deregister(self.token, view);
        }
    }
}

// ---------------------------------------------------------------------
// The persistent pool
// ---------------------------------------------------------------------

/// A borrowed job: the per-thread engine body of one query.
pub(crate) type JobRef<'f> = &'f (dyn Fn(usize, &mut WorkerScratch) + Sync + 'f);

/// The lifetime-erased job handle published to resident workers (and to
/// lane followers in the `multiq` runtime). The `'static` is a lie told
/// by [`erase_job`]; see its safety note.
#[derive(Clone, Copy)]
pub(crate) struct Job(pub(crate) &'static (dyn Fn(usize, &mut WorkerScratch) + Sync + 'static));

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Job(..)")
    }
}

/// Erases the borrow lifetime of a job closure.
///
/// # Safety contract
///
/// Upheld by [`WorkerPool::run`] and the lane runtime in `multiq`: the
/// returned `Job` must not be invoked after the publishing call
/// returns — both drivers block until every participant has finished
/// the job and clear the slot, so the erased borrow never outlives the
/// real one. In debug builds the drivers additionally overwrite the
/// cleared slot with [`poisoned_job`], so a protocol violation aborts
/// loudly instead of dereferencing a dead stack frame.
///
/// This is the **only** permitted `transmute` in the workspace
/// (enforced by `cargo run -p xtask -- lint`).
pub(crate) fn erase_job(f: JobRef<'_>) -> Job {
    // SAFETY: only extends the closure borrow's lifetime ('_ -> 'static,
    // same fat-pointer layout). The publishing driver guarantees the
    // erased reference is never dereferenced after the real borrow ends:
    // it blocks until every participant finished the job, then clears
    // (and in debug builds poisons) the published slot.
    Job(unsafe {
        std::mem::transmute::<JobRef<'_>, &'static (dyn Fn(usize, &mut WorkerScratch) + Sync)>(f)
    })
}

/// A canary job written into a cleared job slot by the drivers in debug
/// builds: any late pickup of a stale job — an epoch-protocol bug that
/// would otherwise silently dereference a dead stack frame through the
/// lifetime-erased pointer — invokes this instead and aborts loudly.
#[cfg(debug_assertions)]
pub(crate) fn poisoned_job() -> Job {
    Job(&|_tid, _scratch| {
        panic!(
            "job canary invoked: a worker picked up an erased job after its \
             round completed (pool/lane epoch protocol violated)"
        )
    })
}

struct PoolState {
    /// Bumped per job; workers detect new work by epoch change.
    epoch: u64,
    job: Option<Job>,
    /// Resident workers still executing the current job.
    remaining: usize,
    panicked: bool,
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    /// Workers wait here for the next job.
    work_cv: Condvar,
    /// The submitter waits here for job completion.
    done_cv: Condvar,
    /// Phase barrier shared by all jobs (`n_threads` parties: the
    /// resident workers plus the submitting thread). Poisoned when a
    /// participant panics mid-job so the survivors abort the round
    /// instead of deadlocking; reset by the submitter after the pool
    /// drains.
    barrier: PhaseBarrier,
}

/// A fixed-size persistent thread pool executing one type-erased job at
/// a time on **all** threads (the submitter participates as tid 0).
struct WorkerPool {
    inner: Arc<PoolInner>,
    /// Scratch of the submitting thread (tid 0). Locking it first also
    /// serializes concurrent `run` calls.
    caller_scratch: Mutex<WorkerScratch>,
    handles: Vec<JoinHandle<()>>,
    n_threads: usize,
}

impl WorkerPool {
    /// Creates the pool. `prefault` is the scratch-arena warmup size
    /// (the index's leaf capacity): every worker faults its arena pages
    /// on its own pinned thread right after pinning, so first-touch
    /// places them on the worker's local NUMA node — each lane's
    /// contiguous core block then works out of node-local scratch
    /// instead of pages owned by whichever thread built the engine.
    fn new(n_threads: usize, prefault: usize) -> Self {
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            barrier: PhaseBarrier::new(n_threads),
        });
        // Reserve a contiguous block of target cores for this pool's
        // resident workers: lanes are contiguous tid ranges, so a
        // lane's workers land on adjacent cores (the pinning unit is
        // the lane, not a flat process-wide `tid % ncpu` round-robin) —
        // the first step toward a NUMA-aware layout where a lane stays
        // inside one domain. The submitter (tid 0) stays unpinned as
        // before — it is the caller's thread, not the engine's — so
        // only the `n_threads - 1` worker slots are reserved.
        let core_base = reserve_core_block(n_threads.saturating_sub(1));
        let handles = (1..n_threads)
            .map(|tid| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("odyssey-engine-{tid}"))
                    .spawn(move || worker_main(&inner, tid, core_base, prefault))
                    .expect("spawn batch-engine worker")
            })
            .collect();
        // The submitter's scratch is faulted here, on the (unpinned)
        // constructing thread — it is that thread's scratch.
        let mut caller_scratch = WorkerScratch::default();
        caller_scratch.prefault(prefault);
        WorkerPool {
            inner,
            caller_scratch: Mutex::new(caller_scratch),
            handles,
            n_threads,
        }
    }

    /// Runs `f(tid, scratch)` once on every pool thread (the caller
    /// executes tid 0 inline) and returns when all are done.
    fn run(&self, f: JobRef<'_>) {
        // Taking the caller scratch first serializes submissions.
        let mut scratch = self
            .caller_scratch
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let resident = self.handles.len();
        if resident > 0 {
            let mut st = lock_plain(&self.inner.state);
            debug_assert!(st.remaining == 0, "one job at a time");
            st.epoch += 1;
            st.job = Some(erase_job(f));
            st.remaining = resident;
            drop(st);
            self.inner.work_cv.notify_all();
        }
        // The caller's unwind must NOT escape before every worker has
        // finished the job: the erased `Job` borrows `f`'s closure (and
        // everything it captures) from frames above this one, so an
        // early unwind would leave workers dereferencing a dead stack.
        // Catch, poison the phase barrier (workers may be blocked there
        // waiting for the caller — the pre-barrier-panic deadlock),
        // wait for the pool to drain, then resume.
        let caller_outcome = catch_unwind(AssertUnwindSafe(|| f(0, &mut scratch)));
        if caller_outcome.is_err() {
            self.inner.barrier.poison();
        }
        let mut worker_panicked = false;
        if resident > 0 {
            let mut st = lock_plain(&self.inner.state);
            while st.remaining > 0 {
                st = self
                    .inner
                    .done_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            // Clear the slot; in debug builds replace the erased job
            // with a canary so any late pickup aborts loudly instead of
            // dereferencing this (now dead) stack frame.
            st.job = None;
            #[cfg(debug_assertions)]
            {
                st.job = Some(poisoned_job());
            }
            worker_panicked = std::mem::take(&mut st.panicked);
        }
        drop(scratch);
        // Every participant is out of the job (and out of the barrier),
        // so a poisoned barrier can be safely rearmed for the next job.
        if self.inner.barrier.is_poisoned() {
            self.inner.barrier.reset();
        }
        if let Err(payload) = caller_outcome {
            std::panic::resume_unwind(payload);
        }
        if worker_panicked {
            panic!("a batch-engine worker panicked while executing a query");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock_plain(&self.inner.state);
            st.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Resident-worker main loop: pin, prefault scratch, then run jobs
/// until shutdown.
fn worker_main(inner: &PoolInner, tid: usize, core_base: usize, prefault: usize) {
    // Workers have tids 1..n; tid 0 (the unpinned submitter) owns no
    // reserved slot, so the block packs without holes.
    pin_to_core(core_base + tid - 1);
    // First-touch *after* pinning: the arena pages are faulted by this
    // worker on its own core, so they land on its local NUMA node.
    let mut scratch = WorkerScratch::default();
    scratch.prefault(prefault);
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = lock_plain(&inner.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.expect("job published with its epoch");
                }
                st = inner
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| (job.0)(tid, &mut scratch)));
        if outcome.is_err() {
            // Poison before reporting completion: siblings blocked at a
            // phase barrier must abort the round instead of waiting for
            // this worker's (never-coming) arrival.
            inner.barrier.poison();
        }
        let mut st = lock_plain(&inner.state);
        if outcome.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            inner.done_cv.notify_one();
        }
    }
}

/// Reserves a **contiguous** block of `n` target cores, process-wide,
/// so the many engines a cluster simulation creates (one per node) get
/// disjoint blocks instead of stacking every engine's worker `i` onto
/// the same core — and so each engine's workers (and therefore each
/// lane's contiguous tid range) occupy adjacent cores. Wraps modulo the
/// host core count in [`pin_to_core`].
fn reserve_core_block(n: usize) -> usize {
    use std::sync::atomic::AtomicUsize;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    NEXT.fetch_add(n, Ordering::Relaxed)
}

/// Best-effort thread pinning (Linux only; a failed or unsupported call
/// is silently ignored — pinning is an optimization, not a contract).
/// Compiled out under Miri, which cannot execute foreign calls.
#[cfg(all(target_os = "linux", not(miri)))]
fn pin_to_core(core: usize) {
    let ncpu = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let core = core % ncpu;
    // Mirrors glibc's `cpu_set_t` (1024 bits).
    #[repr(C)]
    struct CpuSet {
        bits: [u64; 16],
    }
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const CpuSet) -> i32;
    }
    let core = core % 1024;
    let mut set = CpuSet { bits: [0; 16] };
    set.bits[core / 64] |= 1u64 << (core % 64);
    // SAFETY: passes a properly sized, initialized mask for the calling
    // thread (pid 0); the kernel copies it and keeps no reference.
    let _ = unsafe { sched_setaffinity(0, std::mem::size_of::<CpuSet>(), &set) };
}

#[cfg(any(not(target_os = "linux"), miri))]
fn pin_to_core(_core: usize) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use crate::series::DatasetBuffer;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn walk_dataset(n: usize, len: usize, seed: u64) -> DatasetBuffer {
        let mut x = seed | 1;
        let mut data = Vec::with_capacity(n * len);
        for _ in 0..n {
            let mut acc = 0.0f32;
            let mut s = Vec::with_capacity(len);
            for _ in 0..len {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                acc += ((x % 2000) as f32 / 1000.0) - 1.0;
                s.push(acc);
            }
            crate::series::znormalize(&mut s);
            data.extend_from_slice(&s);
        }
        DatasetBuffer::from_vec(data, len)
    }

    fn build(n: usize) -> Arc<Index> {
        Arc::new(Index::build(
            walk_dataset(n, 64, 33),
            IndexConfig::new(64).with_segments(8).with_leaf_capacity(24),
            2,
        ))
    }

    #[test]
    fn pool_runs_job_on_every_thread() {
        for n in [1usize, 2, 4] {
            let pool = WorkerPool::new(n, 64);
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            for _ in 0..3 {
                pool.run(&|tid, _scratch| {
                    hits[tid].fetch_add(1, Ordering::Relaxed);
                });
            }
            for (tid, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 3, "n={n} tid={tid}");
            }
        }
    }

    #[test]
    fn engine_exact_matches_per_query_path_and_brute_force() {
        let idx = build(1200);
        let engine = BatchEngine::new(Arc::clone(&idx), 2);
        let params = SearchParams::new(2);
        for qseed in [7u64, 77, 777] {
            let q = walk_dataset(1, 64, qseed).series(0).to_vec();
            let want = idx.brute_force(&q);
            let scope = super::super::exact::exact_search(&idx, &q, &params);
            let pooled = engine.exact(&q, &params);
            // Brute force sums in a different lane order than the
            // early-abandoning kernel: compare with tolerance there,
            // but bit-exact against the per-query engine path.
            assert!(
                (pooled.answer.distance - want.distance).abs() < 1e-9,
                "qseed={qseed}: engine vs brute force"
            );
            assert_eq!(
                pooled.answer.distance.to_bits(),
                scope.answer.distance.to_bits(),
                "qseed={qseed}: engine vs per-query scope"
            );
        }
    }

    #[test]
    fn engine_reuse_across_many_queries_stays_exact() {
        // Scratch arenas must not leak state between queries.
        let idx = build(900);
        let engine = BatchEngine::new(Arc::clone(&idx), 3);
        let params = SearchParams::new(3).with_th(16);
        for qseed in 0..12u64 {
            let q = walk_dataset(1, 64, 1000 + qseed).series(0).to_vec();
            let want = idx.brute_force(&q);
            let got = engine.exact(&q, &params);
            assert!(
                (got.answer.distance - want.distance).abs() < 1e-9,
                "qseed={qseed}"
            );
        }
    }

    #[test]
    fn run_batch_respects_order_and_returns_input_positions() {
        let idx = build(800);
        let engine = BatchEngine::new(Arc::clone(&idx), 2);
        let qdata: Vec<Vec<f32>> = (0..4)
            .map(|s| walk_dataset(1, 64, 500 + s).series(0).to_vec())
            .collect();
        let queries: Vec<BatchQuery> = qdata
            .iter()
            .map(|q| BatchQuery::new(q, QueryKind::Exact))
            .collect();
        let out = engine.run_batch(&queries, &[3, 1, 0, 2], &SearchParams::new(2));
        assert_eq!(out.items.len(), 4);
        for (qi, item) in out.items.iter().enumerate() {
            let want = idx.brute_force(&qdata[qi]);
            assert!((item.answer.nn().distance - want.distance).abs() < 1e-9, "qi={qi}");
        }
    }

    #[test]
    #[should_panic(expected = "repeats query")]
    fn run_batch_rejects_duplicate_order() {
        let idx = build(200);
        let engine = BatchEngine::new(idx, 1);
        let q = walk_dataset(1, 64, 9).series(0).to_vec();
        let queries = [
            BatchQuery::new(&q, QueryKind::Exact),
            BatchQuery::new(&q, QueryKind::Exact),
        ];
        let _ = engine.run_batch(&queries, &[0, 0], &SearchParams::new(1));
    }

    #[test]
    fn empty_batch_is_fine() {
        let idx = build(200);
        let engine = BatchEngine::new(idx, 2);
        let out = engine.run_batch(&[], &[], &SearchParams::new(2));
        assert!(out.items.is_empty());
        let out = engine.run_batch_concurrent(&[], &ConcurrentPlan::default(), &SearchParams::new(2));
        assert!(out.items.is_empty());
    }

    #[test]
    fn concurrent_lanes_match_sequential_batch() {
        let idx = build(1000);
        let qdata: Vec<Vec<f32>> = (0..6)
            .map(|s| walk_dataset(1, 64, 700 + s).series(0).to_vec())
            .collect();
        let queries: Vec<BatchQuery> = qdata
            .iter()
            .map(|q| BatchQuery::new(q, QueryKind::Exact))
            .collect();
        let order: Vec<usize> = (0..queries.len()).collect();
        for threads in [1usize, 3, 4] {
            let engine = BatchEngine::new(Arc::clone(&idx), threads);
            let params = SearchParams::new(threads).with_th(16);
            let seq = engine.run_batch(&queries, &order, &params);
            for width in 1..=threads {
                let plan = ConcurrentPlan::uniform(queries.len(), threads, width);
                let conc = engine.run_batch_concurrent(&queries, &plan, &params);
                for qi in 0..queries.len() {
                    assert_eq!(
                        conc.items[qi].answer.nn().distance.to_bits(),
                        seq.items[qi].answer.nn().distance.to_bits(),
                        "threads={threads} width={width} qi={qi}"
                    );
                }
            }
        }
    }

    #[test]
    fn per_query_params_override_batch_params() {
        // A tiny per-query TH must not change the (exact) answer, and
        // the override must actually be applied: with th=1 the engine
        // produces more, smaller queues than the batch-wide th.
        let idx = build(900);
        let engine = BatchEngine::new(Arc::clone(&idx), 2);
        let q = walk_dataset(1, 64, 4242).series(0).to_vec();
        let batch = [
            BatchQuery::new(&q, QueryKind::Exact),
            BatchQuery::new(&q, QueryKind::Exact).with_params(SearchParams::new(2).with_th(1)),
        ];
        let out = engine.run_batch(&batch, &[0, 1], &SearchParams::new(2).with_th(usize::MAX));
        assert_eq!(
            out.items[0].answer.nn().distance.to_bits(),
            out.items[1].answer.nn().distance.to_bits()
        );
        assert!(
            out.items[1].stats.pq_count > out.items[0].stats.pq_count,
            "th=1 must split queues: {} vs {}",
            out.items[1].stats.pq_count,
            out.items[0].stats.pq_count
        );
    }

    use super::super::bsf::SharedBsf;

    fn fake_inflight(
        registry: &Arc<StealRegistry>,
        query_id: usize,
        width: usize,
        bsf_sq: f64,
        queues: usize,
    ) -> InflightQuery {
        let grant = registry.register(
            query_id,
            width,
            Arc::new(SharedBsf::new(bsf_sq, None)) as Arc<dyn ResultSet + Send + Sync>,
        );
        grant.view().test_init(queues);
        grant.view().test_publish((0..queues).collect());
        grant
    }

    #[test]
    fn registry_serves_widest_remaining_victim_first() {
        let registry = Arc::new(StealRegistry::default());
        assert!(registry.serve_steal(4).is_none(), "empty registry");
        let small = fake_inflight(&registry, 1, 1, 10.0, 2);
        let big = fake_inflight(&registry, 2, 4, 20.0, 6);
        assert_eq!(registry.in_flight(), 2);
        let w = registry.serve_steal(2).expect("stealable work");
        assert_eq!(w.query_id, 2, "most remaining queues wins");
        assert_eq!(w.batch_ids, vec![5, 4], "rightmost batches, Nsend=2");
        assert_eq!(w.bsf_sq, 20.0);
        // After the big query finishes, the small one becomes the victim.
        big.view().test_finish();
        drop(big);
        let w = registry.serve_steal(8).expect("small query still live");
        assert_eq!(w.query_id, 1);
        assert_eq!(w.batch_ids, vec![1, 0]);
        // Everything stolen: nothing left to serve.
        assert!(registry.serve_steal(1).is_none());
        drop(small);
        assert_eq!(registry.in_flight(), 0);
    }

    fn fake_inflight_estimated(
        registry: &Arc<StealRegistry>,
        query_id: usize,
        width: usize,
        queues: usize,
        estimate: Option<f64>,
    ) -> InflightQuery {
        let grant = registry.register_estimated(
            query_id,
            width,
            Arc::new(SharedBsf::new(1.0, None)) as Arc<dyn ResultSet + Send + Sync>,
            estimate,
        );
        grant.view().test_init(queues);
        grant.view().test_publish((0..queues).collect());
        grant
    }

    #[test]
    fn paused_registry_serves_nothing_until_resumed() {
        let registry = Arc::new(StealRegistry::default());
        let _q = fake_inflight(&registry, 1, 2, 10.0, 4);
        registry.set_steal_paused(true);
        assert!(registry.serve_steal(2).is_none(), "paused: no victims");
        registry.set_steal_paused(false);
        assert!(registry.serve_steal(2).is_some(), "resumed: steals flow");
    }

    #[test]
    fn registry_weights_victims_by_estimated_remaining_work() {
        let registry = Arc::new(StealRegistry::default());
        // Cheap query with many queues vs expensive query with few: raw
        // queue counts would pick query 1, the cost-aware ranking picks
        // the expensive query 2 (100.0 × 1.0 > 1.0 × 1.0).
        let _cheap = fake_inflight_estimated(&registry, 1, 2, 6, Some(1.0));
        let _dear = fake_inflight_estimated(&registry, 2, 2, 2, Some(100.0));
        let w = registry.serve_steal(1).expect("stealable");
        assert_eq!(w.query_id, 2, "estimated remaining work wins");
    }

    #[test]
    fn registry_ranks_estimated_victims_above_unestimated() {
        let registry = Arc::new(StealRegistry::default());
        let _plain = fake_inflight_estimated(&registry, 1, 2, 8, None);
        let _est = fake_inflight_estimated(&registry, 2, 1, 2, Some(0.5));
        let w = registry.serve_steal(1).expect("stealable");
        assert_eq!(w.query_id, 2, "any estimate outranks no estimate");
    }

    #[test]
    fn registry_without_estimates_keeps_original_ordering() {
        let registry = Arc::new(StealRegistry::default());
        // Same shape as `registry_serves_widest_remaining_victim_first`,
        // admitted through the estimated path with `None` everywhere:
        // the ordering must be exactly the estimate-free one.
        let _small = fake_inflight_estimated(&registry, 1, 1, 2, None);
        let _big = fake_inflight_estimated(&registry, 2, 4, 6, None);
        let w = registry.serve_steal(2).expect("stealable work");
        assert_eq!(w.query_id, 2, "most remaining queues wins");
        assert_eq!(w.batch_ids, vec![5, 4]);
    }

    #[test]
    fn registry_ties_break_by_wider_lane() {
        let registry = Arc::new(StealRegistry::default());
        let _narrow = fake_inflight(&registry, 1, 1, 1.0, 4);
        let _wide = fake_inflight(&registry, 2, 3, 2.0, 4);
        let w = registry.serve_steal(1).expect("stealable");
        assert_eq!(w.query_id, 2, "equal remaining: wider lane wins");
    }

    #[test]
    fn registry_never_serves_finished_or_unpublished_queries() {
        let registry = Arc::new(StealRegistry::default());
        // Registered but still traversing: not stealable.
        let grant = registry.register(
            7,
            2,
            Arc::new(SharedBsf::new(1.0, None)) as Arc<dyn ResultSet + Send + Sync>,
        );
        grant.view().test_init(4);
        assert!(registry.serve_steal(4).is_none(), "traversal phase");
        grant.view().test_publish(vec![0, 1, 2, 3]);
        grant.view().test_finish();
        assert!(registry.serve_steal(4).is_none(), "done phase");
    }

    #[test]
    fn registry_recycles_views_across_registrations() {
        let registry = Arc::new(StealRegistry::default());
        let g = fake_inflight(&registry, 0, 1, 1.0, 3);
        assert_eq!(registry.spare_view_count(), 0);
        drop(g);
        assert_eq!(registry.spare_view_count(), 1, "view parked for reuse");
        // The recycled view comes back reset: a fresh registration can
        // re-init it at a different batch count and steal normally.
        let g = fake_inflight(&registry, 1, 1, 1.0, 5);
        assert_eq!(registry.spare_view_count(), 0, "spare taken");
        let w = registry.serve_steal(10).expect("recycled view serves");
        assert_eq!(w.batch_ids, vec![4, 3, 2, 1, 0]);
        drop(g);
    }

    #[test]
    fn installed_service_hook_fires_during_queries() {
        let idx = build(600);
        let engine = BatchEngine::new(Arc::clone(&idx), 2);
        let calls = Arc::new(AtomicUsize::new(0));
        {
            let calls = Arc::clone(&calls);
            engine.steal_registry().install_service(Arc::new(move |reg| {
                // The in-flight query is visible to the hook.
                assert!(reg.in_flight() >= 1);
                calls.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let q = walk_dataset(1, 64, 99).series(0).to_vec();
        let out = engine.exact(&q, &SearchParams::new(2));
        assert!(
            (out.answer.distance - idx.brute_force(&q).distance).abs() < 1e-9,
            "hook must not disturb the answer"
        );
        assert!(
            calls.load(Ordering::Relaxed) > 0,
            "workers service the hook between queue claims"
        );
        engine.steal_registry().clear_service();
        let before = calls.load(Ordering::Relaxed);
        let _ = engine.exact(&q, &SearchParams::new(2));
        assert_eq!(calls.load(Ordering::Relaxed), before, "hook cleared");
        assert_eq!(engine.steal_registry().in_flight(), 0);
    }

    #[test]
    fn calibration_probes_expected_widths_and_caches() {
        let idx = build(600);
        let engine = BatchEngine::new(Arc::clone(&idx), 4);
        let samples = engine.calibrate().to_vec();
        let widths: Vec<usize> = samples.iter().map(|&(w, _)| w).collect();
        assert_eq!(widths, vec![1, 2, 4], "powers of two up to the pool");
        assert!(samples.iter().all(|&(_, t)| t > 0.0), "positive times");
        // Cached: a second call returns the same measurements.
        assert_eq!(engine.calibrate(), &samples[..]);
        // The probe machinery leaves the engine fully usable and exact.
        let q = walk_dataset(1, 64, 31).series(0).to_vec();
        let got = engine.exact(&q, &SearchParams::new(4));
        assert!((got.answer.distance - idx.brute_force(&q).distance).abs() < 1e-9);
        assert_eq!(engine.steal_registry().in_flight(), 0);
    }

    #[test]
    fn calibration_widths_include_non_power_of_two_pool() {
        let idx = build(300);
        let engine = BatchEngine::new(Arc::clone(&idx), 3);
        let widths: Vec<usize> = engine.calibrate().iter().map(|&(w, _)| w).collect();
        assert_eq!(widths, vec![1, 2, 3], "…plus the pool itself");
    }

    #[test]
    fn observer_fires_for_pool_and_lane_queries_without_probes() {
        let idx = build(700);
        let engine = BatchEngine::new(Arc::clone(&idx), 2);
        let seen: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let seen = Arc::clone(&seen);
            engine
                .steal_registry()
                .install_observer(Arc::new(move |qid, stats| {
                    assert!(stats.elapsed > Duration::ZERO);
                    lock_plain(&seen).push(qid);
                }));
        }
        // Calibration probes must NOT be observed.
        let _ = engine.calibrate();
        assert!(lock_plain(&seen).is_empty(), "probes are not traffic");
        // Pool entry point observes under the caller-assigned id.
        let q = walk_dataset(1, 64, 17).series(0).to_vec();
        let _ = engine.exact(&q, &SearchParams::new(2));
        assert_eq!(lock_plain(&seen).as_slice(), &[0]);
        // Lane execution observes each batch query once.
        let qdata: Vec<Vec<f32>> = (0..3)
            .map(|s| walk_dataset(1, 64, 40 + s).series(0).to_vec())
            .collect();
        let queries: Vec<BatchQuery> = qdata
            .iter()
            .map(|q| BatchQuery::new(q, QueryKind::Exact))
            .collect();
        let plan = ConcurrentPlan::uniform(queries.len(), 2, 1);
        let _ = engine.run_batch_concurrent(&queries, &plan, &SearchParams::new(2));
        let mut got = lock_plain(&seen).clone();
        got.sort_unstable();
        assert_eq!(got, vec![0, 0, 1, 2], "one observation per lane query");
        engine.steal_registry().clear_observer();
        let _ = engine.exact(&q, &SearchParams::new(2));
        assert_eq!(lock_plain(&seen).len(), 4, "observer cleared");
    }

    #[test]
    fn panicking_hook_deregisters_query_and_pool_survives() {
        use super::super::bsf::SharedBsf;
        let idx = build(900);
        let engine = BatchEngine::new(Arc::clone(&idx), 2);
        let params = SearchParams::new(2);
        let q = walk_dataset(1, 64, 4242).series(0).to_vec();

        // Seed the BSF at infinity so the very first candidate improves
        // it, guaranteeing the on_improve hook (and its panic) fires.
        let (kernel, _, _) = seed_ed(&idx, &q);
        let bsf = Arc::new(SharedBsf::new(f64::INFINITY, None));
        let grant = engine.admit(9, Arc::clone(&bsf) as Arc<dyn ResultSet + Send + Sync>);
        assert_eq!(engine.steal_registry().in_flight(), 1);

        let out = catch_unwind(AssertUnwindSafe(|| {
            engine.run_query(&kernel, &params, &*bsf, None, &grant, &|_, _| {
                panic!("on_improve hook panic (test)")
            })
        }));
        assert!(out.is_err(), "the hook panic must propagate to the caller");

        // The RAII grant deregisters the query even on the panic path.
        drop(grant);
        assert_eq!(
            engine.steal_registry().in_flight(),
            0,
            "a panicked query must not stay registered with the steal service"
        );

        // The pool's poisoned barrier was reset: the engine still
        // answers — and exactly (no worker deadlocked mid-phase).
        let want = idx.brute_force(&q);
        let got = engine.exact(&q, &params);
        assert!(
            (got.answer.distance - want.distance).abs() < 1e-9,
            "engine must stay usable after a mid-round panic"
        );
        assert_eq!(engine.steal_registry().in_flight(), 0);
    }
}
