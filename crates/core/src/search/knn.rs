//! k-NN exact search (Section 4, "k-NN Search").
//!
//! Per the paper, the only change relative to 1-NN is the best-so-far
//! bookkeeping: "instead of computing a single BSF value, we simply need
//! to keep track of the k smallest BSF values". The engine is shared; the
//! pruning threshold becomes the current k-th smallest distance
//! ([`SharedKnn`]).

use super::answer::KnnAnswer;
use super::bsf::{ResultSet, SharedKnn};
use super::exact::{run_search, SearchParams, SearchStats, StealView};
use super::kernel::EdKernel;
use crate::index::Index;
use crate::tree::Node;

/// Seeds a k-NN result set from the leaf the approximate search lands in
/// (the k-NN analogue of the initial-BSF computation).
pub fn seed_from_approx_leaf(index: &Index, query: &[f32], knn: &SharedKnn) {
    let qpaa = index.query_paa(query);
    if index.forest().is_empty() {
        return;
    }
    // Greedy descent, mirroring Index::approx_search_paa.
    let mut qsax = vec![0u8; index.config().segments];
    crate::sax::sax_word_into(&qpaa, &mut qsax);
    let qkey = crate::buffers::root_key_of_sax(&qsax);
    let forest = index.forest();
    let subtree = match forest.binary_search_by_key(&qkey, |t| t.key) {
        Ok(i) => &forest[i],
        Err(_) => &forest[0],
    };
    let mut node = &subtree.node;
    loop {
        match node {
            Node::Inner { children, .. } => {
                let d0 = crate::sax::mindist_paa_isax_sq(
                    &qpaa,
                    children[0].word(),
                    index.config().series_len,
                );
                let d1 = crate::sax::mindist_paa_isax_sq(
                    &qpaa,
                    children[1].word(),
                    index.config().series_len,
                );
                node = if d0 <= d1 { &children[0] } else { &children[1] };
            }
            Node::Leaf(leaf) => {
                let layout = index.layout();
                for p in leaf.slice.range() {
                    let d = crate::distance::euclidean_sq(query, layout.series(p));
                    knn.offer(d, layout.original_id(p));
                }
                return;
            }
        }
    }
}

/// Builds the Euclidean kernel and a [`SharedKnn`] seeded from the
/// approximate-search leaf — the k-NN analogue of
/// [`super::exact::seed_ed`], shared by [`knn_search`] and the batch
/// engine.
pub(crate) fn seed_knn<'q>(
    index: &Index,
    query: &'q [f32],
    k: usize,
) -> (EdKernel<'q>, SharedKnn) {
    let knn = SharedKnn::new(k);
    seed_from_approx_leaf(index, query, &knn);
    let kernel = EdKernel::new(query, index.config().segments);
    (kernel, knn)
}

/// Exact k-NN search under Euclidean distance.
pub fn knn_search(
    index: &Index,
    query: &[f32],
    k: usize,
    params: &SearchParams,
) -> (KnnAnswer, SearchStats) {
    let (kernel, knn) = seed_knn(index, query, k);
    let stats = run_search(
        index,
        &kernel,
        params,
        &knn,
        None,
        &StealView::new(),
        &|_, _| {},
    );
    (knn.snapshot(), stats)
}

/// Brute-force k-NN oracle.
pub fn knn_brute_force(index: &Index, query: &[f32], k: usize) -> KnnAnswer {
    let mut all: Vec<(f64, u32)> = (0..index.num_series())
        .map(|id| {
            (
                crate::distance::euclidean_sq(query, index.series_by_id(id as u32)),
                id as u32,
            )
        })
        .collect();
    all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    all.truncate(k);
    KnnAnswer { neighbors: all }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use crate::series::DatasetBuffer;

    fn walk_dataset(n: usize, len: usize, seed: u64) -> DatasetBuffer {
        let mut x = seed | 1;
        let mut data = Vec::with_capacity(n * len);
        for _ in 0..n {
            let mut acc = 0.0f32;
            let mut s = Vec::with_capacity(len);
            for _ in 0..len {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                acc += ((x % 2000) as f32 / 1000.0) - 1.0;
                s.push(acc);
            }
            crate::series::znormalize(&mut s);
            data.extend_from_slice(&s);
        }
        DatasetBuffer::from_vec(data, len)
    }

    #[test]
    fn knn_matches_brute_force() {
        let data = walk_dataset(900, 64, 17);
        let idx = crate::index::Index::build(
            data,
            IndexConfig::new(64).with_segments(8).with_leaf_capacity(20),
            2,
        );
        let q = walk_dataset(1, 64, 4242).series(0).to_vec();
        for k in [1usize, 5, 10] {
            let want = knn_brute_force(&idx, &q, k);
            for threads in [1usize, 3] {
                let (got, _) = knn_search(&idx, &q, k, &SearchParams::new(threads).with_th(16));
                assert_eq!(got.neighbors.len(), k);
                // Distances must match exactly (ids may tie).
                for (g, w) in got.neighbors.iter().zip(&want.neighbors) {
                    assert!(
                        (g.0 - w.0).abs() < 1e-9,
                        "k={k} threads={threads}: {:?} vs {:?}",
                        got.neighbors,
                        want.neighbors
                    );
                }
            }
        }
    }

    #[test]
    fn k1_equals_exact_search() {
        let data = walk_dataset(600, 64, 55);
        let idx = crate::index::Index::build(
            data,
            IndexConfig::new(64).with_segments(8).with_leaf_capacity(16),
            2,
        );
        let q = walk_dataset(1, 64, 99).series(0).to_vec();
        let (knn, _) = knn_search(&idx, &q, 1, &SearchParams::new(2));
        let one = idx.exact_search(&q, 2);
        assert!((knn.neighbors[0].0 - one.distance_sq).abs() < 1e-9);
    }

    #[test]
    fn knn_with_k_larger_than_collection() {
        let data = walk_dataset(5, 64, 3);
        let idx = crate::index::Index::build(
            data,
            IndexConfig::new(64).with_segments(8).with_leaf_capacity(4),
            1,
        );
        let q = walk_dataset(1, 64, 8).series(0).to_vec();
        let (got, _) = knn_search(&idx, &q, 10, &SearchParams::new(1));
        assert_eq!(got.neighbors.len(), 5, "only 5 series exist");
    }
}
