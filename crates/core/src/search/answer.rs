//! Query answers.

/// The answer to a 1-NN similarity-search query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Answer {
    /// Rooted distance (Euclidean or DTW) to the nearest neighbor.
    pub distance: f64,
    /// Squared distance (the value the search machinery compares).
    pub distance_sq: f64,
    /// Id of the nearest series (`None` only for empty collections).
    pub series_id: Option<u32>,
}

impl Answer {
    /// An answer representing "nothing found yet".
    pub fn none() -> Self {
        Answer {
            distance: f64::INFINITY,
            distance_sq: f64::INFINITY,
            series_id: None,
        }
    }

    /// Builds an answer from a squared distance.
    pub fn from_sq(distance_sq: f64, series_id: Option<u32>) -> Self {
        Answer {
            distance: distance_sq.sqrt(),
            distance_sq,
            series_id,
        }
    }

    /// Keeps the smaller of two answers (merge step of the distributed
    /// coordinator).
    pub fn min(self, other: Answer) -> Answer {
        if other.distance_sq < self.distance_sq {
            other
        } else {
            self
        }
    }
}

/// The answer to a k-NN query: neighbors sorted by ascending distance.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnAnswer {
    /// `(squared distance, series id)` pairs, ascending, at most `k`.
    pub neighbors: Vec<(f64, u32)>,
}

impl KnnAnswer {
    /// Distance (rooted) of the `i`-th neighbor.
    pub fn distance(&self, i: usize) -> f64 {
        self.neighbors[i].0.sqrt()
    }

    /// The k-th (largest kept) squared distance, or infinity if fewer
    /// than `k` neighbors were found.
    pub fn kth_distance_sq(&self, k: usize) -> f64 {
        if self.neighbors.len() < k {
            f64::INFINITY
        } else {
            self.neighbors[k - 1].0
        }
    }

    /// Merges two k-NN answers, keeping the best `k` distinct series.
    pub fn merge(mut self, other: KnnAnswer, k: usize) -> KnnAnswer {
        self.neighbors.extend(other.neighbors);
        self.neighbors
            .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        self.neighbors.dedup_by_key(|p| p.1);
        self.neighbors.truncate(k);
        KnnAnswer {
            neighbors: self.neighbors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answer_min_keeps_smaller() {
        let a = Answer::from_sq(4.0, Some(1));
        let b = Answer::from_sq(1.0, Some(2));
        assert_eq!(a.min(b).series_id, Some(2));
        assert_eq!(b.min(a).series_id, Some(2));
        assert_eq!(a.min(Answer::none()).series_id, Some(1));
    }

    #[test]
    fn answer_from_sq_roots() {
        let a = Answer::from_sq(9.0, Some(7));
        assert_eq!(a.distance, 3.0);
    }

    #[test]
    fn knn_merge_dedups_and_truncates() {
        let a = KnnAnswer {
            neighbors: vec![(1.0, 10), (3.0, 30)],
        };
        let b = KnnAnswer {
            neighbors: vec![(1.0, 10), (2.0, 20), (4.0, 40)],
        };
        let m = a.merge(b, 3);
        assert_eq!(m.neighbors, vec![(1.0, 10), (2.0, 20), (3.0, 30)]);
        assert_eq!(m.kth_distance_sq(3), 3.0);
        assert_eq!(m.kth_distance_sq(4), f64::INFINITY);
    }
}
