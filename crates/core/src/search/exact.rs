//! The Odyssey exact-search engine (Algorithms 1–2, Figure 5).
//!
//! [`run_search`] executes the three phases — tree traversal over
//! RS-batches (with helping), priority-queue preprocessing, and
//! priority-queue processing — generically over a
//! [`QueryKernel`](super::kernel::QueryKernel) and a
//! [`ResultSet`](super::bsf::ResultSet).
//!
//! The engine publishes progress into a [`StealView`], the object a
//! node's work-stealing manager (Algorithm 3) inspects when a steal
//! request arrives: it hands out RS-batch **ids** satisfying the
//! *Take-Away property* (rightmost unstolen queues in the sorted order —
//! the queues least likely to have been processed) and marks them stolen
//! so local workers skip them. The thief re-runs this same engine on its
//! own identical index restricted to those batch ids
//! (`batch_subset`) — no series data ever crosses nodes.

use super::answer::Answer;
use super::batches::RsBatches;
use super::bsf::{ResultSet, SharedBsf};
use super::kernel::{EdKernel, QueryKernel};
use super::pqueue::{BoundedPqSet, LeafPq};
use super::scratch::{WorkerScratch, MAX_SPARE_HEAPS, MAX_SPARE_HEAP_CAP};
use crate::index::Index;
use crate::layout::LeafLayout;
use crate::sync::PhaseBarrier;
use crate::tree::{Node, RootSoa, RootSubtree};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Number of RS-batches handed over per steal request; the paper found 4
/// to be the sweet spot (Section 3.2.2).
pub const DEFAULT_NSEND: usize = 4;

/// Default priority-queue size threshold when no per-query prediction is
/// available (the `odyssey-sched` sigmoid model provides one per query).
pub const DEFAULT_TH: usize = 1024;

/// Default bound on how many threads may *help* on one RS-batch.
pub const DEFAULT_HELP_TH: usize = 2;

/// Tuning parameters of the single-node search.
#[derive(Debug, Clone, Copy)]
pub struct SearchParams {
    /// Worker threads (the paper's `NThreads`).
    pub n_threads: usize,
    /// RS-batch count `Nsb`; `None` = one per worker thread (the paper's
    /// best setting).
    pub nsb: Option<usize>,
    /// Priority-queue size threshold `TH` (`usize::MAX` = unbounded).
    pub th: usize,
    /// Helping bound `HelpTH`.
    pub help_th: usize,
}

impl SearchParams {
    /// Defaults per the paper: `Nsb = n_threads`, `HelpTH = 2`.
    pub fn new(n_threads: usize) -> Self {
        SearchParams {
            n_threads: n_threads.max(1),
            nsb: None,
            th: DEFAULT_TH,
            help_th: DEFAULT_HELP_TH,
        }
    }

    /// Overrides the RS-batch count.
    pub fn with_nsb(mut self, nsb: usize) -> Self {
        self.nsb = Some(nsb.max(1));
        self
    }

    /// Overrides the queue threshold.
    pub fn with_th(mut self, th: usize) -> Self {
        assert!(th > 0);
        self.th = th;
        self
    }

    /// Overrides the helping bound.
    pub fn with_help_th(mut self, help_th: usize) -> Self {
        self.help_th = help_th;
        self
    }
}

/// Work counters and timings of one search execution.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// Rooted initial BSF (from the approximate search); the feature the
    /// scheduler's regression model predicts from (Figure 4).
    pub initial_bsf: f64,
    /// Node-level lower-bound computations during traversal.
    pub lb_node_computations: u64,
    /// Per-series lower-bound computations during queue processing.
    pub lb_series_computations: u64,
    /// Early-abandoning real-distance invocations.
    pub real_distance_computations: u64,
    /// Leaves pushed into priority queues.
    pub leaves_collected: u64,
    /// Number of priority queues produced.
    pub pq_count: usize,
    /// Median priority-queue size (the sigmoid model's target, Fig. 6a).
    pub pq_size_median: usize,
    /// Wall-clock duration of the engine run.
    pub elapsed: std::time::Duration,
    /// Wall-clock duration of the tree-traversal phase (incl. helping).
    pub traversal_time: std::time::Duration,
    /// Wall-clock duration of the queue preprocessing + processing
    /// phases. The paper's break-down shows this dominating query time,
    /// which is why work-stealing targets the queue-processing phase.
    pub processing_time: std::time::Duration,
}

/// Result of [`exact_search`].
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The 1-NN answer.
    pub answer: Answer,
    /// Execution statistics.
    pub stats: SearchStats,
}

const PHASE_TRAVERSAL: u8 = 0;
const PHASE_PROCESSING: u8 = 1;
const PHASE_DONE: u8 = 2;

/// Shared progress of a running search, inspected by the work-stealing
/// manager. One `StealView` serves one query execution.
#[derive(Debug, Default)]
pub struct StealView {
    phase: AtomicU8,
    pq_cnt: AtomicUsize,
    stolen: OnceLock<Vec<AtomicBool>>,
    pq_batches: Mutex<Vec<usize>>,
}

impl StealView {
    /// A fresh view for one query.
    pub fn new() -> Self {
        Self::default()
    }

    fn init(&self, nsb: usize) {
        // Contract: a view may carry *pre-stolen* state into a run (the
        // `stolen` OnceLock survives re-init), but it must never be
        // re-initialized once a run has started claiming queues —
        // rewinding the claim cursor would hand queues out twice.
        debug_assert_eq!(
            self.pq_cnt.load(Ordering::Acquire),
            0,
            "StealView::init while a previous run's queue claims are live \
             (view recycled without reset?)"
        );
        let _ = self
            .stolen
            .set((0..nsb).map(|_| AtomicBool::new(false)).collect());
        self.phase.store(PHASE_TRAVERSAL, Ordering::Release);
    }

    fn publish_queues(&self, batch_ids: Vec<usize>) {
        // Contract: queues are published exactly once, after init, and
        // every published id names an initialized RS-batch slot.
        debug_assert!(
            !self.is_processing() && !self.is_done(),
            "StealView queues published twice (or after finish)"
        );
        if let Some(stolen) = self.stolen.get() {
            debug_assert!(
                batch_ids.iter().all(|&b| b < stolen.len()),
                "published queue names an RS-batch id beyond the initialized count"
            );
        } else {
            debug_assert!(
                batch_ids.is_empty(),
                "StealView queues published before init"
            );
        }
        *self.pq_batches.lock() = batch_ids;
        self.phase.store(PHASE_PROCESSING, Ordering::Release);
    }

    fn finish(&self) {
        self.phase.store(PHASE_DONE, Ordering::Release);
    }

    /// Returns the view to its pre-`init` state so its allocations can
    /// serve another query (the recycling path of the engine's
    /// [`StealRegistry`](super::engine::StealRegistry)).
    pub(crate) fn reset(&mut self) {
        *self.phase.get_mut() = PHASE_TRAVERSAL;
        *self.pq_cnt.get_mut() = 0;
        let _ = self.stolen.take();
        self.pq_batches.get_mut().clear();
    }

    #[inline]
    fn is_stolen(&self, batch_id: usize) -> bool {
        self.stolen
            .get()
            .map(|v| v[batch_id].load(Ordering::Acquire))
            .unwrap_or(false)
    }

    /// Whether the search is in the queue-processing phase (the only
    /// phase the paper steals from).
    pub fn is_processing(&self) -> bool {
        self.phase.load(Ordering::Acquire) == PHASE_PROCESSING
    }

    /// Whether the search has completed.
    pub fn is_done(&self) -> bool {
        self.phase.load(Ordering::Acquire) == PHASE_DONE
    }

    /// Diagnostic snapshot: `(claimed queues, total queues)` of the
    /// processing phase (both zero before preprocessing completes).
    pub fn queue_progress(&self) -> (usize, usize) {
        let len = self.pq_batches.lock().len();
        (self.pq_cnt.load(Ordering::Acquire).min(len), len)
    }

    /// Test/simulation helper: performs the engine's `init` step.
    #[doc(hidden)]
    pub fn test_init(&self, nsb: usize) {
        self.init(nsb);
    }

    /// Test/simulation helper: performs the engine's queue-publish step.
    #[doc(hidden)]
    pub fn test_publish(&self, batch_ids: Vec<usize>) {
        self.publish_queues(batch_ids);
    }

    /// Test/simulation helper: claims one queue, as a processing-phase
    /// worker would.
    #[doc(hidden)]
    pub fn test_claim(&self) {
        self.pq_cnt.fetch_add(1, Ordering::AcqRel);
    }

    /// Test/simulation helper: performs the engine's completion step.
    #[doc(hidden)]
    pub fn test_finish(&self) {
        self.finish();
    }

    /// Attempts to take away up to `nsend` RS-batches (Algorithm 3,
    /// lines 2–4). Selects batches satisfying the **Take-Away property**:
    /// not yet stolen, and whose first queue sits at the rightmost
    /// possible index of the sorted queue array (beyond the claiming
    /// cursor). Marks them stolen and returns their global batch ids.
    pub fn try_steal(&self, nsend: usize) -> Vec<usize> {
        if !self.is_processing() {
            return Vec::new();
        }
        let Some(stolen) = self.stolen.get() else {
            return Vec::new();
        };
        let pqb = self.pq_batches.lock();
        let claimed = self.pq_cnt.load(Ordering::Acquire).min(pqb.len());
        let mut out = Vec::new();
        for i in (claimed..pqb.len()).rev() {
            let b = pqb[i];
            if out.contains(&b) {
                continue;
            }
            if !stolen[b].swap(true, Ordering::AcqRel) {
                out.push(b);
                if out.len() == nsend {
                    break;
                }
            }
        }
        out
    }
}

/// Per-RS-batch traversal state.
struct BatchState<'a> {
    /// Next unclaimed subtree offset inside the batch range (`Fetch&Add`).
    next_subtree: AtomicUsize,
    /// All subtrees of this batch have been claimed and traversed.
    complete: AtomicBool,
    /// Number of helpers that joined this batch (bounded by `HelpTH`).
    helped: AtomicUsize,
    /// The batch's bounded priority queues.
    pqs: Mutex<BoundedPqSet<'a>>,
}

/// Builds the Euclidean kernel for `query` and seeds a [`SharedBsf`]
/// from the approximate search (Algorithm 1, line 5). Shared by
/// [`exact_search`], ε-approximate search, and the batch engine so the
/// per-query setup lives in exactly one place.
pub(crate) fn seed_ed<'q>(index: &Index, query: &'q [f32]) -> (EdKernel<'q>, SharedBsf, f64) {
    let kernel = EdKernel::new(query, index.config().segments);
    let approx = index.approx_search_with_table(query, kernel.qpaa(), kernel.table());
    let bsf = SharedBsf::new(approx.distance_sq, approx.series_id);
    (kernel, bsf, approx.distance)
}

/// Convenience 1-NN Euclidean exact search: seeds the BSF with the
/// approximate search (Algorithm 1, line 5) and runs the engine on all
/// RS-batches.
pub fn exact_search(index: &Index, query: &[f32], params: &SearchParams) -> SearchOutcome {
    let (kernel, bsf, initial) = seed_ed(index, query);
    let view = StealView::new();
    let mut stats = run_search(index, &kernel, params, &bsf, None, &view, &|_, _| {});
    stats.initial_bsf = initial;
    SearchOutcome {
        answer: bsf.answer(),
        stats,
    }
}

/// Runs the three-phase engine.
///
/// * `batch_subset` — `None` processes every RS-batch (the owner's run);
///   `Some(ids)` processes only those global batch ids (a thief's run).
/// * `view` — progress published for the work-stealing manager.
/// * `on_improve(distance_sq, id)` — invoked on every result improvement
///   (the hook the distributed BSF-sharing channel attaches to).
///
/// Returns work statistics; answers accumulate in `results`.
pub fn run_search<K: QueryKernel + ?Sized, R: ResultSet + ?Sized>(
    index: &Index,
    kernel: &K,
    params: &SearchParams,
    results: &R,
    batch_subset: Option<&[usize]>,
    view: &StealView,
    on_improve: &(dyn Fn(f64, u32) + Sync),
) -> SearchStats {
    run_search_with_service(
        index,
        kernel,
        params,
        results,
        batch_subset,
        view,
        on_improve,
        &|| {},
    )
}

/// [`run_search`] with an additional `service` hook, invoked by worker
/// threads once per claimed priority queue during the processing phase.
///
/// The distributed layer uses it to let the *workers themselves* serve
/// pending steal requests: the paper dedicates a manager thread to this
/// (its nodes have 128 cores), but in an oversubscribed simulation a
/// blocked manager thread can be starved by the very workers whose
/// queues should be stolen — cooperative serving removes that artifact
/// without changing the protocol.
#[allow(clippy::too_many_arguments)]
pub fn run_search_with_service<K: QueryKernel + ?Sized, R: ResultSet + ?Sized>(
    index: &Index,
    kernel: &K,
    params: &SearchParams,
    results: &R,
    batch_subset: Option<&[usize]>,
    view: &StealView,
    on_improve: &(dyn Fn(f64, u32) + Sync),
    service: &(dyn Fn() + Sync),
) -> SearchStats {
    let shared = ExecShared::new(
        index,
        kernel,
        params,
        results,
        batch_subset,
        view,
        on_improve,
        service,
    );
    if shared.has_work() {
        let n_threads = shared.n_threads;
        let barrier = PhaseBarrier::new(n_threads);
        std::thread::scope(|scope| {
            for tid in 0..n_threads {
                let shared = &shared;
                let barrier = &barrier;
                scope.spawn(move || {
                    // A participant panic poisons the shared barrier so
                    // its siblings abort the query instead of waiting
                    // forever for this thread's next phase arrival; the
                    // scope re-raises the panic at join.
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        shared.worker(tid, barrier, &mut WorkerScratch::default())
                    }));
                    if let Err(payload) = out {
                        barrier.poison();
                        std::panic::resume_unwind(payload);
                    }
                });
            }
        });
    }
    shared.finish()
}

/// The shared state of one query execution: everything the per-thread
/// engine body needs. Generic over the kernel and result set so the hot
/// loops stay monomorphized (and inlinable) under both drivers — the
/// per-query [`std::thread::scope`] path ([`run_search_with_service`])
/// and the persistent [`BatchEngine`](super::engine::BatchEngine)
/// worker pool, which type-erases only at its job-closure boundary.
pub(crate) struct ExecShared<'e, K: ?Sized, R: ?Sized> {
    kernel: &'e K,
    results: &'e R,
    view: &'e StealView,
    on_improve: &'e (dyn Fn(f64, u32) + Sync),
    service: &'e (dyn Fn() + Sync),
    forest: &'e [RootSubtree],
    root_soa: &'e RootSoa,
    layout: &'e LeafLayout,
    pub(crate) n_threads: usize,
    help_th: usize,
    /// Active (to-process) global batch ids.
    active: Vec<usize>,
    batches: RsBatches,
    bstates: Vec<BatchState<'e>>,
    /// Traversal-phase batch-claiming cursor (`Fetch&Add`).
    bcnt: AtomicUsize,
    /// (global batch id, queue) pairs in ascending-min order, filled by
    /// tid 0 between the barriers.
    sorted: RwLock<Vec<(usize, Mutex<LeafPq<'e>>)>>,
    // Work counters: workers accumulate in per-thread locals and flush
    // once, so the hot loops never touch shared cache lines.
    lb_node: AtomicU64,
    lb_series: AtomicU64,
    real_dist: AtomicU64,
    leaves: AtomicU64,
    pq_count: AtomicUsize,
    pq_median: AtomicUsize,
    /// Traversal-phase end in nanoseconds since `start` (written by tid 0).
    traversal_ns: AtomicU64,
    start: std::time::Instant,
}

impl<'e, K: QueryKernel + ?Sized, R: ResultSet + ?Sized> ExecShared<'e, K, R> {
    /// Builds the per-query shared state (RS-batches, per-batch queue
    /// sets, counters) and initializes the steal view.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        index: &'e Index,
        kernel: &'e K,
        params: &SearchParams,
        results: &'e R,
        batch_subset: Option<&[usize]>,
        view: &'e StealView,
        on_improve: &'e (dyn Fn(f64, u32) + Sync),
        service: &'e (dyn Fn() + Sync),
    ) -> Self {
        let start = std::time::Instant::now();
        let forest = index.forest();
        let sizes: Vec<usize> = forest.iter().map(|t| t.size).collect();
        let n_threads = params.n_threads.max(1);
        let nsb = params.nsb.unwrap_or(n_threads).max(1);
        let batches = RsBatches::build(&sizes, nsb);
        view.init(batches.len());
        let active: Vec<usize> = match batch_subset {
            Some(ids) => ids.iter().copied().filter(|&b| b < batches.len()).collect(),
            None => (0..batches.len()).collect(),
        };
        let bstates: Vec<BatchState> = active
            .iter()
            .map(|_| BatchState {
                next_subtree: AtomicUsize::new(0),
                complete: AtomicBool::new(false),
                helped: AtomicUsize::new(0),
                pqs: Mutex::new(BoundedPqSet::deferred(params.th)),
            })
            .collect();
        ExecShared {
            kernel,
            results,
            view,
            on_improve,
            service,
            forest,
            root_soa: index.root_soa(),
            layout: index.layout(),
            n_threads,
            help_th: params.help_th,
            active,
            batches,
            bstates,
            bcnt: AtomicUsize::new(0),
            sorted: RwLock::new(Vec::new()),
            lb_node: AtomicU64::new(0),
            lb_series: AtomicU64::new(0),
            real_dist: AtomicU64::new(0),
            leaves: AtomicU64::new(0),
            pq_count: AtomicUsize::new(0),
            pq_median: AtomicUsize::new(0),
            traversal_ns: AtomicU64::new(0),
            start,
        }
    }

    /// Whether there is anything to execute (false for an empty forest
    /// or an empty/out-of-range batch subset).
    pub(crate) fn has_work(&self) -> bool {
        !self.active.is_empty()
    }

    /// Traverses one RS-batch: claims subtrees in chunks with
    /// `Fetch&Add`, bounds each claimed chunk's *roots* in one batched
    /// sweep (the SIMD clamp-and-gather kernel under table-backed
    /// kernels — an iSAX forest over high-entropy data is wide and
    /// shallow, so the root level is where almost all node bounds
    /// happen), prunes against the shared threshold, and pushes
    /// surviving leaves into the batch's bounded queues (provisioned
    /// from `heaps` scratch). Roots that survive as inner nodes descend
    /// through the per-node stack exactly as before.
    fn traverse_batch(
        &self,
        bi: usize,
        stack: &mut Vec<&'e Node>,
        heaps: &mut Vec<super::pqueue::SpareHeap>,
        lb_node_local: &mut u64,
        leaves_local: &mut u64,
    ) {
        /// Subtrees claimed per `Fetch&Add` (also the root-sweep width):
        /// big enough to amortize the atomic and fill the 8-way kernel,
        /// small enough that batches still split fairly across helpers.
        const CLAIM_CHUNK: usize = 32;
        let range = self.batches.range(self.active[bi]);
        let mut root_lb = [0.0f64; CLAIM_CHUNK];
        loop {
            let off = self.bstates[bi]
                .next_subtree
                .fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
            if off >= range.len() {
                break;
            }
            let end = (off + CLAIM_CHUNK).min(range.len());
            let chunk = (range.start + off)..(range.start + end);
            let root_lb = &mut root_lb[..chunk.len()];
            self.kernel
                .root_lb_block(self.forest, self.root_soa, chunk.clone(), root_lb);
            *lb_node_local += root_lb.len() as u64;
            // One threshold load per chunk: a stale (larger) value only
            // prunes less, never wrongly.
            let thr = self.results.threshold_sq();
            for (k, ti) in chunk.enumerate() {
                let lb = root_lb[k];
                if lb >= thr {
                    continue; // prune the whole subtree
                }
                match &self.forest[ti].node {
                    Node::Leaf(leaf) => {
                        self.bstates[bi].pqs.lock().push_with(lb, leaf, heaps);
                        *leaves_local += 1;
                    }
                    Node::Inner { children, .. } => {
                        // Iterative descent with an explicit (reused)
                        // stack; inner nodes are rare enough that their
                        // bounds stay per-word.
                        stack.clear();
                        stack.push(&children[0]);
                        stack.push(&children[1]);
                        while let Some(node) = stack.pop() {
                            let lb = self.kernel.node_lb_sq(node.word());
                            *lb_node_local += 1;
                            if lb >= self.results.threshold_sq() {
                                continue;
                            }
                            match node {
                                Node::Inner { children, .. } => {
                                    stack.push(&children[0]);
                                    stack.push(&children[1]);
                                }
                                Node::Leaf(leaf) => {
                                    self.bstates[bi].pqs.lock().push_with(lb, leaf, heaps);
                                    *leaves_local += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// The three-phase per-thread engine body. All `n_threads`
    /// participants must call this exactly once per query with distinct
    /// `tid`s and a `barrier` of exactly `n_threads` parties.
    pub(crate) fn worker(&self, tid: usize, barrier: &PhaseBarrier, scratch: &mut WorkerScratch) {
        let WorkerScratch {
            lb_block,
            survivors,
            stack: spare_stack,
            heaps,
        } = scratch;
        // --- Phase 1: tree traversal over RS-batches -------------------
        let mut lb_node_local = 0u64;
        let mut leaves_local = 0u64;
        let mut stack: Vec<&Node> = spare_stack.take();
        loop {
            let bi = self.bcnt.fetch_add(1, Ordering::Relaxed);
            if bi >= self.active.len() {
                break;
            }
            self.traverse_batch(bi, &mut stack, heaps, &mut lb_node_local, &mut leaves_local);
            self.bstates[bi].complete.store(true, Ordering::Release);
        }
        // Helping pass (Algorithm 2, lines 11–14): join batches that are
        // still incomplete, bounded by HelpTH helpers.
        for (bi, bstate) in self.bstates.iter().enumerate() {
            if !bstate.complete.load(Ordering::Acquire)
                && bstate.helped.fetch_add(1, Ordering::Relaxed) < self.help_th
            {
                self.traverse_batch(
                    bi,
                    &mut stack,
                    heaps,
                    &mut lb_node_local,
                    &mut leaves_local,
                );
                bstate.complete.store(true, Ordering::Release);
            }
        }
        spare_stack.put(stack);
        self.lb_node.fetch_add(lb_node_local, Ordering::Relaxed);
        self.leaves.fetch_add(leaves_local, Ordering::Relaxed);
        barrier.wait();

        // --- Phase 2: queue preprocessing (tid 0 only) -----------------
        if tid == 0 {
            self.traversal_ns
                .store(self.start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            let mut all: Vec<(usize, LeafPq)> = Vec::new();
            for (bi, st) in self.bstates.iter().enumerate() {
                let set =
                    std::mem::replace(&mut *st.pqs.lock(), BoundedPqSet::deferred(usize::MAX));
                for q in set.into_queues() {
                    all.push((self.active[bi], q));
                }
            }
            all.sort_by(|a, b| {
                a.1.min_lb_sq()
                    .unwrap_or(f64::INFINITY)
                    .total_cmp(&b.1.min_lb_sq().unwrap_or(f64::INFINITY))
            });
            self.pq_count.store(all.len(), Ordering::Relaxed);
            let mut lens: Vec<usize> = all.iter().map(|(_, q)| q.len()).collect();
            lens.sort_unstable();
            self.pq_median.store(
                lens.get(lens.len() / 2).copied().unwrap_or(0),
                Ordering::Relaxed,
            );
            let ids: Vec<usize> = all.iter().map(|&(b, _)| b).collect();
            *self.sorted.write() = all.into_iter().map(|(b, q)| (b, Mutex::new(q))).collect();
            self.view.publish_queues(ids);
        }
        barrier.wait();

        // --- Phase 3: queue processing ---------------------------------
        // Each popped leaf is drained in two passes over its contiguous
        // scan slots: a tight lower-bound sweep over the dense SAX block
        // into a reusable scratch buffer, then real distances for the
        // survivors only. The shared threshold is loaded once per leaf
        // (a stale — i.e. larger — value only prunes less, never
        // wrongly), and work counters stay in per-thread locals.
        let mut lb_series_local = 0u64;
        let mut real_dist_local = 0u64;
        let sorted_guard = self.sorted.read();
        // Contract: queue claims happen only inside the processing
        // phase (the claim counter doubles as the steal cursor, and
        // `try_steal` assumes it is monotone within this phase).
        debug_assert!(
            sorted_guard.is_empty() || self.view.is_processing(),
            "queue claim outside the processing phase"
        );
        loop {
            (self.service)();
            let i = self.view.pq_cnt.fetch_add(1, Ordering::AcqRel);
            if i >= sorted_guard.len() {
                break;
            }
            let (bid, q) = &sorted_guard[i];
            if self.view.is_stolen(*bid) {
                continue; // a helper node took this batch
            }
            let mut q = q.lock();
            while let Some(cand) = q.pop() {
                let thr = self.results.threshold_sq();
                if cand.lb_sq >= thr {
                    break; // min-heap: the rest is prunable too
                }
                let range = cand.leaf.slice.range();
                let n_cand = range.len();
                if n_cand == 0 {
                    continue;
                }
                // Pass 1: batched lower bounds over the leaf's
                // contiguous (segment-major) SAX block. The scratch
                // buffer only grows — the sweep overwrites exactly the
                // prefix it uses, so no per-leaf re-zeroing.
                if lb_block.len() < n_cand {
                    lb_block.resize(n_cand, 0.0);
                }
                let lb = &mut lb_block[..n_cand];
                self.kernel.lb_block_at(self.layout, range.clone(), lb);
                lb_series_local += n_cand as u64;
                // Pass 2: real distances for survivors, reading
                // sequentially from the leaf's raw-series run. The
                // survivor positions are gathered first (reusing one
                // index buffer across leaves) so the distance loop runs
                // branch-free over exactly the work it will do.
                survivors.clear();
                survivors.extend(
                    lb.iter()
                        .zip(range)
                        .filter(|(lb, _)| **lb < thr)
                        .map(|(_, p)| p),
                );
                real_dist_local += survivors.len() as u64;
                for &p in survivors.iter() {
                    if let Some(d) = self.kernel.distance_sq(self.layout.series(p), thr) {
                        let id = self.layout.original_id(p);
                        if self.results.offer(d, id) {
                            (self.on_improve)(d, id);
                        }
                    }
                }
            }
            // This queue is spent (drained, or its minimum can no longer
            // win): recycle its heap allocation into the worker scratch.
            if heaps.len() < MAX_SPARE_HEAPS && q.capacity() <= MAX_SPARE_HEAP_CAP {
                heaps.push(std::mem::take(&mut *q).into_spare());
            }
        }
        self.lb_series.fetch_add(lb_series_local, Ordering::Relaxed);
        self.real_dist.fetch_add(real_dist_local, Ordering::Relaxed);
    }

    /// Marks the search finished on the steal view and converts the
    /// accumulated counters into a [`SearchStats`].
    pub(crate) fn finish(self) -> SearchStats {
        self.view.finish();
        let elapsed = self.start.elapsed();
        let traversal_time = std::time::Duration::from_nanos(self.traversal_ns.into_inner());
        SearchStats {
            initial_bsf: 0.0,
            lb_node_computations: self.lb_node.into_inner(),
            lb_series_computations: self.lb_series.into_inner(),
            real_distance_computations: self.real_dist.into_inner(),
            leaves_collected: self.leaves.into_inner(),
            pq_count: self.pq_count.into_inner(),
            pq_size_median: self.pq_median.into_inner(),
            elapsed,
            traversal_time,
            processing_time: elapsed.saturating_sub(traversal_time),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{Index, IndexConfig};
    use crate::series::DatasetBuffer;

    fn walk_dataset(n: usize, len: usize, seed: u64) -> DatasetBuffer {
        let mut x = seed | 1;
        let mut data = Vec::with_capacity(n * len);
        for _ in 0..n {
            let mut acc = 0.0f32;
            let mut s = Vec::with_capacity(len);
            for _ in 0..len {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                acc += ((x % 2000) as f32 / 1000.0) - 1.0;
                s.push(acc);
            }
            crate::series::znormalize(&mut s);
            data.extend_from_slice(&s);
        }
        DatasetBuffer::from_vec(data, len)
    }

    fn query(seed: u64, len: usize) -> Vec<f32> {
        let d = walk_dataset(1, len, seed);
        d.series(0).to_vec()
    }

    fn build(n: usize, cap: usize) -> Index {
        let data = walk_dataset(n, 64, 33);
        Index::build(
            data,
            IndexConfig::new(64).with_segments(8).with_leaf_capacity(cap),
            2,
        )
    }

    #[test]
    fn exact_matches_brute_force_across_configs() {
        let idx = build(1200, 24);
        for qseed in [100u64, 200, 300] {
            let q = query(qseed, 64);
            let want = idx.brute_force(&q);
            for threads in [1usize, 2, 4] {
                for th in [4usize, 64, usize::MAX] {
                    for nsb in [1usize, 3, 8] {
                        let params = SearchParams::new(threads).with_th(th).with_nsb(nsb);
                        let got = exact_search(&idx, &q, &params);
                        assert!(
                            (got.answer.distance - want.distance).abs() < 1e-9,
                            "qseed={qseed} threads={threads} th={th} nsb={nsb}: \
                             {} vs {}",
                            got.answer.distance,
                            want.distance
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exact_finds_planted_identical_series() {
        let idx = build(800, 16);
        let q = idx.series_by_id(391).to_vec();
        let out = exact_search(&idx, &q, &SearchParams::new(2));
        assert_eq!(out.answer.distance, 0.0);
        assert_eq!(out.answer.series_id, Some(391));
    }

    #[test]
    fn stats_are_populated() {
        let idx = build(600, 16);
        let q = query(9, 64);
        let out = exact_search(&idx, &q, &SearchParams::new(2).with_th(8));
        assert!(out.stats.initial_bsf.is_finite());
        assert!(out.stats.lb_node_computations > 0);
        assert!(out.stats.pq_count >= 1);
        assert!(out.stats.elapsed.as_nanos() > 0);
    }

    #[test]
    fn subset_runs_compose_to_full_answer() {
        // Running the engine on complementary batch subsets with a shared
        // result set must equal the full answer — the core property behind
        // work-stealing correctness.
        let idx = build(1500, 16);
        let q = query(77, 64);
        let want = idx.brute_force(&q);
        let kernel = EdKernel::new(&q, idx.config().segments);
        let params = SearchParams::new(2).with_nsb(6);
        let bsf = SharedBsf::new(f64::INFINITY, None);
        let first: Vec<usize> = vec![0, 2, 4];
        let second: Vec<usize> = vec![1, 3, 5];
        run_search(
            &idx,
            &kernel,
            &params,
            &bsf,
            Some(&first),
            &StealView::new(),
            &|_, _| {},
        );
        run_search(
            &idx,
            &kernel,
            &params,
            &bsf,
            Some(&second),
            &StealView::new(),
            &|_, _| {},
        );
        assert!((bsf.answer().distance - want.distance).abs() < 1e-9);
    }

    #[test]
    fn stolen_batches_completed_by_thief_yield_exact_answer() {
        // Owner runs with batches 4 and 5 pre-stolen; a "thief" (here the
        // same index, as in a replication group) completes them.
        let idx = build(1500, 16);
        let q = query(5151, 64);
        let want = idx.brute_force(&q);
        let kernel = EdKernel::new(&q, idx.config().segments);
        let params = SearchParams::new(2).with_nsb(6);
        let approx = idx.approx_search(&q);
        let bsf = SharedBsf::new(approx.distance_sq, approx.series_id);
        let view = StealView::new();
        view.init(6);
        // Pre-mark two batches as stolen before the owner starts.
        let stolen = view.stolen.get().expect("initialized");
        stolen[4].store(true, Ordering::Release);
        stolen[5].store(true, Ordering::Release);
        run_search(&idx, &kernel, &params, &bsf, None, &view, &|_, _| {});
        // Thief completes the stolen batches against the shared BSF.
        run_search(
            &idx,
            &kernel,
            &params,
            &bsf,
            Some(&[4, 5]),
            &StealView::new(),
            &|_, _| {},
        );
        assert!((bsf.answer().distance - want.distance).abs() < 1e-9);
    }

    #[test]
    fn try_steal_respects_nsend_and_marks_batches() {
        let view = StealView::new();
        view.init(8);
        view.publish_queues(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let s1 = view.try_steal(3);
        assert_eq!(s1, vec![7, 6, 5], "rightmost batches first");
        let s2 = view.try_steal(10);
        assert_eq!(s2, vec![4, 3, 2, 1, 0]);
        assert!(view.try_steal(1).is_empty(), "everything already stolen");
    }

    #[test]
    fn try_steal_skips_claimed_queues() {
        let view = StealView::new();
        view.init(4);
        view.publish_queues(vec![0, 1, 2, 3]);
        view.pq_cnt.store(3, Ordering::Release); // queues 0..3 claimed
        assert_eq!(view.try_steal(4), vec![3]);
    }

    #[test]
    fn try_steal_outside_processing_phase_returns_nothing() {
        let view = StealView::new();
        assert!(view.try_steal(4).is_empty());
        view.init(4);
        assert!(view.try_steal(4).is_empty(), "traversal phase");
        view.publish_queues(vec![0, 1, 2, 3]);
        view.finish();
        assert!(view.try_steal(4).is_empty(), "done phase");
    }

    #[test]
    fn on_improve_fires_and_is_monotone() {
        use std::sync::Mutex as StdMutex;
        let idx = build(900, 16);
        let q = query(31, 64);
        let kernel = EdKernel::new(&q, idx.config().segments);
        let bsf = SharedBsf::new(f64::INFINITY, None);
        let seen: StdMutex<Vec<f64>> = StdMutex::new(Vec::new());
        run_search(
            &idx,
            &kernel,
            &SearchParams::new(1),
            &bsf,
            None,
            &StealView::new(),
            &|d, _| seen.lock().unwrap().push(d),
        );
        let seen = seen.into_inner().unwrap();
        assert!(!seen.is_empty());
        // single-threaded: improvements strictly decrease
        for w in seen.windows(2) {
            assert!(w[1] < w[0]);
        }
        assert_eq!(seen.last().copied().unwrap(), bsf.get_sq());
    }
}
