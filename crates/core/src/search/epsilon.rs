//! ε-approximate exact search.
//!
//! The paper's conclusion lists approximate similarity search as future
//! work; the standard formulation in the data-series literature
//! (Echihabi et al., "Return of the Lernaean Hydra") is
//! **ng-approximate with an ε guarantee**: return an answer whose
//! distance is at most `(1 + ε)` times the true nearest-neighbor
//! distance. The index needs no change — pruning just compares lower
//! bounds against `BSF / (1 + ε)²` (squared space), discarding
//! candidates that could improve the answer by less than the guarantee.
//! `ε = 0` degenerates to exact search.
//!
//! [`EpsilonRelaxed`] wraps any [`ResultSet`], shrinking the *threshold*
//! it reports while keeping offers unmodified, so the engine, stealing
//! and BSF-sharing machinery all work unchanged.

use super::answer::Answer;
use super::bsf::ResultSet;
use super::exact::{run_search, seed_ed, SearchParams, SearchStats, StealView};
use crate::index::Index;

/// A pruning-relaxed view of a result set: reports `threshold / (1+ε)²`,
/// so anything pruned could improve the answer by at most a factor
/// `(1+ε)`.
pub struct EpsilonRelaxed<'r, R: ResultSet> {
    inner: &'r R,
    /// Precomputed `1 / (1 + ε)²`.
    inv_sq: f64,
}

impl<R: ResultSet> std::fmt::Debug for EpsilonRelaxed<'_, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpsilonRelaxed")
            .field("inv_sq", &self.inv_sq)
            .finish_non_exhaustive()
    }
}

impl<'r, R: ResultSet> EpsilonRelaxed<'r, R> {
    /// Wraps `inner` with relaxation factor `epsilon >= 0`.
    pub fn new(inner: &'r R, epsilon: f64) -> Self {
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        let one_plus = 1.0 + epsilon;
        EpsilonRelaxed {
            inner,
            inv_sq: 1.0 / (one_plus * one_plus),
        }
    }
}

impl<R: ResultSet> ResultSet for EpsilonRelaxed<'_, R> {
    #[inline]
    fn threshold_sq(&self) -> f64 {
        self.inner.threshold_sq() * self.inv_sq
    }

    #[inline]
    fn offer(&self, distance_sq: f64, id: u32) -> bool {
        self.inner.offer(distance_sq, id)
    }
}

/// ε-approximate 1-NN search: the returned distance is guaranteed to be
/// within `(1 + ε)` of the exact nearest-neighbor distance, typically at
/// a fraction of the cost (pruning fires much earlier).
pub fn epsilon_search(
    index: &Index,
    query: &[f32],
    epsilon: f64,
    params: &SearchParams,
) -> (Answer, SearchStats) {
    let (kernel, bsf, initial) = seed_ed(index, query);
    let relaxed = EpsilonRelaxed::new(&bsf, epsilon);
    let mut stats = run_search(
        index,
        &kernel,
        params,
        &relaxed,
        None,
        &StealView::new(),
        &|_, _| {},
    );
    stats.initial_bsf = initial;
    (bsf.answer(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use crate::search::bsf::SharedBsf;
    use crate::series::DatasetBuffer;

    fn walk_dataset(n: usize, len: usize, seed: u64) -> DatasetBuffer {
        let mut x = seed | 1;
        let mut data = Vec::with_capacity(n * len);
        for _ in 0..n {
            let mut acc = 0.0f32;
            let mut s = Vec::with_capacity(len);
            for _ in 0..len {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                acc += ((x % 2000) as f32 / 1000.0) - 1.0;
                s.push(acc);
            }
            crate::series::znormalize(&mut s);
            data.extend_from_slice(&s);
        }
        DatasetBuffer::from_vec(data, len)
    }

    fn build(n: usize) -> Index {
        Index::build(
            walk_dataset(n, 64, 3),
            IndexConfig::new(64).with_segments(8).with_leaf_capacity(16),
            2,
        )
    }

    #[test]
    fn epsilon_zero_is_exact() {
        let idx = build(800);
        let q = walk_dataset(1, 64, 91).series(0).to_vec();
        let exact = idx.brute_force(&q);
        let (got, _) = epsilon_search(&idx, &q, 0.0, &SearchParams::new(2));
        assert!((got.distance - exact.distance).abs() < 1e-9);
    }

    #[test]
    fn guarantee_holds_for_various_epsilons() {
        let idx = build(1000);
        for qseed in [5u64, 17, 33] {
            let q = walk_dataset(1, 64, qseed).series(0).to_vec();
            let exact = idx.brute_force(&q);
            for eps in [0.05, 0.2, 1.0, 5.0] {
                let (got, _) = epsilon_search(&idx, &q, eps, &SearchParams::new(2));
                assert!(
                    got.distance <= (1.0 + eps) * exact.distance + 1e-9,
                    "eps={eps} qseed={qseed}: {} > {}",
                    got.distance,
                    (1.0 + eps) * exact.distance
                );
                assert!(got.distance >= exact.distance - 1e-9, "never below exact");
            }
        }
    }

    #[test]
    fn larger_epsilon_does_less_work() {
        let idx = build(2000);
        // A hard (white-noise-like) query so there is work to skip.
        let q: Vec<f32> = {
            let mut x = 12345u64;
            let mut v: Vec<f32> = (0..64)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    ((x % 2000) as f32 / 1000.0) - 1.0
                })
                .collect();
            crate::series::znormalize(&mut v);
            v
        };
        let (_, s0) = epsilon_search(&idx, &q, 0.0, &SearchParams::new(1));
        let (_, s2) = epsilon_search(&idx, &q, 2.0, &SearchParams::new(1));
        assert!(
            s2.real_distance_computations <= s0.real_distance_computations,
            "eps=2: {} vs eps=0: {}",
            s2.real_distance_computations,
            s0.real_distance_computations
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_epsilon_rejected() {
        let bsf = SharedBsf::new(1.0, None);
        let _ = EpsilonRelaxed::new(&bsf, -0.5);
    }
}
