//! RS-batches: grouping root subtrees into work units (Figure 5).
//!
//! The query-answering algorithm "splits the tree into root subtree (RS)
//! batches, i.e., sets of consecutive root subtrees". Batches are the
//! claiming granularity of the traversal phase *and* the unit of
//! inter-node work-stealing, so their formation must be deterministic:
//! two replication-group nodes with the same data derive the same batches
//! and can therefore exchange batch *ids* instead of data.
//!
//! Batches are balanced by contained series count (not subtree count),
//! because root-subtree sizes are heavily skewed on real data.

/// The RS-batch partition of a forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsBatches {
    /// `ranges[b]` is the half-open root-subtree index range of batch `b`.
    pub ranges: Vec<std::ops::Range<usize>>,
}

impl RsBatches {
    /// Splits `subtree_sizes.len()` consecutive subtrees into at most
    /// `nsb` batches with roughly equal total series counts.
    ///
    /// Every batch is non-empty; when there are fewer subtrees than
    /// requested batches, one batch per subtree is produced. The paper's
    /// experiments set `nsb` = number of worker threads.
    pub fn build(subtree_sizes: &[usize], nsb: usize) -> Self {
        let n = subtree_sizes.len();
        if n == 0 {
            return RsBatches { ranges: Vec::new() };
        }
        let nsb = nsb.max(1).min(n);
        let total: usize = subtree_sizes.iter().sum();
        let mut ranges = Vec::with_capacity(nsb);
        let mut start = 0usize;
        let mut consumed = 0usize;
        for b in 0..nsb {
            let remaining_batches = nsb - b;
            let remaining_subtrees = n - start;
            // Leave at least one subtree per remaining batch.
            let max_end = n - (remaining_batches - 1);
            let target = (total - consumed) / remaining_batches;
            let mut end = start + 1;
            let mut batch_sum = subtree_sizes[start];
            while end < max_end && batch_sum + subtree_sizes[end] / 2 < target {
                batch_sum += subtree_sizes[end];
                end += 1;
            }
            // Also never take more than our fair share of subtrees when
            // sizes are all zero (degenerate case).
            let _ = remaining_subtrees;
            consumed += batch_sum;
            ranges.push(start..end);
            start = end;
        }
        // Any leftover subtrees (rounding) join the final batch.
        if start < n {
            let last = ranges.last_mut().expect("nsb >= 1");
            last.end = n;
        }
        RsBatches { ranges }
    }

    /// Number of batches.
    #[inline]
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether there are no batches (empty forest).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The subtree range of batch `b`.
    #[inline]
    pub fn range(&self, b: usize) -> std::ops::Range<usize> {
        self.ranges[b].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flatten(b: &RsBatches) -> Vec<usize> {
        b.ranges.iter().flat_map(|r| r.clone()).collect()
    }

    #[test]
    fn batches_cover_all_subtrees_exactly_once() {
        for n in [1usize, 2, 5, 17, 100] {
            for nsb in [1usize, 2, 4, 8, 200] {
                let sizes: Vec<usize> = (0..n).map(|i| (i * 31) % 57 + 1).collect();
                let b = RsBatches::build(&sizes, nsb);
                assert_eq!(flatten(&b), (0..n).collect::<Vec<_>>(), "n={n} nsb={nsb}");
                assert!(b.len() <= nsb.max(1));
                assert!(b.ranges.iter().all(|r| !r.is_empty()));
            }
        }
    }

    #[test]
    fn empty_forest_yields_no_batches() {
        let b = RsBatches::build(&[], 4);
        assert!(b.is_empty());
    }

    #[test]
    fn batches_roughly_balance_series() {
        // 64 subtrees of uniform size split into 8 batches: perfect split.
        let sizes = vec![10usize; 64];
        let b = RsBatches::build(&sizes, 8);
        assert_eq!(b.len(), 8);
        for r in &b.ranges {
            assert_eq!(r.len(), 8);
        }
    }

    #[test]
    fn skewed_sizes_split_sanely() {
        // One huge subtree followed by many tiny ones.
        let mut sizes = vec![1000usize];
        sizes.extend(std::iter::repeat_n(10, 30));
        let b = RsBatches::build(&sizes, 4);
        assert_eq!(flatten(&b), (0..31).collect::<Vec<_>>());
        // The huge subtree gets (roughly) its own batch.
        assert!(b.ranges[0].len() <= 2);
    }

    #[test]
    fn deterministic() {
        let sizes: Vec<usize> = (0..40).map(|i| (i * 7) % 23 + 1).collect();
        assert_eq!(RsBatches::build(&sizes, 6), RsBatches::build(&sizes, 6));
    }

    #[test]
    fn more_batches_than_subtrees_clamps() {
        let b = RsBatches::build(&[5, 5], 10);
        assert_eq!(b.len(), 2);
    }
}
