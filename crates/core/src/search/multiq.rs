//! Inter-query concurrency: partitioned worker groups ("lanes").
//!
//! The [`BatchEngine`](super::engine::BatchEngine) pool of PR 3 exploits
//! only *intra*-query parallelism: every query runs across all pool
//! threads, one query at a time. Odyssey's second axis is *inter*-query
//! parallelism — the cluster answers many queries at once across nodes,
//! and a node whose per-query speedup has saturated (easy queries, where
//! setup and synchronization dominate) should do the same across worker
//! subsets.
//!
//! This module supplies the execution mechanism:
//!
//! * a [`ConcurrentPlan`] — *rounds* of *lanes*, where each lane is a
//!   disjoint worker group (its widths exactly partition the pool) that
//!   answers its assigned queries one at a time;
//! * a lane runtime giving every group its own [`PhaseBarrier`], its
//!   own job slot, and group-scoped ranks, so each in-flight query sees
//!   only its group's workers (and their [`WorkerScratch`] arenas);
//! * a [`LaneCtx`] handed to the per-lane driver on the group's rank-0
//!   worker, exposing [`LaneCtx::run_query`] — the exact same
//!   three-phase [`ExecShared`] body as the sequential paths, run at the
//!   lane's width. Answers are therefore bit-identical to
//!   `run_batch`: exactness never depended on the thread count;
//! * **intra-round re-admission**: lane queues are shared, so a lane
//!   that drains early claims queries from the round's still-loaded
//!   lanes instead of idling at the round barrier
//!   ([`RoundSpec::readmission`]).
//!
//! Every lane query is registered with the engine's
//! [`StealRegistry`](super::engine::StealRegistry), so inter-node
//! work-stealing keeps operating while lanes are in flight: the lane
//! driver [`LaneCtx::admit`]s each query and workers serve pending
//! steal requests cooperatively mid-round.
//!
//! *Which* queries deserve which width is a policy question; the
//! `odyssey-sched` admission module builds plans from per-query cost
//! predictions (easy → narrow lane, hard → the full pool).

use super::bsf::ResultSet;
use super::engine::{
    erase_job, BatchAnswer, BatchItem, BatchQuery, InflightQuery, Job, JobRef, QueryKind,
    StealRegistry,
};
use super::exact::{seed_ed, ExecShared, SearchParams, SearchStats};
use super::kernel::QueryKernel;
use super::knn::seed_knn;
use super::scratch::WorkerScratch;
use crate::index::Index;
use crate::search::dtw_search::seed_dtw;
use crate::sync::PhaseBarrier;
#[cfg(debug_assertions)]
use super::engine::poisoned_job;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One worker group of a [`RoundSpec`]: `width` pool threads answering
/// `queries` (engine-batch indices) one at a time, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneSpec {
    /// Number of pool threads in this group (≥ 1).
    pub width: usize,
    /// Query indices this lane answers, in dispatch order.
    pub queries: Vec<usize>,
}

/// One execution round: lanes that run **concurrently** on disjoint
/// worker groups. Lane widths must exactly partition the engine pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundSpec {
    /// The round's lanes, assigned to pool threads in order: lane 0
    /// gets tids `0..w0`, lane 1 gets `w0..w0+w1`, and so on.
    pub lanes: Vec<LaneSpec>,
    /// Intra-round re-admission: a lane that drains its own queue early
    /// claims queued queries from the round's still-loaded lanes (most
    /// remaining first, taken from the victim's tail) instead of idling
    /// at the round barrier. Changes *where* a query runs, never its
    /// answer.
    pub readmission: bool,
}

impl RoundSpec {
    /// A round over the given lanes with re-admission enabled.
    pub fn new(lanes: Vec<LaneSpec>) -> Self {
        RoundSpec {
            lanes,
            readmission: true,
        }
    }

    /// Panics unless the lane widths exactly partition a `pool`-thread
    /// engine.
    pub fn validate_pool(&self, pool: usize) {
        let mut total = 0usize;
        for lane in &self.lanes {
            assert!(lane.width >= 1, "lane width must be at least 1");
            total += lane.width;
        }
        assert_eq!(
            total, pool,
            "lane widths must exactly partition the {pool}-thread pool"
        );
    }

    /// Debug-build re-validation at round start: the round's lanes must
    /// name pairwise-disjoint query sets — a duplicate would race two
    /// lanes on one result slot. [`ConcurrentPlan::validate`] checks
    /// this plan-wide, but the raw
    /// [`run_concurrent`](super::engine::BatchEngine::run_concurrent)
    /// surface accepts hand-built rounds, so the contract is re-checked
    /// where the unsafe lane machinery actually starts.
    #[cfg(debug_assertions)]
    pub(crate) fn debug_assert_disjoint_queries(&self) {
        let mut seen = std::collections::HashSet::new();
        for lane in &self.lanes {
            for &qi in &lane.queries {
                assert!(
                    seen.insert(qi),
                    "round names query {qi} in two lanes (double partition violated)"
                );
            }
        }
    }
}

/// A full concurrent-execution plan: rounds run one after another, the
/// lanes inside each round run simultaneously.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConcurrentPlan {
    /// The rounds, executed in order.
    pub rounds: Vec<RoundSpec>,
}

impl ConcurrentPlan {
    /// The degenerate plan semantically equal to
    /// [`run_batch`](super::engine::BatchEngine::run_batch): one round,
    /// one full-pool lane executing `order`.
    pub fn sequential(order: &[usize], pool: usize) -> Self {
        if order.is_empty() {
            return ConcurrentPlan::default();
        }
        ConcurrentPlan {
            rounds: vec![RoundSpec::new(vec![LaneSpec {
                width: pool.max(1),
                queries: order.to_vec(),
            }])],
        }
    }

    /// A single round of uniform lanes of the given `width` (the last
    /// lane absorbs the `pool % width` remainder), with queries
    /// `0..n_queries` dealt round-robin across lanes.
    pub fn uniform(n_queries: usize, pool: usize, width: usize) -> Self {
        if n_queries == 0 {
            return ConcurrentPlan::default();
        }
        let pool = pool.max(1);
        let width = width.clamp(1, pool);
        let n_lanes = pool / width;
        let mut lanes: Vec<LaneSpec> = (0..n_lanes)
            .map(|l| LaneSpec {
                width: if l == n_lanes - 1 {
                    width + pool % width
                } else {
                    width
                },
                queries: Vec::new(),
            })
            .collect();
        for qi in 0..n_queries {
            lanes[qi % n_lanes].queries.push(qi);
        }
        lanes.retain(|l| !l.queries.is_empty());
        // Dropping empty lanes must not break the pool partition: fold
        // their workers into the last surviving lane.
        let assigned: usize = lanes.iter().map(|l| l.width).sum();
        if let Some(last) = lanes.last_mut() {
            last.width += pool - assigned;
        }
        ConcurrentPlan {
            rounds: vec![RoundSpec::new(lanes)],
        }
    }

    /// Total queries named by the plan.
    pub fn n_queries(&self) -> usize {
        self.rounds
            .iter()
            .flat_map(|r| &r.lanes)
            .map(|l| l.queries.len())
            .sum()
    }

    /// Panics unless every round's lane widths partition a `pool`-thread
    /// engine and the lanes together name every query in
    /// `0..n_queries` **exactly once**.
    pub fn validate(&self, pool: usize, n_queries: usize) {
        let mut seen = vec![false; n_queries];
        for round in &self.rounds {
            round.validate_pool(pool);
            for lane in &round.lanes {
                for &qi in &lane.queries {
                    assert!(
                        qi < n_queries,
                        "plan names query {qi} out of range ({n_queries} queries)"
                    );
                    assert!(!seen[qi], "plan names query {qi} twice");
                    seen[qi] = true;
                }
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            panic!("plan never names query {missing}");
        }
    }
}

// ---------------------------------------------------------------------
// Lane runtime
// ---------------------------------------------------------------------

/// Runtime state of one worker group while a round executes.
#[derive(Debug)]
pub(crate) struct LaneState {
    width: usize,
    /// The group's phase barrier (`width` parties) — serves both the
    /// lane job hand-off and the [`ExecShared`] phase barriers.
    barrier: PhaseBarrier,
    /// The published per-query job (lifetime-erased; see
    /// [`erase_job`]'s safety contract, upheld by [`LaneState::run`]).
    slot: Mutex<Option<Job>>,
    /// Followers currently *inside* the published job. Rank 0 must not
    /// let an unwind escape the job body's frame while this is nonzero:
    /// the erased job borrows that frame (and those above it), so a
    /// follower still executing it would dereference a dead stack.
    active: AtomicUsize,
}

impl LaneState {
    /// Runs `body(rank, scratch)` once on every member of the group
    /// (the caller executes rank 0 inline) and returns when all are
    /// done. Followers must be parked in [`LaneState::follow`].
    ///
    /// # Panics
    /// Re-raises a panic from `body` or from a follower-poisoned
    /// barrier — but only after poisoning the lane and draining every
    /// follower out of the erased job, so the unwind never frees a
    /// frame the job still borrows (the lane-level analogue of the
    /// worker pool's drain-before-resume discipline).
    fn run(&self, body: JobRef<'_>, scratch: &mut WorkerScratch) {
        if self.width == 1 {
            body(0, scratch);
            return;
        }
        *self.slot.lock() = Some(erase_job(body));
        self.barrier.wait(); // publish: followers pick the job up
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            body(0, scratch);
            self.barrier.wait(); // completion: no follower still runs it
        }));
        if let Err(payload) = outcome {
            // Either the body panicked (a worker died mid-query) or a
            // follower's panic poisoned the completion wait. Stop new
            // pickups, then wait for followers still inside the job —
            // poison wakes any of them blocked at a phase barrier.
            self.barrier.poison();
            while self.active.load(Ordering::SeqCst) > 0 {
                std::hint::spin_loop();
            }
            #[cfg(debug_assertions)]
            {
                *self.slot.lock() = Some(poisoned_job());
            }
            #[cfg(not(debug_assertions))]
            {
                *self.slot.lock() = None;
            }
            std::panic::resume_unwind(payload);
        }
        // The borrow erased by `erase_job` ends here; the slot must not
        // be executable past this point. Debug builds plant a canary
        // job that panics loudly if a stale pickup ever happens.
        #[cfg(debug_assertions)]
        {
            *self.slot.lock() = Some(poisoned_job());
        }
        #[cfg(not(debug_assertions))]
        {
            *self.slot.lock() = None;
        }
    }

    /// Releases the group's followers after the lane's last query.
    fn finish(&self) {
        if self.width == 1 {
            return;
        }
        *self.slot.lock() = None;
        self.barrier.wait(); // publish the "done" sentinel
    }

    /// Follower loop for ranks `1..width`: execute published jobs until
    /// the sentinel arrives.
    fn follow(&self, rank: usize, scratch: &mut WorkerScratch) {
        loop {
            self.barrier.wait();
            let job = *self.slot.lock();
            let Some(job) = job else { return };
            // Enter the job visibly *before* re-checking for poison:
            // rank 0 poisons first and drains `active` second, so every
            // interleaving either sees the poison here (and never calls
            // the job) or is seen by the drain (and holds rank 0's
            // frames alive until the job call returns).
            self.active.fetch_add(1, Ordering::SeqCst);
            if self.barrier.is_poisoned() {
                self.active.fetch_sub(1, Ordering::SeqCst);
                panic!("lane round aborted before this follower started its job");
            }
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                (job.0)(rank, scratch)
            }));
            self.active.fetch_sub(1, Ordering::SeqCst);
            if let Err(payload) = outcome {
                std::panic::resume_unwind(payload);
            }
            self.barrier.wait();
        }
    }
}

/// Maps pool tids onto lanes and drives one round.
#[derive(Debug)]
pub(crate) struct LaneRuntime {
    lanes: Vec<LaneState>,
    /// `tid -> (lane, rank within lane)`.
    membership: Vec<(usize, usize)>,
    /// Per-lane pending queries. Shared (not per-rank-0-local) so a
    /// drained lane can re-admit work from its siblings.
    queues: Vec<Mutex<VecDeque<usize>>>,
    readmission: bool,
}

impl LaneRuntime {
    pub(crate) fn new(round: &RoundSpec) -> Self {
        // Re-validate the double partition where the lane machinery
        // actually starts, not just at plan-build time.
        #[cfg(debug_assertions)]
        round.debug_assert_disjoint_queries();
        let mut membership = Vec::new();
        let mut queues = Vec::with_capacity(round.lanes.len());
        let lanes = round
            .lanes
            .iter()
            .enumerate()
            .map(|(l, spec)| {
                for rank in 0..spec.width {
                    membership.push((l, rank));
                }
                queues.push(Mutex::new(spec.queries.iter().copied().collect()));
                LaneState {
                    width: spec.width,
                    barrier: PhaseBarrier::new(spec.width),
                    slot: Mutex::new(None),
                    active: AtomicUsize::new(0),
                }
            })
            .collect();
        LaneRuntime {
            lanes,
            membership,
            queues,
            readmission: round.readmission,
        }
    }

    /// The next query for lane `l`: its own queue first; once that is
    /// drained (and re-admission is on), the tail of the round's most
    /// loaded sibling lane — intra-round re-admission, so no lane idles
    /// at the round barrier while another still has queries queued.
    fn next_query(&self, l: usize) -> Option<usize> {
        if let Some(qi) = self.queues[l].lock().pop_front() {
            return Some(qi);
        }
        if !self.readmission {
            return None;
        }
        loop {
            let victim = (0..self.queues.len())
                .filter(|&o| o != l)
                .map(|o| (self.queues[o].lock().len(), o))
                .filter(|&(n, _)| n > 0)
                // Most remaining queries first; ties to the lowest lane.
                .max_by_key(|&(n, o)| (n, usize::MAX - o))?;
            // Raced pops can empty the victim between the scan and the
            // claim; rescan (queues only shrink, so this terminates).
            if let Some(qi) = self.queues[victim.1].lock().pop_back() {
                return Some(qi);
            }
        }
    }

    /// The per-pool-thread body of one round: rank-0 members drive their
    /// lane's queries through `driver`, other ranks follow.
    ///
    /// # Panics
    /// A panic raised inside `driver` (or the engine body) on one lane
    /// member poisons the group's [`PhaseBarrier`], so the lane's other
    /// members abort the round with a clear panic instead of
    /// deadlocking on a party that will never arrive. The original
    /// panic is then resumed on this thread.
    pub(crate) fn participate<F>(
        &self,
        tid: usize,
        scratch: &mut WorkerScratch,
        index: &Arc<Index>,
        registry: &Arc<StealRegistry>,
        driver: &F,
    ) where
        F: Fn(&mut LaneCtx, usize) + Sync,
    {
        let (l, rank) = self.membership[tid];
        let lane = &self.lanes[l];
        let body = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if rank == 0 {
                {
                    let mut ctx = LaneCtx {
                        lane,
                        index,
                        registry,
                        scratch,
                    };
                    while let Some(qi) = self.next_query(l) {
                        driver(&mut ctx, qi);
                    }
                }
                lane.finish();
            } else {
                lane.follow(rank, scratch);
            }
        }));
        if let Err(payload) = body {
            lane.barrier.poison();
            std::panic::resume_unwind(payload);
        }
    }
}

/// Maps pool tids onto lanes for a **continuous-dispatch** round: the
/// pool is partitioned once and each lane's rank-0 worker runs a
/// caller-supplied driver that claims work from a shared source until
/// the source closes. Unlike [`LaneRuntime`] there are no per-lane
/// query queues and no admission windows — a lane never waits at a
/// round barrier while work is still queued anywhere. The only join is
/// the pool-level one when every driver has returned (the stream is
/// closed and drained).
#[derive(Debug)]
pub(crate) struct DispatchRuntime {
    lanes: Vec<LaneState>,
    /// `tid -> (lane, rank within lane)`.
    membership: Vec<(usize, usize)>,
}

impl DispatchRuntime {
    /// A runtime for lanes of the given widths (must partition the
    /// pool; validated by the engine entry point).
    pub(crate) fn new(widths: &[usize]) -> Self {
        let mut membership = Vec::new();
        let lanes = widths
            .iter()
            .enumerate()
            .map(|(l, &width)| {
                for rank in 0..width {
                    membership.push((l, rank));
                }
                LaneState {
                    width,
                    barrier: PhaseBarrier::new(width),
                    slot: Mutex::new(None),
                    active: AtomicUsize::new(0),
                }
            })
            .collect();
        DispatchRuntime { lanes, membership }
    }

    /// The per-pool-thread body of a dispatch round: each lane's rank-0
    /// member invokes `driver(ctx, lane)` **once** — the driver loops
    /// "claim from the shared source → [`LaneCtx::execute`] → publish"
    /// until the source closes — and the other ranks follow published
    /// jobs until the lane's sentinel.
    ///
    /// # Panics
    /// Same contract as [`LaneRuntime::participate`]: a panic on one
    /// lane member poisons the group's barrier so its siblings abort
    /// instead of deadlocking, then resumes on this thread.
    pub(crate) fn participate<F>(
        &self,
        tid: usize,
        scratch: &mut WorkerScratch,
        index: &Arc<Index>,
        registry: &Arc<StealRegistry>,
        driver: &F,
    ) where
        F: Fn(&mut LaneCtx, usize) + Sync,
    {
        let (l, rank) = self.membership[tid];
        let lane = &self.lanes[l];
        let body = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if rank == 0 {
                {
                    let mut ctx = LaneCtx {
                        lane,
                        index,
                        registry,
                        scratch,
                    };
                    driver(&mut ctx, l);
                }
                lane.finish();
            } else {
                lane.follow(rank, scratch);
            }
        }));
        if let Err(payload) = body {
            lane.barrier.poison();
            std::panic::resume_unwind(payload);
        }
    }
}

/// Uniform lane widths for a continuous-dispatch round: `pool / width`
/// lanes of `width` threads each, with the remainder folded into the
/// last lane so the widths always partition the pool exactly.
pub fn uniform_widths(pool: usize, width: usize) -> Vec<usize> {
    let pool = pool.max(1);
    let width = width.clamp(1, pool);
    let n_lanes = pool / width;
    let mut widths = vec![width; n_lanes];
    *widths.last_mut().expect("n_lanes >= 1") += pool % width;
    widths
}

/// The execution context a round driver receives on a lane's rank-0
/// worker: a group-scoped view of the engine, one query at a time.
pub struct LaneCtx<'e, 's> {
    lane: &'e LaneState,
    index: &'e Arc<Index>,
    registry: &'e Arc<StealRegistry>,
    scratch: &'s mut WorkerScratch,
}

impl std::fmt::Debug for LaneCtx<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneCtx")
            .field("width", &self.lane.width)
            .finish_non_exhaustive()
    }
}

impl LaneCtx<'_, '_> {
    /// The lane's worker-group width.
    pub fn width(&self) -> usize {
        self.lane.width
    }

    /// The engine's index.
    pub fn index(&self) -> &Arc<Index> {
        self.index
    }

    /// The engine's steal service (shared by all lanes and the pool).
    pub fn steal_registry(&self) -> &Arc<StealRegistry> {
        self.registry
    }

    /// Registers a lane query with the engine's steal service at this
    /// lane's width (see
    /// [`BatchEngine::admit`](super::engine::BatchEngine::admit)).
    pub fn admit(
        &self,
        query_id: usize,
        results: Arc<dyn ResultSet + Send + Sync>,
    ) -> InflightQuery {
        self.registry.register(query_id, self.lane.width, results)
    }

    /// [`LaneCtx::admit`] with a scheduler cost estimate attached, so
    /// the steal service can weight this query by estimated remaining
    /// work when choosing a victim.
    pub fn admit_estimated(
        &self,
        query_id: usize,
        results: Arc<dyn ResultSet + Send + Sync>,
        estimate: Option<f64>,
    ) -> InflightQuery {
        self.registry
            .register_estimated(query_id, self.lane.width, results, estimate)
    }

    /// Runs one admitted query on this lane's worker group. Mirrors
    /// [`BatchEngine::run_query`](super::engine::BatchEngine::run_query)
    /// — same three-phase engine, same hook surface, same
    /// engine-provided steal view and cooperative service — except
    /// `params.n_threads` is overridden by the **lane width**, so the
    /// query only ever touches this group's workers.
    pub fn run_query<K: QueryKernel + ?Sized, R: ResultSet + ?Sized>(
        &mut self,
        kernel: &K,
        params: &SearchParams,
        results: &R,
        batch_subset: Option<&[usize]>,
        query: &InflightQuery,
        on_improve: &(dyn Fn(f64, u32) + Sync),
    ) -> SearchStats {
        let lane = self.lane;
        let mut eff = *params;
        eff.n_threads = lane.width;
        let hook = self.registry.service_hook();
        let registry = &**self.registry;
        let service = move || {
            if let Some(h) = &hook {
                h(registry);
            }
        };
        let shared = ExecShared::new(
            self.index,
            kernel,
            &eff,
            results,
            batch_subset,
            query.view(),
            on_improve,
            &service,
        );
        if shared.has_work() {
            lane.run(
                &|rank, scratch| shared.worker(rank, &lane.barrier, scratch),
                self.scratch,
            );
        }
        shared.finish()
    }

    /// Answers one [`BatchQuery`] on the lane — the concurrent analogue
    /// of the per-kind arms in
    /// [`run_batch`](super::engine::BatchEngine::run_batch) — registered
    /// with the steal service under `query_id` (its batch index).
    pub fn execute(
        &mut self,
        query_id: usize,
        query: &BatchQuery,
        params: &SearchParams,
    ) -> BatchItem {
        self.execute_estimated(query_id, query, params, None)
    }

    /// [`LaneCtx::execute`] with a scheduler cost estimate attached for
    /// steal-victim weighting. Either way the finished query is
    /// reported to the registry's installed feedback observer.
    pub fn execute_estimated(
        &mut self,
        query_id: usize,
        query: &BatchQuery,
        params: &SearchParams,
        estimate: Option<f64>,
    ) -> BatchItem {
        let index = self.index;
        let item = match query.kind {
            QueryKind::Exact => {
                let (kernel, bsf, initial) = seed_ed(index, query.data);
                let bsf = Arc::new(bsf);
                let grant = self.admit_estimated(
                    query_id,
                    Arc::clone(&bsf) as Arc<dyn ResultSet + Send + Sync>,
                    estimate,
                );
                let mut stats = self.run_query(&kernel, params, &*bsf, None, &grant, &|_, _| {});
                stats.initial_bsf = initial;
                BatchItem {
                    answer: BatchAnswer::Nn(bsf.answer()),
                    stats,
                }
            }
            QueryKind::Knn(k) => {
                let (kernel, knn) = seed_knn(index, query.data, k);
                let knn = Arc::new(knn);
                let grant = self.admit_estimated(
                    query_id,
                    Arc::clone(&knn) as Arc<dyn ResultSet + Send + Sync>,
                    estimate,
                );
                let stats = self.run_query(&kernel, params, &*knn, None, &grant, &|_, _| {});
                BatchItem {
                    answer: BatchAnswer::Knn(knn.snapshot()),
                    stats,
                }
            }
            QueryKind::Dtw(window) => {
                let (kernel, bsf, initial) = seed_dtw(index, query.data, window);
                let bsf = Arc::new(bsf);
                let grant = self.admit_estimated(
                    query_id,
                    Arc::clone(&bsf) as Arc<dyn ResultSet + Send + Sync>,
                    estimate,
                );
                let mut stats = self.run_query(&kernel, params, &*bsf, None, &grant, &|_, _| {});
                stats.initial_bsf = initial;
                BatchItem {
                    answer: BatchAnswer::Nn(bsf.answer()),
                    stats,
                }
            }
        };
        self.registry.observe(query_id, &item.stats);
        item
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_plan_is_one_full_pool_lane() {
        let p = ConcurrentPlan::sequential(&[2, 0, 1], 4);
        p.validate(4, 3);
        assert_eq!(p.rounds.len(), 1);
        assert_eq!(p.rounds[0].lanes.len(), 1);
        assert_eq!(p.rounds[0].lanes[0].width, 4);
        assert_eq!(p.rounds[0].lanes[0].queries, vec![2, 0, 1]);
        assert!(ConcurrentPlan::sequential(&[], 4).rounds.is_empty());
    }

    #[test]
    fn uniform_plans_partition_for_all_widths() {
        for pool in 1..=8usize {
            for width in 1..=pool {
                for nq in [0usize, 1, 2, 7, 16] {
                    let p = ConcurrentPlan::uniform(nq, pool, width);
                    p.validate(pool, nq);
                }
            }
        }
    }

    #[test]
    fn uniform_with_few_queries_keeps_pool_covered() {
        // 1 query on an 8-thread pool at width 2: one lane, all 8 workers.
        let p = ConcurrentPlan::uniform(1, 8, 2);
        p.validate(8, 1);
        assert_eq!(p.rounds[0].lanes.len(), 1);
        assert_eq!(p.rounds[0].lanes[0].width, 8);
    }

    #[test]
    fn uniform_widths_partition_every_pool() {
        for pool in 1..=9usize {
            for width in 1..=pool + 2 {
                let w = uniform_widths(pool, width);
                assert_eq!(w.iter().sum::<usize>(), pool, "pool={pool} width={width}");
                assert!(w.iter().all(|&x| x >= 1));
            }
        }
        assert_eq!(uniform_widths(8, 2), vec![2, 2, 2, 2]);
        assert_eq!(uniform_widths(7, 2), vec![2, 2, 3]);
        assert_eq!(uniform_widths(2, 5), vec![2]);
    }

    #[test]
    #[should_panic(expected = "partition the 4-thread pool")]
    fn validate_rejects_underfull_round() {
        let p = ConcurrentPlan {
            rounds: vec![RoundSpec::new(vec![LaneSpec {
                width: 3,
                queries: vec![0],
            }])],
        };
        p.validate(4, 1);
    }

    #[test]
    #[should_panic(expected = "names query 0 twice")]
    fn validate_rejects_duplicate_query() {
        let p = ConcurrentPlan {
            rounds: vec![RoundSpec::new(vec![
                LaneSpec {
                    width: 1,
                    queries: vec![0],
                },
                LaneSpec {
                    width: 1,
                    queries: vec![0],
                },
            ])],
        };
        p.validate(2, 1);
    }

    #[test]
    #[should_panic(expected = "never names query 1")]
    fn validate_rejects_missing_query() {
        let p = ConcurrentPlan::sequential(&[0], 2);
        p.validate(2, 2);
    }
}
